//! The UBfuzz loop retargeted at non-sanitizer detectors (§4.7).
//!
//! The methodology transfers with two adaptations:
//!
//! * **Dynamic tools** (Memcheck / Dr. Memory): the natural differential
//!   pair is *two tools on the same binary* — §4.7 names both Valgrind and
//!   Dr. Memory precisely because they check the same class of errors
//!   independently. A same-binary discrepancy needs no optimization
//!   arbitration (both tools executed the same instructions); a
//!   *cross-optimization-level* discrepancy of a single tool does, and the
//!   paper's report-site mapping applies verbatim using the DBI engine's
//!   executed-site trace in place of the debugger's.
//! * **Static tools** (CppCheck / Infer): a static tool may legitimately
//!   miss a dynamic truth (precision loss at joins and loops), so "the
//!   interpreter says the UB exists but the tool is silent" is *not* an
//!   oracle. The differential pair is two implementations of the same
//!   analysis; a discrepancy on the same source is an implementation bug.
//!
//! Like the paper's artifact, the campaign also replays the corpus of known
//! bug-triggering test cases ([`trigger_corpus`]) — fuzzing finds what it
//! finds, the corpus pins every injected defect.

use std::collections::BTreeMap;
use std::sync::Arc;
use ubfuzz_backend::{CompileRequest, CompilerBackend, SimBackend, SiteTrace};
use ubfuzz_exec::Executor;
use ubfuzz_oracle::{arbitrate, Verdict as OracleVerdict};
use ubfuzz_minic::{parse, pretty, UbKind};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::target::{OptLevel, Vendor};
use ubfuzz_ubgen::{GenOptions, UbProgram};

use crate::defects::{DetectorDefectRegistry, DetectorTool};
use crate::memcheck::{self, MemcheckConfig, MemcheckRun};
use crate::report::DetectorResult;
use crate::staticcheck::{analyze, static_supports, StaticConfig};

/// Campaign configuration, shared by both detector families.
#[derive(Debug, Clone)]
pub struct DetectorCampaignConfig {
    /// First seed index.
    pub first_seed: u64,
    /// Number of seed programs.
    pub seeds: usize,
    /// Seed generator options.
    pub seed_options: SeedOptions,
    /// UB generator options.
    pub gen_options: GenOptions,
    /// The defect world of the tool under test.
    pub registry: DetectorDefectRegistry,
    /// Also replay the fixed trigger corpus.
    pub include_triggers: bool,
    /// Work-stealing executor width; `0` means one worker per core. Output
    /// is bit-identical at every worker count (the executor merges results
    /// in canonical program order).
    pub workers: usize,
    /// The compilation/execution backend Memcheck binaries are built on.
    /// `None` defaults to an uncached [`SimBackend`] — each `(program,
    /// opt)` cell is compiled exactly once, so there is no prefix to reuse.
    pub backend: Option<Arc<dyn CompilerBackend>>,
}

impl Default for DetectorCampaignConfig {
    fn default() -> DetectorCampaignConfig {
        DetectorCampaignConfig {
            first_seed: 0,
            seeds: 10,
            seed_options: SeedOptions::default(),
            gen_options: GenOptions::default(),
            registry: DetectorDefectRegistry::full(),
            include_triggers: true,
            workers: 0,
            backend: None,
        }
    }
}

impl DetectorCampaignConfig {
    /// The executor serving this config's campaigns.
    fn executor(&self) -> Executor {
        if self.workers == 0 {
            Executor::auto()
        } else {
            Executor::new(self.workers)
        }
    }

    /// The backend this config's campaigns compile on.
    fn resolve_backend(&self) -> Arc<dyn CompilerBackend> {
        match &self.backend {
            Some(b) => Arc::clone(b),
            None => Arc::new(SimBackend::uncached()),
        }
    }
}

/// One deduplicated detector bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorFoundBug {
    /// The tool that missed the UB.
    pub tool: DetectorTool,
    /// Ground-truth UB kind of the triggering program.
    pub kind: UbKind,
    /// Attribution to the injected defect, when the tool's run recorded one.
    pub defect_id: Option<&'static str>,
    /// Optimization levels at which the miss was observed (Memcheck only;
    /// the static tool sees source, not binaries).
    pub missed_at: Vec<OptLevel>,
    /// A triggering program.
    pub test_case: String,
    /// Triggering programs deduplicated into this bug.
    pub duplicates: usize,
}

/// Aggregate statistics of one detector campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorCampaignStats {
    /// Seeds consumed.
    pub seeds: usize,
    /// UB programs tested, per kind.
    pub ub_programs: BTreeMap<UbKind, usize>,
    /// Same-input discrepancies between the two tool implementations.
    pub discrepancies: usize,
    /// Cross-level single-tool discrepancies classified as optimization
    /// artifacts by report-site mapping (Memcheck only).
    pub optimization_artifacts: usize,
    /// Deduplicated bugs.
    pub bugs: Vec<DetectorFoundBug>,
}

impl DetectorCampaignStats {
    /// Total UB programs tested.
    pub fn total_programs(&self) -> usize {
        self.ub_programs.values().sum()
    }
}

/// The UB kinds the Memcheck engine claims to detect. Buffer overflow is
/// heap-only, but generated overflow programs that target stack or global
/// buffers are silent under *both* engines and thus never create a
/// discrepancy — the support matrix need not distinguish storage.
pub fn memcheck_supports(kind: UbKind) -> bool {
    matches!(
        kind,
        UbKind::BufOverflowPtr
            | UbKind::UseAfterFree
            | UbKind::NullDeref
            | UbKind::UninitUse
            | UbKind::InvalidFree
    )
}

/// Known bug-triggering test cases for each injected defect — the analogue
/// of the per-bug test cases shipped with the paper's artifact.
pub fn trigger_corpus(tool: DetectorTool) -> Vec<(&'static str, UbKind, &'static str)> {
    match tool {
        DetectorTool::Memcheck => vec![
            (
                "memcheck-d01",
                UbKind::UninitUse,
                // The low half of `x` is written through a cast; the 8-byte
                // load of `x` is then *partially* defined — the shape the
                // defective V-bit collapse mishandles.
                "int main(void) {
                    long x;
                    int *p = (int*)&x;
                    *p = 1;
                    long y = x + 1;
                    if (y) { return 1; }
                    return 0;
                 }",
            ),
            (
                "memcheck-d02",
                UbKind::UseAfterFree,
                "int main(void) {
                    int *a = (int*)malloc(8);
                    int *b = (int*)malloc(8);
                    *a = 1;
                    free(a);
                    free(b);
                    return *a;
                 }",
            ),
            (
                "memcheck-d03",
                UbKind::BufOverflowPtr,
                "int main(void) {
                    char *p = (char*)malloc(8);
                    int *q = (int*)(p + 6);
                    *q = 5;
                    free(p);
                    return 0;
                 }",
            ),
            (
                "memcheck-d04",
                UbKind::UninitUse,
                "struct s { int a; int b; };
                 int main(void) {
                    struct s x;
                    struct s y;
                    x.a = 1;
                    y = x;
                    if (y.b) { return 1; }
                    return 0;
                 }",
            ),
        ],
        DetectorTool::StaticAnalyzer => vec![
            (
                "static-d01",
                UbKind::UninitUse,
                "int main(void) {
                    int x;
                    int *p = &x;
                    print_value(*p);
                    if (x) { return 1; }
                    return 0;
                 }",
            ),
            (
                "static-d02",
                UbKind::DivByZero,
                "int main(void) { int z = 0; int t = 1; return t && (5 / z); }",
            ),
            (
                "static-d03",
                UbKind::BufOverflowArray,
                "int opaque(int v) { return v + v; }
                 int main(void) {
                    int a[4];
                    int k = 0 - 2;
                    for (int i = 0; i < opaque(2); i = i + 1) { a[1] = i; }
                    a[k] = 2;
                    return 0;
                 }",
            ),
        ],
    }
}

/// Expands every seed into its supported UB programs on the executor; the
/// flattened list is in canonical seed order (each seed id derives its own
/// RNG stream, so scheduling cannot perturb generation).
fn generated_programs(
    cfg: &DetectorCampaignConfig,
    exec: &Executor,
    supports: fn(UbKind) -> bool,
) -> Vec<UbProgram> {
    let seed_ids: Vec<u64> = (0..cfg.seeds).map(|s| cfg.first_seed + s as u64).collect();
    exec.map(seed_ids, |_, seed_id| {
        let seed = generate_seed(seed_id, &cfg.seed_options);
        let mut opts = cfg.gen_options.clone();
        opts.rng_seed = seed_id.wrapping_mul(131).wrapping_add(13);
        ubfuzz_ubgen::generate_all(&seed, &opts)
            .into_iter()
            .filter(|u| supports(u.kind))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

fn corpus_programs(tool: DetectorTool) -> Vec<UbProgram> {
    trigger_corpus(tool)
        .into_iter()
        .filter_map(|(name, kind, src)| {
            let mut program = parse(src).ok()?;
            pretty::relocate(&mut program);
            let ub_loc = ubfuzz_interp::run_program(&program).ub().map(|ev| ev.loc)?;
            Some(UbProgram {
                program,
                kind,
                ub_loc,
                ub_node: ubfuzz_minic::NodeId::DUMMY,
                description: format!("trigger corpus: {name}"),
            })
        })
        .collect()
}

/// Runs the Memcheck campaign: the tool under test (`cfg.registry`) against
/// a pristine second implementation on the same binaries, plus cross-level
/// report-site mapping for optimization arbitration.
pub fn run_memcheck_campaign(cfg: &DetectorCampaignConfig) -> DetectorCampaignStats {
    let exec = cfg.executor();
    let backend = cfg.resolve_backend();
    let backend = backend.as_ref();
    let mut stats = DetectorCampaignStats { seeds: cfg.seeds, ..Default::default() };
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut programs = generated_programs(cfg, &exec, memcheck_supports);
    if cfg.include_triggers {
        programs.extend(corpus_programs(DetectorTool::Memcheck));
    }
    let compiler_reg = DefectRegistry::pristine();
    let tool_a = MemcheckConfig { registry: cfg.registry.clone(), ..MemcheckConfig::default() };
    let tool_b =
        MemcheckConfig { registry: DetectorDefectRegistry::pristine(), ..MemcheckConfig::default() };
    // Fine-grained units — one (program, opt) compile+dual-run per task —
    // drained by the work-stealing executor; the oracle below consumes them
    // in canonical program order, so output matches the sequential loop
    // bit-for-bit. The DBI engines instrument the compiled module, so
    // backends with opaque artifacts contribute no cells (the campaign
    // degrades to the trigger corpus of whatever cells do compile).
    let units: Vec<(usize, OptLevel)> = (0..programs.len())
        .flat_map(|pi| [OptLevel::O0, OptLevel::O2].map(|opt| (pi, opt)))
        .collect();
    let cells = exec.map(units, |_, (pi, opt)| {
        let req = CompileRequest {
            compiler: ubfuzz_simcc::target::CompilerId::dev(Vendor::Gcc),
            opt,
            sanitizer: None,
            registry: &compiler_reg,
            san_policy: ubfuzz_simcc::SanPolicy::Full,
        };
        let artifact = backend.compile_program(&programs[pi].program, &req).ok()?;
        let module = artifact.module()?;
        let ra = memcheck::run(module, &tool_a);
        let rb = memcheck::run(module, &tool_b);
        Some((opt, ra, rb))
    });
    let mut cells = cells.into_iter();
    for u in &programs {
        *stats.ub_programs.entry(u.kind).or_default() += 1;
        let runs: Vec<(OptLevel, MemcheckRun, MemcheckRun)> =
            cells.by_ref().take(2).flatten().collect();
        // Same-binary differential: tool B reports the UB, tool A is silent.
        for (opt, ra, rb) in &runs {
            let b_detects = rb.result.reports().iter().any(|r| r.kind.matches_ub(u.kind));
            let a_detects = ra.result.reports().iter().any(|r| r.kind.matches_ub(u.kind));
            if b_detects && !a_detects {
                stats.discrepancies += 1;
                record_bug(&mut stats, &mut bug_index, DetectorTool::Memcheck, u, *opt, ra);
            }
        }
        // Cross-level single-tool differential (the Fig. 3 situation): a
        // report at -O0 and silence at -O2 under the *same* tool.
        // Report-site mapping decides whether the optimizer removed the UB
        // — Algorithm 2's comparison shared with the sanitizer campaigns
        // (`ubfuzz_oracle::arbitrate`), with the DBI engine's executed-site
        // trace standing in for the debugger's.
        if runs.len() == 2 {
            let (_, a0, _) = &runs[0];
            let (_, a2, _) = &runs[1];
            let r0 = a0.result.reports().iter().find(|r| r.kind.matches_ub(u.kind));
            let a2_detects = a2.result.reports().iter().any(|r| r.kind.matches_ub(u.kind));
            if let Some(rep) = r0 {
                let bc = SiteTrace::from_vm(a0.trace.clone());
                let bn = SiteTrace::from_vm(a2.trace.clone());
                if !a2_detects
                    && arbitrate(&bc, rep.loc, &bn) == OracleVerdict::OptimizationArtifact
                {
                    stats.optimization_artifacts += 1;
                }
            }
        }
    }
    stats
}

/// Runs the static-analyzer campaign: the tool under test against a pristine
/// second implementation of the same analysis on the same sources.
pub fn run_static_campaign(cfg: &DetectorCampaignConfig) -> DetectorCampaignStats {
    let exec = cfg.executor();
    let mut stats = DetectorCampaignStats { seeds: cfg.seeds, ..Default::default() };
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut programs = generated_programs(cfg, &exec, static_supports);
    if cfg.include_triggers {
        programs.extend(corpus_programs(DetectorTool::StaticAnalyzer));
    }
    let tool_a = StaticConfig { registry: cfg.registry.clone() };
    let tool_b = StaticConfig { registry: DetectorDefectRegistry::pristine() };
    // One dual-analysis unit per program; merged in program order.
    let analyses = exec.map((0..programs.len()).collect(), |_, pi: usize| {
        let ra = analyze(&programs[pi].program, &tool_a);
        let rb = analyze(&programs[pi].program, &tool_b);
        (ra, rb)
    });
    for (u, (ra, rb)) in programs.iter().zip(analyses) {
        *stats.ub_programs.entry(u.kind).or_default() += 1;
        if rb.detects(u.kind) && !ra.detects(u.kind) {
            stats.discrepancies += 1;
            let defect_id = ra
                .applied_defects
                .iter()
                .map(|(id, _)| *id)
                .find(|id| {
                    DetectorDefectRegistry::get(id).is_some_and(|d| d.ub_kind == u.kind)
                })
                .or_else(|| ra.applied_defects.first().map(|(id, _)| *id));
            push_bug(
                &mut stats,
                &mut bug_index,
                DetectorFoundBug {
                    tool: DetectorTool::StaticAnalyzer,
                    kind: u.kind,
                    defect_id,
                    missed_at: Vec::new(),
                    test_case: pretty::print(&u.program),
                    duplicates: 1,
                },
            );
        }
    }
    stats
}

fn record_bug(
    stats: &mut DetectorCampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
    tool: DetectorTool,
    u: &UbProgram,
    opt: OptLevel,
    run: &MemcheckRun,
) {
    let defect_id = run
        .applied_defects
        .iter()
        .map(|(id, _)| *id)
        .find(|id| DetectorDefectRegistry::get(id).is_some_and(|d| d.ub_kind == u.kind))
        .or_else(|| run.applied_defects.first().map(|(id, _)| *id));
    let mut bug = DetectorFoundBug {
        tool,
        kind: u.kind,
        defect_id,
        missed_at: vec![opt],
        test_case: pretty::print(&u.program),
        duplicates: 1,
    };
    if let Some(&i) = bug_index.get(&bug_key(&bug)) {
        let existing = &mut stats.bugs[i];
        existing.duplicates += 1;
        if !existing.missed_at.contains(&opt) {
            existing.missed_at.push(opt);
        }
        return;
    }
    bug.missed_at.sort();
    push_bug(stats, bug_index, bug);
}

fn bug_key(bug: &DetectorFoundBug) -> String {
    match bug.defect_id {
        Some(id) => format!("defect:{id}"),
        None => format!("unknown:{}:{}", bug.tool, bug.kind),
    }
}

fn push_bug(
    stats: &mut DetectorCampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
    bug: DetectorFoundBug,
) {
    let key = bug_key(&bug);
    if let Some(&i) = bug_index.get(&key) {
        stats.bugs[i].duplicates += 1;
        return;
    }
    bug_index.insert(key, stats.bugs.len());
    stats.bugs.push(bug);
}

/// Ground-truth sanity check used by tests and examples: every trigger-corpus
/// program really exhibits its labelled UB under the reference interpreter.
pub fn verify_trigger_corpus(tool: DetectorTool) -> Result<(), String> {
    for (name, kind, src) in trigger_corpus(tool) {
        let mut p = parse(src).map_err(|e| format!("{name}: parse error: {e}"))?;
        pretty::relocate(&mut p);
        let outcome = ubfuzz_interp::run_program(&p);
        let ev = outcome.ub().ok_or_else(|| format!("{name}: no UB ({outcome:?})"))?;
        if ev.kind != kind {
            return Err(format!("{name}: expected {kind}, interpreter saw {}", ev.kind));
        }
    }
    Ok(())
}

/// Convenience: whether a [`DetectorResult`] counts as "reported the UB" for
/// a given ground-truth kind.
pub fn detects(result: &DetectorResult, kind: UbKind) -> bool {
    result.reports().iter().any(|r| r.kind.matches_ub(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_corpora_are_ground_truthed() {
        verify_trigger_corpus(DetectorTool::Memcheck).unwrap();
        verify_trigger_corpus(DetectorTool::StaticAnalyzer).unwrap();
    }

    #[test]
    fn memcheck_campaign_rediscovers_every_injected_defect() {
        let cfg = DetectorCampaignConfig { seeds: 2, ..Default::default() };
        let stats = run_memcheck_campaign(&cfg);
        let found: std::collections::HashSet<_> =
            stats.bugs.iter().filter_map(|b| b.defect_id).collect();
        for d in DetectorDefectRegistry::for_tool(DetectorTool::Memcheck) {
            assert!(found.contains(d.id), "missing {} in {found:?}", d.id);
        }
    }

    #[test]
    fn static_campaign_rediscovers_every_injected_defect() {
        let cfg = DetectorCampaignConfig { seeds: 2, ..Default::default() };
        let stats = run_static_campaign(&cfg);
        let found: std::collections::HashSet<_> =
            stats.bugs.iter().filter_map(|b| b.defect_id).collect();
        for d in DetectorDefectRegistry::for_tool(DetectorTool::StaticAnalyzer) {
            assert!(found.contains(d.id), "missing {} in {found:?}", d.id);
        }
    }

    #[test]
    fn pristine_tools_produce_no_bugs() {
        let cfg = DetectorCampaignConfig {
            seeds: 2,
            registry: DetectorDefectRegistry::pristine(),
            ..Default::default()
        };
        let m = run_memcheck_campaign(&cfg);
        assert!(m.bugs.is_empty(), "{:?}", m.bugs.iter().map(|b| b.defect_id).collect::<Vec<_>>());
        let s = run_static_campaign(&cfg);
        assert!(s.bugs.is_empty(), "{:?}", s.bugs.iter().map(|b| b.defect_id).collect::<Vec<_>>());
    }

    #[test]
    fn detector_campaigns_are_worker_count_invariant() {
        // The executor port must keep both campaigns bit-identical to a
        // single-worker run at any width.
        let base = DetectorCampaignConfig { seeds: 2, ..Default::default() };
        let one = DetectorCampaignConfig { workers: 1, ..base.clone() };
        let eight = DetectorCampaignConfig { workers: 8, ..base.clone() };
        assert_eq!(run_memcheck_campaign(&one), run_memcheck_campaign(&eight));
        assert_eq!(run_static_campaign(&one), run_static_campaign(&eight));
    }

    #[test]
    fn explicit_backend_matches_the_default_resolution() {
        // A shared, cached backend must be observationally identical to the
        // default per-run uncached one — caching is a backend concern the
        // campaign cannot see.
        let base = DetectorCampaignConfig { seeds: 2, ..Default::default() };
        let shared: Arc<dyn CompilerBackend> = Arc::new(SimBackend::new());
        let explicit =
            DetectorCampaignConfig { backend: Some(Arc::clone(&shared)), ..base.clone() };
        assert_eq!(run_memcheck_campaign(&base), run_memcheck_campaign(&explicit));
        assert_eq!(run_static_campaign(&base), run_static_campaign(&explicit));
    }

    #[test]
    fn campaigns_count_programs_per_kind() {
        let cfg = DetectorCampaignConfig { seeds: 3, ..Default::default() };
        let stats = run_memcheck_campaign(&cfg);
        assert!(stats.total_programs() > 0);
        for kind in stats.ub_programs.keys() {
            assert!(memcheck_supports(*kind), "{kind} is outside the support matrix");
        }
    }
}
