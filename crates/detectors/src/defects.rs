//! Injected defects for the non-sanitizer detectors.
//!
//! The sanitizer study needs a system under test with *known* false-negative
//! bugs ([`ubfuzz_simcc::defects`]); extending UBfuzz to Memcheck-style and
//! CppCheck-style tools (§4.7) needs the same. Each entry here is a
//! realistically-shaped implementation bug in one of the two detectors —
//! the mechanism classes are borrowed from real Valgrind and CppCheck issue
//! trackers (partial-word validity tracking, quarantine recycling, range
//! checks testing only the first byte, analysis bailing out on loops or on
//! address-taken variables).
//!
//! The engines consult [`DetectorDefectRegistry::active`] at each would-be
//! check and record applications in their run result — ground truth for
//! attribution, never consulted by the campaign's oracle.

use ubfuzz_minic::UbKind;

/// Which detector a defect lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectorTool {
    /// The Memcheck-style dynamic binary instrumentation tool.
    Memcheck,
    /// The CppCheck/Infer-style static analyzer.
    StaticAnalyzer,
}

impl DetectorTool {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorTool::Memcheck => "Memcheck",
            DetectorTool::StaticAnalyzer => "StaticCheck",
        }
    }
}

impl std::fmt::Display for DetectorTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected detector defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorDefect {
    /// Stable identifier, e.g. `"memcheck-d01"`.
    pub id: &'static str,
    /// The tool it lives in.
    pub tool: DetectorTool,
    /// The UB kind whose detection it breaks.
    pub ub_kind: UbKind,
    /// One-line root-cause description.
    pub description: &'static str,
}

/// The corpus: four Memcheck defects, three static-analyzer defects.
pub const DETECTOR_DEFECTS: [DetectorDefect; 7] = [
    DetectorDefect {
        id: "memcheck-d01",
        tool: DetectorTool::Memcheck,
        ub_kind: UbKind::UninitUse,
        description: "8-byte loads mark the destination fully defined when any \
                      source byte is defined (partial-word V-bit collapse)",
    },
    DetectorDefect {
        id: "memcheck-d02",
        tool: DetectorTool::Memcheck,
        ub_kind: UbKind::UseAfterFree,
        description: "free quarantine holds a single block; a second free \
                      recycles the first block's shadow as addressable",
    },
    DetectorDefect {
        id: "memcheck-d03",
        tool: DetectorTool::Memcheck,
        ub_kind: UbKind::BufOverflowPtr,
        description: "multi-byte accesses check only the first byte's A-bit, \
                      missing accesses that straddle the end of a heap block",
    },
    DetectorDefect {
        id: "memcheck-d04",
        tool: DetectorTool::Memcheck,
        ub_kind: UbKind::UninitUse,
        description: "aggregate copies (struct assignment) mark the destination \
                      defined instead of copying source V-bits",
    },
    DetectorDefect {
        id: "static-d01",
        tool: DetectorTool::StaticAnalyzer,
        ub_kind: UbKind::UninitUse,
        description: "address-taken variables are assumed initialized \
                      (&x anywhere suppresses the uninitialized-use check)",
    },
    DetectorDefect {
        id: "static-d02",
        tool: DetectorTool::StaticAnalyzer,
        ub_kind: UbKind::DivByZero,
        description: "divisions on the right-hand side of short-circuit \
                      operators are not visited",
    },
    DetectorDefect {
        id: "static-d03",
        tool: DetectorTool::StaticAnalyzer,
        ub_kind: UbKind::BufOverflowArray,
        description: "interval widening after a loop drops the lower bound, \
                      losing negative-index out-of-bounds facts",
    },
];

/// An on/off world of detector defects, mirroring
/// [`ubfuzz_simcc::defects::DefectRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorDefectRegistry {
    enabled: Vec<&'static str>,
}

impl DetectorDefectRegistry {
    /// All injected defects active (the default system under test).
    pub fn full() -> DetectorDefectRegistry {
        DetectorDefectRegistry { enabled: DETECTOR_DEFECTS.iter().map(|d| d.id).collect() }
    }

    /// No defects active (correct detectors, for ablation and oracle
    /// soundness tests).
    pub fn pristine() -> DetectorDefectRegistry {
        DetectorDefectRegistry { enabled: Vec::new() }
    }

    /// A world with exactly the given defects active.
    pub fn with_only(ids: &[&'static str]) -> DetectorDefectRegistry {
        let enabled = DETECTOR_DEFECTS
            .iter()
            .map(|d| d.id)
            .filter(|id| ids.contains(id))
            .collect();
        DetectorDefectRegistry { enabled }
    }

    /// Whether the defect with `id` is active.
    pub fn active(&self, id: &str) -> bool {
        self.enabled.contains(&id)
    }

    /// Looks up a defect by id.
    pub fn get(id: &str) -> Option<&'static DetectorDefect> {
        DETECTOR_DEFECTS.iter().find(|d| d.id == id)
    }

    /// All defects of one tool.
    pub fn for_tool(tool: DetectorTool) -> Vec<&'static DetectorDefect> {
        DETECTOR_DEFECTS.iter().filter(|d| d.tool == tool).collect()
    }
}

impl Default for DetectorDefectRegistry {
    fn default() -> DetectorDefectRegistry {
        DetectorDefectRegistry::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for d in DETECTOR_DEFECTS {
            assert!(seen.insert(d.id), "duplicate id {}", d.id);
            assert_eq!(DetectorDefectRegistry::get(d.id).unwrap().id, d.id);
        }
        assert!(DetectorDefectRegistry::get("no-such-defect").is_none());
    }

    #[test]
    fn registry_worlds() {
        let full = DetectorDefectRegistry::full();
        let pristine = DetectorDefectRegistry::pristine();
        for d in DETECTOR_DEFECTS {
            assert!(full.active(d.id));
            assert!(!pristine.active(d.id));
        }
        let only = DetectorDefectRegistry::with_only(&["memcheck-d02"]);
        assert!(only.active("memcheck-d02"));
        assert!(!only.active("memcheck-d01"));
    }

    #[test]
    fn both_tools_have_defects() {
        assert!(!DetectorDefectRegistry::for_tool(DetectorTool::Memcheck).is_empty());
        assert!(!DetectorDefectRegistry::for_tool(DetectorTool::StaticAnalyzer).is_empty());
    }
}
