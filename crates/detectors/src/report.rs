//! Report vocabulary shared by the non-sanitizer detectors.

use std::fmt;
use ubfuzz_minic::{Loc, UbKind};

/// What a detector reported — the union of Memcheck's error taxonomy and the
/// static analyzer's finding categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorReportKind {
    /// Memcheck: `Invalid read of size N` (unaddressable byte).
    InvalidRead,
    /// Memcheck: `Invalid write of size N`.
    InvalidWrite,
    /// Memcheck: access `inside a block of size N free'd`.
    UseAfterFree,
    /// Memcheck: `Invalid free() / delete / delete[]`.
    InvalidFree,
    /// Memcheck: `Conditional jump or move depends on uninitialised
    /// value(s)`.
    UninitCondition,
    /// Memcheck: uninitialised value used in an arithmetic trap position
    /// (divisor) or passed to output.
    UninitValueUse,
    /// Memcheck leak summary: `definitely lost: N bytes in M blocks`.
    LeakDefinitelyLost,
    /// Static analyzer: null pointer dereference.
    StaticNullDeref,
    /// Static analyzer: division by zero.
    StaticDivByZero,
    /// Static analyzer: array index out of bounds.
    StaticOutOfBounds,
    /// Static analyzer: signed integer overflow.
    StaticIntOverflow,
    /// Static analyzer: shift amount out of range.
    StaticShiftOob,
    /// Static analyzer: use of uninitialized variable.
    StaticUninitUse,
}

impl DetectorReportKind {
    /// The message the real tool prints for this error class.
    pub fn message(self) -> &'static str {
        match self {
            DetectorReportKind::InvalidRead => "Invalid read",
            DetectorReportKind::InvalidWrite => "Invalid write",
            DetectorReportKind::UseAfterFree => "Invalid access inside a free'd block",
            DetectorReportKind::InvalidFree => "Invalid free()",
            DetectorReportKind::UninitCondition => {
                "Conditional jump or move depends on uninitialised value(s)"
            }
            DetectorReportKind::UninitValueUse => "Use of uninitialised value",
            DetectorReportKind::LeakDefinitelyLost => "definitely lost",
            DetectorReportKind::StaticNullDeref => "null pointer dereference",
            DetectorReportKind::StaticDivByZero => "division by zero",
            DetectorReportKind::StaticOutOfBounds => "array index out of bounds",
            DetectorReportKind::StaticIntOverflow => "signed integer overflow",
            DetectorReportKind::StaticShiftOob => "shift amount out of range",
            DetectorReportKind::StaticUninitUse => "uninitialized variable",
        }
    }

    /// True when this report plausibly detects the given ground-truth UB
    /// kind. Memcheck's taxonomy is coarser than the C standard's: heap
    /// overflow and use-after-scope both surface as invalid reads/writes.
    pub fn matches_ub(self, kind: UbKind) -> bool {
        use UbKind::*;
        match self {
            DetectorReportKind::InvalidRead | DetectorReportKind::InvalidWrite => matches!(
                kind,
                BufOverflowArray | BufOverflowPtr | UseAfterScope | NullDeref | UseAfterFree
            ),
            DetectorReportKind::UseAfterFree => matches!(kind, UseAfterFree | InvalidFree),
            DetectorReportKind::InvalidFree => kind == InvalidFree,
            DetectorReportKind::UninitCondition | DetectorReportKind::UninitValueUse => {
                kind == UninitUse
            }
            DetectorReportKind::LeakDefinitelyLost => false,
            DetectorReportKind::StaticNullDeref => kind == NullDeref,
            DetectorReportKind::StaticDivByZero => kind == DivByZero,
            DetectorReportKind::StaticOutOfBounds => {
                matches!(kind, BufOverflowArray | BufOverflowPtr)
            }
            DetectorReportKind::StaticIntOverflow => kind == IntOverflow,
            DetectorReportKind::StaticShiftOob => kind == ShiftOverflow,
            DetectorReportKind::StaticUninitUse => kind == UninitUse,
        }
    }
}

impl fmt::Display for DetectorReportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

/// One detector error report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorReport {
    /// Error class.
    pub kind: DetectorReportKind,
    /// Source location the tool attributes the error to.
    pub loc: Loc,
}

impl fmt::Display for DetectorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "=={}== at {}", self.kind.message(), self.loc)
    }
}

/// Outcome of running a program under a dynamic detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorResult {
    /// The program ran to completion; `reports` holds every error the tool
    /// printed along the way (Memcheck does not stop at the first error).
    Finished {
        /// `main`'s exit status.
        status: i64,
        /// Program output (`print_value` values), in order.
        output: Vec<i64>,
        /// Errors reported during the run, in order.
        reports: Vec<DetectorReport>,
    },
    /// The program crashed under the tool (e.g. SIGSEGV on an unmapped
    /// access the tool reported but could not recover from, or SIGFPE).
    Crashed {
        /// Errors reported before the crash.
        reports: Vec<DetectorReport>,
        /// Where the crash happened.
        loc: Loc,
    },
    /// Step budget exhausted.
    Timeout,
    /// Malformed module.
    Error(String),
}

impl DetectorResult {
    /// The first error report, if any — the detector's analogue of the
    /// sanitizer "crash" in the paper's differential scheme.
    pub fn report(&self) -> Option<&DetectorReport> {
        match self {
            DetectorResult::Finished { reports, .. } | DetectorResult::Crashed { reports, .. } => {
                reports.first()
            }
            _ => None,
        }
    }

    /// All reports.
    pub fn reports(&self) -> &[DetectorReport] {
        match self {
            DetectorResult::Finished { reports, .. } | DetectorResult::Crashed { reports, .. } => {
                reports
            }
            _ => &[],
        }
    }

    /// True when the run finished with zero error reports (the detector's
    /// "exits normally").
    pub fn is_clean(&self) -> bool {
        matches!(self, DetectorResult::Finished { reports, .. } if reports.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_messages_are_distinct_and_nonempty() {
        let kinds = [
            DetectorReportKind::InvalidRead,
            DetectorReportKind::InvalidWrite,
            DetectorReportKind::UseAfterFree,
            DetectorReportKind::InvalidFree,
            DetectorReportKind::UninitCondition,
            DetectorReportKind::UninitValueUse,
            DetectorReportKind::LeakDefinitelyLost,
            DetectorReportKind::StaticNullDeref,
            DetectorReportKind::StaticDivByZero,
            DetectorReportKind::StaticOutOfBounds,
            DetectorReportKind::StaticIntOverflow,
            DetectorReportKind::StaticShiftOob,
            DetectorReportKind::StaticUninitUse,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(!k.message().is_empty());
            assert!(seen.insert(k.message()), "duplicate message {}", k.message());
        }
    }

    #[test]
    fn memcheck_taxonomy_is_coarse() {
        // An invalid write can be the symptom of several UB kinds...
        assert!(DetectorReportKind::InvalidWrite.matches_ub(UbKind::BufOverflowPtr));
        assert!(DetectorReportKind::InvalidWrite.matches_ub(UbKind::UseAfterScope));
        // ...but never of pure value UB.
        assert!(!DetectorReportKind::InvalidWrite.matches_ub(UbKind::IntOverflow));
        assert!(!DetectorReportKind::LeakDefinitelyLost.matches_ub(UbKind::UseAfterFree));
    }

    #[test]
    fn static_taxonomy_is_exact() {
        assert!(DetectorReportKind::StaticDivByZero.matches_ub(UbKind::DivByZero));
        assert!(!DetectorReportKind::StaticDivByZero.matches_ub(UbKind::NullDeref));
    }

    #[test]
    fn result_accessors() {
        let clean = DetectorResult::Finished { status: 0, output: vec![], reports: vec![] };
        assert!(clean.is_clean());
        assert!(clean.report().is_none());

        let r = DetectorReport {
            kind: DetectorReportKind::InvalidRead,
            loc: ubfuzz_minic::Loc::new(3, 1),
        };
        let dirty = DetectorResult::Finished {
            status: 0,
            output: vec![],
            reports: vec![r.clone()],
        };
        assert!(!dirty.is_clean());
        assert_eq!(dirty.report(), Some(&r));
        assert_eq!(dirty.reports().len(), 1);
        assert!(r.to_string().contains("Invalid read"));
    }
}
