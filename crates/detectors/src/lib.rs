//! `ubfuzz-detectors` — UB detectors *other than* compiler sanitizers, for
//! the paper's generality study (§4.7).
//!
//! The UBfuzz paper focuses on sanitizers but explicitly argues that the same
//! framework — shadow-statement UB generation plus report-site mapping —
//! applies to other detector families:
//!
//! > *"Dynamic tools such as Dr. Memory and Valgrind can detect memory
//! > errors \[...\]. Static tools such as CppCheck and Infer can detect null
//! > pointer dereferences, integer overflows, etc. In principle, our
//! > approach can also be used to test these detectors."* (§4.7)
//!
//! This crate builds both families as systems under test:
//!
//! * [`memcheck`] — a Valgrind/Memcheck-style **dynamic binary
//!   instrumentation** (DBI) engine. Unlike sanitizers it never sees source
//!   or IR at compile time: it executes a fully compiled, *uninstrumented*
//!   [`ubfuzz_simcc::Module`] and maintains its own addressability (A-bit)
//!   and validity (V-bit) shadow state, heap-block registry, free
//!   quarantine, and leak checker. Its characteristic blind spots — no
//!   stack- or global-buffer-overflow detection — are modelled faithfully.
//! * [`staticcheck`] — a CppCheck/Infer-style **static analyzer** over
//!   [`ubfuzz_minic`] ASTs: flow-sensitive constant/null/interval/
//!   definedness dataflow that reports UB without running the program.
//! * [`defects`] — the injected-defect corpus for both tools, mirroring the
//!   role [`ubfuzz_simcc::defects`] plays for sanitizers: known,
//!   realistically-shaped false-negative bugs the campaign must rediscover.
//! * [`campaign`] — the UBfuzz loop retargeted at these detectors,
//!   including the report-site mapping oracle for the dynamic tool (the
//!   optimizer can still delete UB before Memcheck runs the binary, so the
//!   crash-site-mapping problem reappears unchanged).
//!
//! # Example
//!
//! ```
//! use ubfuzz_detectors::memcheck::{self, MemcheckConfig};
//! use ubfuzz_simcc::defects::DefectRegistry;
//! use ubfuzz_simcc::pipeline::{compile, CompileConfig};
//! use ubfuzz_simcc::target::{OptLevel, Vendor};
//!
//! // Heap use-after-free: invisible to the compiler, caught by the DBI tool.
//! let p = ubfuzz_minic::parse(
//!     "int main(void) { int *p = (int*)malloc(8); *p = 1; free(p); return *p; }",
//! ).unwrap();
//! let reg = DefectRegistry::pristine();
//! let module = compile(
//!     &p,
//!     &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &reg),
//! ).unwrap();
//! let run = memcheck::run(&module, &MemcheckConfig::default());
//! assert!(run.result.report().is_some());
//! ```

pub mod campaign;
pub mod defects;
pub mod memcheck;
pub mod report;
pub mod staticcheck;

pub use campaign::{
    run_memcheck_campaign, run_static_campaign, DetectorCampaignConfig, DetectorCampaignStats,
    DetectorFoundBug,
};
pub use defects::{DetectorDefect, DetectorDefectRegistry, DetectorTool};
pub use memcheck::{MemcheckConfig, MemcheckRun};
pub use report::{DetectorReport, DetectorReportKind, DetectorResult};
pub use staticcheck::{analyze, StaticConfig, StaticFinding};
