//! A CppCheck/Infer-style static analyzer for the C subset.
//!
//! The second detector family of the paper's generality discussion (§4.7):
//! a tool that reports UB *without running the program*, from a
//! flow-sensitive abstract interpretation of the AST. The abstract domain
//! is deliberately the one those tools actually use — per-variable constant
//! intervals, pointer null-ness, and definite-uninitialized facts — and the
//! reporting policy is "definite errors on some syntactic path", which is
//! why static tools have both false positives (a reported path may be
//! dynamically dead) and false negatives (facts are lost at joins and
//! loops).
//!
//! Detected classes (the §4.7 list): null pointer dereference, division by
//! zero, out-of-bounds array access, signed integer overflow, shift out of
//! range, use of uninitialized variables.

use std::collections::{HashMap, HashSet};
use ubfuzz_minic::ast::*;
use ubfuzz_minic::typeck::{typecheck, TypeMap};
use ubfuzz_minic::types::{IntType, Type};
use ubfuzz_minic::{Loc, Program, UbKind};

use crate::defects::DetectorDefectRegistry;
use crate::report::{DetectorReport, DetectorReportKind};

/// Analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct StaticConfig {
    /// The defect world (usually [`DetectorDefectRegistry::full`]).
    pub registry: DetectorDefectRegistry,
}

/// The result of analyzing one program.
#[derive(Debug, Clone)]
pub struct StaticFinding {
    /// Findings, in source order of discovery, deduplicated by
    /// `(kind, location)`.
    pub findings: Vec<DetectorReport>,
    /// Ground-truth defect applications (attribution only).
    pub applied_defects: Vec<(&'static str, Loc)>,
}

impl StaticFinding {
    /// True when any finding plausibly detects `kind`.
    pub fn detects(&self, kind: UbKind) -> bool {
        self.findings.iter().any(|f| f.kind.matches_ub(kind))
    }
}

/// The UB kinds this analyzer claims to detect (its product documentation,
/// the analogue of Table 2 for the static tool).
pub fn static_supports(kind: UbKind) -> bool {
    matches!(
        kind,
        UbKind::NullDeref
            | UbKind::DivByZero
            | UbKind::BufOverflowArray
            | UbKind::IntOverflow
            | UbKind::ShiftOverflow
            | UbKind::UninitUse
    )
}

/// Analyzes `main` of `program` (intraprocedural, like the fast default
/// modes of the real tools).
pub fn analyze(program: &Program, cfg: &StaticConfig) -> StaticFinding {
    let Ok(tmap) = typecheck(program) else {
        return StaticFinding { findings: Vec::new(), applied_defects: Vec::new() };
    };
    let mut a = Analyzer {
        tmap: &tmap,
        cfg,
        findings: Vec::new(),
        seen: HashSet::new(),
        applied: Vec::new(),
        addr_taken: HashSet::new(),
    };
    // Globals are initialized (zero or explicitly); model their declared
    // constants so `int z = 0; ... x / z` is caught across the boundary.
    let mut state = State::default();
    for g in &program.globals {
        state.vars.insert(g.name.clone(), a.global_abs(g));
    }
    if let Some(main) = program.function("main") {
        a.collect_addr_taken(&main.body);
        a.exec_block(&main.body, &mut state, true);
    }
    StaticFinding { findings: a.findings, applied_defects: a.applied }
}

/// Abstract value of one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abs {
    /// Integer in `[lo, hi]`.
    Int(i128, i128),
    /// Pointer known to be null.
    Null,
    /// Pointer known to be valid (e.g. `&x`, `malloc` in this world).
    NonNull,
    /// Declared, never assigned.
    Uninit,
    /// Anything.
    Any,
}

impl Abs {
    fn constant(v: i128) -> Abs {
        Abs::Int(v, v)
    }

    fn as_const(self) -> Option<i128> {
        match self {
            Abs::Int(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn join(self, other: Abs) -> Abs {
        match (self, other) {
            (a, b) if a == b => a,
            (Abs::Int(l1, h1), Abs::Int(l2, h2)) => Abs::Int(l1.min(l2), h1.max(h2)),
            (Abs::Null | Abs::NonNull, Abs::Null | Abs::NonNull) => Abs::Any,
            // A maybe-uninitialized value is not *definitely* uninitialized:
            // the definite-error policy drops the fact at the join.
            _ => Abs::Any,
        }
    }
}

/// Per-program-point variable state.
#[derive(Debug, Clone, Default, PartialEq)]
struct State {
    vars: HashMap<String, Abs>,
}

impl State {
    fn join_with(&mut self, other: &State) {
        let keys: Vec<String> = self.vars.keys().chain(other.vars.keys()).cloned().collect();
        for k in keys {
            let a = self.vars.get(&k).copied().unwrap_or(Abs::Any);
            let b = other.vars.get(&k).copied().unwrap_or(Abs::Any);
            self.vars.insert(k, a.join(b));
        }
    }

    fn havoc_assigned(&mut self, assigned: &HashSet<String>, widen_all_lower: bool) {
        for (name, v) in self.vars.iter_mut() {
            if assigned.contains(name) {
                *v = Abs::Any;
            } else if widen_all_lower {
                // static-d03: widening is (wrongly) applied to every integer
                // variable and clamps the lower bound at 0.
                if let Abs::Int(_, hi) = *v {
                    *v = Abs::Int(0, (i128::MAX / 4).min(hi.max(0)));
                }
            }
        }
    }
}

struct Analyzer<'p> {
    tmap: &'p TypeMap,
    cfg: &'p StaticConfig,
    findings: Vec<DetectorReport>,
    seen: HashSet<(DetectorReportKind, Loc)>,
    applied: Vec<(&'static str, Loc)>,
    addr_taken: HashSet<String>,
}

impl<'p> Analyzer<'p> {
    fn report(&mut self, kind: DetectorReportKind, loc: Loc) {
        if self.seen.insert((kind, loc)) {
            self.findings.push(DetectorReport { kind, loc });
        }
    }

    fn defect(&mut self, id: &'static str, loc: Loc) -> bool {
        if self.cfg.registry.active(id) {
            self.applied.push((id, loc));
            true
        } else {
            false
        }
    }

    fn global_abs(&self, d: &Decl) -> Abs {
        match &d.ty {
            Type::Ptr(_) => match &d.init {
                None => Abs::Null, // zero-initialized pointer
                Some(Init::Expr(e)) => match &e.kind {
                    ExprKind::IntLit(0, _) => Abs::Null,
                    ExprKind::Cast(_, inner)
                        if matches!(inner.kind, ExprKind::IntLit(0, _)) =>
                    {
                        Abs::Null
                    }
                    ExprKind::AddrOf(_) => Abs::NonNull,
                    _ => Abs::Any,
                },
                _ => Abs::Any,
            },
            _ if d.ty.is_int() => match &d.init {
                None => Abs::constant(0),
                Some(Init::Expr(e)) =>

                    match &e.kind {
                        ExprKind::IntLit(v, _) => Abs::constant(*v),
                        _ => Abs::Any,
                    },
                _ => Abs::Any,
            },
            _ => Abs::Any,
        }
    }

    fn collect_addr_taken(&mut self, b: &Block) {
        for s in &b.stmts {
            self.collect_addr_taken_stmt(s);
        }
    }

    fn collect_addr_taken_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    self.collect_addr_taken_init(init);
                }
            }
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => self.collect_addr_taken_expr(e),
            StmtKind::If(c, t, f) => {
                self.collect_addr_taken_expr(c);
                self.collect_addr_taken(t);
                if let Some(f) = f {
                    self.collect_addr_taken(f);
                }
            }
            StmtKind::While(c, b) => {
                self.collect_addr_taken_expr(c);
                self.collect_addr_taken(b);
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.collect_addr_taken_stmt(i);
                }
                if let Some(c) = cond {
                    self.collect_addr_taken_expr(c);
                }
                if let Some(st) = step {
                    self.collect_addr_taken_expr(st);
                }
                self.collect_addr_taken(body);
            }
            StmtKind::Block(b) => self.collect_addr_taken(b),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    fn collect_addr_taken_init(&mut self, init: &Init) {
        match init {
            Init::Expr(e) => self.collect_addr_taken_expr(e),
            Init::List(items) => {
                for it in items {
                    self.collect_addr_taken_init(it);
                }
            }
        }
    }

    fn collect_addr_taken_expr(&mut self, e: &Expr) {
        if let ExprKind::AddrOf(inner) = &e.kind {
            if let ExprKind::Var(name) = &inner.kind {
                self.addr_taken.insert(name.clone());
            }
        }
        match &e.kind {
            ExprKind::IntLit(..) | ExprKind::Var(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::AddrOf(a)
            | ExprKind::Deref(a)
            | ExprKind::Cast(_, a)
            | ExprKind::PreInc(a)
            | ExprKind::PreDec(a)
            | ExprKind::Member(a, _)
            | ExprKind::Arrow(a, _) => self.collect_addr_taken_expr(a),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::CompoundAssign(_, a, b)
            | ExprKind::Index(a, b) => {
                self.collect_addr_taken_expr(a);
                self.collect_addr_taken_expr(b);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    self.collect_addr_taken_expr(a);
                }
            }
            ExprKind::Cond(c, t, f) => {
                self.collect_addr_taken_expr(c);
                self.collect_addr_taken_expr(t);
                self.collect_addr_taken_expr(f);
            }
        }
    }

    /// Statements assigned anywhere in a block (for loop havoc).
    fn assigned_vars(b: &Block, out: &mut HashSet<String>) {
        for s in &b.stmts {
            Self::assigned_vars_stmt(s, out);
        }
    }

    fn assigned_vars_stmt(s: &Stmt, out: &mut HashSet<String>) {
        match &s.kind {
            StmtKind::Decl(d) => {
                out.insert(d.name.clone());
            }
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => Self::assigned_vars_expr(e, out),
            StmtKind::If(c, t, f) => {
                Self::assigned_vars_expr(c, out);
                Self::assigned_vars(t, out);
                if let Some(f) = f {
                    Self::assigned_vars(f, out);
                }
            }
            StmtKind::While(c, b) => {
                Self::assigned_vars_expr(c, out);
                Self::assigned_vars(b, out);
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(i) = init {
                    Self::assigned_vars_stmt(i, out);
                }
                if let Some(c) = cond {
                    Self::assigned_vars_expr(c, out);
                }
                if let Some(st) = step {
                    Self::assigned_vars_expr(st, out);
                }
                Self::assigned_vars(body, out);
            }
            StmtKind::Block(b) => Self::assigned_vars(b, out),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    fn assigned_vars_expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::Assign(l, r) | ExprKind::CompoundAssign(_, l, r) => {
                if let ExprKind::Var(n) = &l.kind {
                    out.insert(n.clone());
                }
                Self::assigned_vars_expr(l, out);
                Self::assigned_vars_expr(r, out);
            }
            ExprKind::PreInc(l) | ExprKind::PreDec(l) => {
                if let ExprKind::Var(n) = &l.kind {
                    out.insert(n.clone());
                }
                Self::assigned_vars_expr(l, out);
            }
            ExprKind::IntLit(..) | ExprKind::Var(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::AddrOf(a)
            | ExprKind::Deref(a)
            | ExprKind::Cast(_, a)
            | ExprKind::Member(a, _)
            | ExprKind::Arrow(a, _) => Self::assigned_vars_expr(a, out),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                Self::assigned_vars_expr(a, out);
                Self::assigned_vars_expr(b, out);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    Self::assigned_vars_expr(a, out);
                }
            }
            ExprKind::Cond(c, t, f) => {
                Self::assigned_vars_expr(c, out);
                Self::assigned_vars_expr(t, out);
                Self::assigned_vars_expr(f, out);
            }
        }
    }

    fn exec_block(&mut self, b: &Block, state: &mut State, reporting: bool) {
        for s in &b.stmts {
            self.exec_stmt(s, state, reporting);
        }
    }

    fn exec_stmt(&mut self, s: &Stmt, state: &mut State, reporting: bool) {
        match &s.kind {
            StmtKind::Decl(d) => {
                let abs = match (&d.init, &d.ty) {
                    (None, Type::Array(..)) | (None, Type::Struct(_)) => Abs::Any,
                    (None, _) => Abs::Uninit,
                    (Some(Init::Expr(e)), _) => self.eval(e, state, reporting),
                    (Some(Init::List(items)), _) => {
                        for it in items {
                            self.eval_init(it, state, reporting);
                        }
                        Abs::Any
                    }
                };
                state.vars.insert(d.name.clone(), abs);
            }
            StmtKind::Expr(e) => {
                self.eval(e, state, reporting);
            }
            StmtKind::If(c, t, f) => {
                let cv = self.eval(c, state, reporting);
                match cv.as_const() {
                    Some(0) => {
                        if let Some(f) = f {
                            self.exec_block(f, state, reporting);
                        }
                    }
                    Some(_) => self.exec_block(t, state, reporting),
                    None => {
                        let mut t_state = state.clone();
                        self.exec_block(t, &mut t_state, reporting);
                        if let Some(f) = f {
                            self.exec_block(f, state, reporting);
                        }
                        state.join_with(&t_state);
                    }
                }
            }
            StmtKind::While(c, body) => {
                self.exec_loop(Some(c), None, body, state, reporting);
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.exec_stmt(i, state, reporting);
                }
                self.exec_loop(cond.as_ref(), step.as_ref(), body, state, reporting);
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.eval(e, state, reporting);
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.exec_block(b, state, reporting),
        }
    }

    fn exec_loop(
        &mut self,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
        state: &mut State,
        reporting: bool,
    ) {
        if let Some(c) = cond {
            let cv = self.eval(c, state, reporting);
            if cv.as_const() == Some(0) {
                return; // loop never entered; facts survive
            }
        }
        // One reporting pass through the body (errors on the first
        // iteration are definite), then havoc everything the loop assigns.
        let mut body_state = state.clone();
        self.exec_block(body, &mut body_state, reporting);
        if let Some(st) = step {
            self.eval(st, &mut body_state, false);
        }
        let mut assigned = HashSet::new();
        Self::assigned_vars(body, &mut assigned);
        if let Some(st) = step {
            Self::assigned_vars_expr(st, &mut assigned);
        }
        state.join_with(&body_state);
        let loc = body.stmts.first().map_or(Loc::UNKNOWN, |s| s.loc);
        let widen_all = !assigned.is_empty() && self.defect("static-d03", loc);
        state.havoc_assigned(&assigned, widen_all);
    }

    fn eval_init(&mut self, init: &Init, state: &mut State, reporting: bool) {
        match init {
            Init::Expr(e) => {
                self.eval(e, state, reporting);
            }
            Init::List(items) => {
                for it in items {
                    self.eval_init(it, state, reporting);
                }
            }
        }
    }

    /// The type of an expression node, if the checker recorded one.
    fn ty(&self, e: &Expr) -> Option<&Type> {
        self.tmap.get(&e.id)
    }

    fn int_ty(&self, e: &Expr) -> IntType {
        self.ty(e).and_then(|t| t.as_int()).unwrap_or(IntType::INT)
    }

    /// Abstractly evaluates `e`, reporting definite errors when `reporting`.
    fn eval(&mut self, e: &Expr, state: &mut State, reporting: bool) -> Abs {
        match &e.kind {
            ExprKind::IntLit(v, _) => Abs::constant(*v),
            ExprKind::Var(name) => {
                let abs = state.vars.get(name).copied().unwrap_or(Abs::Any);
                if abs == Abs::Uninit && reporting {
                    // static-d01: &x anywhere in the function suppresses the
                    // definitely-uninitialized fact.
                    if self.addr_taken.contains(name)
                        && self.defect("static-d01", e.loc) {
                            return Abs::Any;
                        }
                    self.report(DetectorReportKind::StaticUninitUse, e.loc);
                }
                abs
            }
            ExprKind::Unary(op, a) => {
                let va = self.eval(a, state, reporting);
                match (op, va) {
                    (UnOp::Neg, Abs::Int(lo, hi)) => {
                        let ty = self.int_ty(e);
                        if reporting
                            && lo == hi
                            && ty.signed
                            && lo == ty.min_value()
                        {
                            self.report(DetectorReportKind::StaticIntOverflow, e.loc);
                        }
                        Abs::Int(hi.saturating_neg(), lo.saturating_neg())
                    }
                    (UnOp::Not, Abs::Int(lo, hi)) => {
                        if lo == hi {
                            Abs::constant(i128::from(lo == 0))
                        } else {
                            Abs::Int(0, 1)
                        }
                    }
                    _ => Abs::Any,
                }
            }
            ExprKind::Binary(op, a, b) => self.eval_binary(e, *op, a, b, state, reporting),
            ExprKind::Assign(l, r) => {
                let rv = self.eval(r, state, reporting);
                self.eval_lvalue_effects(l, state, reporting);
                if let ExprKind::Var(n) = &l.kind {
                    state.vars.insert(n.clone(), rv);
                } else {
                    // A store through memory may alias any address-taken var.
                    self.havoc_addr_taken(state);
                }
                rv
            }
            ExprKind::CompoundAssign(op, l, r) => {
                let lv = self.eval(l, state, reporting);
                let rv = self.eval(r, state, reporting);
                let out = self.eval_int_op(e, *op, lv, rv, reporting);
                if let ExprKind::Var(n) = &l.kind {
                    state.vars.insert(n.clone(), out);
                } else {
                    self.havoc_addr_taken(state);
                }
                out
            }
            ExprKind::PreInc(l) | ExprKind::PreDec(l) => {
                let inc = matches!(e.kind, ExprKind::PreInc(_));
                let lv = self.eval(l, state, reporting);
                let one = Abs::constant(1);
                let op = if inc { BinOp::Add } else { BinOp::Sub };
                let out = self.eval_int_op(e, op, lv, one, reporting);
                if let ExprKind::Var(n) = &l.kind {
                    state.vars.insert(n.clone(), out);
                } else {
                    self.havoc_addr_taken(state);
                }
                out
            }
            ExprKind::Index(base, idx) => {
                let iv = self.eval(idx, state, reporting);
                self.eval(base, state, reporting);
                if reporting {
                    self.check_index(base, idx, iv);
                }
                Abs::Any
            }
            ExprKind::Member(a, _) => {
                self.eval(a, state, reporting);
                Abs::Any
            }
            ExprKind::Arrow(p, _) | ExprKind::Deref(p) => {
                let pv = self.eval(p, state, reporting);
                if reporting && pv == Abs::Null {
                    self.report(DetectorReportKind::StaticNullDeref, e.loc);
                }
                Abs::Any
            }
            ExprKind::AddrOf(inner) => {
                // &lvalue evaluates the lvalue's subexpressions but not its
                // value; the result is a valid pointer.
                self.eval_lvalue_effects(inner, state, reporting);
                Abs::NonNull
            }
            ExprKind::Cast(to, a) => {
                let va = self.eval(a, state, reporting);
                match (to, va) {
                    (Type::Ptr(_), Abs::Int(0, 0)) => Abs::Null,
                    (Type::Ptr(_), v @ (Abs::Null | Abs::NonNull)) => v,
                    (Type::Ptr(_), _) => Abs::Any,
                    (t, Abs::Int(lo, hi)) if t.is_int() => {
                        let ity = t.as_int().expect("int type");
                        if ity.contains(lo) && ity.contains(hi) {
                            Abs::Int(lo, hi)
                        } else {
                            Abs::Int(ity.min_value(), ity.max_value())
                        }
                    }
                    _ => Abs::Any,
                }
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.eval(a, state, reporting);
                }
                match name.as_str() {
                    "malloc" => Abs::NonNull,
                    "free" | "print_value" => Abs::Any,
                    _ => {
                        // An unknown callee may write through any pointer it
                        // can reach.
                        self.havoc_addr_taken(state);
                        Abs::Any
                    }
                }
            }
            ExprKind::Cond(c, t, f) => {
                let cv = self.eval(c, state, reporting);
                match cv.as_const() {
                    Some(0) => self.eval(f, state, reporting),
                    Some(_) => self.eval(t, state, reporting),
                    None => {
                        let mut ts = state.clone();
                        let tv = self.eval(t, &mut ts, reporting);
                        let fv = self.eval(f, state, reporting);
                        state.join_with(&ts);
                        tv.join(fv)
                    }
                }
            }
        }
    }

    /// Evaluates an lvalue for its side conditions (index/deref checks)
    /// without treating it as a use of the variable's *value*.
    fn eval_lvalue_effects(&mut self, l: &Expr, state: &mut State, reporting: bool) {
        match &l.kind {
            ExprKind::Var(_) => {}
            ExprKind::Index(base, idx) => {
                let iv = self.eval(idx, state, reporting);
                self.eval_lvalue_effects(base, state, reporting);
                if reporting {
                    self.check_index(base, idx, iv);
                }
            }
            ExprKind::Member(a, _) => self.eval_lvalue_effects(a, state, reporting),
            ExprKind::Arrow(p, _) | ExprKind::Deref(p) => {
                let pv = self.eval(p, state, reporting);
                if reporting && pv == Abs::Null {
                    self.report(DetectorReportKind::StaticNullDeref, l.loc);
                }
            }
            _ => {
                self.eval(l, state, reporting);
            }
        }
    }

    fn havoc_addr_taken(&mut self, state: &mut State) {
        let names: Vec<String> = self
            .addr_taken
            .iter()
            .filter(|n| state.vars.contains_key(*n))
            .cloned()
            .collect();
        for n in names {
            state.vars.insert(n, Abs::Any);
        }
    }

    fn check_index(&mut self, base: &Expr, idx: &Expr, iv: Abs) {
        let Some(Type::Array(_, n)) = self.ty(base) else { return };
        let n = *n as i128;
        if let Abs::Int(lo, hi) = iv {
            // Definite error only: the whole interval is out of bounds.
            if hi < 0 || lo >= n {
                self.report(DetectorReportKind::StaticOutOfBounds, idx.loc);
            }
        }
    }

    fn eval_binary(
        &mut self,
        e: &Expr,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        state: &mut State,
        reporting: bool,
    ) -> Abs {
        match op {
            BinOp::LogAnd | BinOp::LogOr => {
                let va = self.eval(a, state, reporting);
                let short = match (op, va.as_const()) {
                    (BinOp::LogAnd, Some(0)) => Some(Abs::constant(0)),
                    (BinOp::LogOr, Some(v)) if v != 0 => Some(Abs::constant(1)),
                    _ => None,
                };
                if let Some(v) = short {
                    return v; // RHS definitely not evaluated
                }
                let definite = matches!(
                    (op, va.as_const()),
                    (BinOp::LogAnd, Some(v)) if v != 0
                ) || matches!(
                    (op, va.as_const()),
                    (BinOp::LogOr, Some(0))
                );
                // static-d02: the RHS of a short-circuit operator is never
                // visited, even when the LHS proves it executes.
                if self.defect("static-d02", e.loc) {
                    return Abs::Int(0, 1);
                }
                let vb = self.eval(b, state, reporting && definite);
                match (va.as_const(), vb.as_const()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            BinOp::LogAnd => (x != 0 && y != 0) as i128,
                            _ => (x != 0 || y != 0) as i128,
                        };
                        Abs::constant(r)
                    }
                    _ => Abs::Int(0, 1),
                }
            }
            _ => {
                let va = self.eval(a, state, reporting);
                let vb = self.eval(b, state, reporting);
                self.eval_int_op(e, op, va, vb, reporting)
            }
        }
    }

    /// Integer transfer function with definite-error checks.
    fn eval_int_op(&mut self, e: &Expr, op: BinOp, va: Abs, vb: Abs, reporting: bool) -> Abs {
        let ty = self.int_ty(e);
        let (ca, cb) = (va.as_const(), vb.as_const());
        match op {
            BinOp::Div | BinOp::Rem => {
                if reporting && cb == Some(0) {
                    self.report(DetectorReportKind::StaticDivByZero, e.loc);
                }
                if reporting
                    && ty.signed
                    && ca == Some(ty.min_value())
                    && cb == Some(-1)
                {
                    self.report(DetectorReportKind::StaticIntOverflow, e.loc);
                }
                match (ca, cb) {
                    (Some(x), Some(y)) if y != 0 && !(x == ty.min_value() && y == -1) => {
                        let v = if op == BinOp::Div { x / y } else { x % y };
                        Abs::constant(v)
                    }
                    _ => Abs::Any,
                }
            }
            BinOp::Shl | BinOp::Shr => {
                let bits = i128::from(ty.promoted().width.bits());
                if reporting {
                    if let Some(amt) = cb {
                        if amt < 0 || amt >= bits {
                            self.report(DetectorReportKind::StaticShiftOob, e.loc);
                        }
                    }
                }
                match (ca, cb) {
                    (Some(x), Some(y)) if (0..bits).contains(&y) => {
                        let v = if op == BinOp::Shl { x << y } else { x >> y };
                        if ty.contains(v) {
                            Abs::constant(v)
                        } else {
                            Abs::Any
                        }
                    }
                    _ => Abs::Any,
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let exact = match (op, ca, cb) {
                    (BinOp::Add, Some(x), Some(y)) => Some(x + y),
                    (BinOp::Sub, Some(x), Some(y)) => Some(x - y),
                    (BinOp::Mul, Some(x), Some(y)) => x.checked_mul(y),
                    _ => None,
                };
                if let Some(v) = exact {
                    let promoted = ty.promoted();
                    if reporting && promoted.signed && !promoted.contains(v) {
                        self.report(DetectorReportKind::StaticIntOverflow, e.loc);
                    }
                    return if ty.contains(v) { Abs::constant(v) } else { Abs::Any };
                }
                match (va, vb) {
                    (Abs::Int(l1, h1), Abs::Int(l2, h2)) => {
                        let (lo, hi) = match op {
                            BinOp::Add => (l1.saturating_add(l2), h1.saturating_add(h2)),
                            BinOp::Sub => (l1.saturating_sub(h2), h1.saturating_sub(l2)),
                            _ => return Abs::Any,
                        };
                        Abs::Int(lo, hi)
                    }
                    _ => Abs::Any,
                }
            }
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => match (ca, cb) {
                (Some(x), Some(y)) => {
                    let v = match op {
                        BinOp::BitAnd => x & y,
                        BinOp::BitOr => x | y,
                        _ => x ^ y,
                    };
                    Abs::constant(v)
                }
                _ => Abs::Any,
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                match (ca, cb) {
                    (Some(x), Some(y)) => {
                        let v = match op {
                            BinOp::Lt => x < y,
                            BinOp::Le => x <= y,
                            BinOp::Gt => x > y,
                            BinOp::Ge => x >= y,
                            BinOp::Eq => x == y,
                            _ => x != y,
                        };
                        Abs::constant(i128::from(v))
                    }
                    _ => Abs::Int(0, 1),
                }
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled in eval_binary"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;

    fn findings(src: &str) -> Vec<DetectorReportKind> {
        let p = parse(src).unwrap();
        let cfg = StaticConfig { registry: DetectorDefectRegistry::pristine() };
        analyze(&p, &cfg).findings.iter().map(|f| f.kind).collect()
    }

    fn findings_with(src: &str, ids: &[&'static str]) -> Vec<DetectorReportKind> {
        let p = parse(src).unwrap();
        let cfg = StaticConfig { registry: DetectorDefectRegistry::with_only(ids) };
        analyze(&p, &cfg).findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_program_yields_nothing() {
        assert!(findings("int main(void) { int x = 1; return x + 1; }").is_empty());
    }

    #[test]
    fn constant_null_deref_found() {
        let f = findings("int main(void) { int *p = (int*)0; return *p; }");
        assert_eq!(f, vec![DetectorReportKind::StaticNullDeref]);
    }

    #[test]
    fn null_through_global_found() {
        let f = findings("int *p; int main(void) { return *p; }");
        assert_eq!(f, vec![DetectorReportKind::StaticNullDeref]);
    }

    #[test]
    fn constant_div_by_zero_found() {
        let f = findings("int main(void) { int z = 0; return 5 / z; }");
        assert_eq!(f, vec![DetectorReportKind::StaticDivByZero]);
    }

    #[test]
    fn constant_oob_index_found() {
        let f = findings("int main(void) { int a[3]; int i = 5; a[i] = 1; return 0; }");
        assert!(f.contains(&DetectorReportKind::StaticOutOfBounds), "{f:?}");
    }

    #[test]
    fn negative_index_found() {
        let f = findings("int main(void) { int a[3]; int i = 0 - 2; a[i] = 1; return 0; }");
        assert!(f.contains(&DetectorReportKind::StaticOutOfBounds), "{f:?}");
    }

    #[test]
    fn int_overflow_found() {
        let f = findings("int main(void) { int x = 2147483647; return x + 1; }");
        assert!(f.contains(&DetectorReportKind::StaticIntOverflow), "{f:?}");
    }

    #[test]
    fn shift_oob_found() {
        let f = findings("int main(void) { int x = 1; int s = 40; return x << s; }");
        assert!(f.contains(&DetectorReportKind::StaticShiftOob), "{f:?}");
    }

    #[test]
    fn uninit_use_found() {
        let f = findings("int main(void) { int x; if (x) { return 1; } return 0; }");
        assert!(f.contains(&DetectorReportKind::StaticUninitUse), "{f:?}");
    }

    #[test]
    fn joins_lose_uninit_facts() {
        // Maybe-initialized is not reported (definite-error policy). The
        // `opaque` call makes the branch condition genuinely unknown.
        let f = findings(
            "int opaque(int x) { return x + x; }
             int main(void) {
                int x;
                if (opaque(1)) { x = 1; }
                return x;
             }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_branch_facts_join() {
        // x is 1 or 3 after the if; neither side is out of bounds for a[4].
        let f = findings(
            "int opaque(int x) { return x + x; }
             int main(void) {
                int a[4];
                int x = 1;
                if (opaque(1)) { x = 3; }
                a[x] = 1;
                return a[1];
             }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn loop_havocs_assigned_vars_only() {
        // i is assigned in the loop (index fact lost); k is not (fact kept,
        // and k = 9 is out of bounds for a[4]).
        let f = findings(
            "int opaque(int x) { return x + x; }
             int main(void) {
                int a[4];
                int k = 9;
                for (int i = 0; i < opaque(2); i = i + 1) { a[1] = i; }
                a[k] = 2;
                return 0;
             }",
        );
        assert_eq!(f, vec![DetectorReportKind::StaticOutOfBounds]);
    }

    #[test]
    fn division_on_proven_path_of_shortcircuit_found() {
        let f = findings("int main(void) { int z = 0; int t = 1; return t && (5 / z); }");
        assert!(f.contains(&DetectorReportKind::StaticDivByZero), "{f:?}");
    }

    #[test]
    fn division_on_unproven_path_not_definite() {
        let f = findings(
            "int opaque(int x) { return x + x; }
             int main(void) { int z = 0; return opaque(1) && (5 / z); }",
        );
        assert!(f.is_empty(), "RHS may never execute: {f:?}");
    }

    #[test]
    fn defect_d01_suppresses_uninit_for_addr_taken() {
        let src = "
            int main(void) {
                int x;
                int *p = &x;
                print_value(*p);
                if (x) { return 1; }
                return 0;
            }";
        let clean = findings(src);
        assert!(clean.contains(&DetectorReportKind::StaticUninitUse), "{clean:?}");
        let buggy = findings_with(src, &["static-d01"]);
        assert!(!buggy.contains(&DetectorReportKind::StaticUninitUse), "{buggy:?}");
    }

    #[test]
    fn defect_d02_skips_shortcircuit_rhs() {
        let src = "int main(void) { int z = 0; int t = 1; return t && (5 / z); }";
        let buggy = findings_with(src, &["static-d02"]);
        assert!(!buggy.contains(&DetectorReportKind::StaticDivByZero), "{buggy:?}");
    }

    #[test]
    fn defect_d03_widening_drops_negative_facts() {
        let src = "
            int opaque(int x) { return x + x; }
            int main(void) {
                int a[4];
                int k = 0 - 2;
                for (int i = 0; i < opaque(2); i = i + 1) { a[1] = i; }
                a[k] = 2;
                return 0;
            }";
        let clean = findings(src);
        assert!(clean.contains(&DetectorReportKind::StaticOutOfBounds), "{clean:?}");
        let buggy = findings_with(src, &["static-d03"]);
        assert!(!buggy.contains(&DetectorReportKind::StaticOutOfBounds), "{buggy:?}");
    }

    #[test]
    fn supports_matrix() {
        assert!(static_supports(UbKind::NullDeref));
        assert!(static_supports(UbKind::DivByZero));
        assert!(!static_supports(UbKind::UseAfterFree));
        assert!(!static_supports(UbKind::UseAfterScope));
    }

    #[test]
    fn detects_maps_kind_through_taxonomy() {
        let p = parse("int main(void) { int *p = (int*)0; return *p; }").unwrap();
        let cfg = StaticConfig { registry: DetectorDefectRegistry::pristine() };
        let r = analyze(&p, &cfg);
        assert!(r.detects(UbKind::NullDeref));
        assert!(!r.detects(UbKind::DivByZero));
    }
}
