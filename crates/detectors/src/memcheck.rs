//! A Valgrind/Memcheck-style dynamic binary instrumentation engine.
//!
//! Memcheck differs from sanitizers in exactly the ways that matter for the
//! generality study (§4.7):
//!
//! * **No compiler cooperation.** The engine executes a fully compiled,
//!   *uninstrumented* [`Module`] — whatever the optimizer left of the
//!   program. The paper's core difficulty therefore reappears: the
//!   optimizer can delete UB before the tool ever runs, so differential
//!   results across optimization levels need the report-site mapping oracle.
//! * **Its own shadow state.** Per-byte *A-bits* (addressability) and
//!   *V-bits* (validity/definedness) are maintained by the tool, not by
//!   compiler-inserted checks.
//! * **Characteristic blind spots.** Stack and global buffer overflows are
//!   *not* detected (the whole frame and the bytes around globals are
//!   addressable, as on real hardware under Valgrind); lexical scopes are
//!   not tracked, so use-after-scope inside a live frame is silent. Heap
//!   errors — overflow into the red zone, use-after-free, invalid free,
//!   leaks — are the tool's home turf.
//!
//! Errors do not stop execution: Memcheck reports and continues, so one run
//! can yield several reports. Reports are deduplicated by `(kind, site)`
//! like the real tool's suppression of repeated contexts.

use std::collections::HashSet;
use ubfuzz_minic::Loc;
use ubfuzz_simcc::ir::{BinKind, Func, Instr, Module, Op, Operand, RegId, Term};
use ubfuzz_simcc::passes::{fold_bin, fold_un};
use ubfuzz_simvm::Trace;

use crate::defects::DetectorDefectRegistry;
use crate::report::{DetectorReport, DetectorReportKind, DetectorResult};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MemcheckConfig {
    /// Maximum executed instructions.
    pub step_limit: u64,
    /// The defect world (usually [`DetectorDefectRegistry::full`]).
    pub registry: DetectorDefectRegistry,
    /// Run the leak checker at exit.
    pub leak_check: bool,
}

impl Default for MemcheckConfig {
    fn default() -> MemcheckConfig {
        MemcheckConfig {
            step_limit: 4_000_000,
            registry: DetectorDefectRegistry::full(),
            leak_check: true,
        }
    }
}

/// Everything one Memcheck run produced.
#[derive(Debug, Clone)]
pub struct MemcheckRun {
    /// Termination state plus in-run error reports.
    pub result: DetectorResult,
    /// Leak-checker findings (separate from in-run errors, as in the real
    /// tool's end-of-run summary).
    pub leaks: Vec<DetectorReport>,
    /// Executed `(line, offset)` sites — the input to report-site mapping.
    pub trace: Trace,
    /// Ground-truth defect applications `(defect id, site)`. Attribution
    /// only; the campaign oracle never reads this.
    pub applied_defects: Vec<(&'static str, Loc)>,
}

/// Runs `module` under the Memcheck engine.
pub fn run(module: &Module, cfg: &MemcheckConfig) -> MemcheckRun {
    let mut engine = Engine::new(module, cfg);
    let result = engine.boot();
    let leaks = if cfg.leak_check { engine.leak_report() } else { Vec::new() };
    MemcheckRun {
        result,
        leaks,
        trace: std::mem::take(&mut engine.trace),
        applied_defects: std::mem::take(&mut engine.applied),
    }
}

const NULL_GUARD: usize = 4096;
const GAP: usize = 32;

/// Per-byte addressability state (the A-bit plus the freed distinction the
/// real tool keeps in its block registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abit {
    /// Not legally addressable.
    NoAccess,
    /// Legally addressable.
    Ok,
    /// Inside a block that has been `free`d.
    Freed,
}

struct HeapBlock {
    start: usize,
    size: usize,
    freed: bool,
    alloc_loc: Loc,
}

struct Frame {
    regs: Vec<i64>,
    /// V-bit per register: true = defined.
    vbit: Vec<bool>,
    slot_addr: Vec<usize>,
}

enum Stop {
    Crash(Loc),
    Timeout,
    Error(String),
}

struct Engine<'m> {
    m: &'m Module,
    cfg: &'m MemcheckConfig,
    mem: Vec<u8>,
    abit: Vec<Abit>,
    /// V-bit per byte: true = defined.
    vbit: Vec<bool>,
    global_addr: Vec<usize>,
    heap: Vec<HeapBlock>,
    output: Vec<i64>,
    reports: Vec<DetectorReport>,
    seen: HashSet<(DetectorReportKind, Loc)>,
    applied: Vec<(&'static str, Loc)>,
    trace: Trace,
    steps: u64,
    depth: usize,
}

impl<'m> Engine<'m> {
    fn new(m: &'m Module, cfg: &'m MemcheckConfig) -> Engine<'m> {
        Engine {
            m,
            cfg,
            mem: vec![0xBE; NULL_GUARD],
            abit: vec![Abit::NoAccess; NULL_GUARD],
            vbit: vec![false; NULL_GUARD],
            global_addr: Vec::new(),
            heap: Vec::new(),
            output: Vec::new(),
            reports: Vec::new(),
            seen: HashSet::new(),
            applied: Vec::new(),
            trace: Trace::default(),
            steps: 0,
            depth: 0,
        }
    }

    /// Appends a region of `size` bytes plus the inter-allocation gap.
    /// Returns the region start. `a`/`v` are the initial shadow states of
    /// the region proper; the gap's shadow is set by the caller.
    fn alloc_region(&mut self, size: usize, a: Abit, v: bool) -> usize {
        let start = self.mem.len();
        self.mem.resize(start + size + GAP, 0xBE);
        self.abit.resize(start + size, a);
        self.abit.resize(self.mem.len(), Abit::NoAccess);
        self.vbit.resize(start + size, v);
        self.vbit.resize(self.mem.len(), true);
        start
    }

    fn set_abit(&mut self, start: usize, len: usize, a: Abit) {
        let end = (start + len).min(self.abit.len());
        for b in &mut self.abit[start.min(end)..end] {
            *b = a;
        }
    }

    fn report(&mut self, kind: DetectorReportKind, loc: Loc) {
        if self.seen.insert((kind, loc)) {
            self.reports.push(DetectorReport { kind, loc });
        }
    }

    fn defect(&mut self, id: &'static str, loc: Loc) -> bool {
        if self.cfg.registry.active(id) {
            self.applied.push((id, loc));
            true
        } else {
            false
        }
    }

    fn boot(&mut self) -> DetectorResult {
        for g in &self.m.globals {
            // Globals and their surrounding gaps are plain static memory to
            // the tool: addressable and defined (the global-overflow blind
            // spot).
            let a = self.alloc_region(g.size as usize, Abit::Ok, true);
            self.set_abit(a + g.size as usize, GAP, Abit::Ok);
            self.global_addr.push(a);
            let init_len = g.init.len().min(g.size as usize);
            self.mem[a..a + init_len].copy_from_slice(&g.init[..init_len]);
            for b in &mut self.mem[a + init_len..a + g.size as usize] {
                *b = 0;
            }
        }
        for (gi, g) in self.m.globals.iter().enumerate() {
            for (off, target, addend) in &g.relocs {
                let v = (self.global_addr[*target] as i64 + addend) as u64;
                let at = self.global_addr[gi] + *off as usize;
                self.mem[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        let Some(main) = self.m.func("main") else {
            return DetectorResult::Error("no main".into());
        };
        match self.call(main, &[]) {
            Ok((status, _)) => DetectorResult::Finished {
                status,
                output: std::mem::take(&mut self.output),
                reports: std::mem::take(&mut self.reports),
            },
            Err(Stop::Crash(loc)) => {
                DetectorResult::Crashed { reports: std::mem::take(&mut self.reports), loc }
            }
            Err(Stop::Timeout) => DetectorResult::Timeout,
            Err(Stop::Error(e)) => DetectorResult::Error(e),
        }
    }

    fn leak_report(&self) -> Vec<DetectorReport> {
        self.heap
            .iter()
            .filter(|h| !h.freed)
            .map(|h| DetectorReport {
                kind: DetectorReportKind::LeakDefinitelyLost,
                loc: h.alloc_loc,
            })
            .collect()
    }

    fn call(&mut self, f: &'m Func, args: &[(i64, bool)]) -> Result<(i64, bool), Stop> {
        self.depth += 1;
        if self.depth > 64 {
            self.depth -= 1;
            return Err(Stop::Error("call depth exceeded".into()));
        }
        let mut frame = Frame {
            regs: vec![0; f.next_reg as usize],
            vbit: vec![true; f.next_reg as usize],
            slot_addr: Vec::with_capacity(f.slots.len()),
        };
        for (i, &(v, defined)) in args.iter().enumerate() {
            if let Some(&r) = f.params.get(i) {
                frame.regs[r as usize] = v;
                frame.vbit[r as usize] = defined;
            }
        }
        // The whole frame — slots *and* the gaps between them — becomes
        // addressable at once: the tool sees one stack adjustment, not
        // individual variables. Slot bytes start undefined.
        for s in &f.slots {
            let a = self.alloc_region(s.size as usize, Abit::Ok, false);
            self.set_abit(a + s.size as usize, GAP, Abit::Ok);
            frame.slot_addr.push(a);
        }
        let mut bb = 0usize;
        let result = loop {
            let block = &f.blocks[bb];
            let mut stop = None;
            for ins in &block.instrs {
                self.steps += 1;
                if self.steps > self.cfg.step_limit {
                    stop = Some(Stop::Timeout);
                    break;
                }
                if ins.loc.is_known() {
                    self.trace.executed.insert(ins.loc);
                    self.trace.last = ins.loc;
                }
                if let Err(e) = self.exec(&mut frame, ins) {
                    stop = Some(e);
                    break;
                }
            }
            if let Some(e) = stop {
                break Err(e);
            }
            match block.term.as_ref() {
                Some(Term::Jmp(t)) => bb = *t,
                Some(Term::Br { cond, then_bb, else_bb }) => {
                    let (v, defined) = self.value(&frame, *cond);
                    if !defined {
                        // "Conditional jump or move depends on uninitialised
                        // value(s)" — attributed to the last executed site.
                        self.report(DetectorReportKind::UninitCondition, self.trace.last);
                    }
                    bb = if v != 0 { *then_bb } else { *else_bb };
                }
                Some(Term::Ret(v)) => {
                    let rv = match v {
                        Some(o) => self.value(&frame, *o),
                        None => (0, true),
                    };
                    // Frame teardown: everything this frame made addressable
                    // goes back to no-access (use-after-return is caught).
                    for (s, &a) in f.slots.iter().zip(&frame.slot_addr) {
                        self.set_abit(a, s.size as usize + GAP, Abit::NoAccess);
                    }
                    break Ok(rv);
                }
                None => break Err(Stop::Error("missing terminator".into())),
            }
        };
        self.depth -= 1;
        result
    }

    fn value(&self, frame: &Frame, o: Operand) -> (i64, bool) {
        match o {
            Operand::Imm(v) => (v, true),
            Operand::Reg(r) => (frame.regs[r as usize], frame.vbit[r as usize]),
        }
    }

    fn set(&self, frame: &mut Frame, dst: Option<RegId>, v: i64, defined: bool) {
        if let Some(d) = dst {
            frame.regs[d as usize] = v;
            frame.vbit[d as usize] = defined;
        }
    }

    fn check_mapped(&self, addr: i64, size: usize, loc: Loc) -> Result<usize, Stop> {
        if addr < 0 || (addr as usize) + size > self.mem.len() {
            return Err(Stop::Crash(loc));
        }
        Ok(addr as usize)
    }

    /// The A-bit check on an access range. Returns the resolved base
    /// address; reports (but does not stop) on invalid or freed bytes.
    fn check_access(
        &mut self,
        addr: i64,
        size: usize,
        write: bool,
        loc: Loc,
    ) -> Result<usize, Stop> {
        if addr >= 0 && (addr as usize) < NULL_GUARD {
            // Dereferencing (near) null is an unmapped page: report, then
            // the process dies on the signal, as under the real tool.
            self.report(
                if write {
                    DetectorReportKind::InvalidWrite
                } else {
                    DetectorReportKind::InvalidRead
                },
                loc,
            );
            return Err(Stop::Crash(loc));
        }
        let a = self.check_mapped(addr, size, loc)?;
        // memcheck-d03: only the first byte's A-bit is consulted for
        // multi-byte accesses.
        let range = if size > 1 && self.defect("memcheck-d03", loc) { 1 } else { size };
        let mut invalid = false;
        let mut freed = false;
        for i in 0..range {
            match self.abit[a + i] {
                Abit::NoAccess => invalid = true,
                Abit::Freed => freed = true,
                Abit::Ok => {}
            }
        }
        if freed {
            self.report(DetectorReportKind::UseAfterFree, loc);
        } else if invalid {
            self.report(
                if write {
                    DetectorReportKind::InvalidWrite
                } else {
                    DetectorReportKind::InvalidRead
                },
                loc,
            );
        }
        Ok(a)
    }

    fn exec(&mut self, frame: &mut Frame, ins: &Instr) -> Result<(), Stop> {
        let loc = ins.loc;
        match &ins.op {
            Op::Const(v) => self.set(frame, ins.dst, *v, true),
            Op::Bin { op, a, b, ty } => {
                let (va, da) = self.value(frame, *a);
                let (vb, db) = self.value(frame, *b);
                let defined = da && db;
                let v = match op {
                    BinKind::Div | BinKind::Rem => {
                        if !db {
                            self.report(DetectorReportKind::UninitValueUse, loc);
                        }
                        let wb = ty.wrap(vb as i128);
                        if wb == 0 {
                            return Err(Stop::Crash(loc));
                        }
                        let wa = ty.wrap(va as i128);
                        if ty.signed && wa == ty.min_value() && wb == -1 {
                            return Err(Stop::Crash(loc));
                        }
                        fold_bin(*op, va, vb, *ty).expect("division handled")
                    }
                    BinKind::Shl | BinKind::Shr => {
                        let bits = ty.promoted().width.bits() as i64;
                        let masked = vb & (bits - 1);
                        fold_bin(*op, va, masked, *ty).expect("masked shift folds")
                    }
                    _ => fold_bin(*op, va, vb, *ty).expect("total op"),
                };
                self.set(frame, ins.dst, v, defined);
            }
            Op::Un { op, a, ty } => {
                let (va, da) = self.value(frame, *a);
                self.set(frame, ins.dst, fold_un(*op, va, *ty), da);
            }
            Op::Cast { a, to } => {
                let (va, da) = self.value(frame, *a);
                self.set(frame, ins.dst, to.wrap(va as i128) as i64, da);
            }
            Op::AddrLocal(s) => self.set(frame, ins.dst, frame.slot_addr[*s] as i64, true),
            Op::AddrGlobal(g) => self.set(frame, ins.dst, self.global_addr[*g] as i64, true),
            Op::PtrAdd { base, offset, scale } => {
                let (vb, db) = self.value(frame, *base);
                let (vo, d2) = self.value(frame, *offset);
                self.set(frame, ins.dst, vb.wrapping_add(vo.wrapping_mul(*scale)), db && d2);
            }
            Op::Load { addr, size, signed } => {
                let (va, _) = self.value(frame, *addr);
                let a = self.check_access(va, *size as usize, false, loc)?;
                let mut raw: u64 = 0;
                for (i, b) in self.mem[a..a + *size as usize].iter().enumerate() {
                    raw |= (*b as u64) << (8 * i);
                }
                let v = if *signed {
                    let shift = 64 - 8 * (*size as u32);
                    ((raw << shift) as i64) >> shift
                } else {
                    raw as i64
                };
                let src = &self.vbit[a..a + *size as usize];
                // memcheck-d01: 8-byte loads collapse partial definedness to
                // "fully defined" when any byte is defined.
                let defined = if *size == 8 && src.iter().any(|d| *d) && src.iter().any(|d| !*d)
                {
                    self.defect("memcheck-d01", loc)
                } else {
                    src.iter().all(|d| *d)
                };
                self.set(frame, ins.dst, v, defined);
            }
            Op::Store { addr, val, size } => {
                let (va, _) = self.value(frame, *addr);
                let (vv, dv) = self.value(frame, *val);
                let a = self.check_access(va, *size as usize, true, loc)?;
                let bytes = (vv as u64).to_le_bytes();
                self.mem[a..a + *size as usize].copy_from_slice(&bytes[..*size as usize]);
                for d in &mut self.vbit[a..a + *size as usize] {
                    *d = dv;
                }
            }
            Op::MemCopy { dst, src, len } => {
                let (vd, _) = self.value(frame, *dst);
                let (vs, _) = self.value(frame, *src);
                let s = self.check_access(vs, *len as usize, false, loc)?;
                let d = self.check_access(vd, *len as usize, true, loc)?;
                let bytes: Vec<u8> = self.mem[s..s + *len as usize].to_vec();
                self.mem[d..d + *len as usize].copy_from_slice(&bytes);
                // memcheck-d04: aggregate copies mark the destination defined
                // instead of copying V-bits.
                if self.defect("memcheck-d04", loc) {
                    for b in &mut self.vbit[d..d + *len as usize] {
                        *b = true;
                    }
                } else {
                    let sh: Vec<bool> = self.vbit[s..s + *len as usize].to_vec();
                    self.vbit[d..d + *len as usize].copy_from_slice(&sh);
                }
            }
            Op::Call { callee, args } => {
                let vals: Vec<(i64, bool)> =
                    args.iter().map(|x| self.value(frame, *x)).collect();
                let cf = self
                    .m
                    .func(callee)
                    .ok_or_else(|| Stop::Error(format!("unknown function {callee}")))?;
                let (v, d) = self.call(cf, &vals)?;
                self.set(frame, ins.dst, v, d);
            }
            Op::Malloc { size } => {
                let (vs, _) = self.value(frame, *size);
                let size = vs.clamp(0, 1 << 20) as usize;
                let start = self.alloc_region(size, Abit::Ok, false);
                self.heap.push(HeapBlock { start, size, freed: false, alloc_loc: loc });
                self.set(frame, ins.dst, start as i64, true);
            }
            Op::Free { addr } => {
                let (va, _) = self.value(frame, *addr);
                if va == 0 {
                    return Ok(());
                }
                let Some(idx) = self.heap.iter().position(|h| h.start == va as usize) else {
                    self.report(DetectorReportKind::InvalidFree, loc);
                    return Ok(());
                };
                if self.heap[idx].freed {
                    self.report(DetectorReportKind::InvalidFree, loc);
                    return Ok(());
                }
                self.heap[idx].freed = true;
                let (start, size) = (self.heap[idx].start, self.heap[idx].size);
                self.set_abit(start, size, Abit::Freed);
                // memcheck-d02: a one-deep quarantine — this free recycles
                // the shadow of the previously freed block, whose stale uses
                // then go unreported.
                if let Some(prev) = self
                    .heap
                    .iter()
                    .rposition(|h| h.freed && h.start != start)
                {
                    if self.defect("memcheck-d02", loc) {
                        let (ps, pz) = (self.heap[prev].start, self.heap[prev].size);
                        self.set_abit(ps, pz, Abit::Ok);
                        for d in &mut self.vbit[ps..ps + pz] {
                            *d = true;
                        }
                    }
                }
            }
            Op::Print { val } => {
                let (v, d) = self.value(frame, *val);
                if !d {
                    self.report(DetectorReportKind::UninitValueUse, loc);
                }
                self.output.push(v);
            }
            // Lexical scope markers are invisible to a binary-level tool.
            Op::LifetimeStart(_) | Op::LifetimeEnd(_) => {}
            // Sanitizer instructions only appear in instrumented modules,
            // which the campaign never hands to Memcheck; treat as no-ops.
            op if op.is_sanitizer_op() => {}
            other => return Err(Stop::Error(format!("unhandled op {other:?}"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};
    use ubfuzz_simcc::target::{OptLevel, Vendor};

    fn module_at(src: &str, opt: OptLevel) -> Module {
        let p = parse(src).unwrap();
        let reg = DefectRegistry::pristine();
        compile(&p, &CompileConfig::dev(Vendor::Gcc, opt, None, &reg)).unwrap()
    }

    fn run_pristine(src: &str, opt: OptLevel) -> MemcheckRun {
        let cfg = MemcheckConfig {
            registry: DetectorDefectRegistry::pristine(),
            ..MemcheckConfig::default()
        };
        run(&module_at(src, opt), &cfg)
    }

    #[test]
    fn clean_program_has_no_reports() {
        let r = run_pristine(
            "int main(void) { int x = 3; print_value(x + 4); return 0; }",
            OptLevel::O0,
        );
        assert!(r.result.is_clean(), "{:?}", r.result);
        assert!(r.leaks.is_empty());
        match r.result {
            DetectorResult::Finished { output, .. } => assert_eq!(output, vec![7]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heap_overflow_is_reported() {
        let r = run_pristine(
            "int main(void) { int *p = (int*)malloc(8); p[2] = 5; free(p); return 0; }",
            OptLevel::O0,
        );
        assert_eq!(r.result.report().map(|x| x.kind), Some(DetectorReportKind::InvalidWrite));
    }

    #[test]
    fn use_after_free_is_reported() {
        let r = run_pristine(
            "int main(void) { int *p = (int*)malloc(8); *p = 1; free(p); return *p; }",
            OptLevel::O0,
        );
        assert_eq!(r.result.report().map(|x| x.kind), Some(DetectorReportKind::UseAfterFree));
    }

    #[test]
    fn double_free_is_reported() {
        let r = run_pristine(
            "int main(void) { int *p = (int*)malloc(8); free(p); free(p); return 0; }",
            OptLevel::O0,
        );
        assert_eq!(r.result.report().map(|x| x.kind), Some(DetectorReportKind::InvalidFree));
    }

    #[test]
    fn uninit_branch_is_reported() {
        let r = run_pristine(
            "int main(void) { int x; if (x) { return 1; } return 0; }",
            OptLevel::O0,
        );
        assert_eq!(
            r.result.report().map(|x| x.kind),
            Some(DetectorReportKind::UninitCondition)
        );
    }

    #[test]
    fn stack_overflow_is_a_blind_spot() {
        // The defining difference from ASan: in-frame overflow is silent.
        let r = run_pristine(
            "int main(void) { int buf[2]; int i = 2; buf[i] = 7; return buf[0]; }",
            OptLevel::O0,
        );
        assert!(r.result.is_clean(), "Memcheck does not see stack overflow: {:?}", r.result);
    }

    #[test]
    fn global_overflow_is_a_blind_spot() {
        let r = run_pristine(
            "int g[2]; int main(void) { int i = 2; g[i] = 7; return g[0]; }",
            OptLevel::O0,
        );
        assert!(r.result.is_clean(), "{:?}", r.result);
    }

    #[test]
    fn use_after_scope_in_live_frame_is_silent() {
        let r = run_pristine(
            "int g;
             int main(void) {
                int *p = &g;
                { int local = 7; p = &local; }
                return *p;
             }",
            OptLevel::O0,
        );
        assert!(r.result.is_clean(), "no lexical scope tracking: {:?}", r.result);
    }

    #[test]
    fn null_deref_reports_then_crashes() {
        let r = run_pristine(
            "int main(void) { int *p = (int*)0; return *p; }",
            OptLevel::O0,
        );
        match &r.result {
            DetectorResult::Crashed { reports, .. } => {
                assert_eq!(reports.first().map(|x| x.kind), Some(DetectorReportKind::InvalidRead));
            }
            other => panic!("expected crash: {other:?}"),
        }
    }

    #[test]
    fn leaks_are_summarized_separately() {
        let r = run_pristine(
            "int main(void) { int *p = (int*)malloc(16); *p = 1; return *p; }",
            OptLevel::O0,
        );
        assert!(r.result.is_clean(), "{:?}", r.result);
        assert_eq!(r.leaks.len(), 1);
        assert_eq!(r.leaks[0].kind, DetectorReportKind::LeakDefinitelyLost);
    }

    #[test]
    fn reports_do_not_stop_execution() {
        let r = run_pristine(
            "int main(void) {
                int *p = (int*)malloc(4);
                p[1] = 1;
                p[2] = 2;
                free(p);
                print_value(9);
                return 0;
             }",
            OptLevel::O0,
        );
        match &r.result {
            DetectorResult::Finished { output, reports, .. } => {
                assert_eq!(output, &vec![9], "execution continued past the errors");
                assert!(!reports.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn defect_d02_misses_stale_use_after_second_free() {
        let src = "
            int main(void) {
                int *a = (int*)malloc(8);
                int *b = (int*)malloc(8);
                *a = 1;
                free(a);
                free(b);
                return *a;
            }";
        // Pristine: the stale read of *a is caught.
        let clean = run_pristine(src, OptLevel::O0);
        assert_eq!(
            clean.result.report().map(|x| x.kind),
            Some(DetectorReportKind::UseAfterFree)
        );
        // Defective: freeing b recycles a's shadow; the read goes silent.
        let cfg = MemcheckConfig {
            registry: DetectorDefectRegistry::with_only(&["memcheck-d02"]),
            ..MemcheckConfig::default()
        };
        let buggy = run(&module_at(src, OptLevel::O0), &cfg);
        assert!(buggy.result.is_clean(), "{:?}", buggy.result);
        assert!(buggy.applied_defects.iter().any(|(id, _)| *id == "memcheck-d02"));
    }

    #[test]
    fn defect_d03_misses_straddling_access() {
        // A 4-byte write at offset 6 of an 8-byte block: first byte is
        // in-bounds, bytes 8..10 are in the red zone.
        let src = "
            int main(void) {
                char *p = (char*)malloc(8);
                int *q = (int*)(p + 6);
                *q = 5;
                free(p);
                return 0;
            }";
        let clean = run_pristine(src, OptLevel::O0);
        assert_eq!(
            clean.result.report().map(|x| x.kind),
            Some(DetectorReportKind::InvalidWrite)
        );
        let cfg = MemcheckConfig {
            registry: DetectorDefectRegistry::with_only(&["memcheck-d03"]),
            ..MemcheckConfig::default()
        };
        let buggy = run(&module_at(src, OptLevel::O0), &cfg);
        assert!(buggy.result.is_clean(), "{:?}", buggy.result);
    }

    #[test]
    fn trace_records_executed_sites() {
        let r = run_pristine("int main(void) { int x = 1; return x; }", OptLevel::O0);
        assert!(!r.trace.executed.is_empty());
        assert!(r.trace.last.is_known());
    }

    #[test]
    fn optimizer_can_hide_ub_from_the_tool() {
        // The §4.7 analogue of Fig. 3: a dead heap overflow is deleted at
        // -O2 before Memcheck ever sees the binary.
        let src = "
            int g;
            int main(void) {
                int *p = (int*)malloc(8);
                p[3] = 1;
                free(p);
                g = 7;
                print_value(g);
                return 0;
            }";
        let o0 = run_pristine(src, OptLevel::O0);
        assert!(!o0.result.is_clean(), "visible at -O0");
        let o2 = run_pristine(src, OptLevel::O2);
        // Whether -O2 removes the store depends on the pipeline; what must
        // hold is that a clean -O2 run and a reporting -O0 run is *not* a
        // tool bug — exactly what report-site mapping decides.
        if o2.result.is_clean() {
            let site = o0.result.report().unwrap().loc;
            assert!(!o2.trace.contains(site), "site was optimized away");
        }
    }
}
