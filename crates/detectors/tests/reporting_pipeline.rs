//! The §4.7 reporting pipeline end to end: find a detector FN bug, then
//! reduce the triggering program C-Reduce-style before "filing" it — the
//! same post-processing the paper applies to every sanitizer bug.

use ubfuzz_detectors::campaign::trigger_corpus;
use ubfuzz_detectors::defects::{DetectorDefectRegistry, DetectorTool};
use ubfuzz_detectors::memcheck::{self, MemcheckConfig};
use ubfuzz_detectors::staticcheck::{analyze, StaticConfig};
use ubfuzz_minic::{parse, pretty, Program, UbKind};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::target::{OptLevel, Vendor};

fn corpus_program(tool: DetectorTool, id: &str) -> (Program, UbKind) {
    let (_, kind, src) = trigger_corpus(tool)
        .into_iter()
        .find(|(name, _, _)| *name == id)
        .expect("trigger exists");
    let mut p = parse(src).expect("trigger parses");
    pretty::relocate(&mut p);
    (p, kind)
}

fn stmt_weight(p: &Program) -> usize {
    pretty::print(p).lines().count()
}

/// The memcheck-d02 bug report: pristine Memcheck reports the
/// use-after-free, the defective quarantine misses it. The reduced program
/// must keep exactly that discrepancy.
#[test]
fn memcheck_bug_report_survives_reduction() {
    let (program, kind) = corpus_program(DetectorTool::Memcheck, "memcheck-d02");
    let creg = DefectRegistry::pristine();
    let defective = MemcheckConfig::default();
    let pristine =
        MemcheckConfig { registry: DetectorDefectRegistry::pristine(), ..MemcheckConfig::default() };
    let mut interesting = |p: &Program| {
        // The reducer may produce programs outside the compiler subset;
        // those are simply not interesting.
        let Ok(m) = compile(p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &creg))
        else {
            return false;
        };
        let good = memcheck::run(&m, &pristine);
        let bad = memcheck::run(&m, &defective);
        good.result.reports().iter().any(|r| r.kind.matches_ub(kind))
            && !bad.result.reports().iter().any(|r| r.kind.matches_ub(kind))
    };
    assert!(interesting(&program), "premise: the corpus program triggers the defect");
    let reduced = ubfuzz_reduce::reduce(&program, &mut interesting);
    assert!(interesting(&reduced), "reduction must preserve interestingness");
    assert!(
        stmt_weight(&reduced) <= stmt_weight(&program),
        "reduction must not grow the program"
    );
}

/// The static-d02 bug report: the defective analyzer skips divisions behind
/// short-circuit operators. Reduction keeps the one-line essence.
#[test]
fn static_bug_report_survives_reduction() {
    let (program, kind) = corpus_program(DetectorTool::StaticAnalyzer, "static-d02");
    let defective = StaticConfig::default();
    let pristine = StaticConfig { registry: DetectorDefectRegistry::pristine() };
    let mut interesting = |p: &Program| {
        analyze(p, &pristine).detects(kind) && !analyze(p, &defective).detects(kind)
    };
    assert!(interesting(&program), "premise: the corpus program triggers the defect");
    let reduced = ubfuzz_reduce::reduce(&program, &mut interesting);
    assert!(interesting(&reduced));
    assert!(stmt_weight(&reduced) <= stmt_weight(&program));
}
