//! Property-based tests for the §4.7 detectors (proptest).
//!
//! The invariants mirror the sanitizer-world properties in
//! `crates/core/tests/properties.rs`, adapted to what a DBI engine and a
//! static analyzer respectively promise:
//!
//! * Memcheck is an *execution engine* first — on UB-free programs it must
//!   compute exactly the reference interpreter's observable behavior, with
//!   zero error reports, in every defect world.
//! * Detector defects are *false-negative* defects — they may only
//!   suppress reports, never invent them.
//! * Every in-run Memcheck report lies on the engine's own executed-site
//!   trace — the premise report-site mapping (Algorithm 2) relies on.

use proptest::prelude::*;
use ubfuzz_detectors::campaign::memcheck_supports;
use ubfuzz_detectors::defects::DetectorDefectRegistry;
use ubfuzz_detectors::memcheck::{self, MemcheckConfig};
use ubfuzz_detectors::report::DetectorResult;
use ubfuzz_detectors::staticcheck::{analyze, StaticConfig};
use ubfuzz_interp::run_program;
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::target::{OptLevel, Vendor};
use ubfuzz_ubgen::{generate_all, GenOptions};

fn pristine_tool() -> MemcheckConfig {
    MemcheckConfig { registry: DetectorDefectRegistry::pristine(), ..MemcheckConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// On UB-free seeds, Memcheck computes the interpreter's observable
    /// behavior exactly and reports nothing — at every level, in both
    /// defect worlds (defects affect reporting, never execution).
    #[test]
    fn memcheck_executes_seeds_faithfully_with_no_false_positives(seed in 0u64..2000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let gt = match run_program(&p) {
            ubfuzz_interp::Outcome::Exit { output, .. } => output,
            other => return Err(TestCaseError::fail(format!("seed not clean: {other:?}"))),
        };
        let reg = DefectRegistry::pristine();
        for tool in [MemcheckConfig::default(), pristine_tool()] {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let m = compile(&p, &CompileConfig::dev(Vendor::Gcc, opt, None, &reg)).unwrap();
                let run = memcheck::run(&m, &tool);
                match &run.result {
                    DetectorResult::Finished { output, reports, .. } => {
                        prop_assert!(reports.is_empty(), "{}: false positive {:?}", opt, reports);
                        prop_assert_eq!(output, &gt, "{} diverges from the interpreter", opt);
                    }
                    other => return Err(TestCaseError::fail(format!("{opt}: {other:?}"))),
                }
            }
        }
    }

    /// Injected Memcheck defects only suppress reports: on the same binary,
    /// the defective world's report set is a subset of the pristine one's.
    #[test]
    fn memcheck_defects_only_suppress_reports(seed in 0u64..1000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let creg = DefectRegistry::pristine();
        let full = MemcheckConfig::default();
        let pristine = pristine_tool();
        for u in generate_all(&p, &GenOptions { max_per_kind: 2, ..GenOptions::default() })
            .into_iter()
            .filter(|u| memcheck_supports(u.kind))
        {
            let Ok(m) =
                compile(&u.program, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &creg))
            else {
                continue;
            };
            let rf = memcheck::run(&m, &full);
            let rp = memcheck::run(&m, &pristine);
            for rep in rf.result.reports() {
                prop_assert!(
                    rp.result.reports().contains(rep),
                    "defect invented report {} on {}", rep, u.description
                );
            }
        }
    }

    /// Every in-run Memcheck report's site appears in the engine's own
    /// executed-site trace — the report-site-mapping premise.
    #[test]
    fn memcheck_reports_lie_on_the_executed_trace(seed in 0u64..1000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let creg = DefectRegistry::pristine();
        let tool = pristine_tool();
        for u in generate_all(&p, &GenOptions { max_per_kind: 2, ..GenOptions::default() })
            .into_iter()
            .filter(|u| memcheck_supports(u.kind))
        {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let Ok(m) =
                    compile(&u.program, &CompileConfig::dev(Vendor::Gcc, opt, None, &creg))
                else {
                    continue;
                };
                let run = memcheck::run(&m, &tool);
                for rep in run.result.reports() {
                    prop_assert!(
                        run.trace.contains(rep.loc),
                        "{}: report {} off-trace on {}", opt, rep, u.description
                    );
                }
            }
        }
    }

    /// The static analyzer is deterministic, and its injected defects only
    /// suppress findings — on seeds and on every generated UB mutant.
    #[test]
    fn static_defects_only_suppress_findings(seed in 0u64..2000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let full_cfg = StaticConfig::default();
        let pristine_cfg = StaticConfig { registry: DetectorDefectRegistry::pristine() };
        let mut programs = vec![p.clone()];
        programs.extend(
            generate_all(&p, &GenOptions { max_per_kind: 1, ..GenOptions::default() })
                .into_iter()
                .map(|u| u.program),
        );
        for prog in &programs {
            let full = analyze(prog, &full_cfg);
            let again = analyze(prog, &full_cfg);
            prop_assert_eq!(&full.findings, &again.findings, "analysis is nondeterministic");
            let pristine = analyze(prog, &pristine_cfg);
            for f in &full.findings {
                prop_assert!(
                    pristine.findings.contains(f),
                    "defect invented finding {}", f
                );
            }
        }
    }
}
