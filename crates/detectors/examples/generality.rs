//! Generality study (§4.7): UBfuzz retargeted at non-sanitizer detectors.
//!
//! ```sh
//! cargo run -p ubfuzz-detectors --example generality
//! ```
//!
//! The paper argues its framework — UB program generation plus report-site
//! mapping — applies beyond sanitizers, to dynamic tools (Valgrind,
//! Dr. Memory) and static tools (CppCheck, Infer). This example walks both
//! detector families through the pipeline:
//!
//! 1. the Memcheck-style DBI engine catching a heap use-after-free that no
//!    compiler pass instruments,
//! 2. its characteristic blind spot (stack overflows are silent),
//! 3. the static analyzer reporting UB without running the program,
//! 4. full campaigns rediscovering every injected detector defect.

use ubfuzz_detectors::campaign::{
    run_memcheck_campaign, run_static_campaign, DetectorCampaignConfig,
};
use ubfuzz_detectors::defects::{DetectorDefectRegistry, DetectorTool};
use ubfuzz_detectors::memcheck::{self, MemcheckConfig};
use ubfuzz_detectors::staticcheck::{analyze, StaticConfig};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::target::{OptLevel, Vendor};

fn compile_o0(src: &str) -> ubfuzz_simcc::ir::Module {
    let p = ubfuzz_minic::parse(src).expect("parses");
    let reg = DefectRegistry::pristine();
    compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &reg)).expect("compiles")
}

fn main() {
    // 1. Heap use-after-free: the binary carries no sanitizer checks at all
    // (no `-fsanitize=` analogue); the DBI tool finds the error from its own
    // A-bit shadow state.
    let uaf = compile_o0(
        "int main(void) {
            int *p = (int*)malloc(8);
            *p = 1;
            free(p);
            return *p;
         }",
    );
    let run = memcheck::run(&uaf, &MemcheckConfig::default());
    println!("=== Memcheck on heap use-after-free (uninstrumented binary) ===");
    for r in run.result.reports() {
        println!("  {r}");
    }

    // 2. The blind spot the paper's Table 2 analogue must record: stack
    // buffer overflow is invisible to Memcheck (the whole frame is
    // addressable), while ASan catches it via redzones.
    let stack_ovf = compile_o0(
        "int main(void) {
            int a[2];
            int i = 2;
            a[0] = 1;
            a[i] = 7;
            return a[0];
         }",
    );
    let run = memcheck::run(&stack_ovf, &MemcheckConfig::default());
    println!("\n=== Memcheck on stack buffer overflow (characteristic miss) ===");
    println!(
        "  reports: {} (stack frames are fully addressable to a DBI tool)",
        run.result.reports().len()
    );

    // 3. The static analyzer: reports from source, no execution.
    let finding = analyze(
        &ubfuzz_minic::parse(
            "int main(void) {
                int *p = (int*)0;
                int z = 0;
                int y = 8 / z;
                return *p + y;
             }",
        )
        .expect("parses"),
        &StaticConfig { registry: DetectorDefectRegistry::pristine() },
    );
    println!("\n=== Static analyzer on null-deref + div-by-zero source ===");
    for f in &finding.findings {
        println!("  {f}");
    }

    // 4. The UBfuzz loop against both tools: differential testing against a
    // pristine second implementation, trigger corpus included, every
    // injected defect rediscovered.
    let cfg = DetectorCampaignConfig { seeds: 6, ..Default::default() };
    let m = run_memcheck_campaign(&cfg);
    println!("\n=== Memcheck campaign ({} seeds) ===", cfg.seeds);
    println!(
        "  {} UB programs, {} discrepancies, {} optimization artifacts filtered",
        m.total_programs(),
        m.discrepancies,
        m.optimization_artifacts
    );
    for b in &m.bugs {
        println!(
            "  bug: {:<18} {:<20} defect={} (x{})",
            b.tool.to_string(),
            b.kind.to_string(),
            b.defect_id.unwrap_or("?"),
            b.duplicates
        );
    }

    let s = run_static_campaign(&cfg);
    println!("\n=== Static-analyzer campaign ({} seeds) ===", cfg.seeds);
    println!("  {} UB programs, {} discrepancies", s.total_programs(), s.discrepancies);
    for b in &s.bugs {
        println!(
            "  bug: {:<18} {:<20} defect={} (x{})",
            b.tool.to_string(),
            b.kind.to_string(),
            b.defect_id.unwrap_or("?"),
            b.duplicates
        );
    }

    let total_defects = DetectorDefectRegistry::for_tool(DetectorTool::Memcheck).len()
        + DetectorDefectRegistry::for_tool(DetectorTool::StaticAnalyzer).len();
    let found = m.bugs.len() + s.bugs.len();
    println!("\n{found}/{total_defects} injected detector defects rediscovered");
}
