//! `ubfuzz-simvm` — the execution substrate: a flat-memory virtual machine
//! for compiled [`ubfuzz_simcc`] modules, including the sanitizer *runtime*
//! (shadow poison map, initialization shadow, report formatting) and an
//! instruction tracer.
//!
//! Three properties make it a faithful stand-in for "run the binary on
//! Linux and watch it with LLDB" (paper §2.2, §4.1):
//!
//! * **Machine semantics, not C semantics.** Signed overflow wraps, shift
//!   amounts are masked like x86, division by zero raises a SIGFPE-like
//!   crash, and out-of-bounds accesses that stay within an allocation's
//!   32-byte gap read deterministic `0xBE` garbage. A missed sanitizer check
//!   therefore does what it does on real hardware: usually nothing visible.
//! * **Sanitizer runtime.** When a module was instrumented, allocations get
//!   poisoned red zones, `free` poisons the block, scope exits poison stack
//!   slots, and check instructions consult the poison/shadow state to
//!   produce a [`SanReport`] — the "crash" of the paper's test oracle.
//! * **Tracing.** [`run_traced`] records the `(line, offset)` of every
//!   executed instruction, which is exactly what `GetExecutedSites` in
//!   Algorithm 2 extracts with a debugger.

use std::fmt;
use ubfuzz_minic::Loc;
use ubfuzz_simcc::ir::*;
use ubfuzz_simcc::passes::{fold_bin, fold_un};
use ubfuzz_simcc::target::Vendor;
use ubfuzz_simcc::{cov, Sanitizer};

/// What a sanitizer report says happened (the "ERROR:" line of real ASan/
/// UBSan output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportKind {
    /// `stack-buffer-overflow`
    StackBufOverflow,
    /// `global-buffer-overflow`
    GlobalBufOverflow,
    /// `heap-buffer-overflow`
    HeapBufOverflow,
    /// `heap-use-after-free`
    UseAfterFree,
    /// `stack-use-after-scope`
    UseAfterScope,
    /// `signed integer overflow`
    SignedIntOverflow,
    /// `negation ... cannot be represented`
    NegOverflow,
    /// `shift exponent out of range`
    ShiftOob,
    /// `division by zero`
    DivByZero,
    /// `null pointer dereference`
    NullDeref,
    /// `index out of bounds`
    ArrayBound,
    /// `use-of-uninitialized-value`
    UninitUse,
    /// `attempting double-free / invalid free`
    BadFree,
}

impl ReportKind {
    /// The report string of the real tools.
    pub fn message(self) -> &'static str {
        match self {
            ReportKind::StackBufOverflow => "stack-buffer-overflow",
            ReportKind::GlobalBufOverflow => "global-buffer-overflow",
            ReportKind::HeapBufOverflow => "heap-buffer-overflow",
            ReportKind::UseAfterFree => "heap-use-after-free",
            ReportKind::UseAfterScope => "stack-use-after-scope",
            ReportKind::SignedIntOverflow => "signed integer overflow",
            ReportKind::NegOverflow => "negation overflow",
            ReportKind::ShiftOob => "shift exponent out of range",
            ReportKind::DivByZero => "division by zero",
            ReportKind::NullDeref => "null pointer dereference",
            ReportKind::ArrayBound => "index out of bounds",
            ReportKind::UninitUse => "use-of-uninitialized-value",
            ReportKind::BadFree => "invalid free",
        }
    }

    /// True when this report is a plausible detection of the given
    /// ground-truth UB kind (sanitizers report coarser categories than the
    /// C-standard taxonomy; ASan, e.g., does not distinguish `a[x]` from
    /// `*(p+x)`).
    pub fn matches_ub(self, kind: ubfuzz_minic::UbKind) -> bool {
        use ubfuzz_minic::UbKind::*;
        match self {
            ReportKind::StackBufOverflow
            | ReportKind::GlobalBufOverflow
            | ReportKind::HeapBufOverflow
            | ReportKind::ArrayBound => matches!(kind, BufOverflowArray | BufOverflowPtr),
            ReportKind::UseAfterFree | ReportKind::BadFree => {
                matches!(kind, UseAfterFree | InvalidFree)
            }
            ReportKind::UseAfterScope => kind == UseAfterScope,
            ReportKind::SignedIntOverflow | ReportKind::NegOverflow => kind == IntOverflow,
            ReportKind::ShiftOob => kind == ShiftOverflow,
            ReportKind::DivByZero => kind == DivByZero,
            ReportKind::NullDeref => kind == NullDeref,
            ReportKind::UninitUse => kind == UninitUse,
        }
    }
}

/// A sanitizer report — the analogue of the crash message printed by real
/// sanitizers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanReport {
    /// Which sanitizer reported.
    pub sanitizer: Sanitizer,
    /// What it reported.
    pub kind: ReportKind,
    /// The source location on the report (may be wrong — two of the paper's
    /// bugs are wrong-report bugs).
    pub loc: Loc,
}

impl fmt::Display for SanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "==ERROR: {}: {} at {}", self.sanitizer, self.kind.message(), self.loc)
    }
}

/// Hardware-level crash kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Segmentation fault (unmapped access).
    Segv,
    /// Arithmetic trap (division by zero / INT_MIN ÷ -1).
    Fpe,
}

/// Result of executing a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// Normal exit.
    Exit {
        /// `main`'s return value.
        status: i64,
        /// `print_value` output, in order.
        output: Vec<i64>,
    },
    /// A sanitizer check fired.
    Report(SanReport),
    /// A raw crash without a sanitizer report.
    Crash {
        /// Signal kind.
        kind: CrashKind,
        /// Location of the faulting instruction.
        loc: Loc,
    },
    /// Step budget exhausted.
    Timeout,
    /// Malformed module (never happens for pipeline output).
    Error(String),
}

impl RunResult {
    /// True when a sanitizer report was produced (the paper's "crash").
    pub fn is_report(&self) -> bool {
        matches!(self, RunResult::Report(_))
    }

    /// True on a clean exit (the paper's "exits normally").
    pub fn is_normal_exit(&self) -> bool {
        matches!(self, RunResult::Exit { .. })
    }

    /// The report, if any.
    pub fn report(&self) -> Option<&SanReport> {
        match self {
            RunResult::Report(r) => Some(r),
            _ => None,
        }
    }
}

/// Executed-site trace (Algorithm 2's `GetExecutedSites`).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every distinct `(line, offset)` executed.
    pub executed: std::collections::HashSet<Loc>,
    /// The last executed site — the crash site when the run crashed.
    pub last: Loc,
}

impl Trace {
    /// Whether `site` was executed.
    pub fn contains(&self, site: Loc) -> bool {
        self.executed.contains(&site)
    }
}

/// Execution limits.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Maximum executed instructions.
    pub step_limit: u64,
    /// Record executed sites.
    pub trace: bool,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig { step_limit: 4_000_000, trace: false }
    }
}

/// Runs a module without tracing.
pub fn run_module(m: &Module) -> RunResult {
    run_with_config(m, &VmConfig::default()).0
}

/// Runs a module and records executed `(line, offset)` sites.
pub fn run_traced(m: &Module) -> (RunResult, Trace) {
    run_with_config(m, &VmConfig { trace: true, ..VmConfig::default() })
}

/// Runs a module under explicit limits.
pub fn run_with_config(m: &Module, cfg: &VmConfig) -> (RunResult, Trace) {
    let mut vm = Vm::new(m, cfg);
    let result = vm.boot();
    (result, std::mem::take(&mut vm.trace))
}

const NULL_GUARD: usize = 4096;
const GAP: usize = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoisonTag {
    Clean,
    StackRz,
    GlobalRz,
    HeapRz,
    Freed,
    Scope,
}

struct HeapBlock {
    start: usize,
    size: usize,
    freed: bool,
}

struct Frame {
    regs: Vec<i64>,
    taint: Vec<bool>,
    slot_addr: Vec<usize>,
}

enum Stop {
    Report(SanReport),
    Crash(CrashKind, Loc),
    Timeout,
    Error(String),
}

struct Vm<'m> {
    m: &'m Module,
    cfg: &'m VmConfig,
    mem: Vec<u8>,
    poison: Vec<PoisonTag>,
    /// MSan initialization shadow: true = defined.
    shadow: Vec<bool>,
    global_addr: Vec<usize>,
    heap: Vec<HeapBlock>,
    output: Vec<i64>,
    steps: u64,
    depth: usize,
    trace: Trace,
    vendor: Vendor,
    asan: bool,
    msan: bool,
}

impl<'m> Vm<'m> {
    fn new(m: &'m Module, cfg: &'m VmConfig) -> Vm<'m> {
        let vendor = m.build.map_or(Vendor::Gcc, |b| b.compiler.vendor);
        Vm {
            m,
            cfg,
            mem: vec![0xBE; NULL_GUARD],
            poison: vec![PoisonTag::Clean; NULL_GUARD],
            shadow: vec![false; NULL_GUARD],
            global_addr: Vec::new(),
            heap: Vec::new(),
            output: Vec::new(),
            steps: 0,
            depth: 0,
            trace: Trace::default(),
            vendor,
            asan: m.san.sanitizer == Some(Sanitizer::Asan),
            msan: m.san.sanitizer == Some(Sanitizer::Msan),
        }
    }

    fn alloc_region(&mut self, size: usize, defined: bool) -> usize {
        let start = self.mem.len();
        self.mem.resize(start + size + GAP, 0xBE);
        self.poison.resize(self.mem.len(), PoisonTag::Clean);
        self.shadow.resize(start + size, defined);
        self.shadow.resize(self.mem.len(), true); // gaps read as "defined" garbage
        start
    }

    fn poison_range(&mut self, start: usize, len: usize, tag: PoisonTag) {
        let end = (start + len).min(self.poison.len());
        for p in &mut self.poison[start.min(end)..end] {
            *p = tag;
        }
    }

    fn boot(&mut self) -> RunResult {
        // Lay out globals.
        for g in &self.m.globals {
            let a = self.alloc_region(g.size as usize, true);
            self.global_addr.push(a);
            let init_len = g.init.len().min(g.size as usize);
            self.mem[a..a + init_len].copy_from_slice(&g.init[..init_len]);
            for b in &mut self.mem[a + init_len..a + g.size as usize] {
                *b = 0;
            }
        }
        // Apply relocations now that all bases are known.
        for (gi, g) in self.m.globals.iter().enumerate() {
            for (off, target, addend) in &g.relocs {
                let v = (self.global_addr[*target] as i64 + addend) as u64;
                let a = self.global_addr[gi] + *off as usize;
                self.mem[a..a + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Poison global red zones (ASan), honouring defective gaps.
        if self.asan {
            cov::hit(self.vendor, "rt_shadow.rs", "poison_global_redzone");
            for (gi, g) in self.m.globals.iter().enumerate() {
                let gap = self
                    .m
                    .san
                    .global_redzone_gaps
                    .iter()
                    .find(|(id, _)| *id == gi)
                    .map_or(0, |(_, bytes)| *bytes as usize);
                let end = self.global_addr[gi] + g.size as usize;
                let rz_start = end + gap.min(GAP);
                let rz_len = GAP.saturating_sub(gap);
                self.poison_range(rz_start, rz_len, PoisonTag::GlobalRz);
            }
        }
        let Some(main) = self.m.func("main") else {
            return RunResult::Error("no main".into());
        };
        match self.call(main, &[]) {
            Ok((status, _)) => {
                RunResult::Exit { status, output: std::mem::take(&mut self.output) }
            }
            Err(Stop::Report(r)) => RunResult::Report(r),
            Err(Stop::Crash(kind, loc)) => RunResult::Crash { kind, loc },
            Err(Stop::Timeout) => RunResult::Timeout,
            Err(Stop::Error(e)) => RunResult::Error(e),
        }
    }

    fn call(&mut self, f: &'m Func, args: &[(i64, bool)]) -> Result<(i64, bool), Stop> {
        self.depth += 1;
        if self.depth > 64 {
            self.depth -= 1;
            return Err(Stop::Error("call depth exceeded".into()));
        }
        let mut frame = Frame {
            regs: vec![0; f.next_reg as usize],
            taint: vec![false; f.next_reg as usize],
            slot_addr: Vec::with_capacity(f.slots.len()),
        };
        for (i, &(v, t)) in args.iter().enumerate() {
            if let Some(&r) = f.params.get(i) {
                frame.regs[r as usize] = v;
                frame.taint[r as usize] = t;
            }
        }
        // Allocate all slots with red-zone gaps (stack layout).
        for s in &f.slots {
            let a = self.alloc_region(s.size as usize, false);
            if self.asan {
                cov::hit(self.vendor, "rt_shadow.rs", "poison_stack_redzone");
                self.poison_range(a + s.size as usize, GAP, PoisonTag::StackRz);
            }
            frame.slot_addr.push(a);
        }
        let mut bb = 0usize;
        let result = loop {
            let block = &f.blocks[bb];
            let mut stop = None;
            for ins in &block.instrs {
                self.steps += 1;
                if self.steps > self.cfg.step_limit {
                    stop = Some(Stop::Timeout);
                    break;
                }
                if self.cfg.trace && ins.loc.is_known() {
                    self.trace.executed.insert(ins.loc);
                    self.trace.last = ins.loc;
                }
                if let Err(e) = self.exec(f, &mut frame, ins) {
                    stop = Some(e);
                    break;
                }
            }
            if let Some(e) = stop {
                break Err(e);
            }
            match block.term.as_ref() {
                Some(Term::Jmp(t)) => bb = *t,
                Some(Term::Br { cond, then_bb, else_bb }) => {
                    let (v, _) = self.value(&frame, *cond);
                    bb = if v != 0 { *then_bb } else { *else_bb };
                }
                Some(Term::Ret(v)) => {
                    let rv = match v {
                        Some(o) => self.value(&frame, *o),
                        None => (0, false),
                    };
                    // Frame teardown unpoisons this frame's stack.
                    if self.asan {
                        for (s, &a) in f.slots.iter().zip(&frame.slot_addr) {
                            self.poison_range(a, s.size as usize, PoisonTag::Clean);
                        }
                    }
                    break Ok(rv);
                }
                None => break Err(Stop::Error("missing terminator".into())),
            }
        };
        self.depth -= 1;
        result
    }

    fn value(&self, frame: &Frame, o: Operand) -> (i64, bool) {
        match o {
            Operand::Imm(v) => (v, false),
            Operand::Reg(r) => (frame.regs[r as usize], frame.taint[r as usize]),
        }
    }

    fn set(&self, frame: &mut Frame, dst: Option<RegId>, v: i64, taint: bool) {
        if let Some(d) = dst {
            frame.regs[d as usize] = v;
            frame.taint[d as usize] = taint;
        }
    }

    fn check_mapped(&self, addr: i64, size: usize, loc: Loc) -> Result<usize, Stop> {
        if addr < NULL_GUARD as i64 || (addr as usize) + size > self.mem.len() {
            return Err(Stop::Crash(CrashKind::Segv, loc));
        }
        Ok(addr as usize)
    }

    fn report(&self, kind: ReportKind, loc: Loc, point: &'static str) -> Stop {
        cov::hit(self.vendor, "rt_report.rs", point);
        let sanitizer = self.m.san.sanitizer.unwrap_or(Sanitizer::Asan);
        Stop::Report(SanReport { sanitizer, kind, loc })
    }

    fn exec(&mut self, f: &'m Func, frame: &mut Frame, ins: &Instr) -> Result<(), Stop> {
        let loc = ins.loc;
        match &ins.op {
            Op::Const(v) => self.set(frame, ins.dst, *v, false),
            Op::Bin { op, a, b, ty } => {
                let (va, ta) = self.value(frame, *a);
                let (vb, tb) = self.value(frame, *b);
                let taint = if self.m.san.msan_policy.sub_const_fully_defined
                    && *op == BinKind::Sub
                    && matches!(b, Operand::Imm(_))
                {
                    cov::hit(self.vendor, "rt_msan.rs", "taint_sub_const_cleared");
                    false
                } else {
                    if self.msan {
                        cov::hit(self.vendor, "rt_msan.rs", "taint_bin");
                        if ta || tb {
                            cov::hit(self.vendor, "rt_msan.rs", "taint_propagated");
                        }
                    }
                    ta || tb
                };
                let v = match op {
                    BinKind::Div | BinKind::Rem => {
                        let wb = ty.wrap(vb as i128);
                        if wb == 0 {
                            return Err(Stop::Crash(CrashKind::Fpe, loc));
                        }
                        let wa = ty.wrap(va as i128);
                        if ty.signed && wa == ty.min_value() && wb == -1 {
                            return Err(Stop::Crash(CrashKind::Fpe, loc));
                        }
                        fold_bin(*op, va, vb, *ty).expect("division handled")
                    }
                    BinKind::Shl | BinKind::Shr => {
                        // x86 semantics: the amount is masked.
                        let bits = ty.promoted().width.bits() as i64;
                        let masked = vb & (bits - 1);
                        fold_bin(*op, va, masked, *ty).expect("masked shift folds")
                    }
                    _ => fold_bin(*op, va, vb, *ty).expect("total op"),
                };
                self.set(frame, ins.dst, v, taint);
            }
            Op::Un { op, a, ty } => {
                let (va, ta) = self.value(frame, *a);
                self.set(frame, ins.dst, fold_un(*op, va, *ty), ta);
            }
            Op::Cast { a, to } => {
                let (va, ta) = self.value(frame, *a);
                self.set(frame, ins.dst, to.wrap(va as i128) as i64, ta);
            }
            Op::AddrLocal(s) => self.set(frame, ins.dst, frame.slot_addr[*s] as i64, false),
            Op::AddrGlobal(g) => self.set(frame, ins.dst, self.global_addr[*g] as i64, false),
            Op::PtrAdd { base, offset, scale } => {
                let (vb, tb) = self.value(frame, *base);
                let (vo, to) = self.value(frame, *offset);
                self.set(frame, ins.dst, vb.wrapping_add(vo.wrapping_mul(*scale)), tb || to);
            }
            Op::Load { addr, size, signed } => {
                let (va, _) = self.value(frame, *addr);
                let a = self.check_mapped(va, *size as usize, loc)?;
                let mut raw: u64 = 0;
                for (i, b) in self.mem[a..a + *size as usize].iter().enumerate() {
                    raw |= (*b as u64) << (8 * i);
                }
                let v = if *signed {
                    let shift = 64 - 8 * (*size as u32);
                    ((raw << shift) as i64) >> shift
                } else {
                    raw as i64
                };
                let taint = self.shadow[a..a + *size as usize].iter().any(|d| !d);
                if self.msan {
                    cov::hit(self.vendor, "rt_msan.rs", "taint_load");
                }
                self.set(frame, ins.dst, v, taint);
            }
            Op::Store { addr, val, size } => {
                let (va, _) = self.value(frame, *addr);
                let (vv, tv) = self.value(frame, *val);
                let a = self.check_mapped(va, *size as usize, loc)?;
                let bytes = (vv as u64).to_le_bytes();
                self.mem[a..a + *size as usize].copy_from_slice(&bytes[..*size as usize]);
                for s in &mut self.shadow[a..a + *size as usize] {
                    *s = !tv;
                }
                if self.msan {
                    cov::hit(self.vendor, "rt_msan.rs", "taint_store");
                }
            }
            Op::MemCopy { dst, src, len } => {
                let (vd, _) = self.value(frame, *dst);
                let (vs, _) = self.value(frame, *src);
                let d = self.check_mapped(vd, *len as usize, loc)?;
                let s = self.check_mapped(vs, *len as usize, loc)?;
                let bytes: Vec<u8> = self.mem[s..s + *len as usize].to_vec();
                let sh: Vec<bool> = self.shadow[s..s + *len as usize].to_vec();
                self.mem[d..d + *len as usize].copy_from_slice(&bytes);
                self.shadow[d..d + *len as usize].copy_from_slice(&sh);
            }
            Op::Call { callee, args } => {
                let vals: Vec<(i64, bool)> =
                    args.iter().map(|a| self.value(frame, *a)).collect();
                let cf = self
                    .m
                    .func(callee)
                    .ok_or_else(|| Stop::Error(format!("unknown function {callee}")))?;
                let (v, t) = self.call(cf, &vals)?;
                self.set(frame, ins.dst, v, t);
            }
            Op::Malloc { size } => {
                let (vs, _) = self.value(frame, *size);
                let size = vs.clamp(0, 1 << 20) as usize;
                let start = self.alloc_region(size, false);
                self.heap.push(HeapBlock { start, size, freed: false });
                if self.asan {
                    cov::hit(self.vendor, "rt_shadow.rs", "poison_heap_redzone");
                    self.poison_range(start + size, GAP, PoisonTag::HeapRz);
                }
                self.set(frame, ins.dst, start as i64, false);
            }
            Op::Free { addr } => {
                let (va, _) = self.value(frame, *addr);
                if va == 0 {
                    return Ok(()); // free(NULL) is a no-op
                }
                let Some(idx) = self.heap.iter().position(|h| h.start == va as usize) else {
                    return Err(if self.asan {
                        self.report(ReportKind::BadFree, loc, "report_uaf")
                    } else {
                        Stop::Crash(CrashKind::Segv, loc)
                    });
                };
                if self.heap[idx].freed {
                    return Err(if self.asan {
                        self.report(ReportKind::BadFree, loc, "report_uaf")
                    } else {
                        Stop::Crash(CrashKind::Segv, loc)
                    });
                }
                self.heap[idx].freed = true;
                if self.asan {
                    cov::hit(self.vendor, "rt_shadow.rs", "poison_freed");
                    let (s, n) = (self.heap[idx].start, self.heap[idx].size);
                    self.poison_range(s, n, PoisonTag::Freed);
                }
            }
            Op::Print { val } => {
                let (v, _) = self.value(frame, *val);
                self.output.push(v);
            }
            Op::LifetimeStart(s) => {
                // The variable's bytes become undefined on scope (re-)entry.
                let a = frame.slot_addr[*s];
                let size = f.slots[*s].size as usize;
                for sh in &mut self.shadow[a..a + size] {
                    *sh = false;
                }
            }
            Op::LifetimeEnd(_) => {}
            Op::AsanUnpoisonScope(s) => {
                cov::hit(self.vendor, "rt_shadow.rs", "unpoison_scope");
                let a = frame.slot_addr[*s];
                self.poison_range(a, f.slots[*s].size as usize, PoisonTag::Clean);
            }
            Op::AsanPoisonScope(s) => {
                cov::hit(self.vendor, "rt_shadow.rs", "poison_scope");
                let a = frame.slot_addr[*s];
                self.poison_range(a, f.slots[*s].size as usize, PoisonTag::Scope);
            }
            Op::AsanCheck { addr, size, .. } => {
                let (va, _) = self.value(frame, *addr);
                if va >= NULL_GUARD as i64 && (va as usize) + (*size as usize) <= self.mem.len()
                {
                    let a = va as usize;
                    let bad = self.poison[a..a + *size as usize]
                        .iter()
                        .find(|t| **t != PoisonTag::Clean);
                    match bad {
                        Some(tag) => {
                            cov::hit(self.vendor, "rt_shadow.rs", "shadow_poisoned");
                            let (kind, point) = match tag {
                                PoisonTag::StackRz => {
                                    (ReportKind::StackBufOverflow, "report_overflow")
                                }
                                PoisonTag::GlobalRz => {
                                    (ReportKind::GlobalBufOverflow, "report_overflow")
                                }
                                PoisonTag::HeapRz => {
                                    (ReportKind::HeapBufOverflow, "report_overflow")
                                }
                                PoisonTag::Freed => (ReportKind::UseAfterFree, "report_uaf"),
                                PoisonTag::Scope => (ReportKind::UseAfterScope, "report_uas"),
                                PoisonTag::Clean => unreachable!(),
                            };
                            return Err(self.report(kind, loc, point));
                        }
                        None => cov::hit(self.vendor, "rt_shadow.rs", "shadow_clean"),
                    }
                }
            }
            Op::UbsanCheckArith { op, a, b, ty } => {
                let (va, _) = self.value(frame, *a);
                let (vb, _) = self.value(frame, *b);
                let (wa, wb) = (ty.wrap(va as i128), ty.wrap(vb as i128));
                let wide = match op {
                    BinKind::Add => wa + wb,
                    BinKind::Sub => wa - wb,
                    BinKind::Mul => wa * wb,
                    _ => 0,
                };
                if !ty.contains(wide) {
                    return Err(self.report(ReportKind::SignedIntOverflow, loc, "report_arith"));
                }
            }
            Op::UbsanCheckNeg { a, ty } => {
                let (va, _) = self.value(frame, *a);
                if ty.wrap(va as i128) == ty.min_value() {
                    return Err(self.report(ReportKind::NegOverflow, loc, "report_neg"));
                }
            }
            Op::UbsanCheckShift { amount, bits } => {
                let (va, _) = self.value(frame, *amount);
                if va < 0 || va >= *bits as i64 {
                    return Err(self.report(ReportKind::ShiftOob, loc, "report_shift"));
                }
            }
            Op::UbsanCheckDiv { a, divisor, ty } => {
                let (vd, _) = self.value(frame, *divisor);
                if ty.wrap(vd as i128) == 0 {
                    return Err(self.report(ReportKind::DivByZero, loc, "report_div"));
                }
                let (va, _) = self.value(frame, *a);
                if ty.signed && ty.wrap(va as i128) == ty.min_value() && ty.wrap(vd as i128) == -1
                {
                    return Err(self.report(ReportKind::SignedIntOverflow, loc, "report_div"));
                }
            }
            Op::UbsanCheckNull { addr } => {
                let (va, _) = self.value(frame, *addr);
                if va == 0 {
                    return Err(self.report(ReportKind::NullDeref, loc, "report_null"));
                }
            }
            Op::UbsanCheckBound { idx, bound } => {
                let (vi, _) = self.value(frame, *idx);
                if vi < 0 || vi as u64 >= *bound {
                    return Err(self.report(ReportKind::ArrayBound, loc, "report_bound"));
                }
            }
            Op::MsanCheck { val, .. } => {
                let (_, t) = self.value(frame, *val);
                if t {
                    return Err(self.report(ReportKind::UninitUse, loc, "report_msan"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};
    use ubfuzz_simcc::target::OptLevel;

    fn build(src: &str, opt: OptLevel, san: Option<Sanitizer>, reg: &DefectRegistry) -> Module {
        let p = parse(src).unwrap();
        compile(&p, &CompileConfig::dev(Vendor::Gcc, opt, san, reg)).unwrap()
    }

    fn build_llvm(
        src: &str,
        opt: OptLevel,
        san: Option<Sanitizer>,
        reg: &DefectRegistry,
    ) -> Module {
        let p = parse(src).unwrap();
        compile(&p, &CompileConfig::dev(Vendor::Llvm, opt, san, reg)).unwrap()
    }

    #[test]
    fn arithmetic_and_output_match_source() {
        let reg = DefectRegistry::pristine();
        for opt in OptLevel::ALL {
            let m = build(
                "int main(void) { int x = 6; print_value(x * 7); return x; }",
                opt,
                None,
                &reg,
            );
            match run_module(&m) {
                RunResult::Exit { status, output } => {
                    assert_eq!(status, 6, "{opt}");
                    assert_eq!(output, vec![42], "{opt}");
                }
                o => panic!("{opt}: {o:?}"),
            }
        }
    }

    #[test]
    fn loops_calls_globals_work_at_all_levels() {
        let reg = DefectRegistry::pristine();
        let src = "
            int g[5] = {1, 2, 3, 4, 5};
            int sum(int n, int *p) {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s = s + p[i]; }
                return s + n;
            }
            int main(void) { print_value(sum(10, g)); return 0; }
        ";
        let mut outputs = Vec::new();
        for opt in OptLevel::ALL {
            let m = build(src, opt, None, &reg);
            match run_module(&m) {
                RunResult::Exit { output, .. } => outputs.push(output),
                o => panic!("{opt}: {o:?}"),
            }
        }
        assert!(outputs.iter().all(|o| o == &vec![25]), "{outputs:?}");
    }

    #[test]
    fn asan_catches_overflow_at_o0() {
        let reg = DefectRegistry::pristine();
        let m = build(
            "int a[5]; int x = 1;
             int main(void) { x = 5; a[x] = 1; return 0; }",
            OptLevel::O0,
            Some(Sanitizer::Asan),
            &reg,
        );
        match run_module(&m) {
            RunResult::Report(r) => {
                assert_eq!(r.kind, ReportKind::GlobalBufOverflow);
                assert_eq!(r.sanitizer, Sanitizer::Asan);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn asan_catches_use_after_free_and_scope() {
        let reg = DefectRegistry::pristine();
        let m = build_llvm(
            "int main(void) {
                int *p = (int*)malloc(8);
                *p = 3;
                free(p);
                return *p;
             }",
            OptLevel::O0,
            Some(Sanitizer::Asan),
            &reg,
        );
        assert!(matches!(
            run_module(&m),
            RunResult::Report(SanReport { kind: ReportKind::UseAfterFree, .. })
        ));
        let m2 = build(
            "int g;
             int main(void) {
                int *q = &g;
                { int t = 5; q = &t; }
                return *q;
             }",
            OptLevel::O0,
            Some(Sanitizer::Asan),
            &reg,
        );
        assert!(matches!(
            run_module(&m2),
            RunResult::Report(SanReport { kind: ReportKind::UseAfterScope, .. })
        ));
    }

    #[test]
    fn ubsan_catches_arith_kinds() {
        let reg = DefectRegistry::pristine();
        let cases = [
            (
                "int x = 2147483647; int y = 1; int main(void) { return x + y; }",
                ReportKind::SignedIntOverflow,
            ),
            ("int x = 1; int y = 55; int main(void) { return x << y; }", ReportKind::ShiftOob),
            ("int x = 7; int y; int main(void) { return x / y; }", ReportKind::DivByZero),
            ("int *p; int main(void) { return *p; }", ReportKind::NullDeref),
            ("int a[4]; int i = 4; int main(void) { return a[i]; }", ReportKind::ArrayBound),
        ];
        for (src, kind) in cases {
            let m = build(src, OptLevel::O0, Some(Sanitizer::Ubsan), &reg);
            match run_module(&m) {
                RunResult::Report(r) => assert_eq!(r.kind, kind, "{src}"),
                o => panic!("{src}: {o:?}"),
            }
        }
    }

    #[test]
    fn msan_catches_uninit_branch() {
        let reg = DefectRegistry::pristine();
        let m = build_llvm(
            "int main(void) { int x; if (x + 1) { print_value(1); } return 0; }",
            OptLevel::O0,
            Some(Sanitizer::Msan),
            &reg,
        );
        assert!(matches!(
            run_module(&m),
            RunResult::Report(SanReport { kind: ReportKind::UninitUse, .. })
        ));
    }

    #[test]
    fn unchecked_ub_behaves_like_hardware() {
        let reg = DefectRegistry::pristine();
        // Signed overflow wraps silently without UBSan.
        let m = build(
            "int x = 2147483647; int main(void) { x = x + 1; return x == -2147483647 - 1; }",
            OptLevel::O0,
            None,
            &reg,
        );
        assert!(matches!(run_module(&m), RunResult::Exit { status: 1, .. }));
        // Division by zero traps (SIGFPE) without a report.
        let m = build("int y; int main(void) { return 3 / y; }", OptLevel::O0, None, &reg);
        assert!(matches!(run_module(&m), RunResult::Crash { kind: CrashKind::Fpe, .. }));
        // Small OOB reads hit deterministic 0xBE garbage in the gap.
        let m = build(
            "int a[2] = {1, 2}; int i = 2; int main(void) { return a[i] == a[i]; }",
            OptLevel::O0,
            None,
            &reg,
        );
        assert!(matches!(run_module(&m), RunResult::Exit { status: 1, .. }));
    }

    #[test]
    fn fig1_defect_world_misses_at_o2_catches_at_o0() {
        // The paper's Fig. 1 in the defect world: GCC ASan catches the
        // overflow at -O0 and misses it at -O2.
        let reg = DefectRegistry::full();
        let src = "
            struct a { int x; };
            struct a b[2];
            struct a *c = b;
            struct a *d = b;
            int k = 0;
            int main(void) {
                c->x = b[0].x;
                k = 2;
                c->x = (d + k)->x;
                return c->x;
            }
        ";
        let m0 = build(src, OptLevel::O0, Some(Sanitizer::Asan), &reg);
        let r0 = run_module(&m0);
        assert!(r0.is_report(), "-O0 catches: {r0:?}");
        let m2 = build(src, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        let r2 = run_module(&m2);
        assert!(r2.is_normal_exit(), "-O2 misses (FN): {r2:?}");
    }

    #[test]
    fn trace_records_crash_site() {
        let reg = DefectRegistry::pristine();
        let src = "int a[4]; int i = 9;\nint main(void) {\n    a[i] = 1;\n    return 0;\n}";
        let m = build(src, OptLevel::O0, Some(Sanitizer::Asan), &reg);
        let (r, trace) = run_traced(&m);
        assert!(r.is_report(), "{r:?}");
        assert_eq!(trace.last.line, 3, "crash site on the a[i] line");
        assert!(trace.contains(trace.last));
    }

    #[test]
    fn deterministic_across_runs() {
        let reg = DefectRegistry::full();
        let src = "int g[4] = {9, 9, 9, 9};
                   int main(void) { int s = 0;
                       for (int i = 0; i < 4; i = i + 1) { s += g[i]; }
                       print_value(s); return 0; }";
        let m = build(src, OptLevel::O2, None, &reg);
        assert_eq!(run_module(&m), run_module(&m));
    }

    #[test]
    fn store_forwarding_zero_extends_unsigned_globals() {
        // Regression: `~0` stored into a 4-byte unsigned global must read
        // back as 2^32 - 1 at every level (the -O2 store-forwarding pass
        // used to sign-extend the forwarded value).
        let reg = DefectRegistry::pristine();
        let src = "unsigned int g = 16U;
                   int main(void) {
                       g = ~(0 & -(g & 1023));
                       unsigned long c = (unsigned long)g;
                       print_value((long)c);
                       return 0;
                   }";
        for opt in OptLevel::ALL {
            let m = build(src, opt, None, &reg);
            match run_module(&m) {
                RunResult::Exit { output, .. } => {
                    assert_eq!(output, vec![4294967295], "{opt}")
                }
                other => panic!("{opt}: {other:?}"),
            }
        }
    }

    #[test]
    fn step_budget_exhaustion_is_a_timeout() {
        let reg = DefectRegistry::pristine();
        let src = "int g;\nint main(void) { while (g == 0) { g = 0; } return 0; }";
        // -O0 keeps the loop; a tiny budget must trip.
        let m = build(src, OptLevel::O0, None, &reg);
        let (r, _) = run_with_config(&m, &VmConfig { step_limit: 500, trace: false });
        assert!(matches!(r, RunResult::Timeout), "{r:?}");
    }

    #[test]
    fn null_dereference_raises_segv_without_sanitizer() {
        // On "hardware" a null store faults (the null guard page), with no
        // sanitizer report — UBSan is what turns this into a diagnosis.
        let reg = DefectRegistry::pristine();
        let src = "int main(void) { int *p = (int*)0; *p = 1; return 0; }";
        let m = build(src, OptLevel::O0, None, &reg);
        assert!(matches!(run_module(&m), RunResult::Crash { kind: CrashKind::Segv, .. }));
    }

    #[test]
    fn cross_object_pointer_difference_is_silent_on_hardware() {
        // CWE-469 (§3.2.4): the machine happily computes a raw address
        // distance; neither the VM nor any sanitizer objects. Only the
        // reference interpreter flags it.
        let reg = DefectRegistry::pristine();
        let src = "int a;
                   int b;
                   int main(void) {
                       int *p = &a;
                       int *q = &b;
                       print_value((p - q) != 0);
                       return 0;
                   }";
        for san in [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan)] {
            let m = build(src, OptLevel::O0, san, &reg);
            match run_module(&m) {
                RunResult::Exit { output, .. } => assert_eq!(output, vec![1], "{san:?}"),
                other => panic!("{san:?}: expected silence, got {other:?}"),
            }
        }
    }
}
