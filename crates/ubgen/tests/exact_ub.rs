//! Regression: shadow-statement insertion always yields exactly the
//! requested UB, at the recorded site, under the reference interpreter.
//!
//! This is the paper's central generator property (§3.2.3 validation;
//! Table 4 has no "No UB" column for UBfuzz): the interpreter stops at the
//! *first* UB event, so an `Outcome::Ub` whose kind and location equal the
//! generator's ground truth means the program reaches the planted UB and
//! no other UB precedes it — i.e. exactly one UB of the requested kind.

use ubfuzz_interp::{run_program, Outcome};
use ubfuzz_minic::UbKind;
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_ubgen::{generate, GenOptions};

#[test]
fn every_generated_program_has_exactly_the_requested_ub() {
    let opts = GenOptions { max_per_kind: 3, ..GenOptions::default() };
    for seed in 0..12u64 {
        let p = generate_seed(seed, &SeedOptions::default());
        for kind in UbKind::GENERATABLE {
            for u in generate(&p, kind, &opts) {
                match run_program(&u.program) {
                    Outcome::Ub(ev) => {
                        assert_eq!(
                            ev.kind, kind,
                            "seed {seed}: requested {kind}, interpreter saw {} ({})",
                            ev.kind, u.description
                        );
                        assert_eq!(
                            ev.loc, u.ub_loc,
                            "seed {seed}: {kind} fired at {:?}, ground truth {:?} ({})",
                            ev.loc, u.ub_loc, u.description
                        );
                    }
                    other => panic!(
                        "seed {seed}: {kind} program has no UB before exit: {other:?} ({})",
                        u.description
                    ),
                }
            }
        }
    }
}

#[test]
fn generator_is_deterministic() {
    let p = generate_seed(3, &SeedOptions::default());
    let opts = GenOptions::default();
    for kind in UbKind::GENERATABLE {
        let a = generate(&p, kind, &opts);
        let b = generate(&p, kind, &opts);
        assert_eq!(a.len(), b.len(), "{kind}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                ubfuzz_minic::print(&x.program),
                ubfuzz_minic::print(&y.program),
                "{kind}: nondeterministic generation"
            );
        }
    }
}
