//! `ubfuzz-ubgen` — the paper's UB program generator: **Shadow Statement
//! Insertion** (paper §3.1–§3.2, Table 1, Algorithm 1).
//!
//! Given a valid seed program and a target UB kind, the generator
//!
//! 1. **matches expressions** whose code construct can exhibit the kind
//!    (`GetMatchedExpr`, §3.2.1);
//! 2. **profiles** one execution of the seed, recording the observed values
//!    of the matched expressions and all allocation lifetimes
//!    (`Profile`, §3.2.2 — implemented by the reference interpreter's
//!    watch mechanism);
//! 3. **synthesizes a shadow statement** `Δ(expr)` per match and inserts it
//!    immediately before the statement containing the expression
//!    (`SynShadowStmt`/`Insert`, §3.2.3), using the instantiations of
//!    Table 1's last column — including the Fig. 6 variable-assignment form
//!    (`x = 5;`) when the mutable operand is a plain variable, and the
//!    auxiliary-variable form (`b̂x = v − x; a[x + b̂x]`) otherwise.
//!
//! Every candidate is then **validated** against the reference interpreter:
//! the mutated program must exhibit exactly the requested UB kind at exactly
//! the mutated expression. Candidates that fail (e.g. a sampled overflow
//! value that cannot be reached) are dropped, which establishes the paper's
//! property that UBfuzz-generated programs always contain the intended,
//! single UB (Table 4 has no "No UB" column for UBfuzz).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use ubfuzz_interp::{run_with_config, ExecConfig, ExecProfile, Outcome, Storage};
use ubfuzz_minic::ast::*;
use ubfuzz_minic::build as b;
use ubfuzz_minic::typeck::{typecheck, TypeMap};
use ubfuzz_minic::types::{IntType, Type};
use ubfuzz_minic::visit::{
    append_to_enclosing_block, enclosing_stmt, for_each_expr, for_each_stmt, insert_before_stmt,
    replace_expr,
};
use ubfuzz_minic::{pretty, Loc, NodeId, Program, UbKind};

/// Generator options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum UB programs emitted per (seed, kind).
    pub max_per_kind: usize,
    /// RNG seed for Monte-Carlo value sampling (§3.2.3, integer overflow).
    pub rng_seed: u64,
    /// Step budget for profiling and validation runs.
    pub step_limit: u64,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions { max_per_kind: 12, rng_seed: 1, step_limit: 400_000 }
    }
}

/// A generated UB program with its ground truth.
#[derive(Debug, Clone)]
pub struct UbProgram {
    /// The mutated program (relocated: fresh `(line, offset)`s).
    pub program: Program,
    /// The single UB it contains.
    pub kind: UbKind,
    /// Location of the UB expression in the mutated program.
    pub ub_loc: Loc,
    /// Node id of the UB expression.
    pub ub_node: NodeId,
    /// Human-readable description of the applied mutation.
    pub description: String,
}

/// One matched expression (the paper's `E` list entries).
#[derive(Debug, Clone)]
struct Candidate {
    kind: UbKind,
    /// The target expression.
    target: NodeId,
    /// Expressions whose runtime values the synthesizer needs.
    watch: Vec<NodeId>,
    /// Shape-specific payload.
    shape: Shape,
}

#[derive(Debug, Clone)]
enum Shape {
    /// `a[x]` with `a` an array of `len` elements of `elem_size` bytes;
    /// `idx` is the index expression; `idx_var` set when it is a plain
    /// mutable variable (enables the Fig. 6 `x = v;` instantiation).
    ArrayIndex { idx: NodeId, len: usize, elem_size: usize, idx_var: Option<String>, idx_ty: IntType },
    /// `*p` / `p->f` / `p[i]` with pointer expression `ptr`; `k_var` is the
    /// `*(d + k)` integer variable when present (Fig. 1 instantiation).
    PtrDeref { ptr: NodeId, elem_size: usize, k_var: Option<(String, NodeId)> },
    /// `*p` where `p` is a pointer variable (free/null/scope targets).
    VarDeref { var: String, ptr_ty: Type },
    /// `x op y` (or `-x` when `unary`).
    Arith { op: Option<BinOp>, a: NodeId, b: Option<NodeId>, ty: IntType },
    /// `x << y` / `x >> y`: the amount expression and promoted width.
    Shift { amount: NodeId, bits: u32, amount_ty: IntType },
    /// `x / y` / `x % y`: the divisor expression.
    Div { divisor: NodeId, ty: IntType },
    /// `if (x)` / `while (x)` condition; `stmt` is the branch statement.
    /// When the condition contains `e - constant`, `inject` is `e`'s node:
    /// mixing the uninitialized aux *under* the subtraction reproduces the
    /// Fig. 12f shape that MSan's sub-const shadow handling mishandles.
    Cond { stmt: NodeId, ty: IntType, inject: Option<NodeId> },
    /// `p - q` with both operands pointers; `q` is the right operand to
    /// divert into a fresh object (CWE-469, the paper's §3.2.4 extension).
    PtrSub { q: NodeId, pointee: Type },
}

/// Algorithm 1 for a single UB kind.
pub fn generate(seed: &Program, kind: UbKind, opts: &GenOptions) -> Vec<UbProgram> {
    generate_kinds(seed, &[kind], opts)
}

/// Algorithm 1 for all supported kinds at once (one profiling run per seed,
/// as in the implementation described in §3.2.2).
pub fn generate_all(seed: &Program, opts: &GenOptions) -> Vec<UbProgram> {
    generate_kinds(seed, &UbKind::GENERATABLE, opts)
}

/// [`generate_all`] plus the extension kinds of §3.2.4 ([`UbKind::EXTENSIONS`],
/// currently cross-object pointer subtraction). Kept separate so the paper's
/// table shapes stay on the nine Table 1 kinds by default.
pub fn generate_with_extensions(seed: &Program, opts: &GenOptions) -> Vec<UbProgram> {
    let kinds: Vec<UbKind> = UbKind::GENERATABLE
        .into_iter()
        .chain(UbKind::EXTENSIONS)
        .collect();
    generate_kinds(seed, &kinds, opts)
}

/// Algorithm 1 with an explicit per-kind emission budget — the seam
/// coverage-guided campaigns use to concentrate candidates on UB kinds
/// whose sanitizer coverage points the frontier has not reached.
///
/// Kinds appear in `budgets` order (callers pass the canonical
/// [`UbKind::GENERATABLE`] order for determinism); a zero budget skips the
/// kind entirely. With every budget equal to `opts.max_per_kind` the output
/// is **identical** to [`generate_all`] — the uniform strategy stays the
/// bit-identical reference.
pub fn generate_budgeted(
    seed: &Program,
    budgets: &[(UbKind, usize)],
    opts: &GenOptions,
) -> Vec<UbProgram> {
    generate_kinds_budgeted(seed, budgets, opts)
}

fn generate_kinds(seed: &Program, kinds: &[UbKind], opts: &GenOptions) -> Vec<UbProgram> {
    let budgets: Vec<(UbKind, usize)> =
        kinds.iter().map(|kind| (*kind, opts.max_per_kind)).collect();
    generate_kinds_budgeted(seed, &budgets, opts)
}

fn generate_kinds_budgeted(
    seed: &Program,
    budgets: &[(UbKind, usize)],
    opts: &GenOptions,
) -> Vec<UbProgram> {
    let Ok(tmap) = typecheck(seed) else { return Vec::new() };
    let mut candidates = Vec::new();
    for &(kind, budget) in budgets {
        if budget == 0 {
            continue;
        }
        let mut matched = match_expressions(seed, kind, &tmap);
        matched.truncate(budget * 3);
        candidates.extend(matched);
    }
    if candidates.is_empty() {
        return Vec::new();
    }
    // Profile once with the union of all watch sets.
    let mut watch: HashSet<NodeId> = HashSet::new();
    for c in &candidates {
        watch.extend(c.watch.iter().copied());
    }
    let cfg = ExecConfig { watch, step_limit: opts.step_limit, ..ExecConfig::default() };
    let (outcome, profile) = run_with_config(seed, &cfg);
    if !outcome.is_clean_exit() {
        return Vec::new(); // not a valid seed
    }
    let budget_of: std::collections::HashMap<UbKind, usize> =
        budgets.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(opts.rng_seed);
    let mut out: Vec<UbProgram> = Vec::new();
    let mut per_kind = std::collections::HashMap::new();
    for c in candidates {
        let count = per_kind.entry(c.kind).or_insert(0usize);
        if *count >= budget_of.get(&c.kind).copied().unwrap_or(0) {
            continue;
        }
        if let Some(p) = synthesize(seed, &tmap, &profile, &c, &mut rng, opts) {
            *count += 1;
            out.push(p);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Expression matching (GetMatchedExpr)
// ---------------------------------------------------------------------------

fn match_expressions(p: &Program, kind: UbKind, tmap: &TypeMap) -> Vec<Candidate> {
    let mut out = Vec::new();
    let ty_of = |id: NodeId| tmap.get(&id).cloned().unwrap_or_else(Type::int);
    match kind {
        UbKind::BufOverflowArray => {
            for_each_expr(p, |e| {
                if let ExprKind::Index(base, idx) = &e.kind {
                    if let Type::Array(elem, len) = ty_of(base.id) {
                        let idx_var = match &idx.kind {
                            ExprKind::Var(n) => Some(n.clone()),
                            _ => None,
                        };
                        let idx_ty = ty_of(idx.id).as_int().unwrap_or(IntType::INT);
                        out.push(Candidate {
                            kind,
                            target: e.id,
                            watch: vec![idx.id],
                            shape: Shape::ArrayIndex {
                                idx: idx.id,
                                len,
                                elem_size: elem.size_of(&p.structs),
                                idx_var,
                                idx_ty,
                            },
                        });
                    }
                }
            });
        }
        UbKind::BufOverflowPtr => {
            for_each_expr(p, |e| {
                let inner = match &e.kind {
                    ExprKind::Deref(i) => Some(i),
                    ExprKind::Arrow(i, _) => Some(i),
                    _ => None,
                };
                let Some(inner) = inner else { return };
                let ity = ty_of(inner.id).decayed();
                let Type::Ptr(pointee) = ity else { return };
                let elem_size = pointee.size_of(&p.structs).max(1);
                // Fig. 1 form: `*(d + k)` with k an integer variable.
                let k_var = match &inner.kind {
                    ExprKind::Binary(BinOp::Add, _, r) => match &r.kind {
                        ExprKind::Var(n) => Some((n.clone(), r.id)),
                        _ => None,
                    },
                    _ => None,
                };
                let mut watch = vec![inner.id];
                if let Some((_, k_id)) = &k_var {
                    watch.push(*k_id);
                }
                out.push(Candidate {
                    kind,
                    target: e.id,
                    watch,
                    shape: Shape::PtrDeref { ptr: inner.id, elem_size, k_var },
                });
            });
        }
        UbKind::UseAfterFree | UbKind::NullDeref | UbKind::UseAfterScope => {
            for_each_expr(p, |e| {
                let inner = match &e.kind {
                    ExprKind::Deref(i) => Some(i),
                    ExprKind::Arrow(i, _) => Some(i),
                    ExprKind::Index(i, _) if ty_of(i.id).is_ptr() => Some(i),
                    _ => None,
                };
                let Some(inner) = inner else { return };
                if let ExprKind::Var(name) = &inner.kind {
                    let pty = ty_of(inner.id);
                    if pty.is_ptr() {
                        out.push(Candidate {
                            kind,
                            target: e.id,
                            watch: vec![inner.id],
                            shape: Shape::VarDeref { var: name.clone(), ptr_ty: pty },
                        });
                    }
                }
            });
        }
        UbKind::IntOverflow => {
            for_each_expr(p, |e| match &e.kind {
                ExprKind::Binary(op, a, bb) if op.is_arith() => {
                    let ta = ty_of(a.id).as_int().map(IntType::promoted);
                    let tb = ty_of(bb.id).as_int().map(IntType::promoted);
                    if let (Some(ta), Some(tb)) = (ta, tb) {
                        let ty = ta.unify(tb);
                        if ty.signed {
                            out.push(Candidate {
                                kind,
                                target: e.id,
                                watch: vec![a.id, bb.id],
                                shape: Shape::Arith {
                                    op: Some(*op),
                                    a: a.id,
                                    b: Some(bb.id),
                                    ty,
                                },
                            });
                        }
                    }
                }
                ExprKind::Unary(UnOp::Neg, a) => {
                    if let Some(ta) = ty_of(a.id).as_int().map(IntType::promoted) {
                        if ta.signed {
                            out.push(Candidate {
                                kind,
                                target: e.id,
                                watch: vec![a.id],
                                shape: Shape::Arith { op: None, a: a.id, b: None, ty: ta },
                            });
                        }
                    }
                }
                _ => {}
            });
        }
        UbKind::ShiftOverflow => {
            for_each_expr(p, |e| {
                if let ExprKind::Binary(op @ (BinOp::Shl | BinOp::Shr), a, amt) = &e.kind {
                    let _ = op;
                    let bits = ty_of(a.id)
                        .as_int()
                        .map_or(32, |t| t.promoted().width.bits());
                    let amount_ty = ty_of(amt.id).as_int().unwrap_or(IntType::INT).promoted();
                    out.push(Candidate {
                        kind,
                        target: e.id,
                        watch: vec![amt.id],
                        shape: Shape::Shift { amount: amt.id, bits, amount_ty },
                    });
                }
            });
        }
        UbKind::DivByZero => {
            for_each_expr(p, |e| {
                if let ExprKind::Binary(BinOp::Div | BinOp::Rem, _, d) = &e.kind {
                    let ty = ty_of(d.id).as_int().unwrap_or(IntType::INT).promoted();
                    out.push(Candidate {
                        kind,
                        target: e.id,
                        watch: vec![d.id],
                        shape: Shape::Div { divisor: d.id, ty },
                    });
                }
            });
        }
        UbKind::UninitUse => {
            for_each_stmt(p, |s| {
                let cond = match &s.kind {
                    StmtKind::If(c, ..) => Some(c),
                    StmtKind::While(c, _) => Some(c),
                    _ => None,
                };
                if let Some(c) = cond {
                    if let Some(it) = ty_of(c.id).as_int() {
                        // Prefer injecting under an `e - constant` subterm
                        // when one exists (Fig. 12f shape).
                        let mut inject = None;
                        if let ExprKind::Binary(BinOp::Sub, a, rb) = &c.kind {
                            if matches!(rb.kind, ExprKind::IntLit(..)) {
                                inject = Some(a.id);
                            }
                        }
                        out.push(Candidate {
                            kind,
                            target: c.id,
                            watch: vec![],
                            shape: Shape::Cond { stmt: s.id, ty: it.promoted(), inject },
                        });
                    }
                }
            });
        }
        UbKind::InvalidFree => {}
        UbKind::PtrDiff => {
            // C17 6.5.6p9 (CWE-469): `p - q` is UB unless both point into
            // the same object. Matching mirrors the paper's §3.2.4 sketch.
            for_each_expr(p, |e| {
                if let ExprKind::Binary(BinOp::Sub, a, q) = &e.kind {
                    let ta = ty_of(a.id).decayed();
                    let tq = ty_of(q.id).decayed();
                    if let (Some(pointee), true) = (ta.pointee(), tq.is_ptr()) {
                        out.push(Candidate {
                            kind,
                            target: e.id,
                            watch: vec![a.id, q.id],
                            shape: Shape::PtrSub { q: q.id, pointee: pointee.clone() },
                        });
                    }
                }
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shadow statement synthesis and insertion (SynShadowStmt + Insert)
// ---------------------------------------------------------------------------

fn synthesize(
    seed: &Program,
    _tmap: &TypeMap,
    prof: &ExecProfile,
    c: &Candidate,
    rng: &mut StdRng,
    opts: &GenOptions,
) -> Option<UbProgram> {
    let mut p = seed.clone();
    let description;
    match &c.shape {
        Shape::ArrayIndex { idx, len, elem_size, idx_var, idx_ty } => {
            // ASan detects ≤ 32 bytes past the object (§2.1): land within.
            let max_extra = (32 / *elem_size).max(1) as i64;
            let v = *len as i64 + rng.gen_range(0..max_extra);
            match idx_var {
                Some(name) => {
                    // Fig. 6: `x = v;` before the access.
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s = b::expr_stmt(b::assign(b::var(name), b::lit(v)));
                    s.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s]);
                    description = format!("array overflow: set index `{name}` to {v}");
                }
                None => {
                    let cur = prof.q_val(*idx)?;
                    let delta = v as i128 - cur;
                    if !idx_ty.contains(delta) {
                        return None;
                    }
                    let aux = add_aux_global(&mut p, Type::Int(*idx_ty));
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s =
                        b::expr_stmt(b::assign(b::var(&aux), b::lit_ty(delta, *idx_ty)));
                    s.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s]);
                    // a[x] → a[x + aux]
                    let idx_clone = find_expr(&p, *idx)?;
                    let mut new_idx = b::add(idx_clone, b::var(&aux));
                    new_idx.id = *idx;
                    replace_expr(&mut p, *idx, new_idx);
                    description =
                        format!("array overflow via aux `{aux} = {delta}` (index → {v})");
                }
            }
        }
        Shape::PtrDeref { ptr, elem_size, k_var } => {
            let pe = prof.q_mem(*ptr)?;
            let room = (32 / *elem_size).max(1) as i64;
            let past = (pe.obj_size as i64 - pe.off).max(0) / *elem_size as i64;
            let delta_elems = past + rng.gen_range(0..room);
            if delta_elems == 0 {
                return None;
            }
            match k_var {
                Some((name, k_id)) => {
                    // Fig. 1: mutate `k` so `*(d + k)` lands in the red zone.
                    let kcur = prof.q_val(*k_id)?;
                    let v = kcur as i64 + delta_elems;
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s = b::expr_stmt(b::assign(b::var(name), b::lit(v)));
                    s.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s]);
                    description = format!("pointer overflow: set `{name}` to {v} (Fig. 1 form)");
                }
                None => {
                    let aux = add_aux_global(&mut p, Type::int());
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s = b::expr_stmt(b::assign(b::var(&aux), b::lit(delta_elems)));
                    s.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s]);
                    // *p → *(p + aux)
                    let ptr_clone = find_expr(&p, *ptr)?;
                    let mut new_ptr = b::add(ptr_clone, b::var(&aux));
                    new_ptr.id = *ptr;
                    replace_expr(&mut p, *ptr, new_ptr);
                    description =
                        format!("pointer overflow via aux `{aux} = {delta_elems}` elements");
                }
            }
        }
        Shape::VarDeref { var, ptr_ty } => match c.kind {
            UbKind::UseAfterFree => {
                let pe = prof.q_mem(c.watch[0])?;
                if pe.storage != Storage::Heap {
                    return None;
                }
                // Only heap blocks the seed never frees: the inserted free
                // becomes the program's single lifetime violation.
                if prof.object(pe.obj).and_then(|o| o.freed_time).is_some() {
                    return None;
                }
                let (anchor, _) = enclosing_stmt(&p, c.target)?;
                let mut s = b::expr_stmt(b::call("free", vec![b::var(var)]));
                s.id = p.fresh_id();
                insert_before_stmt(&mut p, anchor, vec![s]);
                description = format!("use-after-free: `free({var});` before the dereference");
            }
            UbKind::NullDeref => {
                let (anchor, _) = enclosing_stmt(&p, c.target)?;
                let mut s = b::expr_stmt(b::assign(
                    b::var(var),
                    b::cast(ptr_ty.clone(), b::lit(0)),
                ));
                s.id = p.fresh_id();
                insert_before_stmt(&mut p, anchor, vec![s]);
                description = format!("null dereference: `{var} = 0;` before the dereference");
            }
            UbKind::UseAfterScope => {
                // Find an inner-scope object that dies before the target
                // dereference executes, and leak its address into `var` at
                // the end of its block.
                let (deref_stmt, fname) = enclosing_stmt(&p, c.target)?;
                let deref_time = prof.stmt_time(deref_stmt)?;
                let obj = prof.objects.iter().find(|o| {
                    o.storage == Storage::Stack
                        && o.fn_name == fname
                        && o.dead_time.is_some_and(|t| t < deref_time)
                        && o.decl_node != NodeId::DUMMY
                        && o.size <= 8
                        && !o.name.starts_with('$')
                        && !prof.var_written_between(
                            var,
                            o.dead_time.unwrap_or(0),
                            deref_time,
                        )
                })?;
                let pointee = ptr_ty.pointee()?.clone();
                let mut s = b::expr_stmt(b::assign(
                    b::var(var),
                    b::cast(Type::ptr(pointee), b::addr_of(b::var(&obj.name))),
                ));
                s.id = p.fresh_id();
                if !append_to_enclosing_block(&mut p, obj.decl_node, vec![s]) {
                    return None;
                }
                description = format!(
                    "use-after-scope: `{var} = &{};` leaked from an inner scope",
                    obj.name
                );
            }
            _ => return None,
        },
        Shape::Arith { op, a, b: rb, ty } => {
            let va = prof.q_val(*a)?;
            match (op, rb) {
                (Some(op), Some(rb)) => {
                    let vb = prof.q_val(*rb)?;
                    let (v0, v1) = sample_overflow(*op, *ty, rng, va, vb, 24)?;
                    let aux_a = add_aux_global(&mut p, Type::Int(*ty));
                    let aux_b = add_aux_global(&mut p, Type::Int(*ty));
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s1 =
                        b::expr_stmt(b::assign(b::var(&aux_a), b::lit_ty(v0 - va, *ty)));
                    let mut s2 =
                        b::expr_stmt(b::assign(b::var(&aux_b), b::lit_ty(v1 - vb, *ty)));
                    s1.id = p.fresh_id();
                    s2.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s1, s2]);
                    let ea = find_expr(&p, *a)?;
                    let eb = find_expr(&p, *rb)?;
                    let mut rewritten = b::bin(
                        *op,
                        b::add(ea, b::var(&aux_a)),
                        b::add(eb, b::var(&aux_b)),
                    );
                    rewritten.id = c.target;
                    replace_expr(&mut p, c.target, rewritten);
                    description = format!(
                        "integer overflow: operands steered to {v0} {} {v1}",
                        op.symbol()
                    );
                }
                _ => {
                    // Unary negation: -(x + aux) with x + aux == MIN.
                    let aux = add_aux_global(&mut p, Type::Int(*ty));
                    let delta = ty.min_value() - va;
                    if !ty.contains(delta) {
                        return None;
                    }
                    let (anchor, _) = enclosing_stmt(&p, c.target)?;
                    let mut s = b::expr_stmt(b::assign(b::var(&aux), b::lit_ty(delta, *ty)));
                    s.id = p.fresh_id();
                    insert_before_stmt(&mut p, anchor, vec![s]);
                    let ea = find_expr(&p, *a)?;
                    let mut rewritten = b::un(UnOp::Neg, b::add(ea, b::var(&aux)));
                    rewritten.id = c.target;
                    replace_expr(&mut p, c.target, rewritten);
                    description = "negation overflow: operand steered to MIN".to_string();
                }
            }
        }
        Shape::Shift { amount, bits, amount_ty } => {
            let cur = prof.q_val(*amount)?;
            let v: i128 = if rng.gen_bool(0.5) {
                *bits as i128 + rng.gen_range(0..16) as i128
            } else {
                -(1 + rng.gen_range(0..8) as i128)
            };
            let delta = v - cur;
            if !amount_ty.contains(delta) {
                return None;
            }
            let aux = add_aux_global(&mut p, Type::Int(*amount_ty));
            let (anchor, _) = enclosing_stmt(&p, c.target)?;
            let mut s = b::expr_stmt(b::assign(b::var(&aux), b::lit_ty(delta, *amount_ty)));
            s.id = p.fresh_id();
            insert_before_stmt(&mut p, anchor, vec![s]);
            let ea = find_expr(&p, *amount)?;
            let mut rewritten = b::add(ea, b::var(&aux));
            rewritten.id = *amount;
            replace_expr(&mut p, *amount, rewritten);
            description = format!("shift overflow: exponent steered to {v}");
        }
        Shape::Div { divisor, ty } => {
            let cur = prof.q_val(*divisor)?;
            let delta = -cur;
            if !ty.contains(delta) {
                return None;
            }
            let aux = add_aux_global(&mut p, Type::Int(*ty));
            let (anchor, _) = enclosing_stmt(&p, c.target)?;
            let mut s = b::expr_stmt(b::assign(b::var(&aux), b::lit_ty(delta, *ty)));
            s.id = p.fresh_id();
            insert_before_stmt(&mut p, anchor, vec![s]);
            let ea = find_expr(&p, *divisor)?;
            let mut rewritten = b::add(ea, b::var(&aux));
            rewritten.id = *divisor;
            replace_expr(&mut p, *divisor, rewritten);
            description = "division by zero: divisor steered to 0".to_string();
        }
        Shape::Cond { stmt, ty, inject } => {
            let aux = format!("__ub_u{}", p.next_id);
            let mut decl = b::decl_stmt(&aux, Type::Int(*ty), None);
            decl.id = p.fresh_id();
            insert_before_stmt(&mut p, *stmt, vec![decl]);
            let site = inject.unwrap_or(c.target);
            let ec = find_expr(&p, site)?;
            let mut rewritten = b::add(ec, b::var(&aux));
            rewritten.id = site;
            replace_expr(&mut p, site, rewritten);
            description = format!("uninitialized use: condition mixed with uninit `{aux}`");
        }
        Shape::PtrSub { q, pointee } => {
            // Q_liv/Q_mem: both operands must execute and point at objects;
            // a fresh aux global is by construction a *different* object, so
            // `q̂ = (T*)&aux; Stmt{p − q̂}` breaks C17 6.5.6p9 precisely.
            prof.q_mem(c.watch[0])?;
            prof.q_mem(*q)?;
            let obj_aux = add_aux_global(&mut p, Type::int());
            let qhat = add_aux_global(&mut p, Type::ptr(pointee.clone()));
            let (anchor, _) = enclosing_stmt(&p, c.target)?;
            let mut s = b::expr_stmt(b::assign(
                b::var(&qhat),
                b::cast(Type::ptr(pointee.clone()), b::addr_of(b::var(&obj_aux))),
            ));
            s.id = p.fresh_id();
            insert_before_stmt(&mut p, anchor, vec![s]);
            let mut new_q = b::var(&qhat);
            new_q.id = *q;
            replace_expr(&mut p, *q, new_q);
            description = format!(
                "pointer difference across objects: right operand diverted to `&{obj_aux}` via `{qhat}`"
            );
        }
    }
    p.assign_ids();
    pretty::relocate(&mut p);
    // Validate: exactly the requested UB at exactly the mutated expression.
    let cfg = ExecConfig { step_limit: opts.step_limit, ..ExecConfig::default() };
    let (outcome, _) = run_with_config(&p, &cfg);
    match outcome {
        Outcome::Ub(ev) if ev.kind == c.kind && ev.node == c.target => {
            let ub_loc = ev.loc;
            Some(UbProgram { program: p, kind: c.kind, ub_loc, ub_node: c.target, description })
        }
        _ => None,
    }
}

/// Adds a zero-initialized auxiliary global (`b̂x` in Table 1) and returns
/// its name.
fn add_aux_global(p: &mut Program, ty: Type) -> String {
    let name = format!("__ub_aux{}", p.globals.len());
    p.globals.push(Decl {
        name: name.clone(),
        ty: ty.clone(),
        init: Some(Init::Expr(b::lit_ty(0, ty.as_int().unwrap_or(IntType::INT)))),
    });
    name
}

/// Clones the expression with the given id out of the program.
fn find_expr(p: &Program, id: NodeId) -> Option<Expr> {
    let mut found = None;
    for_each_expr(p, |e| {
        if e.id == id && found.is_none() {
            found = Some(e.clone());
        }
    });
    found
}

/// Monte-Carlo sampling of `(v0, v1)` with `v0 op v1` overflowing `ty`
/// while both deltas stay representable (§3.2.3).
fn sample_overflow(
    op: BinOp,
    ty: IntType,
    rng: &mut StdRng,
    va: i128,
    vb: i128,
    tries: usize,
) -> Option<(i128, i128)> {
    let (min, max) = (ty.min_value(), ty.max_value());
    for _ in 0..tries {
        let (v0, v1) = match op {
            BinOp::Add => {
                let r = rng.gen_range(1..1000) as i128;
                (max - rng.gen_range(0..100) as i128, r + rng.gen_range(100..1000) as i128)
            }
            BinOp::Sub => {
                let r = rng.gen_range(1..1000) as i128;
                (min + rng.gen_range(0..100) as i128, r + rng.gen_range(100..1000) as i128)
            }
            BinOp::Mul => (max / 2 + rng.gen_range(1..1000) as i128, 2 + rng.gen_range(0..2) as i128),
            BinOp::Div | BinOp::Rem => (min, -1),
            _ => return None,
        };
        let result = match op {
            BinOp::Add => v0.checked_add(v1),
            BinOp::Sub => v0.checked_sub(v1),
            BinOp::Mul => v0.checked_mul(v1),
            BinOp::Div => (v1 != 0).then(|| v0 / v1).filter(|_| !(v0 == min && v1 == -1)),
            BinOp::Rem => (v1 != 0).then(|| v0 % v1).filter(|_| !(v0 == min && v1 == -1)),
            _ => None,
        };
        let overflows = match op {
            BinOp::Div | BinOp::Rem => v0 == min && v1 == -1,
            _ => result.is_none_or(|r| !ty.contains(r)),
        };
        if overflows && ty.contains(v0 - va) && ty.contains(v1 - vb) && ty.contains(v0) && ty.contains(v1)
        {
            return Some((v0, v1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_seedgen::{generate_seed, SeedOptions};

    fn gen_kind(src: &str, kind: UbKind) -> Vec<UbProgram> {
        let p = parse(src).unwrap();
        let mut p = p;
        pretty::relocate(&mut p);
        generate(&p, kind, &GenOptions::default())
    }

    #[test]
    fn array_overflow_fig6_form() {
        let out = gen_kind(
            "int a[5];\nint main(void) {\n    int x = 1;\n    a[x] = 1;\n    return a[0];\n}",
            UbKind::BufOverflowArray,
        );
        assert!(!out.is_empty());
        let text = pretty::print(&out[0].program);
        let fig6 = (5..13).any(|v| text.contains(&format!("x = {v};")));
        assert!(fig6 || text.contains("__ub_aux"), "{text}");
    }

    #[test]
    fn fig1_pointer_overflow_via_k() {
        let out = gen_kind(
            "struct a { int x; };
             struct a b[2];
             struct a *c = b;
             struct a *d = b;
             int k = 0;
             int main(void) {
                 *c = *b;
                 *c = *(d + k);
                 return c->x;
             }",
            UbKind::BufOverflowPtr,
        );
        assert!(!out.is_empty());
        assert!(
            out.iter().any(|u| {
                let text = pretty::print(&u.program);
                (2..10).any(|v| text.contains(&format!("k = {v};")))
            }),
            "Fig. 1 `k = v;` instantiation produced"
        );
    }

    #[test]
    fn use_after_free_generated() {
        let out = gen_kind(
            "int main(void) {
                int *h = (int*)malloc(16);
                h[0] = 1;
                int v = h[0];
                print_value(v);
                return 0;
             }",
            UbKind::UseAfterFree,
        );
        assert!(!out.is_empty());
        assert!(pretty::print(&out[0].program).contains("free(h);"));
    }

    #[test]
    fn null_deref_generated_for_rmw() {
        let out = gen_kind(
            "int g; int *p = &g;
             int main(void) { ++(*p); return g; }",
            UbKind::NullDeref,
        );
        assert!(!out.is_empty());
        assert!(pretty::print(&out[0].program).contains("p = (int*)0;"));
    }

    #[test]
    fn use_after_scope_generated() {
        let out = gen_kind(
            "int g;
             int main(void) {
                int *q = &g;
                { int t = 3; g = t; }
                int sink = *q;
                print_value(sink);
                return 0;
             }",
            UbKind::UseAfterScope,
        );
        assert!(!out.is_empty());
        assert!(pretty::print(&out[0].program).contains("q = (int*)&t;"),
            "{}", pretty::print(&out[0].program));
    }

    #[test]
    fn arithmetic_kinds_generated() {
        let src = "int x = 10; int y = 3;
             int main(void) {
                 int s = x + y;
                 int q = x / (y + 1);
                 int h = x << (y & 7);
                 print_value(s + q + h);
                 return 0;
             }";
        for kind in [UbKind::IntOverflow, UbKind::DivByZero, UbKind::ShiftOverflow] {
            let out = gen_kind(src, kind);
            assert!(!out.is_empty(), "{kind} generated");
            assert!(out.iter().all(|u| u.kind == kind));
        }
    }

    #[test]
    fn uninit_generated() {
        let out = gen_kind(
            "int x = 4;
             int main(void) { if (x > 2) { print_value(x); } return 0; }",
            UbKind::UninitUse,
        );
        assert!(!out.is_empty());
        assert!(pretty::print(&out[0].program).contains("__ub_u"));
    }

    #[test]
    fn all_generated_programs_validated_single_ub() {
        // The Table 4 property: every UBfuzz output contains the target UB.
        let seed = generate_seed(11, &SeedOptions::default());
        let out = generate_all(&seed, &GenOptions::default());
        assert!(!out.is_empty());
        for u in &out {
            let outcome = ubfuzz_interp::run_program(&u.program);
            let ev = outcome.ub().unwrap_or_else(|| {
                panic!("{}: expected UB, got {outcome:?}", u.description)
            });
            assert_eq!(ev.kind, u.kind, "{}", u.description);
        }
    }

    #[test]
    fn generation_covers_multiple_kinds_across_seeds() {
        let mut kinds = HashSet::new();
        for s in 0..12 {
            let seed = generate_seed(s, &SeedOptions::default());
            for u in generate_all(&seed, &GenOptions::default()) {
                kinds.insert(u.kind);
            }
        }
        assert!(kinds.len() >= 6, "kinds covered: {kinds:?}");
    }

    #[test]
    fn ptr_diff_extension_generated_and_validated() {
        // §3.2.4: divert the right operand of a same-object pointer
        // difference into a fresh object (CWE-469).
        let out = gen_kind(
            "int buf[4];
             int main(void) {
                int *p = buf;
                int d = (int)((p + 2) - p);
                print_value(d);
                return 0;
             }",
            UbKind::PtrDiff,
        );
        assert!(!out.is_empty());
        for u in &out {
            assert_eq!(u.kind, UbKind::PtrDiff);
            let outcome = ubfuzz_interp::run_program(&u.program);
            assert_eq!(outcome.ub().map(|e| e.kind), Some(UbKind::PtrDiff), "{}", u.description);
        }
        assert!(pretty::print(&out[0].program).contains("__ub_aux"));
    }

    #[test]
    fn ptr_diff_appears_in_extended_generation_only() {
        // Seeds contain same-object `p - q` leaves; the default kind set
        // must not mutate them (the paper's Table 1 has nine kinds), the
        // extended set may.
        let mut default_kinds = HashSet::new();
        let mut extended_kinds = HashSet::new();
        for s in 0..30 {
            let seed = generate_seed(s, &SeedOptions::default());
            for u in generate_all(&seed, &GenOptions::default()) {
                default_kinds.insert(u.kind);
            }
            for u in generate_with_extensions(&seed, &GenOptions::default()) {
                extended_kinds.insert(u.kind);
            }
        }
        assert!(!default_kinds.contains(&UbKind::PtrDiff));
        assert!(
            extended_kinds.contains(&UbKind::PtrDiff),
            "30 seeds should yield at least one pointer-difference site: {extended_kinds:?}"
        );
    }
}
