//! `ubfuzz-reduce` — a C-Reduce-style test-case reducer.
//!
//! The paper's reporting pipeline runs C-Reduce on every bug-triggering
//! program before filing it. This reducer plays the same role: given a
//! program and an *interestingness* predicate (e.g. "this sanitizer still
//! misses the UB"), it greedily deletes statements, collapses branches, and
//! drops unused globals and functions while the predicate keeps holding.

use ubfuzz_minic::ast::*;
use ubfuzz_minic::visit::for_each_expr;
use ubfuzz_minic::{pretty, Program};

/// Reduces `program` while `interesting` holds.
///
/// The input program itself must be interesting; the reducer panics
/// otherwise (a misconfigured predicate would silently return garbage).
///
/// # Panics
///
/// Panics if `interesting(program)` is false.
pub fn reduce(program: &Program, interesting: &mut dyn FnMut(&Program) -> bool) -> Program {
    assert!(interesting(program), "input program must be interesting");
    let mut best = program.clone();
    let mut progress = true;
    let mut rounds = 0;
    while progress && rounds < 12 {
        progress = false;
        rounds += 1;
        // Pass 1: delete one statement at a time (deepest lists first is
        // approximated by repeated whole-tree sweeps).
        loop {
            let paths = stmt_count(&best);
            let mut deleted = false;
            for i in 0..paths {
                let mut candidate = best.clone();
                if !delete_nth_stmt(&mut candidate, i) {
                    continue;
                }
                finalize(&mut candidate);
                if interesting(&candidate) {
                    best = candidate;
                    deleted = true;
                    progress = true;
                    break;
                }
            }
            if !deleted {
                break;
            }
        }
        // Pass 2: drop unreferenced functions.
        let mut candidate = best.clone();
        let referenced = referenced_functions(&candidate);
        candidate.functions.retain(|f| f.name == "main" || referenced.contains(&f.name));
        if candidate.functions.len() != best.functions.len() {
            finalize(&mut candidate);
            if interesting(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        // Pass 3: drop unreferenced globals.
        let mut candidate = best.clone();
        let used = referenced_names(&candidate);
        candidate.globals.retain(|g| used.contains(&g.name));
        if candidate.globals.len() != best.globals.len() {
            finalize(&mut candidate);
            if interesting(&candidate) {
                best = candidate;
                progress = true;
            }
        }
    }
    best
}

fn finalize(p: &mut Program) {
    p.assign_ids();
    pretty::relocate(p);
}

fn referenced_functions(p: &Program) -> std::collections::HashSet<String> {
    let mut used = std::collections::HashSet::new();
    for_each_expr(p, |e| {
        if let ExprKind::Call(name, _) = &e.kind {
            used.insert(name.clone());
        }
    });
    used
}

fn referenced_names(p: &Program) -> std::collections::HashSet<String> {
    let mut used = std::collections::HashSet::new();
    for_each_expr(p, |e| {
        if let ExprKind::Var(name) = &e.kind {
            used.insert(name.clone());
        }
    });
    // Globals referenced from other globals' initializers.
    for g in &p.globals {
        if let Some(init) = &g.init {
            collect_init_names(init, &mut used);
        }
    }
    used
}

fn collect_init_names(init: &Init, used: &mut std::collections::HashSet<String>) {
    match init {
        Init::Expr(e) => collect_expr_names(e, used),
        Init::List(items) => {
            for i in items {
                collect_init_names(i, used);
            }
        }
    }
}

fn collect_expr_names(e: &Expr, used: &mut std::collections::HashSet<String>) {
    if let ExprKind::Var(n) = &e.kind {
        used.insert(n.clone());
    }
    match &e.kind {
        ExprKind::Unary(_, a)
        | ExprKind::AddrOf(a)
        | ExprKind::Deref(a)
        | ExprKind::Cast(_, a)
        | ExprKind::PreInc(a)
        | ExprKind::PreDec(a)
        | ExprKind::Member(a, _)
        | ExprKind::Arrow(a, _) => collect_expr_names(a, used),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::CompoundAssign(_, a, b)
        | ExprKind::Index(a, b) => {
            collect_expr_names(a, used);
            collect_expr_names(b, used);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                collect_expr_names(a, used);
            }
        }
        ExprKind::Cond(c, t, f) => {
            collect_expr_names(c, used);
            collect_expr_names(t, used);
            collect_expr_names(f, used);
        }
        _ => {}
    }
}

/// Counts deletable statement positions (pre-order over all blocks).
fn stmt_count(p: &Program) -> usize {
    let mut n = 0;
    for f in &p.functions {
        count_block(&f.body, &mut n);
    }
    n
}

fn count_block(b: &Block, n: &mut usize) {
    for s in &b.stmts {
        *n += 1;
        match &s.kind {
            StmtKind::If(_, t, f) => {
                count_block(t, n);
                if let Some(f) = f {
                    count_block(f, n);
                }
            }
            StmtKind::While(_, body) | StmtKind::For { body, .. } => count_block(body, n),
            StmtKind::Block(body) => count_block(body, n),
            _ => {}
        }
    }
}

/// Deletes the `target`-th statement (pre-order); returns false when the
/// position points at a `return` in `main` (kept for validity).
fn delete_nth_stmt(p: &mut Program, target: usize) -> bool {
    let mut idx = 0;
    for f in &mut p.functions {
        if delete_in_block(&mut f.body, target, &mut idx) {
            return true;
        }
    }
    false
}

fn delete_in_block(b: &mut Block, target: usize, idx: &mut usize) -> bool {
    let mut i = 0;
    while i < b.stmts.len() {
        if *idx == target {
            if matches!(b.stmts[i].kind, StmtKind::Return(_)) {
                *idx += 1;
                i += 1;
                continue;
            }
            b.stmts.remove(i);
            return true;
        }
        *idx += 1;
        let done = match &mut b.stmts[i].kind {
            StmtKind::If(_, t, f) => {
                delete_in_block(t, target, idx)
                    || f.as_mut().is_some_and(|f| delete_in_block(f, target, idx))
            }
            StmtKind::While(_, body) | StmtKind::For { body, .. } => {
                delete_in_block(body, target, idx)
            }
            StmtKind::Block(body) => delete_in_block(body, target, idx),
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;

    #[test]
    fn reduces_to_minimal_ub_program() {
        let src = "
            int unused_global = 7;
            int helper(int a, int *b) { return a + b[0]; }
            int a[4];
            int i = 9;
            int main(void) {
                int x = 1;
                int y = x + 2;
                print_value(y);
                a[i] = 1;
                print_value(x);
                return 0;
            }
        ";
        let mut p = parse(src).unwrap();
        pretty::relocate(&mut p);
        // Interesting = still contains the array overflow.
        let mut pred = |q: &Program| {
            matches!(
                ubfuzz_interp::run_program(q).ub(),
                Some(ev) if ev.kind == ubfuzz_minic::UbKind::BufOverflowArray
            )
        };
        let reduced = reduce(&p, &mut pred);
        let text = pretty::print(&reduced);
        assert!(text.contains("a[i] = 1;"), "{text}");
        assert!(!text.contains("helper"), "unused function dropped: {text}");
        assert!(!text.contains("unused_global"), "{text}");
        assert!(!text.contains("print_value"), "irrelevant statements dropped: {text}");
        let before = pretty::print(&p).len();
        assert!(text.len() < before / 2, "halved: {} -> {}", before, text.len());
    }

    #[test]
    #[should_panic(expected = "must be interesting")]
    fn rejects_uninteresting_input() {
        let p = parse("int main(void) { return 0; }").unwrap();
        reduce(&p, &mut |_| false);
    }
}
