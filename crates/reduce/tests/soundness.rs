//! Reducer soundness properties: the result always satisfies the
//! interestingness predicate, never grows, and keeps `main` returnable.

use proptest::prelude::*;
use ubfuzz_minic::{parse, pretty, Program};
use ubfuzz_reduce::reduce;
use ubfuzz_seedgen::{generate_seed, SeedOptions};

fn stmt_weight(p: &Program) -> usize {
    pretty::print(p).lines().count()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// With the strongest behavioral predicate — "the interpreter outcome is
    /// unchanged" — reduction preserves the outcome exactly and never grows
    /// the program. (This is the predicate the campaign uses, modulo the
    /// sanitizer in place of the interpreter.)
    #[test]
    fn reduction_preserves_outcome_and_shrinks(seed in 0u64..500) {
        let p = generate_seed(seed, &SeedOptions::default());
        let original = ubfuzz_interp::run_program(&p);
        let mut pred = |q: &Program| ubfuzz_interp::run_program(q) == original;
        let reduced = reduce(&p, &mut pred);
        prop_assert_eq!(ubfuzz_interp::run_program(&reduced), original);
        prop_assert!(stmt_weight(&reduced) <= stmt_weight(&p));
    }

    /// Reduction reaches a fixed point: reducing an already-reduced program
    /// with the same predicate changes nothing.
    #[test]
    fn reduction_is_idempotent(seed in 0u64..200) {
        let p = generate_seed(seed, &SeedOptions::default());
        let original = ubfuzz_interp::run_program(&p);
        let mut pred = |q: &Program| ubfuzz_interp::run_program(q) == original;
        let once = reduce(&p, &mut pred);
        let twice = reduce(&once, &mut pred);
        prop_assert_eq!(pretty::print(&once), pretty::print(&twice));
    }
}

#[test]
fn return_in_main_survives_a_permissive_predicate() {
    // Even under "everything is interesting", the reducer must not delete
    // `main`'s return statement (the program would stop parsing as a valid
    // unit of the subset).
    let p = parse(
        "int main(void) {
            int x = 1;
            print_value(x);
            return 0;
         }",
    )
    .unwrap();
    let reduced = reduce(&p, &mut |_| true);
    let text = pretty::print(&reduced);
    assert!(text.contains("return"), "{text}");
}

#[test]
fn nested_statements_are_reachable() {
    // Statements inside if/while/for bodies are candidates too.
    let p = parse(
        "int g;
         int main(void) {
            if (g == 0) {
                g = 1;
                g = 2;
            }
            int i = 0;
            while (i < 3) {
                g = g + 1;
                i = i + 1;
            }
            return g;
         }",
    )
    .unwrap();
    // Interesting = terminates cleanly (always true here): maximal deletion.
    let mut pred = |q: &Program| ubfuzz_interp::run_program(q).is_clean_exit();
    let reduced = reduce(&p, &mut pred);
    let text = pretty::print(&reduced);
    assert!(!text.contains("g = 2;"), "inner if-body statement deleted: {text}");
    assert!(!text.contains("g = g + 1;"), "loop-body statement deleted: {text}");
}
