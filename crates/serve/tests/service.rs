//! End-to-end tests for the campaign service.
//!
//! The daemon runs **in-process** (a thread driving `run_daemon`) while
//! workers are the real `ubfuzz-serve` binary (`CARGO_BIN_EXE_ubfuzz-serve`
//! — the daemon's `current_exe()` default would be this *test* binary,
//! which has no worker mode). Everything here is unix-only, like the
//! socket itself.
//!
//! The properties under test are the ISSUE's acceptance gates:
//!
//! * a daemon campaign over N≥2 worker processes renders a merged report
//!   **byte-identical** to a fresh single-process run;
//! * that still holds when one worker is SIGKILLed mid-campaign (its lease
//!   is reclaimed and re-issued);
//! * a second submission of the same campaign replays entirely from the
//!   checkpoint (zero units computed);
//! * submissions beyond the queue bound answer `err busy`;
//! * two worker processes hammering the same store directory concurrently
//!   — plus one killed mid-run — corrupt no table.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ubfuzz::backend::SimBackend;
use ubfuzz::campaign::{CampaignConfig, CampaignStats};
use ubfuzz::executor::plan_campaign;
use ubfuzz::report;
use ubfuzz::store::CampaignLog;
use ubfuzz_serve::{client, run_daemon, DaemonConfig};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ubfuzz-serve");

/// A fresh store directory per test.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ubfz-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// A short socket path (AF_UNIX paths are length-limited).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ubfz-{}-{tag}.sock", std::process::id()))
}

fn daemon_config(tag: &str) -> DaemonConfig {
    let mut config = DaemonConfig::new(socket_path(tag), store_dir(tag));
    config.worker_bin = Some(PathBuf::from(WORKER_BIN));
    config.worker_threads = 2;
    config
}

/// What the daemon's REPORT must byte-match: the single-process rendering.
/// Every test here drives the same 3-seed campaign, so the reference run is
/// shared (tests run in one process).
fn single_process_report() -> &'static str {
    static REFERENCE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let stats: CampaignStats = CampaignConfig::builder().seeds(3).build_runner().run();
        format!("{}{}", report::table3(&stats), report::oracle_stats(&stats))
    })
}

fn start_daemon(config: DaemonConfig) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = config.socket.clone();
    let handle = std::thread::spawn(move || {
        run_daemon(config).expect("daemon binds its socket");
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    (socket, handle)
}

/// Polls STATUS until campaign `id` reaches a terminal state; returns the
/// final status payload.
fn await_done(socket: &Path, id: u64, timeout: Duration) -> String {
    let needle_done = format!("campaign id={id} state=done");
    let needle_failed = format!("campaign id={id} state=failed");
    let deadline = Instant::now() + timeout;
    loop {
        let status = client::status(socket).expect("status");
        if status.contains(&needle_done) {
            return status;
        }
        assert!(!status.contains(&needle_failed), "campaign {id} failed:\n{status}");
        assert!(Instant::now() < deadline, "campaign {id} never finished:\n{status}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The `key=value` field of the `campaign id=N …` status line.
fn campaign_field(status: &str, id: u64, key: &str) -> String {
    let line = status
        .lines()
        .find(|l| l.starts_with(&format!("campaign id={id} ")))
        .unwrap_or_else(|| panic!("no campaign {id} in status:\n{status}"));
    line.split_whitespace()
        .find_map(|t| t.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .to_string()
}

#[test]
fn daemon_report_is_bit_identical_and_resubmission_replays() {
    let reference = single_process_report();
    let (socket, daemon) = start_daemon(daemon_config("e2e"));

    let id = client::submit(&socket, 3, 0, Some(2), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full).expect("submit");
    assert_eq!(id, 1);
    let status = await_done(&socket, id, Duration::from_secs(120));
    assert_ne!(campaign_field(&status, id, "computed"), "0", "first run computes units");
    let merged = client::report(&socket, id).expect("report");
    assert_eq!(merged, reference, "daemon merge must be byte-identical to single-process");

    // Same campaign again: every unit replays out of the checkpoint
    // shards, so the workers compile nothing and the report is unchanged.
    let again = client::submit(&socket, 3, 0, Some(2), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full).expect("resubmit");
    assert_eq!(again, 2);
    let status = await_done(&socket, again, Duration::from_secs(120));
    assert_eq!(campaign_field(&status, again, "computed"), "0", "resubmission replays:\n{status}");
    assert_eq!(client::report(&socket, again).expect("report"), reference);

    // The corpus endpoint serves whatever the merges recorded.
    let corpus = client::corpus(&socket).expect("corpus");
    for line in corpus.lines() {
        assert!(line.starts_with("corpus key="), "unexpected corpus line {line:?}");
    }

    client::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");
    assert!(!socket.exists(), "socket file is removed on exit");
}

#[test]
fn sigkilled_worker_is_reclaimed_and_merge_still_bit_identical() {
    let reference = single_process_report();
    let mut config = daemon_config("kill");
    // Workers hold their lease ~1.5s before working, so there is a
    // deterministic window in which SIGKILL lands on a live worker.
    config.worker_stall_ms = 1500;
    let (socket, daemon) = start_daemon(config);

    let id = client::submit(&socket, 3, 0, Some(2), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full).expect("submit");

    // Find a live worker pid and SIGKILL it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let victim = loop {
        let status = client::status(&socket).expect("status");
        let pid = status.lines().find_map(|l| {
            if !l.starts_with("lease id=") || !l.contains(" state=active") {
                return None;
            }
            l.split_whitespace()
                .find_map(|t| t.strip_prefix("pid=").and_then(|v| v.parse::<u32>().ok()))
                .filter(|pid| *pid != 0)
        });
        if let Some(pid) = pid {
            break pid;
        }
        assert!(Instant::now() < deadline, "no active lease appeared:\n{status}");
        std::thread::sleep(Duration::from_millis(20));
    };
    let killed = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {victim}"))
        .status()
        .expect("spawn kill")
        .success();
    assert!(killed, "SIGKILL of worker {victim} failed");

    let status = await_done(&socket, id, Duration::from_secs(120));
    assert_ne!(
        campaign_field(&status, id, "reissued"),
        "0",
        "the killed worker's lease must be re-issued:\n{status}"
    );
    assert!(status.contains("state=reclaimed"), "reclaimed lease is visible:\n{status}");
    let merged = client::report(&socket, id).expect("report");
    assert_eq!(merged, reference, "reclaim must not change the merged report");

    client::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");
}

#[test]
fn submissions_beyond_the_queue_bound_answer_busy() {
    let mut config = daemon_config("busy");
    config.queue_cap = 1;
    // Keep campaign 1 running long enough that campaign 2 stays queued.
    config.worker_stall_ms = 1500;
    let (socket, daemon) = start_daemon(config);

    let first = client::submit(&socket, 2, 0, Some(1), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full).expect("submit 1");
    // Wait until the scheduler picked up campaign 1 (queue drained)…
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client::status(&socket).expect("status");
        if status.contains("campaign id=1 state=running") {
            break;
        }
        assert!(Instant::now() < deadline, "campaign 1 never started:\n{status}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // …so this fills the queue, and the next submission must bounce.
    let second = client::submit(&socket, 2, 0, Some(1), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full).expect("submit 2");
    let bounced = client::submit(&socket, 2, 0, Some(1), ubfuzz::Strategy::Uniform, ubfuzz::SanPolicy::Full);
    let err = bounced.expect_err("queue is full; submission must be rejected");
    assert!(err.to_string().contains("busy"), "expected err busy, got {err}");

    for id in [first, second] {
        await_done(&socket, id, Duration::from_secs(120));
    }
    client::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");
}

/// A guided submission runs end to end: the SUBMIT line carries
/// `strategy=guided`, STATUS reports the strategy and the frontier size,
/// the merge persists `frontier.bin`, and a malformed strategy value is
/// rejected as `err bad-request` without dropping the connection.
#[test]
fn guided_submission_reports_strategy_and_persists_the_frontier() {
    let config = daemon_config("guided");
    let store = config.store.clone();
    let (socket, daemon) = start_daemon(config);

    let bad = client::request(&socket, "SUBMIT seeds=2 strategy=greedy").expect("connect");
    assert_eq!(bad.trim(), "err bad-request", "malformed strategy is a bad request");

    let id = client::submit(&socket, 2, 0, Some(2), ubfuzz::Strategy::Guided, ubfuzz::SanPolicy::Full).expect("submit");
    let status = await_done(&socket, id, Duration::from_secs(120));
    assert_eq!(campaign_field(&status, id, "strategy"), "guided");
    let frontier: usize = campaign_field(&status, id, "frontier").parse().expect("frontier=N");
    assert!(frontier > 0, "a finished campaign covered sanitizer points:\n{status}");
    let on_disk = ubfuzz::store::FrontierStore::open(&store);
    assert_eq!(on_disk.len(), frontier, "STATUS reports the persisted frontier");

    client::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");
}

/// Satellite: concurrent opens of one store directory must not corrupt any
/// table — including when one of the processes is SIGKILLed mid-run.
///
/// Two worker processes each compile the *full* unit range into their own
/// checkpoint shard while racing appends to the shared `prefix.bin`; a
/// third is killed shortly after starting. Afterwards every table must
/// open clean, the shard union must replay every unit, and a merge over
/// the store must render the same report as a fresh single-process run.
#[test]
fn concurrent_store_opens_survive_racing_and_killed_workers() {
    let seeds = 3;
    let dir = store_dir("race");
    let cfg = CampaignConfig::builder().seeds(seeds).build();
    let (fingerprint, units) = plan_campaign(&cfg, true, Some(&dir));
    assert!(units > 0);

    let worker = |shard: u64, stall_ms: u64| {
        std::process::Command::new(WORKER_BIN)
            .args(["worker", "--store"])
            .arg(&dir)
            .args(["--seeds", &seeds.to_string(), "--shard", &shard.to_string()])
            .args(["--start", "0", "--end", &units.to_string()])
            .args(["--threads", "2", "--stall-ms", &stall_ms.to_string()])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn worker")
    };

    // The kill leg: a worker SIGKILLed right after its stall window, i.e.
    // in the middle of compiling and appending.
    let mut victim = worker(1, 50);
    std::thread::sleep(Duration::from_millis(90));
    let _ = victim.kill();
    let _ = victim.wait();

    // Two live workers race over the same full range and store.
    let mut a = worker(2, 0);
    let mut b = worker(3, 0);
    assert!(a.wait().expect("worker a").success());
    assert!(b.wait().expect("worker b").success());

    // Every table opens clean and the shard union covers every unit.
    let log = CampaignLog::open(&dir, fingerprint, units);
    let replayable = (0..units).filter(|i| log.has_replay(*i)).count();
    assert_eq!(replayable, units, "shard union must cover the whole campaign");
    drop(log);
    let prefix = ubfuzz::store::PrefixStore::open(&dir);
    assert!(!prefix.telemetry().recovered_cold(), "prefix table must not cold-start");
    assert!(prefix.telemetry().loaded() > 0, "racing workers persisted prefixes");

    // The merge replays the union; its report matches a fresh run.
    let backend = SimBackend::with_store_capacity(&dir, cfg.prefix_key_bound());
    let merged = CampaignConfig::builder()
        .seeds(seeds)
        .backend(Arc::new(backend))
        .checkpoint(&dir)
        .build_runner()
        .run();
    let rendered = format!("{}{}", report::table3(&merged), report::oracle_stats(&merged));
    assert_eq!(rendered, single_process_report());
}
