//! Client helpers for the daemon's one-request-per-connection protocol.
//!
//! Each helper connects, writes a single request line, half-closes, and
//! reads the response to EOF. `err …` responses surface as
//! [`std::io::Error`] (kind `Other`), so callers distinguish "the daemon
//! said no" from "the daemon is gone" by error kind.

use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::submit_line;
use ubfuzz::{SanPolicy, Strategy};

/// Sends one raw request line and returns the full response.
pub fn request(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// Splits off the status line; `ok` yields the payload (everything after
/// the first newline), `err …` becomes an error.
fn checked(response: String) -> std::io::Result<String> {
    let (head, body) = response.split_once('\n').unwrap_or((response.trim_end(), ""));
    if head == "ok" || head.starts_with("ok ") {
        Ok(body.to_string())
    } else {
        Err(std::io::Error::other(head.trim().to_string()))
    }
}

/// Submits a campaign; returns its id.
pub fn submit(
    socket: &Path,
    seeds: usize,
    first_seed: u64,
    workers: Option<usize>,
    strategy: Strategy,
    san: SanPolicy,
) -> std::io::Result<u64> {
    let response = request(socket, &submit_line(seeds, first_seed, workers, strategy, san))?;
    let head = response.lines().next().unwrap_or("").trim();
    match head.strip_prefix("ok id=").and_then(|v| v.parse().ok()) {
        Some(id) => Ok(id),
        None => Err(std::io::Error::other(head.to_string())),
    }
}

/// The `STATUS` payload (daemon/campaign/lease lines).
pub fn status(socket: &Path) -> std::io::Result<String> {
    checked(request(socket, "STATUS")?)
}

/// The `METRICS` payload (per-campaign/per-stage latency lines).
pub fn metrics(socket: &Path) -> std::io::Result<String> {
    checked(request(socket, "METRICS")?)
}

/// The merged report of campaign `id` — raw bytes, byte-identical to the
/// single-process rendering.
pub fn report(socket: &Path, id: u64) -> std::io::Result<String> {
    checked(request(socket, &format!("REPORT id={id}"))?)
}

/// The `CORPUS` payload (one line per corpus entry).
pub fn corpus(socket: &Path) -> std::io::Result<String> {
    checked(request(socket, "CORPUS")?)
}

/// Asks the daemon to exit (it finishes draining the running campaign's
/// teardown first; queued campaigns are abandoned).
pub fn shutdown(socket: &Path) -> std::io::Result<()> {
    checked(request(socket, "SHUTDOWN")?).map(|_| ())
}
