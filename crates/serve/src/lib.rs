//! `ubfuzz-serve` — the campaign service.
//!
//! The paper's campaigns ran for months; a long-lived campaign wants to be
//! *submitted* to a daemon rather than babysat in a terminal. This crate is
//! that daemon plus its wire protocol:
//!
//! * [`daemon`] — accepts campaign submissions over a unix-domain socket,
//!   carves each campaign's unit index space into contiguous **leases**
//!   ([`ubfuzz_exec::LeaseLedger`]) and hands every lease to a worker
//!   *process* that checkpoints into its own shard of the store's campaign
//!   log ([`ubfuzz::store::CampaignLog`]). A worker that exits nonzero, is
//!   SIGKILLed, or overruns its lease deadline is reclaimed: the lease is
//!   re-issued under a fresh id and the replacement's replay scan skips
//!   whatever the dead worker already completed.
//! * [`worker`] — the worker-mode entry
//!   ([`ubfuzz::executor::run_unit_range`] behind flag parsing): compile
//!   and checkpoint only, no oracle. Merging is the daemon's job — once
//!   every lease is done it replays the shard union through the canonical
//!   sequential-order path, so the merged report is **bit-identical** to a
//!   single-process run of the same configuration.
//! * [`protocol`] / [`client`] — the line-based request protocol and the
//!   client helpers the `ubfuzz-serve` subcommands (and the tests) use.
//!
//! Everything socket-shaped is unix-only ([`std::os::unix::net`]); the
//! protocol and worker entry are portable.

pub mod protocol;
pub mod worker;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;

#[cfg(unix)]
pub use daemon::{run_daemon, DaemonConfig};

/// Parses `--flag value` out of an argument list (string-valued; callers
/// parse numbers themselves so each can report its own misuse).
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// [`flag_value`] parsed as an integer, with a default when absent.
/// `None` only when the flag is present but unparsable — misuse.
pub fn flag_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Option<T> {
    match flag_value(args, flag) {
        None => Some(default),
        Some(v) => v.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> =
            ["--seeds", "8", "--shard", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag_value(&args, "--seeds"), Some("8"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(flag_num(&args, "--shard", 0_u64), Some(3));
        assert_eq!(flag_num(&args, "--missing", 7_usize), Some(7));
        let bad: Vec<String> = ["--seeds", "--shard"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag_num(&bad, "--seeds", 1_usize), None, "flag eating a flag is misuse");
    }
}
