//! `ubfuzz-serve` — campaign service CLI.
//!
//! ```text
//! ubfuzz-serve daemon --socket PATH --store DIR [--workers N]
//!              [--worker-threads N] [--ttl SECS] [--queue N]
//!              [--worker-bin PATH] [--stall-ms MS]
//! ubfuzz-serve worker --store DIR --shard ID --start A --end B
//!              [--seeds N] [--first-seed N] [--strategy uniform|guided]
//!              [--san full|none|partial[:ratio[:salt]]] [--threads N]
//! ubfuzz-serve submit --socket PATH --seeds N [--first-seed N] [--workers N]
//!              [--strategy uniform|guided] [--san full|none|partial[:ratio[:salt]]]
//! ubfuzz-serve status --socket PATH
//! ubfuzz-serve metrics --socket PATH
//! ubfuzz-serve report --socket PATH --id N
//! ubfuzz-serve corpus --socket PATH
//! ubfuzz-serve shutdown --socket PATH
//! ```
//!
//! `report` writes the raw merged report to stdout, so
//! `ubfuzz-serve report … > out.txt` is byte-comparable with
//! `make_tables --table 3`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("worker") => ubfuzz_serve::worker::worker_main(&args),
        #[cfg(unix)]
        Some(
            verb @ ("daemon" | "submit" | "status" | "metrics" | "report" | "corpus"
            | "shutdown"),
        ) => {
            unix::dispatch(verb, &args[1..])
        }
        _ => usage(),
    };
    std::process::exit(code);
}

fn usage() -> i32 {
    eprintln!(
        "usage: ubfuzz-serve <daemon|worker|submit|status|metrics|report|corpus|shutdown> [flags]\n\
         see `cargo doc -p ubfuzz-serve` or README.md for the flag reference"
    );
    2
}

#[cfg(unix)]
mod unix {
    use std::path::PathBuf;
    use ubfuzz_serve::{client, flag_num, flag_value, DaemonConfig};

    pub fn dispatch(verb: &str, args: &[String]) -> i32 {
        let Some(socket) = flag_value(args, "--socket").map(PathBuf::from) else {
            eprintln!("ubfuzz-serve {verb}: --socket PATH is required");
            return 2;
        };
        match verb {
            "daemon" => daemon(args, socket),
            "submit" => submit(args, &socket),
            "status" => print_payload(client::status(&socket)),
            "metrics" => print_payload(client::metrics(&socket)),
            "report" => {
                let Some(Some(id)) = flag_value(args, "--id").map(|v| v.parse().ok()) else {
                    eprintln!("ubfuzz-serve report: --id N is required");
                    return 2;
                };
                print_payload(client::report(&socket, id))
            }
            "corpus" => print_payload(client::corpus(&socket)),
            "shutdown" => match client::shutdown(&socket) {
                Ok(()) => 0,
                Err(e) => fail(e),
            },
            _ => unreachable!("dispatch is called with served verbs"),
        }
    }

    fn daemon(args: &[String], socket: PathBuf) -> i32 {
        let Some(store) = flag_value(args, "--store").map(PathBuf::from) else {
            eprintln!("ubfuzz-serve daemon: --store DIR is required");
            return 2;
        };
        let mut config = DaemonConfig::new(socket, store);
        let parsed = (
            flag_num(args, "--workers", config.workers),
            flag_num(args, "--worker-threads", config.worker_threads),
            flag_num(args, "--ttl", config.ttl_secs),
            flag_num(args, "--queue", config.queue_cap),
            flag_num(args, "--stall-ms", config.worker_stall_ms),
        );
        let (Some(workers), Some(threads), Some(ttl), Some(queue), Some(stall)) = parsed else {
            eprintln!("ubfuzz-serve daemon: numeric flag with a non-numeric value");
            return 2;
        };
        config.workers = workers.max(1);
        config.worker_threads = threads.max(1);
        config.ttl_secs = ttl;
        config.queue_cap = queue;
        config.worker_stall_ms = stall;
        config.worker_bin = flag_value(args, "--worker-bin").map(PathBuf::from);
        eprintln!(
            "[serve] daemon pid={} socket={} store={}",
            std::process::id(),
            config.socket.display(),
            config.store.display()
        );
        match ubfuzz_serve::run_daemon(config) {
            Ok(()) => 0,
            Err(e) => fail(e),
        }
    }

    fn submit(args: &[String], socket: &std::path::Path) -> i32 {
        let parsed = (
            flag_num(args, "--seeds", 0_usize),
            flag_num(args, "--first-seed", 0_u64),
            flag_value(args, "--workers").map(|v| v.parse().ok()),
        );
        let (Some(seeds), Some(first_seed), workers) = parsed else {
            eprintln!("ubfuzz-serve submit: numeric flag with a non-numeric value");
            return 2;
        };
        if seeds == 0 {
            eprintln!("ubfuzz-serve submit: --seeds N is required");
            return 2;
        }
        let workers = match workers {
            None => None,
            Some(Some(w)) => Some(w),
            Some(None) => {
                eprintln!("ubfuzz-serve submit: bad --workers value");
                return 2;
            }
        };
        let strategy = match flag_value(args, "--strategy") {
            None => ubfuzz::Strategy::Uniform,
            Some(v) => match ubfuzz::Strategy::parse(v) {
                Some(s) => s,
                None => {
                    eprintln!("ubfuzz-serve submit: bad --strategy (uniform|guided)");
                    return 2;
                }
            },
        };
        let san = match flag_value(args, "--san") {
            None => ubfuzz::SanPolicy::Full,
            Some(v) => match ubfuzz::SanPolicy::parse(v) {
                Some(p) => p,
                None => {
                    eprintln!(
                        "ubfuzz-serve submit: bad --san (full|none|partial[:ratio[:salt]])"
                    );
                    return 2;
                }
            },
        };
        match client::submit(socket, seeds, first_seed, workers, strategy, san) {
            Ok(id) => {
                println!("ok id={id}");
                0
            }
            Err(e) => fail(e),
        }
    }

    fn print_payload(result: std::io::Result<String>) -> i32 {
        match result {
            Ok(payload) => {
                print!("{payload}");
                0
            }
            Err(e) => fail(e),
        }
    }

    fn fail(e: std::io::Error) -> i32 {
        eprintln!("ubfuzz-serve: {e}");
        1
    }
}
