//! The campaign daemon: submissions in, leases out, merged reports back.
//!
//! One accept loop (unix-domain socket, one request per connection) and one
//! scheduler thread that runs queued campaigns strictly in submission
//! order. For each campaign the scheduler:
//!
//! 1. plans addressing with [`plan_campaign`] — fingerprint + unit count,
//!    no compilation — and opens the store's primary checkpoint log so an
//!    incompatible log (and its shards) is swept before workers arrive;
//! 2. carves `0..units` into contiguous leases
//!    ([`LeaseLedger::carve`]), numbered past everything in the store's
//!    durable [`LeaseTable`] so checkpoint shard files never collide;
//! 3. spawns one worker *process* per lease (`<worker-bin> worker …`,
//!    defaulting to the daemon's own binary) and polls: a clean exit
//!    completes the lease; a nonzero exit, a SIGKILL, or a blown deadline
//!    reclaims it — the range is re-issued under a fresh lease id and the
//!    replacement's shard replay skips whatever the dead worker finished;
//! 4. merges by replaying the shard union through the canonical
//!    sequential-order path ([`ParallelCampaign`] with a checkpoint over
//!    the same store), so the stored report is **bit-identical** to a
//!    single-process run — and, because every unit is already
//!    checkpointed, the merge compiles nothing.
//!
//! Backpressure is a bounded submission queue: `SUBMIT` beyond the cap is
//! answered `err busy`. Lease state is mirrored into the store's
//! [`LeaseTable`] (`leases.bin`) for post-mortem observability; scheduling
//! truth lives in the in-memory ledger, so a daemon restart simply
//! re-carves and replays.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use ubfuzz::backend::SimBackend;
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::executor::plan_campaign;
use ubfuzz::obs::{self, MetricsSnapshot, Stage};
use ubfuzz::store::{BugCorpus, CampaignLog, FrontierStore, LeaseRecord, LeaseState, LeaseTable};
use ubfuzz::{SanPolicy, Strategy};
use ubfuzz::{persist, report};
use ubfuzz_exec::LeaseLedger;

use crate::protocol::{parse_request, Request};

/// How the daemon runs. Construct with [`DaemonConfig::new`] and override
/// fields as needed.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path (created on start, removed on exit).
    pub socket: PathBuf,
    /// Store directory: checkpoint log + shards, prefix cache, corpus,
    /// lease table.
    pub store: PathBuf,
    /// Worker processes per campaign when `SUBMIT` has no `workers=`.
    pub workers: usize,
    /// Work-stealing threads inside each worker process.
    pub worker_threads: usize,
    /// Lease time-to-live: an active worker past its deadline is killed
    /// and its range re-issued.
    pub ttl_secs: u64,
    /// Bounded submission queue; beyond this, `SUBMIT` answers
    /// `err busy`.
    pub queue_cap: usize,
    /// Worker binary (anything accepting `worker --store … --shard …`,
    /// e.g. ubfuzz-bench's `campaign_worker`); defaults to the daemon's
    /// own executable.
    pub worker_bin: Option<PathBuf>,
    /// Test hook, forwarded to workers as `--stall-ms`: sleep before
    /// working so kill tests have a deterministic live window.
    pub worker_stall_ms: u64,
}

impl DaemonConfig {
    /// Defaults: 2 worker processes × 2 threads, 10-minute leases, queue
    /// of 8.
    pub fn new(socket: impl Into<PathBuf>, store: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            store: store.into(),
            workers: 2,
            worker_threads: 2,
            ttl_secs: 600,
            queue_cap: 8,
            worker_bin: None,
            worker_stall_ms: 0,
        }
    }
}

/// A campaign's lifecycle as reported by `STATUS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

/// One lease as shown by `STATUS` (`pid=` is what a supervisor — or the CI
/// kill leg — targets).
#[derive(Debug, Clone)]
struct LeaseView {
    id: u64,
    start: usize,
    end: usize,
    pid: u32,
    state: &'static str,
}

/// One submitted campaign.
#[derive(Debug)]
struct CampaignView {
    id: u64,
    seeds: usize,
    first_seed: u64,
    workers: usize,
    strategy: Strategy,
    san: SanPolicy,
    phase: Phase,
    fingerprint: u64,
    units: usize,
    computed: usize,
    replayed: usize,
    reissued: usize,
    /// Coverage-frontier size: the persisted point count at planning time,
    /// updated to the merged campaign's final count once done.
    frontier: usize,
    report: Option<String>,
    leases: Vec<LeaseView>,
    /// Per-stage latency histograms and counters: the scheduler thread's
    /// own sink (lease lifecycle + merge) folded with every worker
    /// receipt, in lease-completion order (histogram merge is commutative,
    /// so the fold order cannot change the numbers).
    metrics: MetricsSnapshot,
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<u64>,
    campaigns: Vec<CampaignView>,
    shutdown: bool,
    /// Unix-seconds timestamp of daemon start (`uptime_secs=` on `STATUS`).
    started_unix: u64,
    /// Lifetime lease counters across all campaigns, for the `STATUS`
    /// daemon line: issued = spawned under a lease, reclaimed = range
    /// re-issued after death/expiry, units_merged = units folded into
    /// finished reports.
    leases_issued: u64,
    leases_reclaimed: u64,
    units_merged: u64,
}

type Shared = Arc<Mutex<State>>;

/// Locks the daemon state, recovering from a poisoned lock — one panicked
/// connection handler must not wedge the scheduler (same contract as the
/// store's `relock`).
fn relock(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.lock().unwrap_or_else(|e| e.into_inner())
}

fn unix_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// Runs the daemon until a `SHUTDOWN` request: binds the socket, serves
/// requests, and drives queued campaigns on a scheduler thread. Removes
/// the socket file on exit. `Err` only for a failed bind — a running
/// daemon degrades per-connection, it does not exit on request errors.
pub fn run_daemon(config: DaemonConfig) -> std::io::Result<()> {
    // A stale socket file from a SIGKILLed daemon would fail the bind.
    let _ = std::fs::remove_file(&config.socket);
    if let Some(dir) = config.socket.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let listener = UnixListener::bind(&config.socket)?;
    let config = Arc::new(config);
    let shared: Shared = Arc::new(Mutex::new(State::default()));
    relock(&shared).started_unix = unix_now();

    let scheduler = {
        let config = Arc::clone(&config);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || scheduler_loop(&config, &shared))
    };

    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if handle_connection(stream, &config, &shared) {
            break;
        }
    }

    let _ = scheduler.join();
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Serves one connection; `true` when the request was `SHUTDOWN`.
fn handle_connection(stream: UnixStream, config: &DaemonConfig, shared: &Shared) -> bool {
    let mut line = String::new();
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return false,
    };
    let mut stream = stream;
    if reader.read_line(&mut line).is_err() {
        return false;
    }
    let response = match parse_request(line.trim()) {
        Err(reason) => format!("err {reason}\n"),
        Ok(Request::Submit { seeds, first_seed, workers, strategy, san }) => {
            let mut st = relock(shared);
            if st.shutdown {
                "err shutting down\n".into()
            } else if st.queue.len() >= config.queue_cap {
                "err busy\n".into()
            } else {
                let id = st.campaigns.len() as u64 + 1;
                st.campaigns.push(CampaignView {
                    id,
                    seeds,
                    first_seed,
                    workers: workers.unwrap_or(config.workers).max(1),
                    strategy,
                    san,
                    phase: Phase::Queued,
                    fingerprint: 0,
                    units: 0,
                    computed: 0,
                    replayed: 0,
                    reissued: 0,
                    frontier: 0,
                    report: None,
                    leases: Vec::new(),
                    metrics: MetricsSnapshot::default(),
                });
                st.queue.push_back(id);
                format!("ok id={id}\n")
            }
        }
        Ok(Request::Status) => render_status(&relock(shared)),
        Ok(Request::Metrics) => render_metrics(&relock(shared)),
        Ok(Request::Report { id }) => {
            let st = relock(shared);
            match st.campaigns.iter().find(|c| c.id == id) {
                None => format!("err unknown campaign {id}\n"),
                Some(c) => match &c.report {
                    Some(text) => format!("ok\n{text}"),
                    None => format!("err campaign {id} is {}\n", c.phase.name()),
                },
            }
        }
        Ok(Request::Corpus) => {
            let corpus = BugCorpus::open(&config.store);
            let mut out = String::from("ok\n");
            for (key, entry) in corpus.entries() {
                out.push_str(&format!(
                    "corpus key={key} campaigns={} duplicates={}\n",
                    entry.campaigns, entry.total_duplicates
                ));
            }
            out
        }
        Ok(Request::Shutdown) => {
            relock(shared).shutdown = true;
            "ok\n".into()
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    line.trim().starts_with("SHUTDOWN")
}

/// The machine-readable `STATUS` payload.
fn render_status(st: &State) -> String {
    let mut out = String::from("ok\n");
    out.push_str(&format!(
        "daemon pid={} queue={} campaigns={} uptime_secs={} leases_issued={} \
         leases_reclaimed={} units_merged={}\n",
        std::process::id(),
        st.queue.len(),
        st.campaigns.len(),
        unix_now().saturating_sub(st.started_unix),
        st.leases_issued,
        st.leases_reclaimed,
        st.units_merged
    ));
    for c in &st.campaigns {
        out.push_str(&format!(
            "campaign id={} state={} seeds={} first_seed={} workers={} units={} \
             computed={} replayed={} reissued={} strategy={} san={} frontier={}\n",
            c.id,
            c.phase.name(),
            c.seeds,
            c.first_seed,
            c.workers,
            c.units,
            c.computed,
            c.replayed,
            c.reissued,
            c.strategy,
            c.san,
            c.frontier
        ));
        for l in &c.leases {
            out.push_str(&format!(
                "lease id={} campaign={} start={} end={} pid={} state={}\n",
                l.id, c.id, l.start, l.end, l.pid, l.state
            ));
        }
    }
    out
}

/// The machine-readable `METRICS` payload: one header line per campaign
/// (frontier growth across the run), then one line per stage with
/// bucket-resolution quantiles, then one line per counter (cache reuse,
/// store telemetry). Stages and counters render in canonical order, so
/// two daemons that folded the same samples answer byte-identically.
fn render_metrics(st: &State) -> String {
    let mut out = String::from("ok\n");
    for c in &st.campaigns {
        out.push_str(&format!(
            "metrics campaign={} state={} units={} frontier={}\n",
            c.id,
            c.phase.name(),
            c.units,
            c.frontier
        ));
        for (stage, h) in &c.metrics.stages {
            out.push_str(&format!(
                "metrics campaign={} stage={} count={} p50_ns={} p95_ns={} max_ns={} sum_ns={}\n",
                c.id,
                stage.name(),
                h.count,
                h.p50(),
                h.p95(),
                h.max_ns,
                h.sum_ns
            ));
        }
        for (name, value) in &c.metrics.counters {
            out.push_str(&format!("metrics campaign={} counter={name} value={value}\n", c.id));
        }
    }
    out
}

/// Pops and runs queued campaigns in submission order until shutdown.
fn scheduler_loop(config: &DaemonConfig, shared: &Shared) {
    loop {
        let next = {
            let mut st = relock(shared);
            if st.shutdown {
                return;
            }
            st.queue.pop_front()
        };
        match next {
            Some(id) => run_campaign_job(config, shared, id),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A worker process bound to a lease.
struct Worker {
    lease_id: u64,
    child: Child,
}

/// Runs one campaign end to end: carve, spawn, reclaim, merge.
fn run_campaign_job(config: &DaemonConfig, shared: &Shared, id: u64) {
    // The scheduler thread's own sink: lease lifecycle spans, store opens
    // and the merge replay land here; per-stage compile/run samples arrive
    // via worker receipts and are folded in as leases complete.
    let sink = Arc::new(obs::MetricsSink::new());
    let _obs = obs::attach(sink.clone());
    let mut worker_metrics = MetricsSnapshot::default();
    let (seeds, first_seed, workers, strategy, san) = {
        let mut st = relock(shared);
        let c = campaign_mut(&mut st, id);
        c.phase = Phase::Running;
        (c.seeds, c.first_seed, c.workers, c.strategy, c.san)
    };
    let cfg = CampaignConfig::builder()
        .seeds(seeds)
        .first_seed(first_seed)
        .strategy(strategy)
        .san_policy(san)
        .build();
    // The plan depends on the store for guided campaigns: daemon and
    // workers all derive guidance from the persisted frontier, which is
    // only rewritten at merge completion — so every participant of *this*
    // campaign sees the same snapshot and computes the same fingerprint.
    let frontier0 = FrontierStore::open(&config.store).len();
    let (fingerprint, units) = plan_campaign(&cfg, true, Some(&config.store));

    // Opening the primary log writes/validates the campaign header and
    // sweeps shards of an incompatible prior campaign, so workers never
    // scan foreign data. Dropped before the merge reopens it.
    drop(CampaignLog::open(&config.store, fingerprint, units));
    let mut table = LeaseTable::open(&config.store);
    table.retain_campaign(fingerprint);
    let mut ledger = LeaseLedger::carve(units, workers, table.next_id());

    {
        let mut st = relock(shared);
        let c = campaign_mut(&mut st, id);
        c.fingerprint = fingerprint;
        c.units = units;
        c.frontier = frontier0;
    }

    // A worker that fails deterministically (bad binary, broken store
    // mount) would otherwise reclaim forever; past this many re-issues the
    // campaign fails instead.
    let reissue_cap = 8 * workers as u64;
    let mut active: Vec<Worker> = Vec::new();
    let mut computed = 0usize;
    let mut replayed = 0usize;
    let mut reissued = 0u64;
    let mut failed = false;

    loop {
        if relock(shared).shutdown {
            failed = true;
        }
        if reissued > reissue_cap {
            failed = true;
        }
        if failed {
            for w in &mut active {
                let _reclaim = obs::Span::enter(Stage::LeaseReclaim, w.lease_id);
                let _ = w.child.kill();
                let _ = w.child.wait();
                ledger.fail(w.lease_id);
                table.set_state(w.lease_id, LeaseState::Reclaimed);
                relock(shared).leases_reclaimed += 1;
            }
            active.clear();
            break;
        }

        // Keep `workers` processes in flight while leases are pending.
        while active.len() < workers {
            let now = unix_now();
            let Some(lease) = ledger.claim(0, now, config.ttl_secs) else { break };
            let _issue = obs::Span::enter(Stage::LeaseIssue, lease.id);
            match spawn_worker(config, seeds, first_seed, strategy, san, lease.id, &lease.range)
            {
                Ok(child) => {
                    table.upsert(LeaseRecord {
                        id: lease.id,
                        campaign_fp: fingerprint,
                        start: lease.range.start as u64,
                        end: lease.range.end as u64,
                        pid: child.id() as u64,
                        granted: now,
                        ttl_secs: config.ttl_secs,
                        state: LeaseState::Active,
                    });
                    active.push(Worker { lease_id: lease.id, child });
                    relock(shared).leases_issued += 1;
                }
                Err(e) => {
                    eprintln!("[serve] campaign {id}: worker spawn failed: {e}");
                    ledger.fail(lease.id);
                    reissued += 1;
                    relock(shared).leases_reclaimed += 1;
                }
            }
        }

        if active.is_empty() && ledger.all_done() {
            break;
        }

        std::thread::sleep(Duration::from_millis(20));
        let now = unix_now();
        let expired = ledger.expired(now);
        // One heartbeat span per liveness sweep over live workers: its
        // histogram is how long the daemon spends probing children, its
        // count is the number of scheduling ticks the campaign took.
        let _heartbeat = (!active.is_empty()).then(|| obs::Span::enter(Stage::LeaseHeartbeat, 0));
        let mut i = 0;
        while i < active.len() {
            let lease_id = active[i].lease_id;
            let child = &mut active[i].child;
            let exited = match child.try_wait() {
                Ok(status) => status,
                // The handle is unusable; treat as a dead worker.
                Err(_) => {
                    let _ = child.kill();
                    child.wait().ok()
                }
            };
            match exited {
                Some(status) if status.success() => {
                    if let Some(mut out) = child.stdout.take() {
                        let mut receipt = String::new();
                        let _ = out.read_to_string(&mut receipt);
                        let (c, r) = parse_receipt(&receipt);
                        computed += c;
                        replayed += r;
                        worker_metrics.merge(&parse_receipt_metrics(&receipt));
                    }
                    ledger.complete(lease_id);
                    table.set_state(lease_id, LeaseState::Done);
                    active.swap_remove(i);
                }
                Some(_) => {
                    // Nonzero exit or signal death (SIGKILL lands here):
                    // re-issue the range under a fresh lease id.
                    let _reclaim = obs::Span::enter(Stage::LeaseReclaim, lease_id);
                    ledger.fail(lease_id);
                    table.set_state(lease_id, LeaseState::Reclaimed);
                    reissued += 1;
                    relock(shared).leases_reclaimed += 1;
                    active.swap_remove(i);
                }
                None if expired.contains(&lease_id) => {
                    let _reclaim = obs::Span::enter(Stage::LeaseReclaim, lease_id);
                    let _ = child.kill();
                    let _ = child.wait();
                    ledger.fail(lease_id);
                    table.set_state(lease_id, LeaseState::Reclaimed);
                    reissued += 1;
                    relock(shared).leases_reclaimed += 1;
                    active.swap_remove(i);
                }
                None => i += 1,
            }
        }

        publish_leases(shared, id, &ledger, &table, computed, replayed, reissued);
    }

    publish_leases(shared, id, &ledger, &table, computed, replayed, reissued);
    if failed {
        let mut st = relock(shared);
        let c = campaign_mut(&mut st, id);
        c.phase = Phase::Failed;
        // Publish whatever was sampled before the failure — a reclaim
        // storm's latency profile is exactly what METRICS is for.
        c.metrics = sink.snapshot();
        c.metrics.merge(&worker_metrics);
        return;
    }

    // Merge: replay the shard union through the canonical sequential-order
    // path. Every unit is checkpointed, so this compiles nothing, and the
    // rendered report is bit-identical to a single-process run.
    let backend = SimBackend::with_store_capacity(&config.store, cfg.prefix_key_bound());
    let stats = {
        let _merge = obs::Span::enter(Stage::Merge, 0);
        CampaignConfig::builder()
            .seeds(seeds)
            .first_seed(first_seed)
            .strategy(strategy)
            .san_policy(san)
            .backend(Arc::new(backend))
            .checkpoint(&config.store)
            .recorder(sink.clone())
            .build_runner()
            .run()
    };
    let mut corpus = BugCorpus::open(&config.store);
    let merge = persist::merge_bugs(&mut corpus, &stats);
    eprintln!(
        "[serve] campaign {id}: merged, corpus total={} new={} known={}",
        corpus.len(),
        merge.new,
        merge.known
    );
    let text = format!("{}{}", report::table3(&stats), report::oracle_stats(&stats));

    let mut st = relock(shared);
    st.units_merged += units as u64;
    let c = campaign_mut(&mut st, id);
    c.phase = Phase::Done;
    c.frontier = stats.frontier_points;
    c.report = Some(text);
    c.metrics = sink.snapshot();
    c.metrics.merge(&worker_metrics);
}

fn campaign_mut(st: &mut State, id: u64) -> &mut CampaignView {
    st.campaigns
        .iter_mut()
        .find(|c| c.id == id)
        .expect("scheduler jobs reference submitted campaigns")
}

/// Mirrors the ledger into the `STATUS` snapshot (pids come from the
/// durable lease table — the ledger does not track them).
fn publish_leases(
    shared: &Shared,
    id: u64,
    ledger: &LeaseLedger,
    table: &LeaseTable,
    computed: usize,
    replayed: usize,
    reissued: u64,
) {
    use ubfuzz_exec::LeaseStatus;
    let views = ledger
        .leases()
        .iter()
        .map(|l| LeaseView {
            id: l.id,
            start: l.range.start,
            end: l.range.end,
            pid: table.leases().get(&l.id).map(|r| r.pid as u32).unwrap_or(0),
            state: match l.status {
                LeaseStatus::Pending => "pending",
                LeaseStatus::Active => "active",
                LeaseStatus::Done => "done",
                LeaseStatus::Failed => "reclaimed",
            },
        })
        .collect();
    let mut st = relock(shared);
    let c = campaign_mut(&mut st, id);
    c.leases = views;
    c.computed = computed;
    c.replayed = replayed;
    c.reissued = reissued as usize;
}

/// One field=value receipt line (`computed=N replayed=N`) from a worker's
/// stdout; unparsable receipts count as zeros rather than failing the
/// lease — the checkpoint shard, not the receipt, is the work.
fn parse_receipt(receipt: &str) -> (usize, usize) {
    let field = |key: &str| -> usize {
        receipt
            .split_whitespace()
            .find_map(|t| t.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    (field("computed"), field("replayed"))
}

/// Folds a receipt's `metric …` lines into one snapshot; lines that parse
/// as neither histogram nor counter are skipped with the same tolerance as
/// [`parse_receipt`] — the checkpoint shard, not the telemetry, is the
/// work.
fn parse_receipt_metrics(receipt: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in receipt.lines() {
        if let Some((stage, h)) = obs::parse_metric_line(line) {
            snap.stages.entry(stage).or_default().merge(&h);
        } else if let Some((name, value)) = obs::parse_counter_line(line) {
            *snap.counters.entry(name).or_insert(0) += value;
        }
    }
    snap
}

fn spawn_worker(
    config: &DaemonConfig,
    seeds: usize,
    first_seed: u64,
    strategy: Strategy,
    san: SanPolicy,
    lease_id: u64,
    range: &std::ops::Range<usize>,
) -> std::io::Result<Child> {
    let bin = match &config.worker_bin {
        Some(bin) => bin.clone(),
        None => std::env::current_exe()?,
    };
    let mut cmd = Command::new(bin);
    cmd.arg("worker")
        .arg("--store")
        .arg(&config.store)
        .arg("--seeds")
        .arg(seeds.to_string())
        .arg("--first-seed")
        .arg(first_seed.to_string())
        .arg("--strategy")
        .arg(strategy.name())
        .arg("--san")
        .arg(san.to_string())
        .arg("--shard")
        .arg(lease_id.to_string())
        .arg("--start")
        .arg(range.start.to_string())
        .arg("--end")
        .arg(range.end.to_string())
        .arg("--threads")
        .arg(config.worker_threads.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped());
    if config.worker_stall_ms > 0 {
        cmd.arg("--stall-ms").arg(config.worker_stall_ms.to_string());
    }
    cmd.spawn()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipts_parse_defensively() {
        assert_eq!(parse_receipt("computed=12 replayed=3\n"), (12, 3));
        assert_eq!(parse_receipt(""), (0, 0));
        assert_eq!(parse_receipt("garbage computed=x"), (0, 0));
    }

    #[test]
    fn status_renders_every_layer() {
        let mut st = State::default();
        st.campaigns.push(CampaignView {
            id: 1,
            seeds: 4,
            first_seed: 0,
            workers: 2,
            strategy: Strategy::Guided,
            san: SanPolicy::Partial { ratio_pm: 500, salt: 3 },
            phase: Phase::Running,
            fingerprint: 7,
            units: 10,
            computed: 3,
            replayed: 0,
            reissued: 1,
            frontier: 12,
            report: None,
            leases: vec![LeaseView { id: 2, start: 0, end: 5, pid: 42, state: "active" }],
            metrics: MetricsSnapshot::default(),
        });
        let s = render_status(&st);
        assert!(s.starts_with("ok\n"), "{s}");
        assert!(s.contains(" uptime_secs="), "{s}");
        assert!(s.contains(" leases_issued=0 leases_reclaimed=0 units_merged=0"), "{s}");
        assert!(s.contains("campaign id=1 state=running seeds=4"), "{s}");
        assert!(s.contains("strategy=guided san=partial:500:3 frontier=12"), "{s}");
        assert!(s.contains("lease id=2 campaign=1 start=0 end=5 pid=42 state=active"), "{s}");
    }

    #[test]
    fn receipt_metric_lines_fold_into_a_snapshot() {
        let mut h = ubfuzz::obs::Histogram::new();
        h.record(1_000);
        h.record(3_000);
        let receipt = format!(
            "computed=2 replayed=0\nmetric stage=run {}\nmetric counter=prefix_hits value=5\nnoise\n",
            h.encode()
        );
        assert_eq!(parse_receipt(&receipt), (2, 0));
        let snap = parse_receipt_metrics(&receipt);
        assert_eq!(snap.stages.get(&Stage::Run), Some(&h));
        assert_eq!(snap.counter("prefix_hits"), 5);
    }

    #[test]
    fn metrics_renders_quantiles_per_campaign_stage() {
        let mut st = State::default();
        let mut metrics = MetricsSnapshot::default();
        let mut h = ubfuzz::obs::Histogram::new();
        for nanos in [100, 200, 400, 90_000] {
            h.record(nanos);
        }
        metrics.stages.insert(Stage::Run, h.clone());
        metrics.counters.insert("prefix_hits".into(), 7);
        st.campaigns.push(CampaignView {
            id: 3,
            seeds: 4,
            first_seed: 0,
            workers: 2,
            strategy: Strategy::Uniform,
            san: SanPolicy::Full,
            phase: Phase::Done,
            fingerprint: 7,
            units: 10,
            computed: 10,
            replayed: 0,
            reissued: 0,
            frontier: 9,
            report: None,
            leases: Vec::new(),
            metrics,
        });
        let s = render_metrics(&st);
        assert!(s.starts_with("ok\n"), "{s}");
        assert!(s.contains("metrics campaign=3 state=done units=10 frontier=9\n"), "{s}");
        let line = format!(
            "metrics campaign=3 stage=run count=4 p50_ns={} p95_ns={} max_ns={} sum_ns={}\n",
            h.p50(),
            h.p95(),
            h.max_ns,
            h.sum_ns
        );
        assert!(s.contains(&line), "{s}");
        assert!(h.p95() >= h.p50(), "quantiles are monotone");
        assert!(s.contains("metrics campaign=3 counter=prefix_hits value=7\n"), "{s}");
    }
}
