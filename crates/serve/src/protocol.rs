//! The daemon's line-based request protocol.
//!
//! One request per connection: the client writes a single line, shuts down
//! its write half, and reads the response until EOF. Responses begin with
//! an `ok …` or `err …` line; `STATUS`, `REPORT` and `CORPUS` follow the
//! `ok` line with a payload (for `REPORT` the payload is the raw report
//! bytes, so piping it to a file reproduces the single-process table
//! exactly).
//!
//! Requests:
//!
//! | line | response |
//! |---|---|
//! | `SUBMIT seeds=N [first_seed=N] [workers=N] [strategy=uniform\|guided] [san=full\|none\|partial[:ratio[:salt]]]` | `ok id=N` or `err busy` |
//! | `STATUS` | `ok` + daemon/campaign/lease lines |
//! | `METRICS` | `ok` + per-campaign/per-stage latency lines |
//! | `REPORT id=N` | `ok` + raw report bytes |
//! | `CORPUS` | `ok` + one line per corpus entry |
//! | `SHUTDOWN` | `ok` (the daemon exits after the running campaign stops) |
//!
//! Keys are `key=value` tokens in any order. Unknown verbs and malformed
//! values are `err …`, never a dropped connection; a `strategy=` or `san=`
//! value the daemon does not know is `err bad-request` specifically, so
//! clients can distinguish their own misuse from daemon-side failures.

use ubfuzz::{SanPolicy, Strategy};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a campaign: seed count, first seed id, worker-process count
    /// (daemon default when `None`), the generation strategy (uniform
    /// unless `strategy=guided`), and the partial-sanitization policy
    /// (full unless `san=…`).
    Submit {
        /// Seed count.
        seeds: usize,
        /// First seed id.
        first_seed: u64,
        /// Worker-process count (daemon default when `None`).
        workers: Option<usize>,
        /// Generation strategy.
        strategy: Strategy,
        /// Partial-sanitization policy.
        san: SanPolicy,
    },
    /// Daemon, campaign and lease status, machine-readable.
    Status,
    /// Per-campaign/per-stage latency histograms and counters,
    /// machine-readable.
    Metrics,
    /// The merged report of a finished campaign, raw bytes.
    Report { id: u64 },
    /// The store's bug corpus, one line per entry.
    Corpus,
    /// Stop accepting work and exit.
    Shutdown,
}

/// Parses one request line. `Err` is the human-readable reason sent back
/// as `err …`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().unwrap_or("");
    let rest: Vec<&str> = tokens.collect();
    let lookup = |key: &str| -> Option<&str> {
        rest.iter().find_map(|t| t.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
    };
    let num = |key: &str| -> Result<Option<u64>, String> {
        match lookup(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad {key}={v}")),
        }
    };
    match verb {
        "SUBMIT" => {
            let seeds = num("seeds")?.ok_or("SUBMIT requires seeds=N")? as usize;
            if seeds == 0 {
                return Err("SUBMIT requires seeds > 0".into());
            }
            let first_seed = num("first_seed")?.unwrap_or(0);
            let workers = num("workers")?.map(|w| w as usize);
            if workers == Some(0) {
                return Err("SUBMIT requires workers > 0".into());
            }
            let strategy = match lookup("strategy") {
                None => Strategy::Uniform,
                Some(v) => Strategy::parse(v).ok_or("bad-request")?,
            };
            let san = match lookup("san") {
                None => SanPolicy::Full,
                Some(v) => SanPolicy::parse(v).ok_or("bad-request")?,
            };
            Ok(Request::Submit { seeds, first_seed, workers, strategy, san })
        }
        "STATUS" => Ok(Request::Status),
        "METRICS" => Ok(Request::Metrics),
        "REPORT" => Ok(Request::Report { id: num("id")?.ok_or("REPORT requires id=N")? }),
        "CORPUS" => Ok(Request::Corpus),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty request".into()),
        other => Err(format!("unknown request {other}")),
    }
}

/// Renders a `SUBMIT` line (the client side of [`parse_request`]). The
/// default strategy and the full policy are omitted, so default
/// submissions are byte-identical to the pre-strategy/pre-partition wire
/// format.
pub fn submit_line(
    seeds: usize,
    first_seed: u64,
    workers: Option<usize>,
    strategy: Strategy,
    san: SanPolicy,
) -> String {
    let mut line = format!("SUBMIT seeds={seeds}");
    if first_seed != 0 {
        line.push_str(&format!(" first_seed={first_seed}"));
    }
    if let Some(w) = workers {
        line.push_str(&format!(" workers={w}"));
    }
    if strategy != Strategy::Uniform {
        line.push_str(&format!(" strategy={strategy}"));
    }
    if !san.is_full() {
        line.push_str(&format!(" san={san}"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        for (seeds, first, workers) in [(8, 0, None), (3, 5, Some(2)), (1, 0, Some(16))] {
            for strategy in [Strategy::Uniform, Strategy::Guided] {
                for san in [SanPolicy::Full, SanPolicy::Partial { ratio_pm: 250, salt: 7 }] {
                    let line = submit_line(seeds, first, workers, strategy, san);
                    assert_eq!(
                        parse_request(&line),
                        Ok(Request::Submit { seeds, first_seed: first, workers, strategy, san })
                    );
                }
            }
        }
        // Default submissions keep the pre-strategy/pre-partition format.
        assert_eq!(
            submit_line(8, 0, None, Strategy::Uniform, SanPolicy::Full),
            "SUBMIT seeds=8"
        );
        assert_eq!(
            submit_line(8, 0, None, Strategy::Guided, SanPolicy::Full),
            "SUBMIT seeds=8 strategy=guided"
        );
        assert_eq!(
            submit_line(8, 0, None, Strategy::Uniform, SanPolicy::None),
            "SUBMIT seeds=8 san=none"
        );
    }

    #[test]
    fn malformed_san_is_a_bad_request() {
        for line in
            ["SUBMIT seeds=4 san=banana", "SUBMIT seeds=4 san=", "SUBMIT seeds=4 san=partial:2.0"]
        {
            assert_eq!(parse_request(line), Err("bad-request".to_string()), "{line:?}");
        }
        assert_eq!(
            parse_request("SUBMIT seeds=4 san=partial:0.5:9"),
            Ok(Request::Submit {
                seeds: 4,
                first_seed: 0,
                workers: None,
                strategy: Strategy::Uniform,
                san: SanPolicy::Partial { ratio_pm: 500, salt: 9 },
            })
        );
    }

    #[test]
    fn malformed_strategy_is_a_bad_request() {
        assert_eq!(
            parse_request("SUBMIT seeds=4 strategy=greedy"),
            Err("bad-request".to_string())
        );
        assert_eq!(
            parse_request("SUBMIT seeds=4 strategy="),
            Err("bad-request".to_string())
        );
    }

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request("STATUS"), Ok(Request::Status));
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("CORPUS"), Ok(Request::Corpus));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(parse_request("REPORT id=4"), Ok(Request::Report { id: 4 }));
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for line in
            ["", "NOPE", "SUBMIT", "SUBMIT seeds=x", "SUBMIT seeds=0", "SUBMIT seeds=2 workers=0", "REPORT", "REPORT id=?"]
        {
            assert!(parse_request(line).is_err(), "{line:?} should be rejected");
        }
    }

    #[test]
    fn token_order_is_free() {
        assert_eq!(
            parse_request("SUBMIT san=none strategy=guided workers=3 seeds=6 first_seed=2"),
            Ok(Request::Submit {
                seeds: 6,
                first_seed: 2,
                workers: Some(3),
                strategy: Strategy::Guided,
                san: SanPolicy::None,
            })
        );
    }
}
