//! Worker-mode entry: one leased unit range, compiled and checkpointed.
//!
//! The daemon spawns `<bin> worker --store DIR --seeds N --first-seed F
//! --shard ID --start A --end B [--threads T]` once per lease; the shard id
//! *is* the lease id, so every worker writes its own `campaign.s<ID>.bin`
//! (single-writer-per-file keeps the torn-tail recovery story) while the
//! open-time replay scan unions every sibling shard — a worker re-issued
//! over a half-finished range only pays for the missing units.
//!
//! The worker runs [`ubfuzz::executor::run_unit_range`]: compile and
//! record only, **no oracle** — merging is the daemon's job. Its stdout is
//! the completion receipt the daemon parses: one `computed=N replayed=N`
//! line followed by `metric …` lines ([`ubfuzz::obs::MetricsSnapshot::
//! encode_lines`]) carrying the per-stage latency histograms sampled in
//! this process — the daemon cannot time compiles it never runs, so the
//! receipt is the only road those samples have back to `METRICS`.
//! Everything diagnostic goes to stderr.

use std::sync::Arc;
use ubfuzz::backend::SimBackend;
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::executor::run_unit_range;
use ubfuzz::{obs, SanPolicy, Strategy};

use crate::{flag_num, flag_value};

/// Runs worker mode from CLI-style arguments (a leading `worker` token is
/// tolerated so the daemon can drive `ubfuzz-serve worker …` and the
/// `campaign_worker` wrapper with the same argument list). Returns the
/// process exit code: 0 on completion, 2 on flag misuse.
pub fn worker_main(args: &[String]) -> i32 {
    let args = match args.first().map(String::as_str) {
        Some("worker") => &args[1..],
        _ => args,
    };
    let misuse = |what: &str| -> i32 {
        eprintln!("ubfuzz-serve worker: {what}");
        eprintln!(
            "usage: worker --store DIR --shard ID --start A --end B \
             [--seeds N] [--first-seed N] [--strategy uniform|guided] \
             [--san full|none|partial[:ratio[:salt]]] [--threads N] [--stall-ms MS]"
        );
        2
    };
    let Some(store) = flag_value(args, "--store") else {
        return misuse("--store DIR is required");
    };
    let (Some(seeds), Some(first_seed)) =
        (flag_num(args, "--seeds", 1_usize), flag_num(args, "--first-seed", 0_u64))
    else {
        return misuse("bad --seeds / --first-seed");
    };
    let strategy = match flag_value(args, "--strategy") {
        None => Strategy::Uniform,
        Some(v) => match Strategy::parse(v) {
            Some(s) => s,
            None => return misuse("bad --strategy (uniform|guided)"),
        },
    };
    let san = match flag_value(args, "--san") {
        None => SanPolicy::Full,
        Some(v) => match SanPolicy::parse(v) {
            Some(p) => p,
            None => return misuse("bad --san (full|none|partial[:ratio[:salt]])"),
        },
    };
    let (Some(shard), Some(start), Some(end)) = (
        flag_num(args, "--shard", 0_u64),
        flag_num(args, "--start", 0_usize),
        flag_num(args, "--end", 0_usize),
    ) else {
        return misuse("bad --shard / --start / --end");
    };
    if shard == 0 {
        return misuse("--shard ID is required (nonzero; 0 is the primary log)");
    }
    let (Some(threads), Some(stall_ms)) =
        (flag_num(args, "--threads", 2_usize), flag_num(args, "--stall-ms", 0_u64))
    else {
        return misuse("bad --threads / --stall-ms");
    };
    // Test hook: hold the lease alive before doing any work, so kill/expiry
    // tests have a deterministic window in which the worker is running.
    if stall_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(stall_ms));
    }

    let store = std::path::PathBuf::from(store);
    // Attach the metrics sink before the backend opens its stores, so the
    // open-time replay scan is timed along with the compile stages.
    let sink = Arc::new(obs::MetricsSink::new());
    let _obs = obs::attach(sink.clone());
    let mut cfg = CampaignConfig::builder()
        .seeds(seeds)
        .first_seed(first_seed)
        .strategy(strategy)
        .san_policy(san)
        .recorder(sink.clone())
        .build();
    // Store-backed compile session: staged prefixes persist to the shared
    // `prefix.bin` (O_APPEND, so concurrent workers interleave whole
    // records), warming every sibling and the daemon's merge pass.
    let backend = SimBackend::with_store_capacity(&store, cfg.prefix_key_bound());
    cfg.backend = Some(Arc::new(backend));
    let stats = run_unit_range(&cfg, threads.max(1), true, &store, shard, start..end);
    println!("computed={} replayed={}", stats.computed, stats.replayed);
    print!("{}", sink.snapshot().encode_lines());
    0
}
