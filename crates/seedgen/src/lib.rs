//! `ubfuzz-seedgen` — a Csmith-style random program generator.
//!
//! The UBfuzz pipeline starts from *valid* seed programs (paper §4.1 uses
//! Csmith): closed (no inputs), terminating, UB-free programs that
//! nevertheless exercise rich language features — pointers (including
//! pointer-to-pointer and pointers into arrays), structs, heap buffers,
//! nested scopes, bounded loops and function calls. The UB generator then
//! mutates these seeds via shadow-statement insertion.
//!
//! # Safety discipline
//!
//! Instead of Csmith's `safe_math` wrapper functions, this generator makes
//! every operation safe **by construction** while keeping the raw operators
//! the UB generator needs to match:
//!
//! * arithmetic on `char`/`short` operands is raw (integer promotion makes
//!   overflow impossible);
//! * arithmetic on `int`/`long` operands masks each operand first
//!   (`(a & 1023) + (b & 1023)`), so the *operator itself* is a raw `+`;
//! * divisors and shift amounts use the `(x & m) + 1` / `(x & 31)` idioms;
//! * array indices are loop variables with matching bounds, in-range
//!   constants, or masked expressions;
//! * every local is initialized; every pointer points at valid storage when
//!   dereferenced; loops are counted `for` loops with constant bounds.
//!
//! With [`SeedOptions::safe_math`] set to `false` (the paper's
//! **Csmith-NoSafe** baseline, §4.3), the masking idioms are dropped:
//! arithmetic, shifts and divisions become unguarded, which yields programs
//! that frequently — but not always — contain arithmetic UB of exactly three
//! kinds (IntegerOverflow, ShiftOverflow, DivideByZero), reproducing the
//! baseline's behavior in Table 4.
//!
//! # Example
//!
//! ```
//! use ubfuzz_seedgen::{generate_seed, SeedOptions};
//! use ubfuzz_interp::run_program;
//!
//! let program = generate_seed(7, &SeedOptions::default());
//! assert!(run_program(&program).is_clean_exit());
//! ```

mod ctx;
mod expr;
mod stmt;

pub use ctx::SeedOptions;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ubfuzz_minic::{pretty, Program};

/// Generates one seed program from an RNG seed.
///
/// The same `(seed, options)` pair always yields the same program, so
/// campaigns are reproducible. The returned program has fresh node ids and
/// assigned `(line, offset)` locations.
pub fn generate_seed(seed: u64, options: &SeedOptions) -> Program {
    let mut rng =
        StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed));
    let mut gen = ctx::GenCtx::new(&mut rng, options.clone());
    let mut program = gen.build();
    program.assign_ids();
    pretty::relocate(&mut program);
    program
}

/// Generates `count` seeds with consecutive RNG seeds starting at `first`.
pub fn generate_corpus(first: u64, count: usize, options: &SeedOptions) -> Vec<Program> {
    (0..count as u64).map(|i| generate_seed(first + i, options)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_interp::{run_program, Outcome};
    use ubfuzz_minic::{print, typecheck};

    #[test]
    fn deterministic() {
        let a = generate_seed(42, &SeedOptions::default());
        let b = generate_seed(42, &SeedOptions::default());
        assert_eq!(print(&a), print(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_seed(1, &SeedOptions::default());
        let b = generate_seed(2, &SeedOptions::default());
        assert_ne!(print(&a), print(&b));
    }

    #[test]
    fn seeds_typecheck_and_run_clean() {
        for seed in 0..60 {
            let p = generate_seed(seed, &SeedOptions::default());
            typecheck(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", print(&p)));
            match run_program(&p) {
                Outcome::Exit { .. } => {}
                other => panic!("seed {seed} not clean: {other:?}\n{}", print(&p)),
            }
        }
    }

    #[test]
    fn seeds_have_rich_features() {
        let mut derefs = 0;
        let mut arrays = 0;
        let mut calls = 0;
        let mut inner_blocks = 0;
        for seed in 0..30 {
            let p = generate_seed(seed, &SeedOptions::default());
            let text = print(&p);
            if text.contains('*') {
                derefs += 1;
            }
            if text.contains('[') {
                arrays += 1;
            }
            if p.functions.len() > 1 {
                calls += 1;
            }
            ubfuzz_minic::visit::for_each_stmt(&p, |s| {
                if matches!(s.kind, ubfuzz_minic::StmtKind::Block(_)) {
                    inner_blocks += 1;
                }
            });
        }
        assert!(arrays >= 25, "arrays in most seeds: {arrays}");
        assert!(derefs >= 25, "derefs common: {derefs}");
        assert!(calls >= 15, "helper functions common: {calls}");
        assert!(inner_blocks >= 10, "inner scopes appear: {inner_blocks}");
    }

    #[test]
    fn nosafe_mode_produces_arithmetic_ub_sometimes() {
        let opts = SeedOptions { safe_math: false, ..SeedOptions::default() };
        let mut ub = 0;
        let mut clean = 0;
        for seed in 0..100 {
            let p = generate_seed(seed, &opts);
            match run_program(&p) {
                Outcome::Ub(ev) => {
                    use ubfuzz_interp::UbKind;
                    assert!(
                        matches!(ev.kind, UbKind::IntOverflow | UbKind::ShiftOverflow | UbKind::DivByZero),
                        "NoSafe UB limited to arithmetic kinds, got {} ({})",
                        ev.kind,
                        ev.detail
                    );
                    ub += 1;
                }
                Outcome::Exit { .. } => clean += 1,
                other => panic!("seed {seed}: {other:?}"),
            }
        }
        assert!(ub >= 20, "NoSafe triggers UB in a fair share of programs: {ub}");
        assert!(clean >= 3, "NoSafe still yields some clean programs: {clean}");
    }

    #[test]
    fn output_is_reparseable() {
        for seed in 0..20 {
            let p = generate_seed(seed, &SeedOptions::default());
            let text = print(&p);
            ubfuzz_minic::parse(&text)
                .unwrap_or_else(|e| panic!("seed {seed} output unparseable: {e}\n{text}"));
        }
    }

    #[test]
    fn corpus_helper_counts() {
        let c = generate_corpus(5, 4, &SeedOptions::default());
        assert_eq!(c.len(), 4);
    }
}
