//! Expression generation with by-construction safety.

use crate::ctx::{GenCtx, Scope, SymKind};
use rand::Rng;
use ubfuzz_minic::ast::{BinOp, Expr, UnOp};
use ubfuzz_minic::build as b;
use ubfuzz_minic::types::{IntType, Type};

/// Masks an expression to a small non-negative range (`e & mask`); the
/// promoted result of `&` with a positive constant is always in
/// `[0, mask]`, making subsequent arithmetic overflow-free.
pub(crate) fn masked(e: Expr, mask: i64) -> Expr {
    b::bin(BinOp::BitAnd, e, b::lit(mask))
}

/// A safe in-range index expression for a buffer of `len` elements.
pub(crate) fn gen_index_expr(g: &mut GenCtx, scope: &Scope, len: usize) -> Expr {
    // Loop variables with a small enough bound are ideal indices.
    let loop_candidates: Vec<String> = scope
        .loop_vars
        .iter()
        .filter(|(_, bound)| *bound <= len as i64)
        .map(|(n, _)| n.clone())
        .collect();
    if !loop_candidates.is_empty() && g.chance(0.5) {
        let name = &loop_candidates[g.rng.gen_range(0..loop_candidates.len())];
        return b::var(name);
    }
    // Power-of-two masks below the length.
    let mut mask = 1i64;
    while (mask * 2) <= len as i64 {
        mask *= 2;
    }
    if mask > 1 && g.chance(0.4) {
        let inner = gen_int_leaf(g, scope);
        return masked(inner, mask - 1);
    }
    b::lit(g.range(0, len as i64))
}

/// A leaf integer expression: literal, scalar, array element, dereference,
/// struct field, …
pub(crate) fn gen_int_leaf(g: &mut GenCtx, scope: &Scope) -> Expr {
    for _ in 0..8 {
        match g.rng.gen_range(0..10) {
            0 => {
                return b::lit(g.range(-60, 100));
            }
            1 | 2 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::Int(_))) {
                    return b::var(&s.name);
                }
            }
            3 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::Array { .. })) {
                    let (name, len) = match &s.kind {
                        SymKind::Array { len, .. } => (s.name.clone(), *len),
                        _ => unreachable!(),
                    };
                    let idx = gen_index_expr(g, scope, len);
                    return b::index(b::var(&name), idx);
                }
            }
            4 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrScalar(_))) {
                    return b::deref(b::var(&s.name));
                }
            }
            5 => {
                if let Some(s) = scope.pick(g.rng, |s| {
                    matches!(s.kind, SymKind::PtrBuf { .. } | SymKind::HeapBuf { .. })
                }) {
                    let (name, len) = match &s.kind {
                        SymKind::PtrBuf { len, .. } | SymKind::HeapBuf { len, .. } => {
                            (s.name.clone(), *len)
                        }
                        _ => unreachable!(),
                    };
                    // Fig. 1 shape: deref through the paired frozen index.
                    let pair =
                        g.buf_index_pairs.iter().find(|(p, _)| *p == name).cloned();
                    if let Some((_, k)) = pair {
                        if g.chance(0.5) {
                            return b::deref(b::add(b::var(&name), b::var(&k)));
                        }
                    }
                    let idx = gen_index_expr(g, scope, len);
                    if g.chance(0.5) {
                        return b::index(b::var(&name), idx);
                    }
                    return b::deref(b::add(b::var(&name), idx));
                }
            }
            6 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrPtr(_))) {
                    return b::deref(b::deref(b::var(&s.name)));
                }
            }
            7 => {
                // Same-object pointer difference `(int)((p + i) - p)` — valid
                // C (C17 6.5.6p9) evaluating to `i`, and the code construct
                // the §3.2.4 PtrDiff extension mutates.
                if let Some(s) = scope.pick(g.rng, |s| {
                    matches!(s.kind, SymKind::PtrBuf { .. } | SymKind::HeapBuf { .. })
                }) {
                    let (name, len) = match &s.kind {
                        SymKind::PtrBuf { len, .. } | SymKind::HeapBuf { len, .. } => {
                            (s.name.clone(), *len)
                        }
                        _ => unreachable!(),
                    };
                    let idx = gen_index_expr(g, scope, len);
                    return b::cast(
                        Type::int(),
                        b::bin(BinOp::Sub, b::add(b::var(&name), idx), b::var(&name)),
                    );
                }
            }
            8 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrStruct(_))) {
                    let sidx = match s.kind {
                        SymKind::PtrStruct(i) => i,
                        _ => unreachable!(),
                    };
                    let name = s.name.clone();
                    if let Some(f) = int_field(g, sidx) {
                        return b::arrow(b::var(&name), &f);
                    }
                }
            }
            _ => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::StructVal(_))) {
                    let sidx = match s.kind {
                        SymKind::StructVal(i) => i,
                        _ => unreachable!(),
                    };
                    let name = s.name.clone();
                    if let Some(f) = int_field(g, sidx) {
                        return b::member(b::var(&name), &f);
                    }
                }
            }
        }
    }
    b::lit(g.range(0, 50))
}

fn int_field(g: &mut GenCtx, sidx: usize) -> Option<String> {
    let fields: Vec<String> = g.structs[sidx]
        .fields
        .iter()
        .filter(|(_, t)| t.is_int())
        .map(|(n, _)| n.clone())
        .collect();
    if fields.is_empty() {
        None
    } else {
        Some(fields[g.rng.gen_range(0..fields.len())].clone())
    }
}

/// A divisor expression: guaranteed non-zero in safe mode, unguarded in
/// NoSafe mode. Occasionally uses the paper's Fig. 12b "boolean widened to
/// short" idiom, which the folding-defect triggers key on.
pub(crate) fn gen_divisor(g: &mut GenCtx, scope: &Scope, depth: usize) -> Expr {
    if !g.opts.safe_math {
        return gen_int_expr(g, scope, depth + 1);
    }
    match g.rng.gen_range(0..4) {
        0 => b::lit(g.range(1, 16)),
        1 | 2 => {
            let inner = gen_int_leaf(g, scope);
            b::add(masked(inner, 15), b::lit(1))
        }
        _ => {
            // (short)((a == b) | (c > d)) + 1  — in {1, 2}, never zero.
            let a = gen_int_leaf(g, scope);
            let c = gen_int_leaf(g, scope);
            let cmp1 = b::eq(a, b::lit(g.range(-4, 5)));
            let cmp2 = b::bin(BinOp::Gt, c, b::lit(g.range(0, 10)));
            b::add(
                b::cast(Type::Int(IntType::SHORT), b::bin(BinOp::BitOr, cmp1, cmp2)),
                b::lit(1),
            )
        }
    }
}

/// A general integer expression of bounded depth.
pub(crate) fn gen_int_expr(g: &mut GenCtx, scope: &Scope, depth: usize) -> Expr {
    if depth >= 3 || g.chance(0.3) {
        return gen_int_leaf(g, scope);
    }
    let safe = g.opts.safe_math;
    match g.rng.gen_range(0..10) {
        // Additive / multiplicative arithmetic.
        0..=2 => {
            let op = match g.rng.gen_range(0..4) {
                0 | 1 => BinOp::Add,
                2 => BinOp::Sub,
                _ => BinOp::Mul,
            };
            let lhs = gen_int_expr(g, scope, depth + 1);
            let rhs = gen_int_expr(g, scope, depth + 1);
            if safe {
                let m = if op == BinOp::Mul { 255 } else { 1023 };
                b::bin(op, masked(lhs, m), masked(rhs, m))
            } else {
                b::bin(op, lhs, rhs)
            }
        }
        // Division / remainder.
        3 => {
            let op = if g.chance(0.5) { BinOp::Div } else { BinOp::Rem };
            let lhs = gen_int_expr(g, scope, depth + 1);
            let rhs = gen_divisor(g, scope, depth);
            let lhs = if safe { masked(lhs, 4095) } else { lhs };
            b::bin(op, lhs, rhs)
        }
        // Shifts.
        4 => {
            let op = if g.chance(0.5) { BinOp::Shl } else { BinOp::Shr };
            let lhs = gen_int_expr(g, scope, depth + 1);
            let rhs = gen_int_leaf(g, scope);
            if safe {
                b::bin(op, masked(lhs, 255), masked(rhs, 7))
            } else {
                b::bin(op, lhs, rhs)
            }
        }
        // Bitwise — always safe.
        5 => {
            let op = match g.rng.gen_range(0..3) {
                0 => BinOp::BitAnd,
                1 => BinOp::BitOr,
                _ => BinOp::BitXor,
            };
            b::bin(op, gen_int_expr(g, scope, depth + 1), gen_int_expr(g, scope, depth + 1))
        }
        // Comparisons and logic.
        6 => {
            let op = match g.rng.gen_range(0..6) {
                0 => BinOp::Lt,
                1 => BinOp::Le,
                2 => BinOp::Gt,
                3 => BinOp::Ge,
                4 => BinOp::Eq,
                _ => BinOp::Ne,
            };
            b::bin(op, gen_int_expr(g, scope, depth + 1), gen_int_expr(g, scope, depth + 1))
        }
        7 => {
            let op = if g.chance(0.5) { BinOp::LogAnd } else { BinOp::LogOr };
            b::bin(op, gen_int_expr(g, scope, depth + 1), gen_int_expr(g, scope, depth + 1))
        }
        // Unary.
        8 => match g.rng.gen_range(0..3) {
            0 => {
                let inner = gen_int_expr(g, scope, depth + 1);
                if safe {
                    b::un(UnOp::Neg, masked(inner, 1023))
                } else {
                    b::un(UnOp::Neg, inner)
                }
            }
            1 => b::un(UnOp::BitNot, gen_int_expr(g, scope, depth + 1)),
            _ => b::un(UnOp::Not, gen_int_expr(g, scope, depth + 1)),
        },
        // Cast or conditional.
        _ => {
            if g.chance(0.5) {
                let ty = match g.rng.gen_range(0..3) {
                    0 => IntType::SHORT,
                    1 => IntType::CHAR,
                    _ => IntType::LONG,
                };
                b::cast(Type::Int(ty), gen_int_expr(g, scope, depth + 1))
            } else {
                b::cond(
                    gen_int_expr(g, scope, depth + 1),
                    gen_int_expr(g, scope, depth + 1),
                    gen_int_expr(g, scope, depth + 1),
                )
            }
        }
    }
}

/// A writable integer lvalue plus its element type, when one exists.
pub(crate) fn gen_int_lvalue(g: &mut GenCtx, scope: &Scope) -> Option<(Expr, IntType)> {
    for _ in 0..8 {
        match g.rng.gen_range(0..6) {
            0 | 1 => {
                if let Some(s) =
                    scope.pick(g.rng, |s| matches!(s.kind, SymKind::Int(_)) && !s.frozen)
                {
                    let it = match s.kind {
                        SymKind::Int(it) => it,
                        _ => unreachable!(),
                    };
                    return Some((b::var(&s.name), it));
                }
            }
            2 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::Array { .. })) {
                    let (name, len, elem) = match &s.kind {
                        SymKind::Array { len, elem } => (s.name.clone(), *len, *elem),
                        _ => unreachable!(),
                    };
                    let idx = gen_index_expr(g, scope, len);
                    return Some((b::index(b::var(&name), idx), elem));
                }
            }
            3 => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrScalar(_))) {
                    let it = match s.kind {
                        SymKind::PtrScalar(it) => it,
                        _ => unreachable!(),
                    };
                    return Some((b::deref(b::var(&s.name)), it));
                }
            }
            4 => {
                if let Some(s) = scope.pick(g.rng, |s| {
                    matches!(s.kind, SymKind::PtrBuf { .. } | SymKind::HeapBuf { .. })
                }) {
                    let (name, len, elem) = match &s.kind {
                        SymKind::PtrBuf { len, elem } | SymKind::HeapBuf { len, elem } => {
                            (s.name.clone(), *len, *elem)
                        }
                        _ => unreachable!(),
                    };
                    let idx = gen_index_expr(g, scope, len);
                    return Some((b::index(b::var(&name), idx), elem));
                }
            }
            _ => {
                if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrStruct(_))) {
                    let sidx = match s.kind {
                        SymKind::PtrStruct(i) => i,
                        _ => unreachable!(),
                    };
                    let name = s.name.clone();
                    let int_fields: Vec<(String, IntType)> = g.structs[sidx]
                        .fields
                        .iter()
                        .filter_map(|(n, t)| t.as_int().map(|it| (n.clone(), it)))
                        .collect();
                    if !int_fields.is_empty() {
                        let (f, it) =
                            int_fields[g.rng.gen_range(0..int_fields.len())].clone();
                        return Some((b::arrow(b::var(&name), &f), it));
                    }
                }
            }
        }
    }
    None
}

/// Picks a symbol usable as an `int*` argument to a helper call (a buffer of
/// at least `min_len` elements), returning the argument expression.
pub(crate) fn gen_buf_arg(g: &mut GenCtx, scope: &Scope, min_len: usize) -> Option<Expr> {
    let s = scope.pick(g.rng, |s| match &s.kind {
        SymKind::Array { elem, len } => *elem == IntType::INT && *len >= min_len,
        SymKind::PtrBuf { elem, len } | SymKind::HeapBuf { elem, len } => {
            *elem == IntType::INT && *len >= min_len
        }
        _ => false,
    })?;
    Some(b::var(&s.name))
}
