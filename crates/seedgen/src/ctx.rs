//! Generator context: options, symbol tracking and top-level assembly.

use rand::rngs::StdRng;
use rand::Rng;
use ubfuzz_minic::ast::*;
use ubfuzz_minic::build as b;
use ubfuzz_minic::types::{IntType, StructDef, Type};

/// Knobs for the seed generator.
#[derive(Debug, Clone)]
pub struct SeedOptions {
    /// `true` (default): arithmetic is made safe by masking idioms.
    /// `false`: the Csmith-NoSafe baseline — raw arithmetic that may
    /// overflow, shift out of range or divide by zero.
    pub safe_math: bool,
    /// Maximum number of helper functions besides `main`.
    pub max_helpers: usize,
    /// Maximum number of global variables (excluding structs' instances).
    pub max_globals: usize,
    /// Maximum statements generated per block.
    pub max_stmts: usize,
    /// Maximum nesting depth of blocks/loops inside a function body.
    pub max_depth: usize,
    /// Allow `malloc`/`free` heap buffers.
    pub enable_heap: bool,
    /// Allow struct definitions and struct-typed data.
    pub enable_structs: bool,
}

impl Default for SeedOptions {
    fn default() -> SeedOptions {
        SeedOptions {
            safe_math: true,
            max_helpers: 3,
            max_globals: 10,
            max_stmts: 8,
            max_depth: 3,
            enable_heap: true,
            enable_structs: true,
        }
    }
}

/// What a symbol is, from the generator's safety point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SymKind {
    /// Integer scalar.
    Int(IntType),
    /// Integer array of known length.
    Array { elem: IntType, len: usize },
    /// Pointer guaranteed to target one valid scalar.
    PtrScalar(IntType),
    /// Pointer guaranteed to target element 0 of a live buffer of `len`
    /// elements.
    PtrBuf { elem: IntType, len: usize },
    /// Pointer to a `PtrScalar` variable.
    PtrPtr(IntType),
    /// Struct value.
    StructVal(usize),
    /// Pointer to a valid struct value.
    PtrStruct(usize),
    /// Array of structs.
    StructArray { sidx: usize, len: usize },
    /// Pointer to element 0 of a live struct buffer.
    PtrStructBuf { sidx: usize, len: usize },
    /// Pointer variable holding a live `malloc` buffer of `len` elements.
    HeapBuf { elem: IntType, len: usize },
}

/// A tracked variable.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `ty` documents the symbol even where only `kind` is consulted
pub(crate) struct Sym {
    pub name: String,
    pub ty: Type,
    pub kind: SymKind,
    /// Frozen symbols are never reassigned (e.g. index globals whose value
    /// in-range accesses depend on).
    pub frozen: bool,
}

/// Lexical scope stack used while generating a function body.
#[derive(Debug, Default)]
pub(crate) struct Scope {
    frames: Vec<Vec<Sym>>,
    /// In-scope loop counters with their exclusive upper bounds.
    pub loop_vars: Vec<(String, i64)>,
}

impl Scope {
    pub fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    pub fn pop(&mut self) {
        self.frames.pop();
    }

    pub fn add(&mut self, sym: Sym) {
        self.frames.last_mut().expect("scope frame").push(sym);
    }

    /// All symbols visible here, innermost last.
    pub fn visible(&self) -> impl Iterator<Item = &Sym> {
        self.frames.iter().flatten()
    }

    /// Keeps only symbols satisfying `pred` (used when a buffer is freed).
    pub fn retain(&mut self, pred: impl Fn(&Sym) -> bool) {
        for frame in &mut self.frames {
            frame.retain(|s| pred(s));
        }
    }

    pub fn pick<'a>(
        &'a self,
        rng: &mut StdRng,
        pred: impl Fn(&Sym) -> bool,
    ) -> Option<&'a Sym> {
        let candidates: Vec<&Sym> = self.visible().filter(|s| pred(s)).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }
}

pub(crate) struct GenCtx<'r> {
    pub rng: &'r mut StdRng,
    pub opts: SeedOptions,
    pub structs: Vec<StructDef>,
    pub globals: Vec<Decl>,
    pub global_syms: Vec<Sym>,
    pub functions: Vec<Function>,
    /// `(buffer pointer, frozen index global)` pairs where the index's value
    /// is known to be in range for the buffer — the Fig. 1 `*(d + k)` shape.
    pub buf_index_pairs: Vec<(String, String)>,
    name_counter: u32,
}

impl<'r> GenCtx<'r> {
    pub fn new(rng: &'r mut StdRng, opts: SeedOptions) -> GenCtx<'r> {
        GenCtx {
            rng,
            opts,
            structs: Vec::new(),
            globals: Vec::new(),
            global_syms: Vec::new(),
            functions: Vec::new(),
            buf_index_pairs: Vec::new(),
            name_counter: 0,
        }
    }

    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.name_counter;
        self.name_counter += 1;
        format!("{prefix}{n}")
    }

    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// Assembles a whole program.
    pub fn build(&mut self) -> Program {
        if self.opts.enable_structs {
            self.gen_structs();
        }
        self.gen_globals();
        let helpers = 1 + self.rng.gen_range(0..self.opts.max_helpers.max(1));
        for _ in 0..helpers {
            self.gen_helper();
        }
        self.gen_main();
        Program {
            structs: std::mem::take(&mut self.structs),
            globals: std::mem::take(&mut self.globals),
            functions: std::mem::take(&mut self.functions),
            next_id: 1,
        }
    }

    fn gen_structs(&mut self) {
        let count = self.rng.gen_range(1..=2);
        for _ in 0..count {
            let name = self.fresh("S");
            let nfields = self.rng.gen_range(1..=3usize);
            let mut fields = Vec::new();
            for i in 0..nfields {
                let fname = format!("f{i}");
                let fty = match self.rng.gen_range(0..4) {
                    0 => Type::Int(IntType::INT),
                    1 => Type::Int(IntType::SHORT),
                    2 => Type::array(Type::int(), self.rng.gen_range(2..=4) as usize),
                    _ => Type::Int(IntType::LONG),
                };
                fields.push((fname, fty));
            }
            self.structs.push(StructDef { name, fields });
        }
    }

    fn int_literal_for(&mut self, ty: IntType) -> Expr {
        // Safe mode keeps values small-ish; NoSafe seeds in large values so
        // unguarded arithmetic has something to overflow on.
        let v: i128 = if !self.opts.safe_math && self.chance(0.35) {
            match self.rng.gen_range(0..3) {
                0 => 2_000_000_000,
                1 => 1 << 30,
                _ => i32::MAX as i128 - self.rng.gen_range(0..3) as i128,
            }
        } else {
            self.rng.gen_range(-90..100) as i128
        };
        let v = ty.wrap(v.clamp(ty.min_value(), ty.max_value()));
        b::lit_ty(v, ty)
    }

    fn rand_int_type(&mut self) -> IntType {
        match self.rng.gen_range(0..8) {
            0 => IntType::CHAR,
            1 => IntType::UCHAR,
            2 => IntType::SHORT,
            3 => IntType::USHORT,
            4 | 5 => IntType::INT,
            6 => IntType::UINT,
            _ => IntType::LONG,
        }
    }

    fn gen_globals(&mut self) {
        // Integer scalars.
        let scalars = 3 + self.rng.gen_range(0..self.opts.max_globals.max(4) - 3);
        for _ in 0..scalars {
            let ty = self.rand_int_type();
            let name = self.fresh("g");
            let init = self.int_literal_for(ty);
            self.globals.push(b::global(&name, Type::Int(ty), Some(Init::Expr(init))));
            self.global_syms.push(Sym {
                name,
                ty: Type::Int(ty),
                kind: SymKind::Int(ty),
                frozen: false,
            });
        }
        // Integer arrays — a mix of power-of-two and odd lengths (odd global
        // arrays matter for the red-zone defect triggers).
        let arrays = self.rng.gen_range(1..=3usize);
        for _ in 0..arrays {
            let len = *[3usize, 4, 5, 7, 8]
                .get(self.rng.gen_range(0..5))
                .expect("length table");
            let elem = if self.chance(0.25) { IntType::CHAR } else { IntType::INT };
            let name = self.fresh("arr");
            let items: Vec<Init> = (0..len)
                .map(|_| Init::Expr(self.int_literal_for(elem)))
                .collect();
            self.globals.push(b::global(
                &name,
                Type::array(Type::Int(elem), len),
                Some(Init::List(items)),
            ));
            self.global_syms.push(Sym {
                name,
                ty: Type::array(Type::Int(elem), len),
                kind: SymKind::Array { elem, len },
                frozen: false,
            });
        }
        // Pointers to globals.
        if let Some(target) = self.pick_global(|s| matches!(s.kind, SymKind::Int(IntType::INT))) {
            let name = self.fresh("ptr");
            self.globals.push(b::global(
                &name,
                Type::ptr(Type::int()),
                Some(Init::Expr(b::addr_of(b::var(&target.name)))),
            ));
            self.global_syms.push(Sym {
                name: name.clone(),
                ty: Type::ptr(Type::int()),
                kind: SymKind::PtrScalar(IntType::INT),
                frozen: false,
            });
            // And a pointer to that pointer.
            if self.chance(0.7) {
                let pp = self.fresh("pp");
                self.globals.push(b::global(
                    &pp,
                    Type::ptr(Type::ptr(Type::int())),
                    Some(Init::Expr(b::addr_of(b::var(&name)))),
                ));
                self.global_syms.push(Sym {
                    name: pp,
                    ty: Type::ptr(Type::ptr(Type::int())),
                    kind: SymKind::PtrPtr(IntType::INT),
                    frozen: false,
                });
            }
        }
        // Pointer to an int buffer plus a frozen index global (Fig. 1 shape).
        if let Some(arr) = self
            .pick_global(|s| matches!(s.kind, SymKind::Array { elem: IntType::INT, .. }))
        {
            let len = match arr.kind {
                SymKind::Array { len, .. } => len,
                _ => unreachable!(),
            };
            let arr_name = arr.name.clone();
            let pname = self.fresh("pbuf");
            self.globals.push(b::global(
                &pname,
                Type::ptr(Type::int()),
                Some(Init::Expr(b::var(&arr_name))),
            ));
            self.global_syms.push(Sym {
                name: pname.clone(),
                ty: Type::ptr(Type::int()),
                kind: SymKind::PtrBuf { elem: IntType::INT, len },
                frozen: false,
            });
            let kname = self.fresh("k");
            let kval = self.rng.gen_range(0..len as i64);
            self.globals.push(b::global(&kname, Type::int(), Some(Init::Expr(b::lit(kval)))));
            self.buf_index_pairs.push((pname.clone(), kname.clone()));
            self.global_syms.push(Sym {
                name: kname,
                ty: Type::int(),
                kind: SymKind::Int(IntType::INT),
                frozen: true,
            });
        }
        // Struct instances.
        if !self.structs.is_empty() {
            let sidx = self.rng.gen_range(0..self.structs.len());
            let sname = self.fresh("sv");
            self.globals.push(b::global(&sname, Type::Struct(sidx), None));
            self.global_syms.push(Sym {
                name: sname.clone(),
                ty: Type::Struct(sidx),
                kind: SymKind::StructVal(sidx),
                frozen: false,
            });
            let spname = self.fresh("sp");
            self.globals.push(b::global(
                &spname,
                Type::ptr(Type::Struct(sidx)),
                Some(Init::Expr(b::addr_of(b::var(&sname)))),
            ));
            self.global_syms.push(Sym {
                name: spname,
                ty: Type::ptr(Type::Struct(sidx)),
                kind: SymKind::PtrStruct(sidx),
                frozen: false,
            });
            // Struct array + pointer into it (paper Fig. 1 uses exactly this).
            if self.chance(0.6) {
                let len = self.rng.gen_range(2..=3) as usize;
                let baname = self.fresh("sb");
                self.globals.push(b::global(
                    &baname,
                    Type::array(Type::Struct(sidx), len),
                    None,
                ));
                self.global_syms.push(Sym {
                    name: baname.clone(),
                    ty: Type::array(Type::Struct(sidx), len),
                    kind: SymKind::StructArray { sidx, len },
                    frozen: false,
                });
                let bpname = self.fresh("sd");
                self.globals.push(b::global(
                    &bpname,
                    Type::ptr(Type::Struct(sidx)),
                    Some(Init::Expr(b::var(&baname))),
                ));
                self.global_syms.push(Sym {
                    name: bpname,
                    ty: Type::ptr(Type::Struct(sidx)),
                    kind: SymKind::PtrStructBuf { sidx, len },
                    frozen: false,
                });
            }
        }
    }

    fn pick_global(&mut self, pred: impl Fn(&Sym) -> bool) -> Option<Sym> {
        let candidates: Vec<Sym> =
            self.global_syms.iter().filter(|s| pred(s)).cloned().collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())].clone())
        }
    }

    /// A helper function `int fN(int pa, int *pb)`; callers only pass
    /// buffers of at least [`crate::stmt::MIN_PTR_PARAM_LEN`] elements.
    fn gen_helper(&mut self) {
        let name = self.fresh("f");
        let mut scope = Scope::default();
        scope.push();
        for s in &self.global_syms {
            scope.add(s.clone());
        }
        scope.push();
        scope.add(Sym {
            name: "pa".into(),
            ty: Type::int(),
            kind: SymKind::Int(IntType::INT),
            frozen: false,
        });
        scope.add(Sym {
            name: "pb".into(),
            ty: Type::ptr(Type::int()),
            kind: SymKind::PtrBuf { elem: IntType::INT, len: crate::stmt::MIN_PTR_PARAM_LEN },
            frozen: false,
        });
        let mut body = crate::stmt::gen_body(self, &mut scope, 1);
        let retv = crate::expr::gen_int_expr(self, &scope, 1);
        body.push(b::ret(Some(retv)));
        scope.pop();
        self.functions.push(b::function(
            &name,
            Type::int(),
            vec![
                ("pa".to_string(), Type::int()),
                ("pb".to_string(), Type::ptr(Type::int())),
            ],
            body,
        ));
    }

    fn gen_main(&mut self) {
        let mut scope = Scope::default();
        scope.push();
        for s in &self.global_syms {
            scope.add(s.clone());
        }
        scope.push();
        let mut body = crate::stmt::gen_main_body(self, &mut scope);
        body.extend(self.gen_checksum(&scope));
        body.push(b::ret(Some(b::lit(0))));
        scope.pop();
        self.functions.push(b::function("main", Type::int(), vec![], body));
    }

    /// Csmith-style observability: fold global state into an unsigned
    /// checksum (unsigned arithmetic cannot overflow) and print it.
    fn gen_checksum(&mut self, scope: &Scope) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        stmts.push(b::decl_stmt(
            "csum",
            Type::Int(IntType::ULONG),
            Some(b::lit_ty(0, IntType::ULONG)),
        ));
        let mut terms: Vec<Expr> = Vec::new();
        for s in scope.visible() {
            match &s.kind {
                SymKind::Int(_) => terms.push(b::var(&s.name)),
                SymKind::Array { len, .. } => {
                    terms.push(b::index(b::var(&s.name), b::lit((len - 1) as i64)));
                    terms.push(b::index(b::var(&s.name), b::lit(0)));
                }
                SymKind::StructVal(sidx) => {
                    if let Some((fname, fty)) = self.structs[*sidx].fields.first() {
                        if fty.is_int() {
                            terms.push(b::member(b::var(&s.name), fname));
                        }
                    }
                }
                _ => {}
            }
        }
        for t in terms.into_iter().take(12) {
            stmts.push(b::expr_stmt(b::assign(
                b::var("csum"),
                b::add(
                    b::mul(b::var("csum"), b::lit_ty(31, IntType::ULONG)),
                    b::cast(Type::Int(IntType::ULONG), t),
                ),
            )));
        }
        stmts.push(b::expr_stmt(b::call(
            "print_value",
            vec![b::cast(Type::Int(IntType::LONG), b::var("csum"))],
        )));
        stmts
    }
}
