//! Statement and function-body generation.

use crate::ctx::{GenCtx, Scope, Sym, SymKind};
use rand::Rng;
use crate::expr::{gen_buf_arg, gen_divisor, gen_int_expr, gen_int_leaf, gen_int_lvalue, masked};
use ubfuzz_minic::ast::{BinOp, Expr, Stmt};
use ubfuzz_minic::build as b;
use ubfuzz_minic::types::{IntType, Type};

/// Helper `int*` parameters are only ever passed buffers of at least this
/// many elements, so constant indices `0..MIN_PTR_PARAM_LEN` are safe inside
/// helpers.
pub(crate) const MIN_PTR_PARAM_LEN: usize = 4;

/// Body for a helper function (no heap, no calls, no trailing return —
/// the caller appends it).
pub(crate) fn gen_body(g: &mut GenCtx, scope: &mut Scope, depth: usize) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let n = 2 + g.rng.gen_range(0..g.opts.max_stmts.max(3) - 1);
    for _ in 0..n {
        stmts.extend(gen_stmt(g, scope, depth, false));
    }
    stmts
}

/// Body for `main`: locals, heap buffers, a guaranteed use-after-scope
/// candidate shape, random statements, calls, frees.
pub(crate) fn gen_main_body(g: &mut GenCtx, scope: &mut Scope) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut heap_bufs: Vec<String> = Vec::new();

    // A few initialized locals.
    for _ in 0..g.rng.gen_range(2..5) {
        stmts.push(gen_local_int(g, scope));
    }
    if g.chance(0.8) {
        stmts.push(gen_local_array(g, scope));
    }
    // Local pointer to a scalar.
    if g.chance(0.8) {
        if let Some(stmt) = gen_local_ptr(g, scope) {
            stmts.push(stmt);
        }
    }
    // Heap buffers with initialization loops.
    if g.opts.enable_heap {
        for _ in 0..g.rng.gen_range(1..3) {
            let (alloc_stmts, name) = gen_heap_buf(g, scope);
            stmts.extend(alloc_stmts);
            heap_bufs.push(name);
        }
    }
    // Random statements.
    let n = 3 + g.rng.gen_range(0..g.opts.max_stmts.max(4) - 2);
    for _ in 0..n {
        stmts.extend(gen_stmt(g, scope, 0, true));
    }
    // Use-after-scope candidate: pointer, inner block with a local, then a
    // dereference after the block. The seed keeps everything in-bounds; the
    // UB generator's UseAfterScope synthesizer appends `p = &inner;` to the
    // inner block to create the dangling pointer.
    if g.chance(0.85) {
        stmts.extend(gen_uas_candidate(g, scope));
    }
    // Free about half of the heap buffers (unfreed buffers are the
    // use-after-free targets: inserting `free(p)` before a dereference then
    // yields exactly one UB).
    for name in heap_bufs {
        if g.chance(0.5) {
            stmts.push(b::expr_stmt(b::call("free", vec![b::var(&name)])));
            remove_sym(scope, &name);
        }
    }
    stmts
}

fn remove_sym(scope: &mut Scope, name: &str) {
    scope.retain(|s| s.name != name);
}

fn gen_local_int(g: &mut GenCtx, scope: &mut Scope) -> Stmt {
    let it = match g.rng.gen_range(0..5) {
        0 => IntType::CHAR,
        1 => IntType::SHORT,
        2 => IntType::LONG,
        3 => IntType::UINT,
        _ => IntType::INT,
    };
    let name = g.fresh("l");
    let init = gen_int_expr(g, scope, 1);
    let stmt = b::decl_stmt(&name, Type::Int(it), Some(init));
    scope.add(Sym { name, ty: Type::Int(it), kind: SymKind::Int(it), frozen: false });
    stmt
}

fn gen_local_array(g: &mut GenCtx, scope: &mut Scope) -> Stmt {
    let len = *[3usize, 4, 5, 8].get(g.rng.gen_range(0..4)).expect("len");
    let elem = if g.chance(0.2) { IntType::CHAR } else { IntType::INT };
    let name = g.fresh("la");
    let items: Vec<Expr> = (0..len).map(|_| b::lit(g.range(-50, 100))).collect();
    let stmt = b::decl_list_stmt(&name, Type::array(Type::Int(elem), len), items);
    scope.add(Sym {
        name,
        ty: Type::array(Type::Int(elem), len),
        kind: SymKind::Array { elem, len },
        frozen: false,
    });
    stmt
}

fn gen_local_ptr(g: &mut GenCtx, scope: &mut Scope) -> Option<Stmt> {
    let target =
        scope.pick(g.rng, |s| matches!(s.kind, SymKind::Int(IntType::INT)) && !s.frozen)?;
    let tname = target.name.clone();
    let name = g.fresh("lp");
    let stmt = b::decl_stmt(
        &name,
        Type::ptr(Type::int()),
        Some(b::addr_of(b::var(&tname))),
    );
    scope.add(Sym {
        name,
        ty: Type::ptr(Type::int()),
        kind: SymKind::PtrScalar(IntType::INT),
        frozen: false,
    });
    Some(stmt)
}

fn gen_heap_buf(g: &mut GenCtx, scope: &mut Scope) -> (Vec<Stmt>, String) {
    let len = *[4usize, 8, 8, 16].get(g.rng.gen_range(0..4)).expect("len");
    let name = g.fresh("h");
    let mut stmts = vec![b::decl_stmt(
        &name,
        Type::ptr(Type::int()),
        Some(b::cast(
            Type::ptr(Type::int()),
            b::call("malloc", vec![b::lit((len * 4) as i64)]),
        )),
    )];
    // Initialization loop writes every element.
    let iv = g.fresh("i");
    let fill = gen_int_leaf(g, scope);
    stmts.push(b::counted_for(
        &iv,
        0,
        len as i64,
        1,
        vec![b::expr_stmt(b::assign(
            b::index(b::var(&name), b::var(&iv)),
            b::add(masked(fill, 255), b::var(&iv)),
        ))],
    ));
    scope.add(Sym {
        name: name.clone(),
        ty: Type::ptr(Type::int()),
        kind: SymKind::HeapBuf { elem: IntType::INT, len },
        frozen: false,
    });
    (stmts, name)
}

/// The use-after-scope raw material (see [`gen_main_body`]).
fn gen_uas_candidate(g: &mut GenCtx, scope: &mut Scope) -> Vec<Stmt> {
    let Some(target) =
        scope.pick(g.rng, |s| matches!(s.kind, SymKind::Int(IntType::INT)) && !s.frozen)
    else {
        return Vec::new();
    };
    let tname = target.name.clone();
    let pname = g.fresh("q");
    let inner = g.fresh("t");
    let sink = g.fresh("l");
    let mut stmts = vec![b::decl_stmt(
        &pname,
        Type::ptr(Type::int()),
        Some(b::addr_of(b::var(&tname))),
    )];
    scope.add(Sym {
        name: pname.clone(),
        ty: Type::ptr(Type::int()),
        kind: SymKind::PtrScalar(IntType::INT),
        frozen: true, // keep it pointed at the scalar so the later deref stays valid
    });
    // Inner scope with a local the UAS synthesizer can leak.
    let inner_stmts = vec![
        b::decl_stmt(&inner, Type::int(), Some(gen_int_expr(g, scope, 1))),
        b::expr_stmt(b::assign(
            b::var(&tname),
            b::add(masked(b::var(&inner), 1023), masked(b::var(&tname), 1023)),
        )),
    ];
    stmts.push(b::block_stmt(inner_stmts));
    // Dereference after the scope closed (valid in the seed).
    stmts.push(b::decl_stmt(&sink, Type::int(), Some(b::deref(b::var(&pname)))));
    scope.add(Sym {
        name: sink,
        ty: Type::int(),
        kind: SymKind::Int(IntType::INT),
        frozen: false,
    });
    stmts
}

/// One random statement (possibly a compound one). `in_main` enables calls.
fn gen_stmt(g: &mut GenCtx, scope: &mut Scope, depth: usize, in_main: bool) -> Vec<Stmt> {
    match g.rng.gen_range(0..12) {
        // Plain assignment.
        0..=2 => {
            if let Some((lv, _)) = gen_int_lvalue(g, scope) {
                let rhs = gen_int_expr(g, scope, 0);
                return vec![b::expr_stmt(b::assign(lv, rhs))];
            }
            vec![]
        }
        // Compound assignment (safe subset: += -= &= |= ^=).
        3 => {
            if let Some((lv, _)) = gen_int_lvalue(g, scope) {
                let op = match g.rng.gen_range(0..5) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::BitAnd,
                    3 => BinOp::BitOr,
                    _ => BinOp::BitXor,
                };
                let rhs = if g.opts.safe_math {
                    masked(gen_int_expr(g, scope, 1), 1023)
                } else {
                    gen_int_expr(g, scope, 1)
                };
                return vec![b::expr_stmt(Expr::new(
                    ubfuzz_minic::ExprKind::CompoundAssign(op, Box::new(lv), Box::new(rhs)),
                ))];
            }
            vec![]
        }
        // Read-modify-write `++lvalue` (UBSan/ASan RMW defect triggers).
        4 => {
            if let Some((lv, _)) = gen_int_lvalue(g, scope) {
                return vec![b::expr_stmt(b::pre_inc(lv))];
            }
            vec![]
        }
        // If statement.
        5 => {
            if depth >= g.opts.max_depth {
                return vec![];
            }
            // The `(x & m) - 1` shape is the Fig. 12f raw material: MSan's
            // sub-with-constant shadow handling is one of the defects.
            let cond = if g.chance(0.35) {
                b::sub(masked(gen_int_leaf(g, scope), 255), b::lit(1))
            } else {
                gen_int_expr(g, scope, 1)
            };
            scope.push();
            let then: Vec<Stmt> = (0..g.rng.gen_range(1..3))
                .flat_map(|_| gen_stmt(g, scope, depth + 1, in_main))
                .collect();
            scope.pop();
            let els = if g.chance(0.4) {
                scope.push();
                let e: Vec<Stmt> = (0..g.rng.gen_range(1..3))
                    .flat_map(|_| gen_stmt(g, scope, depth + 1, in_main))
                    .collect();
                scope.pop();
                Some(e)
            } else {
                None
            };
            let then = if then.is_empty() {
                vec![b::expr_stmt(gen_int_leaf(g, scope))]
            } else {
                then
            };
            vec![b::if_stmt(cond, then, els)]
        }
        // Counted for loop.
        6 | 7 => {
            if depth >= g.opts.max_depth {
                return vec![];
            }
            let bound = g.range(2, 9);
            let iv = g.fresh("i");
            scope.push();
            scope.loop_vars.push((iv.clone(), bound));
            let body: Vec<Stmt> = (0..g.rng.gen_range(1..4))
                .flat_map(|_| gen_stmt(g, scope, depth + 1, in_main))
                .collect();
            scope.loop_vars.pop();
            scope.pop();
            let body = if body.is_empty() {
                vec![b::expr_stmt(gen_int_leaf(g, scope))]
            } else {
                body
            };
            vec![b::counted_for(&iv, 0, bound, 1, body)]
        }
        // Inner block with a short-lived local.
        8 => {
            if depth >= g.opts.max_depth {
                return vec![];
            }
            scope.push();
            let mut body = vec![gen_local_int(g, scope)];
            body.extend(gen_stmt(g, scope, depth + 1, in_main));
            scope.pop();
            vec![b::block_stmt(body)]
        }
        // Helper call.
        9 => {
            if in_main && !g.functions.is_empty() {
                let f = &g.functions[g.rng.gen_range(0..g.functions.len())];
                let fname = f.name.clone();
                if let Some(buf) = gen_buf_arg(g, scope, MIN_PTR_PARAM_LEN) {
                    let a0 = gen_int_expr(g, scope, 1);
                    if let Some((lv, _)) = gen_int_lvalue(g, scope) {
                        return vec![b::expr_stmt(b::assign(
                            lv,
                            b::call(&fname, vec![a0, buf]),
                        ))];
                    }
                }
            }
            vec![]
        }
        // Struct operations: field write or whole-struct copy.
        10 => {
            if let Some(s) = scope.pick(g.rng, |s| matches!(s.kind, SymKind::PtrStruct(_))) {
                let sidx = match s.kind {
                    SymKind::PtrStruct(i) => i,
                    _ => unreachable!(),
                };
                let pname = s.name.clone();
                // Whole-struct copy through pointers (`*sp = sv;` /
                // `sv = *(sd + c);`) exercises the struct-copy defect.
                if let Some(other) =
                    scope.pick(g.rng, |s| s.kind == SymKind::StructVal(sidx))
                {
                    let oname = other.name.clone();
                    if g.chance(0.5) {
                        return vec![b::expr_stmt(b::assign(
                            b::deref(b::var(&pname)),
                            b::var(&oname),
                        ))];
                    }
                    if let Some(bufp) = scope.pick(g.rng, |s| {
                        matches!(s.kind, SymKind::PtrStructBuf { sidx: si, .. } if si == sidx)
                    }) {
                        let (bname, blen) = match bufp.kind {
                            SymKind::PtrStructBuf { len, .. } => (bufp.name.clone(), len),
                            _ => unreachable!(),
                        };
                        let c = g.range(0, blen as i64);
                        return vec![b::expr_stmt(b::assign(
                            b::var(&oname),
                            b::deref(b::add(b::var(&bname), b::lit(c))),
                        ))];
                    }
                }
            }
            vec![]
        }
        // A division-heavy statement (divide/remainder defect triggers).
        _ => {
            if let Some((lv, _)) = gen_int_lvalue(g, scope) {
                let lhs = if g.opts.safe_math {
                    masked(gen_int_expr(g, scope, 1), 4095)
                } else {
                    gen_int_expr(g, scope, 1)
                };
                let op = if g.chance(0.5) { BinOp::Div } else { BinOp::Rem };
                let rhs = gen_divisor(g, scope, 0);
                return vec![b::expr_stmt(b::assign(lv, b::bin(op, lhs, rhs)))];
            }
            vec![]
        }
    }
}
