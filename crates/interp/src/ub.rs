//! Undefined-behavior taxonomy and execution outcomes.

use std::fmt;
use ubfuzz_minic::{Loc, NodeId};

pub use ubfuzz_minic::ubkind::UbKind;

/// A detected undefined behavior: what, where, and on which node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbEvent {
    /// The UB kind.
    pub kind: UbKind,
    /// Source position of the offending expression.
    pub loc: Loc,
    /// Node id of the offending expression (when known).
    pub node: NodeId,
    /// Human-readable detail ("write of 4 bytes at offset 8 of `b` (size 8)").
    pub detail: String,
}

impl fmt::Display for UbEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.loc, self.detail)
    }
}

/// Result of interpreting a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Exit {
        /// `main`'s return value, truncated to an exit status byte.
        status: i64,
        /// Values printed through `print_value`, in order.
        output: Vec<i64>,
    },
    /// Undefined behavior detected; execution stopped at the first event.
    Ub(UbEvent),
    /// The step budget was exhausted (treated as a hang).
    StepLimit,
    /// A structural failure (e.g. call to an unknown function); programs
    /// that type-check never produce this.
    Invalid(String),
}

impl Outcome {
    /// The UB event, if this outcome is [`Outcome::Ub`].
    pub fn ub(&self) -> Option<&UbEvent> {
        match self {
            Outcome::Ub(e) => Some(e),
            _ => None,
        }
    }

    /// True if the program ran to completion without UB.
    pub fn is_clean_exit(&self) -> bool {
        matches!(self, Outcome::Exit { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let ev = UbEvent {
            kind: UbKind::DivByZero,
            loc: Loc::new(3, 1),
            node: NodeId(5),
            detail: "x / 0".into(),
        };
        let o = Outcome::Ub(ev.clone());
        assert_eq!(o.ub(), Some(&ev));
        assert!(!o.is_clean_exit());
        assert!(Outcome::Exit { status: 0, output: vec![] }.is_clean_exit());
    }
}
