//! The tree-walking evaluator.
//!
//! One engine serves both roles described in the crate docs: ground-truth
//! UB detection (run with an empty watch set) and execution profiling (run
//! with the matcher's watch set and read back the [`ExecProfile`]).

use crate::memory::{AccessErr, Memory, ObjId, Storage};
use crate::profile::{ExecProfile, ObjRecord, PointeeRecord, ValueRecord};
use crate::ub::{Outcome, UbEvent, UbKind};
use crate::value::{PtrVal, TVal, Value};
use std::collections::{HashMap, HashSet};
use ubfuzz_minic::ast::*;
use ubfuzz_minic::typeck::{typecheck, TypeMap};
use ubfuzz_minic::types::{IntType, Type};
use ubfuzz_minic::{Loc, NodeId};

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum number of statement executions before [`Outcome::StepLimit`].
    pub step_limit: u64,
    /// Expression ids whose values are recorded into the profile.
    pub watch: HashSet<NodeId>,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { step_limit: 2_000_000, watch: HashSet::new(), max_call_depth: 64 }
    }
}

/// Runs `program` to completion with default limits and no profiling.
pub fn run_program(program: &Program) -> Outcome {
    run_with_config(program, &ExecConfig::default()).0
}

/// Runs `program` under `cfg`, returning the outcome and the execution
/// profile (allocation records are always collected; expression values only
/// for watched ids).
pub fn run_with_config(program: &Program, cfg: &ExecConfig) -> (Outcome, ExecProfile) {
    let tmap = match typecheck(program) {
        Ok(m) => m,
        Err(e) => return (Outcome::Invalid(e.to_string()), ExecProfile::new()),
    };
    let mut interp = Interp {
        program,
        tmap,
        mem: Memory::new(),
        frames: Vec::new(),
        globals: HashMap::new(),
        time: 0,
        steps: 0,
        output: Vec::new(),
        cfg,
        profile: ExecProfile::new(),
        frame_names: vec!["<globals>".to_string()],
        next_frame: 1,
        heap_count: 0,
    };
    let outcome = interp.run();
    let mut profile = std::mem::take(&mut interp.profile);
    // Fold final object state into the profile.
    for (i, o) in interp.mem.objects().iter().enumerate() {
        profile.objects.push(ObjRecord {
            obj: ObjId(i as u32),
            name: o.name.clone(),
            storage: o.storage,
            size: o.size(),
            scope_depth: o.scope_depth,
            frame: o.frame,
            fn_name: interp
                .frame_names
                .get(o.frame as usize)
                .cloned()
                .unwrap_or_default(),
            decl_node: o.decl_node,
            alloc_time: o.alloc_time,
            dead_time: o.dead_time,
            freed_time: o.freed_time,
        });
    }
    (outcome, profile)
}

/// Control-flow escape from a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(TVal),
}

/// Hard stop of the whole execution.
enum Stop {
    Ub(UbEvent),
    StepLimit,
    Invalid(String),
}

type EResult<T> = Result<T, Stop>;

/// How an access was written in the source — decides whether an
/// out-of-bounds access is `BufOverflow(Array)` or `BufOverflow(Pointer)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessOrigin {
    Array,
    Pointer,
}

/// A resolved lvalue.
struct Place {
    ptr: PtrVal,
    ty: Type,
    origin: AccessOrigin,
}

struct FrameEnv {
    id: u32,
    scopes: Vec<HashMap<String, ObjId>>,
}

struct Interp<'p> {
    program: &'p Program,
    tmap: TypeMap,
    mem: Memory,
    frames: Vec<FrameEnv>,
    globals: HashMap<String, ObjId>,
    time: u64,
    steps: u64,
    output: Vec<i64>,
    cfg: &'p ExecConfig,
    profile: ExecProfile,
    frame_names: Vec<String>,
    next_frame: u32,
    heap_count: u32,
}

impl<'p> Interp<'p> {
    fn run(&mut self) -> Outcome {
        match self.run_inner() {
            Ok(status) => Outcome::Exit { status, output: std::mem::take(&mut self.output) },
            Err(Stop::Ub(e)) => Outcome::Ub(e),
            Err(Stop::StepLimit) => Outcome::StepLimit,
            Err(Stop::Invalid(m)) => Outcome::Invalid(m),
        }
    }

    fn run_inner(&mut self) -> EResult<i64> {
        self.alloc_globals()?;
        let main = self
            .program
            .function("main")
            .ok_or_else(|| Stop::Invalid("no main function".into()))?;
        let ret = self.call(main, Vec::new(), Loc::UNKNOWN)?;
        if ret.taint {
            return Err(self.ub_at(
                UbKind::UninitUse,
                Loc::UNKNOWN,
                NodeId::DUMMY,
                "main returns an uninitialized value",
            ));
        }
        Ok(IntType::INT.wrap(ret.v.as_i128()) as i64)
    }

    fn structs(&self) -> &'p [ubfuzz_minic::types::StructDef] {
        &self.program.structs
    }

    fn sizeof(&self, ty: &Type) -> usize {
        ty.size_of(self.structs())
    }

    fn alloc_globals(&mut self) -> EResult<()> {
        for g in &self.program.globals {
            let size = self.sizeof(&g.ty);
            let id = self.mem.alloc(Storage::Global, size, &g.name, NodeId::DUMMY, 0, 0, self.time);
            self.globals.insert(g.name.clone(), id);
        }
        // Initialize in order; later initializers may take addresses of
        // earlier globals (Csmith-style `struct a *c = b;`).
        for g in &self.program.globals {
            if let Some(init) = &g.init {
                let id = self.globals[&g.name];
                let ty = g.ty.clone();
                self.store_init(id, 0, &ty, init)?;
            }
        }
        Ok(())
    }

    fn store_init(&mut self, obj: ObjId, off: i64, ty: &Type, init: &Init) -> EResult<()> {
        match (init, ty) {
            (Init::Expr(e), _) => {
                let v = self.eval(e)?;
                self.store_scalar(obj, off, ty, v, e.loc, e.id, AccessOrigin::Pointer)
            }
            (Init::List(items), Type::Array(elem, n)) => {
                let es = self.sizeof(elem);
                for (i, it) in items.iter().take(*n).enumerate() {
                    self.store_init(obj, off + (i * es) as i64, elem, it)?;
                }
                // Remaining elements: zero-initialized per C.
                for i in items.len()..*n {
                    self.zero_fill(obj, off + (i * es) as i64, elem)?;
                }
                Ok(())
            }
            (Init::List(items), Type::Struct(idx)) => {
                let fields: Vec<(usize, Type)> = {
                    let def = &self.structs()[*idx];
                    let mut acc = 0usize;
                    def.fields
                        .iter()
                        .map(|(_, t)| {
                            let o = acc;
                            acc += t.size_of(self.structs());
                            (o, t.clone())
                        })
                        .collect()
                };
                for (i, (foff, fty)) in fields.iter().enumerate() {
                    match items.get(i) {
                        Some(it) => self.store_init(obj, off + *foff as i64, fty, it)?,
                        None => self.zero_fill(obj, off + *foff as i64, fty)?,
                    }
                }
                Ok(())
            }
            (Init::List(items), _) if items.len() == 1 => {
                self.store_init(obj, off, ty, &items[0])
            }
            (Init::List(_), _) => Err(Stop::Invalid("list initializer for scalar".into())),
        }
    }

    fn zero_fill(&mut self, obj: ObjId, off: i64, ty: &Type) -> EResult<()> {
        let size = self.sizeof(ty);
        self.mem
            .write_bytes(obj, off, &vec![0u8; size])
            .map_err(|e| self.access_stop(e, Loc::UNKNOWN, NodeId::DUMMY, AccessOrigin::Array, true))
    }

    // ---- frames and scopes -------------------------------------------------

    fn frame(&mut self) -> &mut FrameEnv {
        self.frames.last_mut().expect("active frame")
    }

    fn depth(&self) -> u32 {
        self.frames.last().map_or(0, |f| f.scopes.len() as u32)
    }

    fn push_scope(&mut self) {
        self.frame().scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        let frame_id = self.frame().id;
        let depth = self.depth();
        self.frame().scopes.pop();
        self.mem.kill_scope(frame_id, depth, self.time);
    }

    fn declare_local(&mut self, name: &str, ty: &Type, decl_node: NodeId) -> ObjId {
        let size = self.sizeof(ty);
        let depth = self.depth();
        let frame_id = self.frame().id;
        let id = self.mem.alloc(Storage::Stack, size, name, decl_node, depth, frame_id, self.time);
        self.frame()
            .scopes
            .last_mut()
            .expect("scope present")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<(ObjId, Type)> {
        if let Some(f) = self.frames.last() {
            for scope in f.scopes.iter().rev() {
                if let Some(&id) = scope.get(name) {
                    return Some((id, self.var_type(name, Some(id))));
                }
            }
        }
        self.globals.get(name).map(|&id| (id, self.var_type(name, Some(id))))
    }

    /// Static type of a variable: locals are recovered from the declaring
    /// statement captured at allocation; globals from the program.
    fn var_type(&self, name: &str, _obj: Option<ObjId>) -> Type {
        // Fast path via globals table; locals resolved through tmap at the
        // Var expression — this helper is only used when we already have the
        // object and just need a type for storage conversions, which callers
        // obtain from the expression's static type instead. Returning the
        // global's type or int is sufficient here.
        self.program
            .globals
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.ty.clone())
            .unwrap_or_else(Type::int)
    }

    // ---- statement execution ----------------------------------------------

    fn tick(&mut self, s: &Stmt) -> EResult<()> {
        self.time += 1;
        self.steps += 1;
        self.profile.stmt_first_exec.entry(s.id).or_insert(self.time);
        if self.steps > self.cfg.step_limit {
            Err(Stop::StepLimit)
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, b: &Block) -> EResult<Flow> {
        self.push_scope();
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => {
                    flow = other;
                    break;
                }
            }
        }
        self.pop_scope();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> EResult<Flow> {
        self.tick(s)?;
        match &s.kind {
            StmtKind::Decl(d) => {
                let id = self.declare_local(&d.name, &d.ty, s.id);
                if let Some(init) = &d.init {
                    let ty = d.ty.clone();
                    self.store_init(id, 0, &ty, init)?;
                    self.profile.var_writes.entry(d.name.clone()).or_default().push(self.time);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::If(c, t, f) => {
                let cv = self.eval(c)?;
                self.check_branch_taint(&cv, c)?;
                if cv.v.is_truthy() {
                    self.exec_block(t)
                } else if let Some(f) = f {
                    self.exec_block(f)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While(c, b) => {
                loop {
                    self.steps += 1;
                    if self.steps > self.cfg.step_limit {
                        return Err(Stop::StepLimit);
                    }
                    let cv = self.eval(c)?;
                    self.check_branch_taint(&cv, c)?;
                    if !cv.v.is_truthy() {
                        break;
                    }
                    match self.exec_block(b)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body } => {
                self.push_scope();
                if let Some(i) = init {
                    match self.exec_stmt(i)? {
                        Flow::Normal => {}
                        other => {
                            self.pop_scope();
                            return Ok(other);
                        }
                    }
                }
                let mut result = Flow::Normal;
                loop {
                    self.steps += 1;
                    if self.steps > self.cfg.step_limit {
                        self.pop_scope();
                        return Err(Stop::StepLimit);
                    }
                    if let Some(c) = cond {
                        let cv = match self.eval(c) {
                            Ok(v) => v,
                            Err(e) => {
                                self.pop_scope();
                                return Err(e);
                            }
                        };
                        if let Err(e) = self.check_branch_taint(&cv, c) {
                            self.pop_scope();
                            return Err(e);
                        }
                        if !cv.v.is_truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body) {
                        Ok(Flow::Break) => break,
                        Ok(Flow::Return(v)) => {
                            result = Flow::Return(v);
                            break;
                        }
                        Ok(Flow::Normal | Flow::Continue) => {}
                        Err(e) => {
                            self.pop_scope();
                            return Err(e);
                        }
                    }
                    if let Some(st) = step {
                        if let Err(e) = self.eval(st) {
                            self.pop_scope();
                            return Err(e);
                        }
                    }
                }
                self.pop_scope();
                Ok(result)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => TVal::clean(Value::zero()),
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.exec_block(b),
        }
    }

    fn check_branch_taint(&mut self, v: &TVal, e: &Expr) -> EResult<()> {
        if v.taint {
            Err(self.ub_at(
                UbKind::UninitUse,
                e.loc,
                e.id,
                "branch depends on uninitialized value",
            ))
        } else {
            Ok(())
        }
    }

    // ---- calls --------------------------------------------------------------

    fn call(&mut self, f: &'p Function, args: Vec<TVal>, loc: Loc) -> EResult<TVal> {
        if self.frames.len() >= self.cfg.max_call_depth {
            return Err(Stop::Invalid(format!("call depth exceeded at {loc}")));
        }
        let frame_id = self.next_frame;
        self.next_frame += 1;
        self.frame_names.push(f.name.clone());
        self.frames.push(FrameEnv { id: frame_id, scopes: Vec::new() });
        self.push_scope(); // parameter scope (depth 1)
        for ((name, ty), arg) in f.params.iter().zip(args) {
            let id = self.declare_local(name, ty, NodeId::DUMMY);
            let tyc = ty.clone();
            self.store_scalar(id, 0, &tyc, arg, loc, NodeId::DUMMY, AccessOrigin::Pointer)?;
        }
        let flow = self.exec_block(&f.body)?;
        self.pop_scope(); // kill parameters
        self.frames.pop();
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(TVal::clean(Value::zero())),
        }
    }

    // ---- places and accesses -------------------------------------------------

    fn static_type(&self, e: &Expr) -> Type {
        self.tmap.get(&e.id).cloned().unwrap_or_else(Type::int)
    }

    fn place(&mut self, e: &Expr) -> EResult<Place> {
        match &e.kind {
            ExprKind::Var(name) => {
                let (obj, _) = self
                    .lookup(name)
                    .ok_or_else(|| Stop::Invalid(format!("unknown variable {name}")))?;
                Ok(Place {
                    ptr: PtrVal::Obj { obj, off: 0 },
                    ty: self.static_type(e),
                    origin: AccessOrigin::Array,
                })
            }
            ExprKind::Deref(inner) => {
                let p = self.eval(inner)?;
                if p.taint {
                    return Err(self.ub_at(
                        UbKind::UninitUse,
                        e.loc,
                        e.id,
                        "dereference of uninitialized pointer",
                    ));
                }
                let ptr = p
                    .v
                    .as_ptr()
                    .ok_or_else(|| Stop::Invalid("dereference of non-pointer value".into()))?;
                Ok(Place { ptr, ty: self.static_type(e), origin: AccessOrigin::Pointer })
            }
            ExprKind::Index(base, idx) => {
                let base_ty = self.static_type(base);
                let origin = if matches!(base_ty, Type::Array(..)) {
                    AccessOrigin::Array
                } else {
                    AccessOrigin::Pointer
                };
                let base_ptr = if matches!(base_ty, Type::Array(..)) {
                    self.place(base)?.ptr
                } else {
                    let bv = self.eval(base)?;
                    bv.v.as_ptr()
                        .ok_or_else(|| Stop::Invalid("indexing non-pointer".into()))?
                };
                let iv = self.eval(idx)?;
                if iv.taint {
                    return Err(self.ub_at(
                        UbKind::UninitUse,
                        idx.loc,
                        idx.id,
                        "array index is uninitialized",
                    ));
                }
                let elem = self.static_type(e);
                let es = self.sizeof(&elem) as i64;
                let off = iv.v.as_i128() as i64;
                Ok(Place { ptr: base_ptr.offset_by(off.wrapping_mul(es)), ty: elem, origin })
            }
            ExprKind::Member(base, field) => {
                let pl = self.place(base)?;
                let (foff, fty) = self.field_of(&pl.ty, field, e.loc)?;
                Ok(Place { ptr: pl.ptr.offset_by(foff as i64), ty: fty, origin: pl.origin })
            }
            ExprKind::Arrow(base, field) => {
                let bv = self.eval(base)?;
                if bv.taint {
                    return Err(self.ub_at(
                        UbKind::UninitUse,
                        e.loc,
                        e.id,
                        "-> through uninitialized pointer",
                    ));
                }
                let ptr = bv
                    .v
                    .as_ptr()
                    .ok_or_else(|| Stop::Invalid("-> on non-pointer value".into()))?;
                let pointee = self
                    .static_type(base)
                    .decayed()
                    .pointee()
                    .cloned()
                    .ok_or_else(|| Stop::Invalid("-> on non-pointer type".into()))?;
                let (foff, fty) = self.field_of(&pointee, field, e.loc)?;
                Ok(Place {
                    ptr: ptr.offset_by(foff as i64),
                    ty: fty,
                    origin: AccessOrigin::Pointer,
                })
            }
            _ => Err(Stop::Invalid(format!("not an lvalue at {}", e.loc))),
        }
    }

    fn field_of(&self, ty: &Type, field: &str, loc: Loc) -> EResult<(usize, Type)> {
        match ty {
            Type::Struct(idx) => {
                let def = &self.structs()[*idx];
                def.field_offset(field, self.structs())
                    .map(|(o, t)| (o, t.clone()))
                    .ok_or_else(|| Stop::Invalid(format!("no field {field} at {loc}")))
            }
            _ => Err(Stop::Invalid(format!("member access on non-struct at {loc}"))),
        }
    }

    fn ub_at(&self, kind: UbKind, loc: Loc, node: NodeId, detail: impl Into<String>) -> Stop {
        Stop::Ub(UbEvent { kind, loc, node, detail: detail.into() })
    }

    fn access_stop(
        &self,
        err: AccessErr,
        loc: Loc,
        node: NodeId,
        origin: AccessOrigin,
        is_write: bool,
    ) -> Stop {
        let rw = if is_write { "write" } else { "read" };
        match err {
            AccessErr::OutOfBounds { off, len, size, name, storage } => {
                let kind = match origin {
                    AccessOrigin::Array => UbKind::BufOverflowArray,
                    AccessOrigin::Pointer => UbKind::BufOverflowPtr,
                };
                let region = match storage {
                    Storage::Global => "global",
                    Storage::Stack => "stack",
                    Storage::Heap => "heap",
                };
                self.ub_at(
                    kind,
                    loc,
                    node,
                    format!("{region}-buffer-overflow: {rw} of {len} bytes at offset {off} of `{name}` (size {size})"),
                )
            }
            AccessErr::Freed { name } => self.ub_at(
                UbKind::UseAfterFree,
                loc,
                node,
                format!("heap-use-after-free: {rw} through `{name}`"),
            ),
            AccessErr::Dead { name } => self.ub_at(
                UbKind::UseAfterScope,
                loc,
                node,
                format!("stack-use-after-scope: {rw} of `{name}`"),
            ),
        }
    }

    fn resolve_ptr(
        &self,
        ptr: PtrVal,
        loc: Loc,
        node: NodeId,
        origin: AccessOrigin,
    ) -> EResult<(ObjId, i64)> {
        match ptr {
            PtrVal::Null => {
                Err(self.ub_at(UbKind::NullDeref, loc, node, "null pointer dereference"))
            }
            PtrVal::Wild(v) => {
                // Accesses within the null page are null dereferences (the
                // `p->field` case: a small field offset added to null).
                if v.unsigned_abs() < 4096 {
                    return Err(self.ub_at(
                        UbKind::NullDeref,
                        loc,
                        node,
                        format!("null pointer dereference (address {v:#x})"),
                    ));
                }
                let kind = match origin {
                    AccessOrigin::Array => UbKind::BufOverflowArray,
                    AccessOrigin::Pointer => UbKind::BufOverflowPtr,
                };
                Err(self.ub_at(kind, loc, node, format!("access through wild pointer {v:#x}")))
            }
            PtrVal::Obj { obj, off } => Ok((obj, off)),
        }
    }

    fn load_scalar(&mut self, pl: &Place, loc: Loc, node: NodeId) -> EResult<TVal> {
        match &pl.ty {
            Type::Array(..) => {
                // Array lvalue used as value: decay to pointer to first element.
                Ok(TVal::clean(Value::Ptr(pl.ptr)))
            }
            Type::Int(it) => {
                let (obj, off) = self.resolve_ptr(pl.ptr, loc, node, pl.origin)?;
                let (bytes, init) = self
                    .mem
                    .read_bytes(obj, off, it.width.bytes())
                    .map_err(|e| self.access_stop(e, loc, node, pl.origin, false))?;
                let mut raw: u64 = 0;
                for (i, b) in bytes.iter().enumerate() {
                    raw |= (*b as u64) << (8 * i);
                }
                let v = it.wrap(raw as i128);
                Ok(TVal { v: Value::Int(v, *it), taint: !init })
            }
            Type::Ptr(_) => {
                let (obj, off) = self.resolve_ptr(pl.ptr, loc, node, pl.origin)?;
                let (p, init) = self
                    .mem
                    .read_ptr(obj, off)
                    .map_err(|e| self.access_stop(e, loc, node, pl.origin, false))?;
                Ok(TVal { v: Value::Ptr(p), taint: !init })
            }
            Type::Struct(_) | Type::Void => {
                Err(Stop::Invalid(format!("cannot load aggregate at {loc}")))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn store_scalar(
        &mut self,
        obj: ObjId,
        off: i64,
        ty: &Type,
        val: TVal,
        loc: Loc,
        node: NodeId,
        origin: AccessOrigin,
    ) -> EResult<()> {
        match ty {
            Type::Int(it) => {
                let raw = it.wrap(match val.v {
                    Value::Int(v, _) => v,
                    Value::Ptr(p) => p.to_raw() as i128,
                });
                let bytes = (raw as u64).to_le_bytes();
                self.mem
                    .write_bytes(obj, off, &bytes[..it.width.bytes()])
                    .map_err(|e| self.access_stop(e, loc, node, origin, true))?;
                if val.taint {
                    // Storing a tainted value re-poisons the destination.
                    let o = self.mem.object_mut(obj);
                    let s = off as usize;
                    for b in &mut o.init[s..s + it.width.bytes()] {
                        *b = false;
                    }
                }
                Ok(())
            }
            Type::Ptr(_) => {
                let p = match val.v {
                    Value::Ptr(p) => p,
                    Value::Int(0, _) => PtrVal::Null,
                    Value::Int(v, _) => PtrVal::Wild(v as i64),
                };
                self.mem
                    .write_ptr(obj, off, p)
                    .map_err(|e| self.access_stop(e, loc, node, origin, true))
            }
            Type::Array(..) | Type::Struct(_) | Type::Void => {
                Err(Stop::Invalid(format!("cannot store aggregate scalar at {loc}")))
            }
        }
    }

    // ---- expression evaluation ------------------------------------------------

    fn eval(&mut self, e: &Expr) -> EResult<TVal> {
        let v = self.eval_inner(e)?;
        if self.cfg.watch.contains(&e.id) {
            let pointee = match v.v {
                Value::Ptr(PtrVal::Obj { obj, off }) => {
                    let o = self.mem.object(obj);
                    Some(PointeeRecord {
                        obj,
                        off,
                        obj_size: o.size(),
                        storage: o.storage,
                        status: o.status,
                        obj_name: o.name.clone(),
                        decl_node: o.decl_node,
                        scope_depth: o.scope_depth,
                        frame: o.frame,
                    })
                }
                _ => None,
            };
            let int = match v.v {
                Value::Int(i, _) => Some(i),
                Value::Ptr(_) => None,
            };
            self.profile.record_value(
                e.id,
                ValueRecord { time: self.time, int, tainted: v.taint, pointee },
            );
        }
        Ok(v)
    }

    fn eval_inner(&mut self, e: &Expr) -> EResult<TVal> {
        match &e.kind {
            ExprKind::IntLit(v, ty) => Ok(TVal::clean(Value::Int(ty.wrap(*v), *ty))),
            ExprKind::Var(_)
            | ExprKind::Index(..)
            | ExprKind::Member(..)
            | ExprKind::Arrow(..)
            | ExprKind::Deref(_) => {
                let pl = self.place(e)?;
                self.load_scalar(&pl, e.loc, e.id)
            }
            ExprKind::Unary(op, a) => {
                let av = self.eval(a)?;
                let (v, ty) = match av.v {
                    Value::Int(v, t) => (v, t.promoted()),
                    Value::Ptr(p) => {
                        // Only `!p` is meaningful on pointers.
                        if *op == UnOp::Not {
                            return Ok(TVal {
                                v: Value::Int(i128::from(p.is_null()), IntType::INT),
                                taint: av.taint,
                            });
                        }
                        (p.to_raw() as i128, IntType::LONG)
                    }
                };
                let r = match op {
                    UnOp::Not => i128::from(v == 0),
                    UnOp::BitNot => ty.wrap(!v),
                    UnOp::Neg => {
                        let n = -v;
                        if ty.signed && !ty.contains(n) {
                            return Err(self.ub_at(
                                UbKind::IntOverflow,
                                e.loc,
                                e.id,
                                format!("negation of {v} overflows {ty}"),
                            ));
                        }
                        ty.wrap(n)
                    }
                };
                Ok(TVal { v: Value::Int(r, ty), taint: av.taint })
            }
            ExprKind::Binary(op, a, b) => self.eval_binary(e, *op, a, b),
            ExprKind::Assign(l, r) => {
                let lty = self.static_type(l);
                if matches!(lty, Type::Struct(_)) {
                    // Aggregate copy: both sides are places.
                    let lp = self.place(l)?;
                    let rp = self.place(r)?;
                    let size = self.sizeof(&lty);
                    let (dobj, doff) = self.resolve_ptr(lp.ptr, l.loc, l.id, lp.origin)?;
                    let (sobj, soff) = self.resolve_ptr(rp.ptr, r.loc, r.id, rp.origin)?;
                    // Read side first (matches sanitizer check order for
                    // `*c = *b`: the load is checked before the store).
                    self.mem
                        .read_bytes(sobj, soff, size)
                        .map_err(|er| self.access_stop(er, r.loc, r.id, rp.origin, false))?;
                    self.mem
                        .copy(dobj, doff, sobj, soff, size)
                        .map_err(|er| self.access_stop(er, l.loc, l.id, lp.origin, true))?;
                    return Ok(TVal::clean(Value::zero()));
                }
                let rv = self.eval(r)?;
                let lp = self.place(l)?;
                let (obj, off) = self.resolve_ptr(lp.ptr, l.loc, l.id, lp.origin)?;
                let lty2 = lp.ty.clone();
                let origin = lp.origin;
                self.store_scalar(obj, off, &lty2, rv, l.loc, l.id, origin)?;
                if let ExprKind::Var(name) = &l.kind {
                    self.profile.var_writes.entry(name.clone()).or_default().push(self.time);
                }
                Ok(rv)
            }
            ExprKind::CompoundAssign(op, l, r) => {
                let rv = self.eval(r)?;
                let lp = self.place(l)?;
                let cur = self.load_scalar(&lp, l.loc, l.id)?;
                let combined = self.apply_binop(e, *op, cur, rv, Some(&lp.ty))?;
                let (obj, off) = self.resolve_ptr(lp.ptr, l.loc, l.id, lp.origin)?;
                let ty = lp.ty.clone();
                let origin = lp.origin;
                self.store_scalar(obj, off, &ty, combined, l.loc, l.id, origin)?;
                if let ExprKind::Var(name) = &l.kind {
                    self.profile.var_writes.entry(name.clone()).or_default().push(self.time);
                }
                Ok(combined)
            }
            ExprKind::PreInc(a) | ExprKind::PreDec(a) => {
                let delta: i128 = if matches!(e.kind, ExprKind::PreInc(_)) { 1 } else { -1 };
                let pl = self.place(a)?;
                let cur = self.load_scalar(&pl, a.loc, a.id)?;
                let newv = match cur.v {
                    Value::Int(v, t) => {
                        let r = v + delta;
                        let pt = t.promoted();
                        if pt.signed && !pt.contains(r) {
                            return Err(self.ub_at(
                                UbKind::IntOverflow,
                                e.loc,
                                e.id,
                                format!("{}{} overflows {pt}", if delta > 0 { "++" } else { "--" }, v),
                            ));
                        }
                        TVal { v: Value::Int(t.wrap(r), t), taint: cur.taint }
                    }
                    Value::Ptr(p) => {
                        let es = self.sizeof(pl.ty.pointee().unwrap_or(&Type::Void)) as i64;
                        TVal { v: Value::Ptr(p.offset_by(delta as i64 * es)), taint: cur.taint }
                    }
                };
                let (obj, off) = self.resolve_ptr(pl.ptr, a.loc, a.id, pl.origin)?;
                let ty = pl.ty.clone();
                let origin = pl.origin;
                self.store_scalar(obj, off, &ty, newv, a.loc, a.id, origin)?;
                if let ExprKind::Var(name) = &a.kind {
                    self.profile.var_writes.entry(name.clone()).or_default().push(self.time);
                }
                Ok(newv)
            }
            ExprKind::AddrOf(a) => {
                let pl = self.place(a)?;
                Ok(TVal::clean(Value::Ptr(pl.ptr)))
            }
            ExprKind::Cast(ty, a) => {
                let av = self.eval(a)?;
                let v = match (ty, av.v) {
                    (Type::Int(it), Value::Int(v, _)) => Value::Int(it.wrap(v), *it),
                    (Type::Int(it), Value::Ptr(p)) => Value::Int(it.wrap(p.to_raw() as i128), *it),
                    (Type::Ptr(_), Value::Int(0, _)) => Value::Ptr(PtrVal::Null),
                    (Type::Ptr(_), Value::Int(v, _)) => Value::Ptr(PtrVal::Wild(v as i64)),
                    (Type::Ptr(_), Value::Ptr(p)) => Value::Ptr(p),
                    (Type::Void, v) => v,
                    (Type::Array(..) | Type::Struct(_), v) => v,
                };
                Ok(TVal { v, taint: av.taint })
            }
            ExprKind::Call(name, args) => self.eval_call(e, name, args),
            ExprKind::Cond(c, t, f) => {
                let cv = self.eval(c)?;
                self.check_branch_taint(&cv, c)?;
                if cv.v.is_truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
        }
    }

    fn eval_binary(&mut self, e: &Expr, op: BinOp, a: &Expr, b: &Expr) -> EResult<TVal> {
        match op {
            BinOp::LogAnd => {
                let av = self.eval(a)?;
                self.check_branch_taint(&av, a)?;
                if !av.v.is_truthy() {
                    return Ok(TVal::clean(Value::Int(0, IntType::INT)));
                }
                let bv = self.eval(b)?;
                self.check_branch_taint(&bv, b)?;
                Ok(TVal::clean(Value::Int(i128::from(bv.v.is_truthy()), IntType::INT)))
            }
            BinOp::LogOr => {
                let av = self.eval(a)?;
                self.check_branch_taint(&av, a)?;
                if av.v.is_truthy() {
                    return Ok(TVal::clean(Value::Int(1, IntType::INT)));
                }
                let bv = self.eval(b)?;
                self.check_branch_taint(&bv, b)?;
                Ok(TVal::clean(Value::Int(i128::from(bv.v.is_truthy()), IntType::INT)))
            }
            _ => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                // Pointer arithmetic and comparisons.
                if let (Value::Ptr(pa), BinOp::Sub, Value::Ptr(pb)) = (av.v, op, bv.v) {
                    let es = self.sizeof(
                        self.static_type(a).decayed().pointee().unwrap_or(&Type::Void),
                    ) as i64;
                    let diff = match (pa, pb) {
                        (PtrVal::Obj { obj: oa, off: fa }, PtrVal::Obj { obj: ob, off: fb })
                            if oa == ob =>
                        {
                            (fa - fb) / es.max(1)
                        }
                        // C17 6.5.6p9: both operands must point into (or one
                        // past) the same object (CWE-469, paper §3.2.4).
                        (PtrVal::Obj { obj: oa, .. }, PtrVal::Obj { obj: ob, .. })
                            if oa != ob =>
                        {
                            return Err(self.ub_at(
                                UbKind::PtrDiff,
                                e.loc,
                                e.id,
                                "subtraction of pointers into different objects",
                            ));
                        }
                        _ => (pa.to_raw() - pb.to_raw()) / es.max(1),
                    };
                    return Ok(TVal {
                        v: Value::Int(diff as i128, IntType::LONG),
                        taint: av.taint || bv.taint,
                    });
                }
                if matches!(av.v, Value::Ptr(_)) || matches!(bv.v, Value::Ptr(_)) {
                    if op.is_comparison() {
                        let (ra, rb) = (av.v.as_i128(), bv.v.as_i128());
                        let r = match op {
                            BinOp::Eq => ra == rb,
                            BinOp::Ne => ra != rb,
                            BinOp::Lt => ra < rb,
                            BinOp::Le => ra <= rb,
                            BinOp::Gt => ra > rb,
                            BinOp::Ge => ra >= rb,
                            _ => unreachable!(),
                        };
                        return Ok(TVal {
                            v: Value::Int(i128::from(r), IntType::INT),
                            taint: av.taint || bv.taint,
                        });
                    }
                    if matches!(op, BinOp::Add | BinOp::Sub) {
                        // ptr ± int
                        let (p, delta, pexpr) = match (av.v, bv.v) {
                            (Value::Ptr(p), Value::Int(d, _)) => (p, d, a),
                            (Value::Int(d, _), Value::Ptr(p)) => (p, d, b),
                            _ => return Err(Stop::Invalid("pointer arithmetic shape".into())),
                        };
                        let es = self.sizeof(
                            self.static_type(pexpr).decayed().pointee().unwrap_or(&Type::Void),
                        ) as i64;
                        let signed = if op == BinOp::Sub { -(delta as i64) } else { delta as i64 };
                        return Ok(TVal {
                            v: Value::Ptr(p.offset_by(signed.wrapping_mul(es))),
                            taint: av.taint || bv.taint,
                        });
                    }
                    return Err(Stop::Invalid(format!("invalid pointer op {op:?} at {}", e.loc)));
                }
                self.apply_binop(e, op, av, bv, None)
            }
        }
    }

    /// Integer binary operation with UB checks. `store_ty` is set for
    /// compound assignments, where C computes in the promoted type.
    fn apply_binop(
        &mut self,
        e: &Expr,
        op: BinOp,
        av: TVal,
        bv: TVal,
        _store_ty: Option<&Type>,
    ) -> EResult<TVal> {
        let (va, ta) = match av.v {
            Value::Int(v, t) => (v, t),
            Value::Ptr(p) => {
                // Pointer compound ops (`p += k`) route through here.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if let Value::Int(d, _) = bv.v {
                        let delta = if op == BinOp::Sub { -(d as i64) } else { d as i64 };
                        return Ok(TVal {
                            v: Value::Ptr(p.offset_by(delta * 8)),
                            taint: av.taint || bv.taint,
                        });
                    }
                }
                return Err(Stop::Invalid("pointer in integer op".into()));
            }
        };
        let (vb, tb) = match bv.v {
            Value::Int(v, t) => (v, t),
            Value::Ptr(_) => return Err(Stop::Invalid("pointer rhs in integer op".into())),
        };
        let taint = av.taint || bv.taint;
        if op.is_comparison() {
            // Usual arithmetic conversions (C17 6.5.8p3): promote and
            // convert to the common type before comparing — an `int`
            // compared against an `unsigned int` compares unsigned.
            let ty = ta.unify(tb);
            let va = ty.wrap(va);
            let vb = ty.wrap(vb);
            let r = match op {
                BinOp::Eq => va == vb,
                BinOp::Ne => va != vb,
                BinOp::Lt => va < vb,
                BinOp::Le => va <= vb,
                BinOp::Gt => va > vb,
                BinOp::Ge => va >= vb,
                _ => unreachable!(),
            };
            return Ok(TVal { v: Value::Int(i128::from(r), IntType::INT), taint });
        }
        if op.is_shift() {
            let ty = ta.promoted();
            let bits = ty.width.bits() as i128;
            if vb < 0 || vb >= bits {
                return Err(self.ub_at(
                    UbKind::ShiftOverflow,
                    e.loc,
                    e.id,
                    format!("shift amount {vb} out of range for {ty}"),
                ));
            }
            let r = match op {
                BinOp::Shl => ty.wrap(va << vb),
                BinOp::Shr => {
                    if ty.signed {
                        va >> vb
                    } else {
                        ty.wrap(((va as u128) >> vb) as i128)
                    }
                }
                _ => unreachable!(),
            };
            return Ok(TVal { v: Value::Int(r, ty), taint });
        }
        let ty = ta.unify(tb);
        // Convert operands into the common type (wrapping conversion).
        let va = ty.wrap(va);
        let vb = ty.wrap(vb);
        let exact = match op {
            BinOp::Add => va.checked_add(vb),
            BinOp::Sub => va.checked_sub(vb),
            BinOp::Mul => va.checked_mul(vb),
            BinOp::Div | BinOp::Rem => {
                if vb == 0 {
                    if taint {
                        return Err(self.ub_at(
                            UbKind::UninitUse,
                            e.loc,
                            e.id,
                            "division by uninitialized value",
                        ));
                    }
                    return Err(self.ub_at(
                        UbKind::DivByZero,
                        e.loc,
                        e.id,
                        format!("{} by zero", if op == BinOp::Div { "division" } else { "remainder" }),
                    ));
                }
                if ty.signed && va == ty.min_value() && vb == -1 {
                    return Err(self.ub_at(
                        UbKind::IntOverflow,
                        e.loc,
                        e.id,
                        format!("{}/{} overflows {ty}", va, vb),
                    ));
                }
                if op == BinOp::Div {
                    va.checked_div(vb)
                } else {
                    va.checked_rem(vb)
                }
            }
            BinOp::BitAnd => Some(va & vb),
            BinOp::BitOr => Some(va | vb),
            BinOp::BitXor => Some(va ^ vb),
            _ => unreachable!("handled above"),
        };
        let exact = exact.expect("i128 arithmetic cannot overflow here");
        if ty.signed && op.is_arith() && !ty.contains(exact) {
            return Err(self.ub_at(
                UbKind::IntOverflow,
                e.loc,
                e.id,
                format!("{va} {} {vb} overflows {ty}", op.symbol()),
            ));
        }
        Ok(TVal { v: Value::Int(ty.wrap(exact), ty), taint })
    }

    fn eval_call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> EResult<TVal> {
        match name {
            "malloc" => {
                let n = self.eval(&args[0])?;
                let size = (n.v.as_i128().clamp(0, 1 << 20)) as usize;
                self.heap_count += 1;
                let hname = format!("malloc#{}", self.heap_count);
                let id = self.mem.alloc(Storage::Heap, size, &hname, e.id, 0, 0, self.time);
                Ok(TVal::clean(Value::Ptr(PtrVal::Obj { obj: id, off: 0 })))
            }
            "free" => {
                let p = self.eval(&args[0])?;
                match p.v.as_ptr() {
                    Some(PtrVal::Null) => Ok(TVal::clean(Value::zero())),
                    Some(PtrVal::Obj { obj, off: 0 }) => {
                        self.mem.free(obj, self.time).map_err(|_| {
                            self.ub_at(
                                UbKind::InvalidFree,
                                e.loc,
                                e.id,
                                "invalid or double free",
                            )
                        })?;
                        Ok(TVal::clean(Value::zero()))
                    }
                    _ => Err(self.ub_at(
                        UbKind::InvalidFree,
                        e.loc,
                        e.id,
                        "free of non-heap or interior pointer",
                    )),
                }
            }
            "print_value" => {
                let v = self.eval(&args[0])?;
                if v.taint {
                    return Err(self.ub_at(
                        UbKind::UninitUse,
                        e.loc,
                        e.id,
                        "printing an uninitialized value",
                    ));
                }
                self.output.push(IntType::LONG.wrap(v.v.as_i128()) as i64);
                Ok(TVal::clean(Value::zero()))
            }
            _ => {
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| Stop::Invalid(format!("unknown function {name}")))?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call(f, vals, e.loc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;

    fn run(src: &str) -> Outcome {
        run_program(&parse(src).unwrap())
    }

    fn expect_ub(src: &str, kind: UbKind) {
        match run(src) {
            Outcome::Ub(ev) => assert_eq!(ev.kind, kind, "detail: {}", ev.detail),
            other => panic!("expected {kind}, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_output() {
        match run("int main(void) { int x = 6; print_value(x * 7); return x; }") {
            Outcome::Exit { status, output } => {
                assert_eq!(status, 6);
                assert_eq!(output, vec![42]);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn control_flow_and_loops() {
        match run(
            "int main(void) {
                int acc = 0;
                for (int i = 0; i < 5; i = i + 1) { if (i % 2 == 0) { acc += i; } }
                while (acc > 4) { acc -= 1; }
                return acc;
             }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 4),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn functions_and_params() {
        match run(
            "int add(int a, int b) { return a + b; }
             int main(void) { return add(20, 22); }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 42),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn figure1_program_has_stack_buffer_overflow() {
        // The paper's Fig. 1: d+k with k=2 overflows b[2].
        expect_ub(
            "struct a { int x; };
             struct a b[2];
             struct a *c = b;
             struct a *d = b;
             int k = 0;
             int main(void) {
                *c = *b;
                k = 2;
                *c = *(d + k);
                return c->x;
             }",
            UbKind::BufOverflowPtr,
        );
    }

    #[test]
    fn array_overflow_is_array_kind() {
        expect_ub(
            "int a[5]; int main(void) { int x = 1; x = 5; a[x] = 1; return 0; }",
            UbKind::BufOverflowArray,
        );
    }

    #[test]
    fn use_after_free_detected() {
        expect_ub(
            "int main(void) {
                int *p = (int*)malloc(8);
                *p = 3;
                free(p);
                return *p;
             }",
            UbKind::UseAfterFree,
        );
    }

    #[test]
    fn double_free_detected() {
        expect_ub(
            "int main(void) { int *p = (int*)malloc(8); free(p); free(p); return 0; }",
            UbKind::InvalidFree,
        );
    }

    #[test]
    fn use_after_scope_detected() {
        // Paper Fig. 8 shape: pointer keeps inner-scope address.
        expect_ub(
            "int a; int b;
             int main(void) {
                int *s = &a;
                for (b = 0; b <= 3; b = b + 1) {
                    int i = *s;
                    s = &i;
                }
                *s = b;
                return 0;
             }",
            UbKind::UseAfterScope,
        );
    }

    #[test]
    fn null_deref_detected() {
        expect_ub("int main(void) { int *a = 0; ++(*a); return 0; }", UbKind::NullDeref);
    }

    #[test]
    fn signed_overflow_detected() {
        expect_ub(
            "int main(void) { int x = 2147483647; int y = 1; return x + y; }",
            UbKind::IntOverflow,
        );
        expect_ub("int main(void) { int x = -2147483647 - 1; return -x; }", UbKind::IntOverflow);
    }

    #[test]
    fn unsigned_wraps_without_ub() {
        match run("int main(void) { unsigned int x = 4294967295U; x = x + 1U; return (int)x; }") {
            Outcome::Exit { status, .. } => assert_eq!(status, 0),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn shift_and_div_ub() {
        expect_ub("int main(void) { int x = 1; int y = 40; return x << y; }", UbKind::ShiftOverflow);
        expect_ub("int main(void) { int x = 1; int y = -1; return x >> y; }", UbKind::ShiftOverflow);
        expect_ub("int main(void) { int x = 7; int y = 0; return x / y; }", UbKind::DivByZero);
        expect_ub("int main(void) { int x = 7; int y = 0; return x % y; }", UbKind::DivByZero);
    }

    #[test]
    fn uninit_branch_detected() {
        expect_ub(
            "int main(void) { int x; if (x + 1) { return 1; } return 0; }",
            UbKind::UninitUse,
        );
    }

    #[test]
    fn uninit_via_char_sub_detected() {
        // Paper Fig. 12f shape.
        expect_ub(
            "int main(void) { unsigned char a; if (a - 1) { print_value(1); } return 1; }",
            UbKind::UninitUse,
        );
    }

    #[test]
    fn struct_copy_works() {
        match run(
            "struct s { int x; int y; };
             struct s a; struct s b;
             int main(void) {
                a.x = 7; a.y = 35;
                b = a;
                return b.x + b.y;
             }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 42),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn global_address_initializers() {
        match run(
            "int g[4] = {1, 2, 3, 4};
             int *p = g;
             int main(void) { return *(p + 2); }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 3),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn step_limit_hits() {
        let p = parse("int main(void) { while (1) { } return 0; }").unwrap();
        let cfg = ExecConfig { step_limit: 1000, ..ExecConfig::default() };
        let (o, _) = run_with_config(&p, &cfg);
        assert_eq!(o, Outcome::StepLimit);
    }

    #[test]
    fn profile_records_values_and_objects() {
        let p = parse(
            "int a[3] = {10, 20, 30};
             int main(void) { int i = 1; int x = a[i]; print_value(x); return 0; }",
        )
        .unwrap();
        // Watch the `i` index expression inside a[i].
        let mut watch = HashSet::new();
        ubfuzz_minic::visit::for_each_expr(&p, |e| {
            if let ExprKind::Var(n) = &e.kind {
                if n == "i" {
                    watch.insert(e.id);
                }
            }
        });
        let cfg = ExecConfig { watch, ..ExecConfig::default() };
        let (o, prof) = run_with_config(&p, &cfg);
        assert!(o.is_clean_exit());
        let vals: Vec<i128> = prof.values.values().flatten().filter_map(|r| r.int).collect();
        assert!(vals.contains(&1));
        assert!(prof.objects.iter().any(|ob| ob.name == "a" && ob.size == 12));
        assert!(prof.objects.iter().any(|ob| ob.name == "i" && ob.storage == Storage::Stack));
    }

    #[test]
    fn profile_pointer_records_pointee() {
        let p = parse(
            "int g[4];
             int main(void) { int *q = &g[1]; print_value(*q); return 0; }",
        )
        .unwrap();
        let mut watch = HashSet::new();
        ubfuzz_minic::visit::for_each_expr(&p, |e| {
            if let ExprKind::Var(n) = &e.kind {
                if n == "q" {
                    watch.insert(e.id);
                }
            }
        });
        let cfg = ExecConfig { watch, ..ExecConfig::default() };
        let (o, prof) = run_with_config(&p, &cfg);
        assert!(o.is_clean_exit(), "{o:?}");
        let rec = prof.values.values().flatten().find(|r| r.pointee.is_some()).unwrap();
        let pe = rec.pointee.as_ref().unwrap();
        assert_eq!(pe.obj_size, 16);
        assert_eq!(pe.off, 4);
        assert_eq!(pe.obj_name, "g");
        assert_eq!(pe.storage, Storage::Global);
    }

    #[test]
    fn scope_depths_recorded_for_inner_locals() {
        let p = parse(
            "int main(void) {
                int outer = 0;
                { int inner = 1; outer = inner; }
                return outer;
             }",
        )
        .unwrap();
        let (o, prof) = run_with_config(&p, &ExecConfig::default());
        assert!(o.is_clean_exit());
        let outer = prof.objects.iter().find(|ob| ob.name == "outer").unwrap();
        let inner = prof.objects.iter().find(|ob| ob.name == "inner").unwrap();
        assert!(inner.scope_depth > outer.scope_depth);
        assert!(inner.dead_time.is_some(), "inner died at scope exit");
    }

    #[test]
    fn loop_local_dies_each_iteration() {
        let p = parse(
            "int main(void) {
                int n = 0;
                for (int i = 0; i < 3; i = i + 1) { int t = i; n += t; }
                return n;
             }",
        )
        .unwrap();
        let (o, prof) = run_with_config(&p, &ExecConfig::default());
        assert!(o.is_clean_exit());
        let t_instances: Vec<_> = prof.objects.iter().filter(|ob| ob.name == "t").collect();
        assert_eq!(t_instances.len(), 3, "fresh object per iteration");
        assert!(t_instances.iter().all(|ob| ob.dead_time.is_some()));
    }

    #[test]
    fn short_circuit_evaluation() {
        match run(
            "int main(void) {
                int x = 0;
                int z = 3;
                int r = (z == 3) || (1 / x);
                return r;
             }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 1),
            o => panic!("short-circuit should avoid division: {o:?}"),
        }
    }

    #[test]
    fn deterministic_uninit_bytes() {
        // Uninitialized reads (not used in branches) produce 0xBE-patterned
        // deterministic values when laundered through assignment.
        let src = "int main(void) { int x; int y = x; y = y ^ y; return y; }";
        let a = run(src);
        let b = run(src);
        assert_eq!(a, b);
    }

    #[test]
    fn comparisons_use_usual_arithmetic_conversions() {
        // Regression (found by interpreter-vs-VM differential testing): an
        // `int` compared against an `unsigned int` converts to unsigned
        // (C17 6.5.8p3), so a negative left operand compares large.
        match run(
            "unsigned int g = 0U;
             int main(void) {
                int neg = -202;
                print_value(neg >= g);
                print_value(-1 == 4294967295U);
                print_value((long)-1 < 0UL);
                return 0;
             }",
        ) {
            Outcome::Exit { output, .. } => assert_eq!(output, vec![1, 1, 0]),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn same_object_pointer_difference_is_defined() {
        // C17 6.5.6p9: both pointers into the same array — the difference
        // is the element distance.
        match run(
            "int a[5];
             int main(void) {
                int *p = a;
                int d = (int)((p + 3) - p);
                return d;
             }",
        ) {
            Outcome::Exit { status, .. } => assert_eq!(status, 3),
            o => panic!("same-object diff is defined: {o:?}"),
        }
    }

    #[test]
    fn cross_object_pointer_difference_is_ub() {
        // The §3.2.4 extension kind (CWE-469).
        expect_ub(
            "int a;
             int b;
             int main(void) {
                int *p = &a;
                int *q = &b;
                int d = (int)(p - q);
                return d;
             }",
            UbKind::PtrDiff,
        );
    }
}
