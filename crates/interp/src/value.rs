//! Runtime values: integers with taint, and provenance-carrying pointers.

use crate::memory::ObjId;
use ubfuzz_minic::types::IntType;

/// A pointer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrVal {
    /// The null pointer.
    Null,
    /// A pointer into object `obj` at byte offset `off`. The offset may be
    /// out of bounds — C permits *forming* most such pointers; the UB is
    /// flagged on access, exactly where sanitizers check.
    Obj {
        /// Target object.
        obj: ObjId,
        /// Byte offset from the object base (may be negative or past the end).
        off: i64,
    },
    /// A pointer forged from an integer; any dereference is UB.
    Wild(i64),
}

impl PtrVal {
    /// True for the null pointer.
    pub fn is_null(self) -> bool {
        matches!(self, PtrVal::Null)
    }

    /// A deterministic integer rendering (for pointer-to-int casts and
    /// equality of wild pointers). Object pointers map into a synthetic
    /// address space that is stable across runs.
    pub fn to_raw(self) -> i64 {
        match self {
            PtrVal::Null => 0,
            PtrVal::Obj { obj, off } => 0x1000_0000 + (obj.0 as i64) * 0x1_0000 + off,
            PtrVal::Wild(v) => v,
        }
    }

    /// Pointer arithmetic: advance by `delta` bytes.
    pub fn offset_by(self, delta: i64) -> PtrVal {
        match self {
            PtrVal::Null => {
                if delta == 0 {
                    PtrVal::Null
                } else {
                    PtrVal::Wild(delta)
                }
            }
            PtrVal::Obj { obj, off } => PtrVal::Obj { obj, off: off.wrapping_add(delta) },
            PtrVal::Wild(v) => PtrVal::Wild(v.wrapping_add(delta)),
        }
    }
}

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer of the given type; the payload is always within range.
    Int(i128, IntType),
    /// A pointer.
    Ptr(PtrVal),
}

impl Value {
    /// Integer zero of type `int`.
    pub fn zero() -> Value {
        Value::Int(0, IntType::INT)
    }

    /// The integer payload, widened; pointers render via [`PtrVal::to_raw`].
    pub fn as_i128(&self) -> i128 {
        match self {
            Value::Int(v, _) => *v,
            Value::Ptr(p) => p.to_raw() as i128,
        }
    }

    /// Scalar truthiness (C semantics).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v, _) => *v != 0,
            Value::Ptr(p) => !p.is_null(),
        }
    }

    /// The pointer payload, if this is a pointer.
    pub fn as_ptr(&self) -> Option<PtrVal> {
        match self {
            Value::Ptr(p) => Some(*p),
            Value::Int(0, _) => Some(PtrVal::Null),
            _ => None,
        }
    }
}

/// A value plus its taint bit (true = derived from uninitialized memory).
/// Taint propagates through every operator, MSan-style, and is reported only
/// at *uses* (branch conditions, division, dereference, output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TVal {
    /// The value.
    pub v: Value,
    /// True if derived from uninitialized memory.
    pub taint: bool,
}

impl TVal {
    /// An untainted value.
    pub fn clean(v: Value) -> TVal {
        TVal { v, taint: false }
    }

    /// A tainted value.
    pub fn tainted(v: Value) -> TVal {
        TVal { v, taint: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptr_arithmetic_tracks_offsets() {
        let p = PtrVal::Obj { obj: ObjId(3), off: 4 };
        assert_eq!(p.offset_by(8), PtrVal::Obj { obj: ObjId(3), off: 12 });
        assert_eq!(p.offset_by(-8), PtrVal::Obj { obj: ObjId(3), off: -4 });
        assert!(PtrVal::Null.is_null());
        assert_eq!(PtrVal::Null.offset_by(0), PtrVal::Null);
    }

    #[test]
    fn raw_addresses_are_deterministic() {
        let a = PtrVal::Obj { obj: ObjId(1), off: 0 }.to_raw();
        let b = PtrVal::Obj { obj: ObjId(1), off: 0 }.to_raw();
        assert_eq!(a, b);
        assert_ne!(a, PtrVal::Obj { obj: ObjId(2), off: 0 }.to_raw());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::zero().is_truthy());
        assert!(Value::Int(-1, IntType::INT).is_truthy());
        assert!(!Value::Ptr(PtrVal::Null).is_truthy());
        assert!(Value::Ptr(PtrVal::Obj { obj: ObjId(0), off: 0 }).is_truthy());
    }

    #[test]
    fn int_zero_converts_to_null() {
        assert_eq!(Value::zero().as_ptr(), Some(PtrVal::Null));
        assert_eq!(Value::Int(7, IntType::INT).as_ptr(), None);
    }
}
