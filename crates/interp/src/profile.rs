//! Execution profiles — the paper's `dprof` (§3.2.2, Definition 1).
//!
//! > Given a program P, an input I, and the target expression list E, the
//! > execution profile records (1) all the values of expressions in E
//! > observed, and (2) all the allocated and freed stack and heap memory
//! > address ranges.
//!
//! Plus the scope extension the paper obtains from Clang LibTooling: every
//! object records its lexical scope depth, declaring statement and frame, so
//! `Q_scp` queries are answerable. The four queries of the paper are exposed
//! as [`ExecProfile::q_liv`], [`ExecProfile::q_val`], [`ExecProfile::q_mem`]
//! and [`ExecProfile::q_scp`].

use crate::memory::{ObjId, Status, Storage};
use std::collections::HashMap;
use ubfuzz_minic::NodeId;

/// Upper bound on recorded occurrences per watched expression; the shadow
/// statement synthesizers use the *first* occurrence (the UB fires on first
/// execution), so a small bound loses nothing.
pub const MAX_OCCURRENCES: usize = 4;

/// Snapshot of the object a watched pointer expression referred to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointeeRecord {
    /// The pointee object.
    pub obj: ObjId,
    /// Byte offset of the pointer into the object.
    pub off: i64,
    /// Object size in bytes (the paper's `BufferRange`).
    pub obj_size: usize,
    /// Storage class.
    pub storage: Storage,
    /// Lifetime status at observation time.
    pub status: Status,
    /// Object (variable) name.
    pub obj_name: String,
    /// Declaring statement of the object, when any.
    pub decl_node: NodeId,
    /// Lexical scope depth of the object.
    pub scope_depth: u32,
    /// Call frame of the object.
    pub frame: u32,
}

/// One observed value of a watched expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRecord {
    /// Logical time (statement counter) of the observation.
    pub time: u64,
    /// Integer value, when the expression is an integer.
    pub int: Option<i128>,
    /// True if the value was derived from uninitialized memory.
    pub tainted: bool,
    /// Pointee snapshot, when the expression is a pointer.
    pub pointee: Option<PointeeRecord>,
}

/// Lifetime record of one allocation (stack, heap or global).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjRecord {
    /// The object.
    pub obj: ObjId,
    /// Variable name (`"malloc#k"` for heap blocks).
    pub name: String,
    /// Storage class.
    pub storage: Storage,
    /// Size in bytes.
    pub size: usize,
    /// Lexical scope depth at allocation.
    pub scope_depth: u32,
    /// Call frame of the allocation.
    pub frame: u32,
    /// Function containing the allocation (empty for globals).
    pub fn_name: String,
    /// Declaring statement, when from a declaration.
    pub decl_node: NodeId,
    /// Allocation time.
    pub alloc_time: u64,
    /// Scope-exit time, if the scope ended.
    pub dead_time: Option<u64>,
    /// `free` time, if freed.
    pub freed_time: Option<u64>,
}

/// The execution profile `dprof`.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Observed values per watched expression (at most
    /// [`MAX_OCCURRENCES`] each).
    pub values: HashMap<NodeId, Vec<ValueRecord>>,
    /// First execution time of every statement that ran.
    pub stmt_first_exec: HashMap<NodeId, u64>,
    /// Times at which each named variable was written (direct writes only).
    pub var_writes: HashMap<String, Vec<u64>>,
    /// Every allocation performed by the run.
    pub objects: Vec<ObjRecord>,
}

impl ExecProfile {
    /// An empty profile.
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// `Q_liv`: was the watched expression observed in the live region?
    pub fn q_liv(&self, e: NodeId) -> bool {
        self.values.get(&e).is_some_and(|v| !v.is_empty())
    }

    /// `Q_val`: the first observed integer value of the expression.
    pub fn q_val(&self, e: NodeId) -> Option<i128> {
        self.values.get(&e)?.first()?.int
    }

    /// `Q_mem`: the first observed pointee (memory range) of a pointer
    /// expression; `None` for never-observed or non-pointer expressions.
    pub fn q_mem(&self, e: NodeId) -> Option<&PointeeRecord> {
        self.values.get(&e)?.first()?.pointee.as_ref()
    }

    /// `Q_scp`: scope depth of the first pointee of the expression.
    pub fn q_scp(&self, e: NodeId) -> Option<u32> {
        self.q_mem(e).map(|p| p.scope_depth)
    }

    /// First execution time of statement `s`, if it ran.
    pub fn stmt_time(&self, s: NodeId) -> Option<u64> {
        self.stmt_first_exec.get(&s).copied()
    }

    /// True if variable `name` was written in the half-open time interval
    /// `(after, before)`. The use-after-scope synthesizer uses this to check
    /// that a leaked pointer survives up to the target dereference.
    pub fn var_written_between(&self, name: &str, after: u64, before: u64) -> bool {
        self.var_writes
            .get(name)
            .is_some_and(|ts| ts.iter().any(|&t| t > after && t < before))
    }

    /// The record for a given object id, if allocated during the run.
    pub fn object(&self, obj: ObjId) -> Option<&ObjRecord> {
        self.objects.iter().find(|o| o.obj == obj)
    }

    /// Records one observation, enforcing [`MAX_OCCURRENCES`].
    pub fn record_value(&mut self, e: NodeId, rec: ValueRecord) {
        let v = self.values.entry(e).or_default();
        if v.len() < MAX_OCCURRENCES {
            v.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, int: i128) -> ValueRecord {
        ValueRecord { time, int: Some(int), tainted: false, pointee: None }
    }

    #[test]
    fn queries_read_first_occurrence() {
        let mut p = ExecProfile::new();
        let id = NodeId(4);
        p.record_value(id, rec(10, 42));
        p.record_value(id, rec(11, 43));
        assert!(p.q_liv(id));
        assert_eq!(p.q_val(id), Some(42));
        assert!(!p.q_liv(NodeId(5)));
        assert_eq!(p.q_val(NodeId(5)), None);
    }

    #[test]
    fn occurrences_are_capped() {
        let mut p = ExecProfile::new();
        let id = NodeId(1);
        for i in 0..20 {
            p.record_value(id, rec(i, i as i128));
        }
        assert_eq!(p.values[&id].len(), MAX_OCCURRENCES);
    }

    #[test]
    fn var_write_window() {
        let mut p = ExecProfile::new();
        p.var_writes.insert("p".into(), vec![5, 9]);
        assert!(p.var_written_between("p", 4, 6));
        assert!(!p.var_written_between("p", 5, 9));
        assert!(!p.var_written_between("q", 0, 100));
    }
}
