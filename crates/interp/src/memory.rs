//! Byte-accurate object memory with provenance, init bits and lifetimes.
//!
//! Every global, local, parameter and heap allocation is a distinct
//! [`Object`] holding raw bytes, per-byte initialization bits, and a side
//! table of stored pointer provenance. Lifetime transitions (`free`, scope
//! exit) flip the object's [`Status`]; accesses are validated against bounds
//! *and* status, which is exactly the information needed to classify an
//! invalid access as buffer-overflow, use-after-free or use-after-scope.

use crate::value::PtrVal;
use std::collections::HashMap;
use ubfuzz_minic::NodeId;

/// Index of an object within a [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Storage class of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// File-scope variable; zero-initialized, lives for the whole run.
    Global,
    /// Block-scope variable or parameter.
    Stack,
    /// `malloc` allocation.
    Heap,
}

/// Lifetime state of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Accessible.
    Alive,
    /// Heap object that has been freed.
    Freed,
    /// Stack object whose scope (or frame) has ended.
    Dead,
}

/// What went wrong with a memory access; the interpreter maps this to a
/// Table-1 UB kind using the access's syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessErr {
    /// The range `[off, off+len)` is not within the object.
    OutOfBounds {
        /// Attempted offset.
        off: i64,
        /// Attempted length.
        len: usize,
        /// Object size.
        size: usize,
        /// Name of the object.
        name: String,
        /// Storage class of the object.
        storage: Storage,
    },
    /// The object was freed.
    Freed {
        /// Name of the object.
        name: String,
    },
    /// The object's scope has ended.
    Dead {
        /// Name of the object.
        name: String,
    },
}

/// A single allocation.
#[derive(Debug, Clone)]
pub struct Object {
    /// Storage class.
    pub storage: Storage,
    /// Lifetime state.
    pub status: Status,
    /// Raw bytes (uninitialized bytes hold [`Memory::FILL`]).
    pub data: Vec<u8>,
    /// Per-byte initialization bits.
    pub init: Vec<bool>,
    /// Pointer provenance for 8-byte-aligned stored pointers, keyed by offset.
    ptr_at: HashMap<usize, PtrVal>,
    /// Variable name (or `"malloc"` for heap blocks).
    pub name: String,
    /// Declaring statement, when the object comes from a declaration.
    pub decl_node: NodeId,
    /// Lexical scope depth at allocation (0 = globals).
    pub scope_depth: u32,
    /// Call-frame sequence number (0 = globals).
    pub frame: u32,
    /// Logical time of allocation.
    pub alloc_time: u64,
    /// Logical time the scope ended, if it has.
    pub dead_time: Option<u64>,
    /// Logical time of `free`, if any.
    pub freed_time: Option<u64>,
}

impl Object {
    /// Object size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }
}

/// The object store.
#[derive(Debug, Default)]
pub struct Memory {
    objects: Vec<Object>,
}

impl Memory {
    /// Fill byte for uninitialized memory — deterministic garbage, so that
    /// executions that *miss* a UB check still behave identically across the
    /// interpreter and the VM.
    pub const FILL: u8 = 0xBE;

    /// An empty store.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Allocates an object. Globals are zero-initialized; stack and heap
    /// objects are filled with [`Memory::FILL`] and marked uninitialized.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc(
        &mut self,
        storage: Storage,
        size: usize,
        name: &str,
        decl_node: NodeId,
        scope_depth: u32,
        frame: u32,
        now: u64,
    ) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        let (fill, init) = match storage {
            Storage::Global => (0u8, true),
            _ => (Memory::FILL, false),
        };
        self.objects.push(Object {
            storage,
            status: Status::Alive,
            data: vec![fill; size],
            init: vec![init; size],
            ptr_at: HashMap::new(),
            name: name.to_string(),
            decl_node,
            scope_depth,
            frame,
            alloc_time: now,
            dead_time: None,
            freed_time: None,
        });
        id
    }

    /// Immutable access to an object.
    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.0 as usize]
    }

    /// Mutable access to an object.
    pub fn object_mut(&mut self, id: ObjId) -> &mut Object {
        &mut self.objects[id.0 as usize]
    }

    /// All objects, for profiling.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    fn check(&self, id: ObjId, off: i64, len: usize) -> Result<(), AccessErr> {
        let o = self.object(id);
        match o.status {
            Status::Freed => return Err(AccessErr::Freed { name: o.name.clone() }),
            Status::Dead => return Err(AccessErr::Dead { name: o.name.clone() }),
            Status::Alive => {}
        }
        if off < 0 || (off as usize).saturating_add(len) > o.size() {
            return Err(AccessErr::OutOfBounds {
                off,
                len,
                size: o.size(),
                name: o.name.clone(),
                storage: o.storage,
            });
        }
        Ok(())
    }

    /// Reads `len` bytes; the bool is true when *all* bytes were initialized.
    pub fn read_bytes(&self, id: ObjId, off: i64, len: usize) -> Result<(Vec<u8>, bool), AccessErr> {
        self.check(id, off, len)?;
        let o = self.object(id);
        let s = off as usize;
        let all_init = o.init[s..s + len].iter().all(|&b| b);
        Ok((o.data[s..s + len].to_vec(), all_init))
    }

    /// Writes raw bytes and marks them initialized; clobbers any overlapping
    /// stored pointer provenance.
    pub fn write_bytes(&mut self, id: ObjId, off: i64, bytes: &[u8]) -> Result<(), AccessErr> {
        self.check(id, off, bytes.len())?;
        let o = self.object_mut(id);
        let s = off as usize;
        o.data[s..s + bytes.len()].copy_from_slice(bytes);
        for b in &mut o.init[s..s + bytes.len()] {
            *b = true;
        }
        let end = s + bytes.len();
        o.ptr_at.retain(|&k, _| k + 8 <= s || k >= end);
        Ok(())
    }

    /// Stores a pointer (8 bytes plus provenance).
    pub fn write_ptr(&mut self, id: ObjId, off: i64, p: PtrVal) -> Result<(), AccessErr> {
        let raw = p.to_raw().to_le_bytes();
        self.write_bytes(id, off, &raw)?;
        self.object_mut(id).ptr_at.insert(off as usize, p);
        Ok(())
    }

    /// Loads a pointer: provenance if intact, otherwise the raw integer is
    /// reinterpreted (null for zero, wild otherwise). The bool reports
    /// initialization, as for [`Memory::read_bytes`].
    pub fn read_ptr(&self, id: ObjId, off: i64) -> Result<(PtrVal, bool), AccessErr> {
        let (bytes, init) = self.read_bytes(id, off, 8)?;
        if let Some(p) = self.object(id).ptr_at.get(&(off as usize)) {
            return Ok((*p, init));
        }
        let raw = i64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        let p = if raw == 0 { PtrVal::Null } else { PtrVal::Wild(raw) };
        Ok((p, init))
    }

    /// Copies `len` bytes between objects (struct assignment), preserving
    /// init bits and pointer provenance where aligned.
    pub fn copy(
        &mut self,
        dst: ObjId,
        dst_off: i64,
        src: ObjId,
        src_off: i64,
        len: usize,
    ) -> Result<(), AccessErr> {
        self.check(src, src_off, len)?;
        self.check(dst, dst_off, len)?;
        let (bytes, init_bits, ptrs) = {
            let s = self.object(src);
            let so = src_off as usize;
            let ptrs: Vec<(usize, PtrVal)> = s
                .ptr_at
                .iter()
                .filter(|(&k, _)| k >= so && k + 8 <= so + len)
                .map(|(&k, &v)| (k - so, v))
                .collect();
            (
                s.data[so..so + len].to_vec(),
                s.init[so..so + len].to_vec(),
                ptrs,
            )
        };
        let d = self.object_mut(dst);
        let doff = dst_off as usize;
        d.data[doff..doff + len].copy_from_slice(&bytes);
        d.init[doff..doff + len].copy_from_slice(&init_bits);
        d.ptr_at.retain(|&k, _| k + 8 <= doff || k >= doff + len);
        for (k, v) in ptrs {
            d.ptr_at.insert(doff + k, v);
        }
        Ok(())
    }

    /// Frees a heap object. Errors (caller reports [`crate::UbKind::InvalidFree`])
    /// if the object is not heap-allocated or already freed.
    pub fn free(&mut self, id: ObjId, now: u64) -> Result<(), AccessErr> {
        let o = self.object_mut(id);
        if o.storage != Storage::Heap || o.status != Status::Alive {
            return Err(AccessErr::Freed { name: o.name.clone() });
        }
        o.status = Status::Freed;
        o.freed_time = Some(now);
        Ok(())
    }

    /// Marks every alive stack object allocated in frame `frame` at depth
    /// ≥ `depth` as dead (scope or frame exit).
    pub fn kill_scope(&mut self, frame: u32, depth: u32, now: u64) {
        for o in &mut self.objects {
            if o.storage == Storage::Stack
                && o.status == Status::Alive
                && o.frame == frame
                && o.scope_depth >= depth
            {
                o.status = Status::Dead;
                o.dead_time = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(size: usize, storage: Storage) -> (Memory, ObjId) {
        let mut m = Memory::new();
        let id = m.alloc(storage, size, "x", NodeId(1), 1, 1, 0);
        (m, id)
    }

    #[test]
    fn globals_are_zero_initialized() {
        let (m, id) = mem_with(4, Storage::Global);
        let (bytes, init) = m.read_bytes(id, 0, 4).unwrap();
        assert_eq!(bytes, vec![0; 4]);
        assert!(init);
    }

    #[test]
    fn stack_is_uninitialized_garbage() {
        let (m, id) = mem_with(4, Storage::Stack);
        let (bytes, init) = m.read_bytes(id, 0, 4).unwrap();
        assert_eq!(bytes, vec![Memory::FILL; 4]);
        assert!(!init);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut m, id) = mem_with(8, Storage::Stack);
        m.write_bytes(id, 2, &[1, 2, 3]).unwrap();
        let (bytes, init) = m.read_bytes(id, 2, 3).unwrap();
        assert_eq!(bytes, vec![1, 2, 3]);
        assert!(init);
        let (_, init2) = m.read_bytes(id, 0, 8).unwrap();
        assert!(!init2, "untouched bytes stay uninitialized");
    }

    #[test]
    fn oob_is_detected_with_details() {
        let (m, id) = mem_with(8, Storage::Stack);
        match m.read_bytes(id, 8, 4) {
            Err(AccessErr::OutOfBounds { off, len, size, .. }) => {
                assert_eq!((off, len, size), (8, 4, 8));
            }
            other => panic!("expected OOB, got {other:?}"),
        }
        assert!(m.read_bytes(id, -1, 1).is_err());
        assert!(m.read_bytes(id, 5, 4).is_err());
    }

    #[test]
    fn freed_and_dead_are_detected() {
        let mut m = Memory::new();
        let h = m.alloc(Storage::Heap, 8, "malloc", NodeId(0), 0, 0, 1);
        m.free(h, 2).unwrap();
        assert!(matches!(m.read_bytes(h, 0, 1), Err(AccessErr::Freed { .. })));
        assert!(m.free(h, 3).is_err(), "double free rejected");

        let s = m.alloc(Storage::Stack, 4, "v", NodeId(0), 2, 1, 4);
        m.kill_scope(1, 2, 5);
        assert!(matches!(m.read_bytes(s, 0, 1), Err(AccessErr::Dead { .. })));
        assert_eq!(m.object(s).dead_time, Some(5));
    }

    #[test]
    fn pointer_provenance_survives_store_and_copy() {
        let mut m = Memory::new();
        let a = m.alloc(Storage::Stack, 16, "a", NodeId(0), 1, 1, 0);
        let b = m.alloc(Storage::Stack, 16, "b", NodeId(0), 1, 1, 0);
        let target = PtrVal::Obj { obj: b, off: 4 };
        m.write_ptr(a, 0, target).unwrap();
        assert_eq!(m.read_ptr(a, 0).unwrap().0, target);
        m.copy(b, 8, a, 0, 8).unwrap();
        assert_eq!(m.read_ptr(b, 8).unwrap().0, target);
    }

    #[test]
    fn overwriting_clobbers_provenance() {
        let mut m = Memory::new();
        let a = m.alloc(Storage::Stack, 16, "a", NodeId(0), 1, 1, 0);
        m.write_ptr(a, 0, PtrVal::Obj { obj: a, off: 0 }).unwrap();
        m.write_bytes(a, 4, &[0xFF]).unwrap();
        let (p, _) = m.read_ptr(a, 0).unwrap();
        assert!(matches!(p, PtrVal::Wild(_)), "provenance destroyed: {p:?}");
    }

    #[test]
    fn kill_scope_only_touches_matching_frame_and_depth() {
        let mut m = Memory::new();
        let outer = m.alloc(Storage::Stack, 4, "outer", NodeId(0), 1, 1, 0);
        let inner = m.alloc(Storage::Stack, 4, "inner", NodeId(0), 2, 1, 0);
        let other_frame = m.alloc(Storage::Stack, 4, "of", NodeId(0), 2, 2, 0);
        m.kill_scope(1, 2, 9);
        assert_eq!(m.object(outer).status, Status::Alive);
        assert_eq!(m.object(inner).status, Status::Dead);
        assert_eq!(m.object(other_frame).status, Status::Alive);
    }
}
