//! `ubfuzz-interp` — reference interpreter and profiler for the C subset.
//!
//! The UBfuzz paper needs three capabilities that a real testing campaign
//! gets from running instrumented binaries on hardware; this crate provides
//! all three on top of [`ubfuzz_minic`] ASTs:
//!
//! 1. **Ground-truth UB detection.** The interpreter models every object
//!    byte-for-byte with provenance-carrying pointers, initialization bits
//!    and scope lifetimes, so it can decide *precisely* whether a program
//!    execution contains undefined behavior and of which Table-1 kind. The
//!    Table 4 experiment ("how many generated programs actually contain
//!    UB?") uses this as its oracle.
//! 2. **Execution profiling** (paper §3.2.2, Definition 1). Running a seed
//!    with a watch-set of expression node ids yields an [`ExecProfile`]
//!    recording expression values, pointee memory ranges, allocation/free
//!    events and scope information — the `dprof` consumed by the
//!    `Q_liv`/`Q_val`/`Q_mem`/`Q_scp` queries of the shadow-statement
//!    synthesizers.
//! 3. **Deterministic semantics for differential checks.** Uninitialized
//!    stack and heap bytes read as the fixed `0xBE` fill so that interpreter
//!    and VM runs of the same (even buggy) program can be compared.
//!
//! # Example
//!
//! ```
//! use ubfuzz_interp::{run_program, Outcome};
//! use ubfuzz_minic::parse;
//!
//! let p = parse("int main(void) { print_value(6 * 7); return 0; }").unwrap();
//! match run_program(&p) {
//!     Outcome::Exit { status, output } => {
//!         assert_eq!(status, 0);
//!         assert_eq!(output, vec![42]);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

pub mod eval;
pub mod memory;
pub mod profile;
pub mod ub;
pub mod value;

pub use eval::{run_program, run_with_config, ExecConfig};
pub use memory::{Memory, ObjId, Object, Status, Storage};
pub use profile::{ExecProfile, ObjRecord, PointeeRecord, ValueRecord};
pub use ub::{Outcome, UbEvent, UbKind};
pub use value::{PtrVal, Value};
