//! The persistent sanitize-stage cache: `(program fingerprint, vendor,
//! version, opt, sanitizer, defect-registry epoch, site-subset
//! fingerprint) → serialized post-sanitize Module`, amortizing the
//! sanitizer pass across
//! *invocations* — the second cache layer behind
//! [`CompileSession::with_backings`](ubfuzz_simcc::session::CompileSession).
//!
//! Same log discipline as [`crate::prefix`]: an append-only checksummed
//! record file (torn tails truncated, version skew and corruption degrade
//! to a cold start, never an error), a budgeted open that full-decodes only
//! what the session can preload, and byte-budgeted least-recently-hit
//! compaction through the shared temp-file + rename rewrite. The key head
//! is fixed-width so beyond-budget and compaction scans never pay a module
//! decode.

use crate::modser::{
    dec_compiler, dec_module, dec_opt, dec_sanitizer, enc_compiler, enc_module, enc_opt,
    enc_sanitizer,
};
use crate::wire::{self, Dec, Enc, TableKind};
use crate::{relock_noting, CompactStats, LogState, StoreTelemetry};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use ubfuzz_simcc::ir::Sanitizer;
use ubfuzz_simcc::session::{PersistedSanitized, SanitizedBacking, SanitizedEntryRef};
use ubfuzz_simcc::target::{CompilerId, OptLevel};

/// File name of the sanitized table inside a store directory.
pub const SANITIZED_FILE: &str = "sanitized.bin";

/// A resident-on-disk key: the session's sanitize key — program hash,
/// compiler, opt, sanitizer, registry epoch, partial-sanitization
/// site-subset fingerprint.
type SanitizedKey = (u64, CompilerId, OptLevel, Sanitizer, u64, u64);

fn key_of(entry: &SanitizedEntryRef<'_>) -> SanitizedKey {
    (entry.hash, entry.compiler, entry.opt, entry.sanitizer, entry.registry_fp, entry.subset_fp)
}

#[derive(Debug)]
struct SanitizedInner {
    /// Entries loaded at open, handed out once via [`SanitizedBacking::load`].
    loaded: Option<Vec<PersistedSanitized>>,
    /// The append log: file handle, resident keys, recency, size.
    log: LogState<SanitizedKey>,
}

/// The on-disk sanitize-stage cache. Open never fails: unreadable,
/// version-skewed or corrupt files degrade to a cold start recorded in
/// [`StoreTelemetry`].
#[derive(Debug)]
pub struct SanitizedStore {
    path: PathBuf,
    inner: Mutex<SanitizedInner>,
    telemetry: StoreTelemetry,
}

fn enc_entry(entry: SanitizedEntryRef<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(entry.hash);
    enc_compiler(&mut e, entry.compiler);
    enc_opt(&mut e, entry.opt);
    enc_sanitizer(&mut e, entry.sanitizer);
    e.u64(entry.registry_fp);
    e.u64(entry.subset_fp);
    e.str(entry.source);
    enc_module(&mut e, entry.module);
    e.into_bytes()
}

fn dec_entry(payload: &[u8]) -> Result<PersistedSanitized, wire::WireError> {
    let mut d = Dec::new(payload);
    let entry = PersistedSanitized {
        hash: d.u64()?,
        compiler: dec_compiler(&mut d)?,
        opt: dec_opt(&mut d)?,
        sanitizer: dec_sanitizer(&mut d)?,
        registry_fp: d.u64()?,
        subset_fp: d.u64()?,
        source: d.str()?,
        module: dec_module(&mut d)?,
    };
    d.finish()?;
    Ok(entry)
}

/// Decodes only the dedup key (the payload's fixed-position head), skipping
/// the expensive module decode — what beyond-budget records pay at open.
fn dec_key(payload: &[u8]) -> Result<SanitizedKey, wire::WireError> {
    let mut d = Dec::new(payload);
    Ok((
        d.u64()?,
        dec_compiler(&mut d)?,
        dec_opt(&mut d)?,
        dec_sanitizer(&mut d)?,
        d.u64()?,
        d.u64()?,
    ))
}

impl SanitizedStore {
    /// Opens (or creates) the sanitized table under `dir`, decoding every
    /// entry. Prefer [`SanitizedStore::open_budgeted`] when the consuming
    /// session's capacity is known.
    pub fn open(dir: impl AsRef<Path>) -> SanitizedStore {
        SanitizedStore::open_budgeted(dir, usize::MAX)
    }

    /// Opens the sanitized table, fully decoding at most `budget` entries
    /// (the session's sanitize-layer preload budget); the rest are
    /// checksum-validated and key-indexed only.
    pub fn open_budgeted(dir: impl AsRef<Path>, budget: usize) -> SanitizedStore {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let path = dir.as_ref().join(SANITIZED_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let mut loaded = Vec::new();
        let mut resident = std::collections::HashSet::new();
        let mut recency = std::collections::HashMap::new();
        let mut clock = 0u64;
        let mut fresh = true;
        let mut trusted = wire::HEADER_LEN as u64;
        let mut file_len = 0u64;
        if let Ok(mut file) = File::open(&path) {
            file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
            let mut header = [0u8; wire::HEADER_LEN];
            let header_ok = {
                use std::io::Read as _;
                file.read_exact(&mut header).is_ok()
            };
            if !header_ok {
                if file_len > 0 {
                    telemetry.record_corruption("sanitized header: truncated".into());
                    telemetry.record_cold_start();
                }
            } else if let Err(e) = wire::check_header(&header, TableKind::Sanitized) {
                telemetry.record_corruption(format!("sanitized header: {e}"));
                telemetry.record_cold_start();
            } else {
                fresh = false;
                let mut pos = wire::HEADER_LEN as u64;
                let mut buf = Vec::new();
                // A torn/corrupt tail ends the scan: trust what came first.
                while let Some((payload_off, payload_len)) =
                    wire::read_record_at(&mut file, file_len, pos, &mut buf)
                {
                    // Within the budget, decode the full entry; beyond it
                    // the session would drop the entry anyway, so decode
                    // only its dedup key.
                    let key = if loaded.len() < budget {
                        match dec_entry(&buf) {
                            Ok(entry) => {
                                let key = key_of(&entry.as_entry_ref());
                                loaded.push(entry);
                                key
                            }
                            Err(e) => {
                                telemetry.record_corruption(format!("sanitized record: {e}"));
                                break;
                            }
                        }
                    } else {
                        match dec_key(&buf) {
                            Ok(key) => key,
                            Err(e) => {
                                telemetry.record_corruption(format!("sanitized record: {e}"));
                                break;
                            }
                        }
                    };
                    resident.insert(key);
                    // File-order sequence: a store compacted before any hit
                    // lands deterministically keeps its newest tail.
                    clock += 1;
                    recency.insert(key, clock);
                    pos = payload_off + payload_len as u64 + 8;
                    trusted = pos;
                }
                if trusted < file_len {
                    telemetry.record_tail_truncated();
                }
            }
        }
        let file = Self::recover(&path, fresh, trusted, file_len, &telemetry);
        telemetry.set_loaded(loaded.len());
        let bytes = if file.is_some() {
            if fresh { wire::HEADER_LEN as u64 } else { trusted }
        } else {
            0
        };
        SanitizedStore {
            path,
            inner: Mutex::new(SanitizedInner {
                loaded: Some(loaded),
                log: LogState { file, resident, recency, clock, bytes },
            }),
            telemetry,
        }
    }

    /// Puts the file into an appendable state: a fresh header for missing
    /// or unusable files, or a `set_len` truncation of any untrusted tail.
    fn recover(
        path: &Path,
        fresh: bool,
        trusted: u64,
        file_len: u64,
        telemetry: &StoreTelemetry,
    ) -> Option<File> {
        if fresh && !wire::rewrite_file(path, TableKind::Sanitized, &[]) {
            telemetry.record_corruption("sanitized store directory unwritable".into());
            telemetry.record_cold_start();
            return None;
        }
        match OpenOptions::new().read(true).append(true).open(path) {
            Ok(file) => {
                if !fresh && trusted < file_len {
                    let _ = file.set_len(trusted);
                }
                Some(file)
            }
            Err(_) => {
                telemetry.record_corruption(
                    "sanitized store not writable; persistence disabled".into(),
                );
                telemetry.record_cold_start();
                None
            }
        }
    }

    /// The file backing this table.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/flush telemetry for this table.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }

    /// Current on-disk size of this table in bytes, header included.
    pub fn size_bytes(&self) -> u64 {
        relock_noting(&self.inner, &self.telemetry, "sanitized store lock").log.bytes
    }

    /// Compacts the table to at most `budget` bytes, evicting the
    /// least-recently-hit entries through the shared temp-file + rename
    /// rewrite. Evicted keys leave the resident set, so a later recompute
    /// re-persists them.
    pub fn compact(&self, budget: u64) -> CompactStats {
        let mut inner = relock_noting(&self.inner, &self.telemetry, "sanitized store lock");
        crate::compact_log(
            &self.path,
            TableKind::Sanitized,
            &mut inner.log,
            budget,
            dec_key,
            &self.telemetry,
        )
    }
}

impl SanitizedBacking for SanitizedStore {
    fn load(&self) -> Vec<PersistedSanitized> {
        relock_noting(&self.inner, &self.telemetry, "sanitized store lock")
            .loaded
            .take()
            .unwrap_or_default()
    }

    fn persist(&self, entry: SanitizedEntryRef<'_>) {
        let mut inner = relock_noting(&self.inner, &self.telemetry, "sanitized store lock");
        let key = key_of(&entry);
        if inner.log.resident.contains(&key) {
            return; // already on disk (epoch-evicted recomputation)
        }
        let payload = enc_entry(entry);
        inner.log.append(key, &payload, &self.telemetry, "sanitized");
    }

    fn note_hit(&self, entry: SanitizedEntryRef<'_>) {
        relock_noting(&self.inner, &self.telemetry, "sanitized store lock")
            .log
            .note_hit(key_of(&entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::CompileConfig;
    use ubfuzz_simcc::session::CompileSession;
    use ubfuzz_simcc::target::Vendor;
    use ubfuzz_simcc::ir::Sanitizer;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-sanstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sessions(dir: &Path) -> CompileSession {
        CompileSession::with_backings(
            64,
            Arc::new(crate::PrefixStore::open(dir)),
            Some(Arc::new(SanitizedStore::open(dir))),
        )
    }

    #[test]
    fn second_invocation_skips_the_sanitize_stage() {
        let dir = tmp_dir("warm");
        let reg = DefectRegistry::full();
        let p = parse("int main(void) { return 3 + 4; }").unwrap();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Ubsan), &reg);

        let first = sessions(&dir);
        let out = first.compile(&p, &cfg).unwrap();
        assert_eq!(first.stats().san_misses, 1);
        drop(first);

        let second = sessions(&dir);
        assert_eq!(second.san_preloaded(), 1);
        assert_eq!(second.compile(&p, &cfg).unwrap(), out);
        let stats = second.stats();
        assert_eq!(stats.san_hits, 1, "warm store serves the sanitize stage");
        assert_eq!(stats.san_misses, 0);
        assert_eq!((stats.hits, stats.misses), (0, 0), "prefix layer untouched on san hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_epoch_partitions_the_table() {
        let dir = tmp_dir("epoch");
        let full = DefectRegistry::full();
        let pristine = DefectRegistry::pristine();
        let p = parse("int main(void) { return 6 / 2; }").unwrap();

        let first = sessions(&dir);
        let cfg_full = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Asan), &full);
        let cfg_pristine =
            CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Asan), &pristine);
        let a = first.compile(&p, &cfg_full).unwrap();
        let b = first.compile(&p, &cfg_pristine).unwrap();
        assert_eq!(first.stats().san_misses, 2, "distinct epochs, distinct records");
        drop(first);

        let second = sessions(&dir);
        assert_eq!(second.san_preloaded(), 2);
        assert_eq!(second.compile(&p, &cfg_full).unwrap(), a);
        assert_eq!(second.compile(&p, &cfg_pristine).unwrap(), b);
        assert_eq!(second.stats().san_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg);
        let session = sessions(&dir);
        session.compile(&parse("int main(void) { return 1; }").unwrap(), &cfg).unwrap();
        session.compile(&parse("int main(void) { return 2; }").unwrap(), &cfg).unwrap();
        drop(session);
        let path = dir.join(SANITIZED_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let store = SanitizedStore::open(&dir);
        assert_eq!(store.telemetry().loaded(), 1, "torn record dropped");
        assert!(store.telemetry().tail_truncated());
        let session = CompileSession::with_backings(
            64,
            Arc::new(crate::PrefixStore::open(&dir)),
            Some(Arc::new(store)),
        );
        session.compile(&parse("int main(void) { return 3; }").unwrap(), &cfg).unwrap();
        drop(session);
        assert_eq!(SanitizedStore::open(&dir).telemetry().loaded(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subset_fingerprint_partitions_the_table() {
        use ubfuzz_simcc::partition::SanPolicy;
        let dir = tmp_dir("subset");
        let reg = DefectRegistry::full();
        let p = parse("int g[4]; int main(void) { g[1] = 2; return g[1]; }").unwrap();
        let cfg_full = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        let cfg_partial =
            cfg_full.clone().with_policy(SanPolicy::Partial { ratio_pm: 300, salt: 11 });

        let first = sessions(&dir);
        let a = first.compile(&p, &cfg_full).unwrap();
        let b = first.compile(&p, &cfg_partial).unwrap();
        assert_eq!(first.stats().san_misses, 2, "distinct subsets, distinct records");
        drop(first);

        // Warm replay: each policy hits its own record at reuse 1.0 — no
        // cross-subset aliasing through the store.
        let second = sessions(&dir);
        assert_eq!(second.san_preloaded(), 2);
        assert_eq!(second.compile(&p, &cfg_full).unwrap(), a);
        assert_eq!(second.compile(&p, &cfg_partial).unwrap(), b);
        let stats = second.stats();
        assert_eq!(stats.san_hits, 2);
        assert_eq!(stats.san_misses, 0);
        assert_eq!(stats.san_reuse_ratio(), 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_file_cold_starts_with_telemetry_never_errors() {
        // A pre-partition (format v2) sanitized.bin has neither the
        // subset-fingerprint key column nor the skipped-site set; the
        // extended codec must treat it as version skew: cold start plus a
        // telemetry event, never an error.
        let dir = tmp_dir("v2");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(SANITIZED_FILE);
        let mut bytes = wire::header(TableKind::Sanitized);
        bytes[8] = 2; // the pre-partition format version
        // A plausible v2-shaped record body (shorter key head) — the header
        // check must reject the file before any record is interpreted.
        let mut e = Enc::new();
        e.u64(0xDEAD_BEEF);
        bytes.extend_from_slice(&wire::frame(&e.into_bytes()));
        std::fs::write(&path, &bytes).unwrap();

        let store = SanitizedStore::open(&dir);
        assert_eq!(store.telemetry().loaded(), 0);
        assert!(store.telemetry().recovered_cold());
        assert!(store
            .telemetry()
            .events()
            .iter()
            .any(|e| e.contains("format version")), "{:?}", store.telemetry().events());
        // And the recovered file is immediately usable for persistence.
        let session = CompileSession::with_backings(
            64,
            Arc::new(crate::PrefixStore::open(&dir)),
            Some(Arc::new(store)),
        );
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, Some(Sanitizer::Ubsan), &reg);
        session.compile(&parse("int main(void) { return 9; }").unwrap(), &cfg).unwrap();
        drop(session);
        assert_eq!(SanitizedStore::open(&dir).telemetry().loaded(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skewed_file_cold_starts_never_errors() {
        let dir = tmp_dir("skew");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(SANITIZED_FILE);
        let mut header = wire::header(TableKind::Sanitized);
        header[8] = wire::FORMAT_VERSION + 1;
        std::fs::write(&path, &header).unwrap();

        let store = SanitizedStore::open(&dir);
        assert_eq!(store.telemetry().loaded(), 0);
        assert!(store.telemetry().recovered_cold());
        assert!(store
            .telemetry()
            .events()
            .iter()
            .any(|e| e.contains("format version")), "{:?}", store.telemetry().events());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_evicted_keys_remiss_and_resident_keys_rehit() {
        let dir = tmp_dir("compact");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Ubsan), &reg);
        let programs: Vec<_> = (0..4)
            .map(|i| parse(&format!("int main(void) {{ return {i}; }}")).unwrap())
            .collect();
        let store = Arc::new(SanitizedStore::open(&dir));
        let session = CompileSession::with_backings(
            64,
            Arc::new(crate::PrefixStore::open(&dir)),
            Some(store.clone()),
        );
        let outs: Vec<_> = programs.iter().map(|p| session.compile(p, &cfg).unwrap()).collect();
        // Hit the oldest entry so recency, not file order, decides survival.
        session.compile(&programs[0], &cfg).unwrap();
        let full = store.size_bytes();
        let header = wire::HEADER_LEN as u64;
        let stats = store.compact((full - header) / 2 + header);
        assert_eq!((stats.kept, stats.evicted), (2, 2), "{stats:?}");
        drop(session);
        drop(store);

        let second = sessions(&dir);
        assert_eq!(second.san_preloaded(), 2);
        for (p, out) in programs.iter().zip(&outs) {
            assert_eq!(&second.compile(p, &cfg).unwrap(), out, "identical after compaction");
        }
        let stats = second.stats();
        assert_eq!(stats.san_hits, 2, "resident keys re-hit");
        assert_eq!(stats.san_misses, 2, "evicted keys re-miss");
        drop(second);
        assert_eq!(
            SanitizedStore::open(&dir).telemetry().loaded(),
            4,
            "evicted keys re-persisted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
