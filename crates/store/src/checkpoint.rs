//! The campaign checkpoint log: unit-granular persistence that makes a
//! killed campaign resumable with a bit-identical final report.
//!
//! A campaign's work decomposes into deterministically planned `(seed,
//! program, compiler, opt, sanitizer)` units (see `ubfuzz::executor`), so a
//! unit is fully identified by its **index** in that plan — provided both
//! invocations planned the same campaign. The log header therefore records
//! a fingerprint of the campaign configuration plus the planned unit count;
//! a mismatch on open means "different campaign" and degrades to a fresh
//! log, never to mixing two campaigns' results.
//!
//! Each completed unit is appended as one flushed record: `(index, outcome)`
//! where the outcome is either *unsupported* (the compile was rejected,
//! mirroring the sequential loop's `continue`) or the serialized
//! `(Module, RunResult)` pair. Replayed outcomes are byte-faithful, and the
//! campaign's canonical-order merge is a pure function of unit outcomes —
//! which is exactly why replay-from-log reproduces the uninterrupted
//! report bit-for-bit.
//!
//! **Memory discipline.** Opening *validates* every record with a single
//! reusable buffer (checksum plus a full trial decode, so foreign defect
//! ids or version drift surface at open, not mid-campaign) but retains
//! only each unit's `(offset, length)` span. [`CampaignLog::take_replay`]
//! reads and decodes one record on demand and clears its slot, so a
//! resumed months-scale campaign holds O(streaming window) outcomes in
//! memory, never O(log) — the same bound the streaming oracle merge gives
//! fresh compiles. Tail recovery is a `set_len` truncation to the trusted
//! byte count (no record rewriting), so open cost is one sequential scan.

use crate::modser::{dec_module, dec_run_result, enc_module, enc_run_result};
use crate::wire::{self, Dec, Enc, TableKind};
use crate::StoreTelemetry;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use ubfuzz_simcc::Module;
use ubfuzz_simvm::RunResult;

/// File name of the checkpoint log inside a store directory.
pub const CHECKPOINT_FILE: &str = "campaign.bin";

/// One checkpointed unit outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutcome {
    /// The cell was unsupported or failed to compile (the campaign skips
    /// it; recorded so resume does not retry it either).
    Unsupported,
    /// The compiled module and its execution result.
    Done(Module, RunResult),
}

/// Byte span of one validated record's payload within the log file.
type PayloadSpan = (u64, u32);

/// An open checkpoint log for one campaign plan.
#[derive(Debug)]
pub struct CampaignLog {
    path: PathBuf,
    /// Validated payload spans from previous invocations, indexed by unit.
    /// Each slot is taken (and its record decoded) exactly once by
    /// [`CampaignLog::take_replay`].
    prior: Vec<Mutex<Option<PayloadSpan>>>,
    replayed: usize,
    /// Read+append handle; `None` when the directory is unwritable (the
    /// campaign then runs uncheckpointed).
    file: Mutex<Option<File>>,
    telemetry: StoreTelemetry,
}

fn enc_header(config_fp: u64, units: usize) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(config_fp);
    e.u64(units as u64);
    e.into_bytes()
}

fn enc_unit(index: usize, outcome: &UnitOutcome) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(index as u64);
    match outcome {
        UnitOutcome::Unsupported => e.u8(0),
        UnitOutcome::Done(module, result) => {
            e.u8(1);
            enc_module(&mut e, module);
            enc_run_result(&mut e, result);
        }
    }
    e.into_bytes()
}

fn dec_unit(payload: &[u8]) -> Result<(usize, UnitOutcome), wire::WireError> {
    let mut d = Dec::new(payload);
    let index = d.usize()?;
    let outcome = match d.u8()? {
        0 => UnitOutcome::Unsupported,
        1 => UnitOutcome::Done(dec_module(&mut d)?, dec_run_result(&mut d)?),
        _ => return Err(wire::WireError::Corrupt("unit outcome")),
    };
    d.finish()?;
    Ok((index, outcome))
}

/// Result of the open-time scan.
struct Scan {
    /// Validated payload spans, by unit index.
    spans: Vec<Option<PayloadSpan>>,
    replayed: usize,
    /// Byte length of the trusted file prefix.
    trusted: u64,
    /// The file needs a fresh rewrite (bad header / foreign campaign).
    fresh: bool,
}

impl CampaignLog {
    /// Opens (or creates) the checkpoint log under `dir` for the campaign
    /// identified by `config_fp` with `units` planned units.
    ///
    /// Never fails: a missing, corrupt, version-skewed or *mismatched*
    /// (different campaign) file degrades to an empty log, with the reason
    /// recorded in telemetry. A torn tail (kill mid-append) is truncated
    /// back to the last fully flushed record.
    pub fn open(dir: impl AsRef<Path>, config_fp: u64, units: usize) -> CampaignLog {
        let path = dir.as_ref().join(CHECKPOINT_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let scan = Self::scan(&path, config_fp, units, &telemetry);
        let file = Self::recover(&path, config_fp, units, &scan, &telemetry);
        telemetry.set_loaded(scan.replayed);
        CampaignLog {
            path,
            prior: scan.spans.into_iter().map(Mutex::new).collect(),
            replayed: scan.replayed,
            file: Mutex::new(file),
            telemetry,
        }
    }

    /// Sequentially validates the log with one reusable record buffer,
    /// keeping only payload spans — open-time memory is O(largest record).
    fn scan(path: &Path, config_fp: u64, units: usize, telemetry: &StoreTelemetry) -> Scan {
        let mut scan = Scan {
            spans: (0..units).map(|_| None).collect(),
            replayed: 0,
            trusted: 0,
            fresh: true,
        };
        let Ok(mut file) = File::open(path) else { return scan };
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
        let mut header = [0u8; wire::HEADER_LEN];
        if file.read_exact(&mut header).is_err() {
            if file_len > 0 {
                telemetry.record_corruption("checkpoint header: truncated".into());
                telemetry.record_cold_start();
            }
            return scan;
        }
        if let Err(e) = wire::check_header(&header, TableKind::Checkpoint) {
            telemetry.record_corruption(format!("checkpoint header: {e}"));
            telemetry.record_cold_start();
            return scan;
        }
        let mut pos = wire::HEADER_LEN as u64;
        let mut buf = Vec::new();
        let mut first = true;
        // A torn/corrupt tail ends the scan: trust what came before it.
        while let Some((payload_off, payload_len)) =
            wire::read_record_at(&mut file, file_len, pos, &mut buf)
        {
            if first {
                // The header record pins the campaign identity.
                let mut d = Dec::new(&buf);
                let ok = d.u64() == Ok(config_fp)
                    && d.u64() == Ok(units as u64)
                    && d.finish().is_ok();
                if !ok {
                    telemetry.record_cold_start();
                    return scan; // foreign campaign: fresh log, spans empty
                }
                first = false;
            } else {
                match dec_unit(&buf) {
                    Ok((index, _)) if index < units => {
                        let slot = &mut scan.spans[index];
                        if slot.is_none() {
                            scan.replayed += 1;
                        }
                        *slot = Some((payload_off, payload_len));
                    }
                    Ok(_) => {
                        telemetry
                            .record_corruption("checkpoint unit index out of plan".into());
                        break;
                    }
                    Err(e) => {
                        telemetry.record_corruption(format!("checkpoint record: {e}"));
                        break;
                    }
                }
            }
            pos = payload_off + payload_len as u64 + 8;
            scan.trusted = pos;
        }
        if first {
            // No valid header record at all.
            telemetry.record_cold_start();
            return scan;
        }
        scan.fresh = false;
        if scan.trusted < file_len {
            telemetry.record_tail_truncated();
        }
        scan
    }

    /// Puts the file into an appendable state: a fresh header for cold
    /// starts, or a `set_len` truncation of any untrusted tail.
    fn recover(
        path: &Path,
        config_fp: u64,
        units: usize,
        scan: &Scan,
        telemetry: &StoreTelemetry,
    ) -> Option<File> {
        if scan.fresh && !wire::rewrite_file(path, TableKind::Checkpoint, &[enc_header(config_fp, units)]) {
            telemetry.record_corruption("checkpoint directory unwritable".into());
            telemetry.record_cold_start();
            return None;
        }
        match OpenOptions::new().read(true).write(true).open(path) {
            Ok(file) => {
                if !scan.fresh
                    && scan.trusted < file.metadata().map(|m| m.len()).unwrap_or(0)
                {
                    let _ = file.set_len(scan.trusted);
                }
                Some(file)
            }
            Err(_) => {
                telemetry.record_corruption(
                    "checkpoint not writable; checkpointing disabled".into(),
                );
                telemetry.record_cold_start();
                None
            }
        }
    }

    /// Takes unit `index`'s replayed outcome, reading and decoding its
    /// record on demand. Consuming rather than preloading keeps resumed
    /// campaigns' memory proportional to the in-flight streaming window.
    pub fn take_replay(&self, index: usize) -> Option<UnitOutcome> {
        let (offset, len) = self.prior.get(index)?.lock().expect("replay slot lock").take()?;
        let mut guard = self.file.lock().expect("checkpoint file lock");
        let file = guard.as_mut()?;
        let mut buf = vec![0u8; len as usize];
        if file.seek(SeekFrom::Start(offset)).is_err() || file.read_exact(&mut buf).is_err() {
            // Disk trouble after a clean open: recompute instead.
            self.telemetry.record_corruption("checkpoint replay read failed".into());
            return None;
        }
        drop(guard);
        match dec_unit(&buf) {
            Ok((i, outcome)) if i == index => Some(outcome),
            _ => {
                self.telemetry.record_corruption("checkpoint replay decode failed".into());
                None
            }
        }
    }

    /// Whether unit `index` has a not-yet-taken replayed outcome.
    pub fn has_replay(&self, index: usize) -> bool {
        self.prior
            .get(index)
            .is_some_and(|slot| slot.lock().expect("replay slot lock").is_some())
    }

    /// How many units this log replays.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Total units in the plan this log was opened for.
    pub fn planned(&self) -> usize {
        self.prior.len()
    }

    /// Appends (and flushes) one completed unit.
    pub fn record(&self, index: usize, outcome: &UnitOutcome) {
        let mut guard = self.file.lock().expect("checkpoint file lock");
        let Some(file) = guard.as_mut() else { return };
        let record = wire::frame(&enc_unit(index, outcome));
        if file
            .seek(SeekFrom::End(0))
            .and_then(|_| file.write_all(&record))
            .and_then(|()| file.flush())
            .is_err()
        {
            self.telemetry.record_corruption("checkpoint append failed".into());
            *guard = None;
        } else {
            self.telemetry.record_persisted();
        }
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/append telemetry for this log.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_replay_across_opens() {
        let dir = tmp_dir("replay");
        let log = CampaignLog::open(&dir, 42, 5);
        assert_eq!(log.replayed(), 0);
        let empty =
            Module { globals: vec![], funcs: vec![], san: Default::default(), build: None };
        log.record(0, &UnitOutcome::Unsupported);
        log.record(3, &UnitOutcome::Done(empty, RunResult::Timeout));
        drop(log);

        let log = CampaignLog::open(&dir, 42, 5);
        assert_eq!(log.replayed(), 2);
        assert_eq!(log.take_replay(0), Some(UnitOutcome::Unsupported));
        assert!(matches!(log.take_replay(3), Some(UnitOutcome::Done(_, RunResult::Timeout))));
        assert_eq!(log.take_replay(1), None);
        // Taking consumes the slot (the resume memory bound).
        assert_eq!(log.take_replay(0), None);
        assert!(!log.has_replay(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_campaign_fingerprint_cold_starts() {
        let dir = tmp_dir("fp");
        let log = CampaignLog::open(&dir, 1, 3);
        log.record(0, &UnitOutcome::Unsupported);
        drop(log);
        let other = CampaignLog::open(&dir, 2, 3);
        assert_eq!(other.replayed(), 0, "a different campaign must not replay");
        assert!(other.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let log = CampaignLog::open(&dir, 7, 4);
        log.record(0, &UnitOutcome::Unsupported);
        log.record(1, &UnitOutcome::Unsupported);
        let path = log.path().to_path_buf();
        drop(log);
        // Tear the file mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let log = CampaignLog::open(&dir, 7, 4);
        assert_eq!(log.replayed(), 1, "only the fully flushed record survives");
        assert!(log.telemetry().tail_truncated());
        log.record(1, &UnitOutcome::Unsupported);
        log.record(2, &UnitOutcome::Unsupported);
        drop(log);
        let log = CampaignLog::open(&dir, 7, 4);
        assert_eq!(log.replayed(), 3);
        assert_eq!(log.take_replay(1), Some(UnitOutcome::Unsupported));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_take_and_record_share_the_handle() {
        // take_replay seeks into the middle of the file while record
        // appends at the end; the shared handle must keep both correct.
        let dir = tmp_dir("interleave");
        let log = CampaignLog::open(&dir, 9, 6);
        for i in 0..3 {
            log.record(i, &UnitOutcome::Unsupported);
        }
        drop(log);
        let log = CampaignLog::open(&dir, 9, 6);
        assert_eq!(log.take_replay(1), Some(UnitOutcome::Unsupported));
        log.record(4, &UnitOutcome::Unsupported);
        assert_eq!(log.take_replay(0), Some(UnitOutcome::Unsupported));
        log.record(5, &UnitOutcome::Unsupported);
        assert_eq!(log.take_replay(2), Some(UnitOutcome::Unsupported));
        drop(log);
        assert_eq!(CampaignLog::open(&dir, 9, 6).replayed(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
