//! The campaign checkpoint log: unit-granular persistence that makes a
//! killed campaign resumable with a bit-identical final report.
//!
//! A campaign's work decomposes into deterministically planned `(seed,
//! program, compiler, opt, sanitizer)` units (see `ubfuzz::executor`), so a
//! unit is fully identified by its **index** in that plan — provided both
//! invocations planned the same campaign. The log header therefore records
//! a fingerprint of the campaign configuration plus the planned unit count;
//! a mismatch on open means "different campaign" and degrades to a fresh
//! log, never to mixing two campaigns' results.
//!
//! Each completed unit is appended as one flushed record: `(index, outcome,
//! writer)` where the outcome is either *unsupported* (the compile was
//! rejected, mirroring the sequential loop's `continue`) or the serialized
//! `(Module, RunResult)` pair, and `writer` stamps which log wrote it
//! (0 = the primary, otherwise a lease/shard id). Replayed outcomes are
//! byte-faithful, and the campaign's canonical-order merge is a pure
//! function of unit outcomes — which is exactly why replay-from-log
//! reproduces the uninterrupted report bit-for-bit.
//!
//! **Sharding.** Daemon mode leases contiguous unit ranges to worker
//! *processes*. Giving every writer its own file keeps the single-writer
//! torn-tail recovery story intact: a worker opened via
//! [`CampaignLog::open_shard`] appends only to `campaign.s<id>.bin`, but
//! every open — primary or shard — *scans* the primary plus all shard
//! files, so each worker (and the daemon's final merge) sees the union of
//! completed units. A SIGKILLed worker's partially written shard file is
//! recovered like any other log: valid records replay, the torn tail is
//! ignored (and truncated once that shard id's file is reopened for
//! writing). Re-issued leases get fresh shard ids, so two writers never
//! share a file.
//!
//! **Memory discipline.** Opening *validates* every record with a single
//! reusable buffer (checksum plus a full trial decode, so foreign defect
//! ids or version drift surface at open, not mid-campaign) but retains
//! only each unit's `(file, offset, length)` span. [`CampaignLog::take_replay`]
//! reads and decodes one record on demand and clears its slot, so a
//! resumed months-scale campaign holds O(streaming window) outcomes in
//! memory, never O(log) — the same bound the streaming oracle merge gives
//! fresh compiles. Tail recovery is a `set_len` truncation to the trusted
//! byte count (no record rewriting), so open cost is one sequential scan.

use crate::frontier::{dec_cov_delta, enc_cov_delta};
use crate::modser::{dec_module, dec_run_result, enc_module, enc_run_result};
use crate::wire::{self, Dec, Enc, TableKind};
use crate::{relock_noting, StoreTelemetry};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use ubfuzz_simcc::{CovDelta, Module};
use ubfuzz_simvm::RunResult;

/// File name of the primary checkpoint log inside a store directory.
pub const CHECKPOINT_FILE: &str = "campaign.bin";

/// File name of one shard of the checkpoint log (daemon-mode lease).
pub fn shard_file(shard: u64) -> String {
    format!("campaign.s{shard}.bin")
}

/// One checkpointed unit outcome.
// The size skew vs the payload-less `Unsupported` marker is fine: outcomes
// are decoded one at a time during replay and consumed immediately, never
// held in bulk, so boxing the module would only add a pointer hop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutcome {
    /// The cell was unsupported or failed to compile (the campaign skips
    /// it; recorded so resume does not retry it either).
    Unsupported,
    /// The compiled module, its execution result, and the sanitizer
    /// coverage points the unit hit — the delta is logged so a resumed
    /// campaign rebuilds the coverage frontier bit-identically without
    /// recompiling replayed units. (Records written before the delta
    /// existed decode as an empty delta.)
    Done(Module, RunResult, CovDelta),
}

/// Byte span of one validated record's payload: (scanned file index,
/// payload offset, payload length).
type PayloadSpan = (usize, u64, u32);

/// An open checkpoint log for one campaign plan.
#[derive(Debug)]
pub struct CampaignLog {
    /// The file this log *writes* (the primary, or one shard).
    path: PathBuf,
    /// Writer stamp appended to every record (0 = primary).
    writer_id: u64,
    /// Validated payload spans from previous invocations, indexed by unit.
    /// Each slot is taken (and its record decoded) exactly once by
    /// [`CampaignLog::take_replay`].
    prior: Vec<Mutex<Option<PayloadSpan>>>,
    replayed: usize,
    /// Read handles for every scanned file, aligned with span file indices.
    readers: Mutex<Vec<Option<File>>>,
    /// Append handle on `path`; `None` when the directory is unwritable
    /// (the campaign then runs uncheckpointed).
    file: Mutex<Option<File>>,
    telemetry: StoreTelemetry,
}

fn enc_header(config_fp: u64, units: usize) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(config_fp);
    e.u64(units as u64);
    e.into_bytes()
}

fn enc_unit(index: usize, outcome: &UnitOutcome, writer: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(index as u64);
    match outcome {
        UnitOutcome::Unsupported => e.u8(0),
        UnitOutcome::Done(module, result, delta) => {
            // Tag 2 = module + result + coverage delta; tag 1 (pre-delta
            // records) stays decodable so an older log replays with an
            // empty delta instead of cold-starting.
            e.u8(2);
            enc_module(&mut e, module);
            enc_run_result(&mut e, result);
            enc_cov_delta(&mut e, delta);
        }
    }
    e.u64(writer);
    e.into_bytes()
}

fn dec_unit(payload: &[u8]) -> Result<(usize, UnitOutcome, u64), wire::WireError> {
    let mut d = Dec::new(payload);
    let index = d.usize()?;
    let outcome = match d.u8()? {
        0 => UnitOutcome::Unsupported,
        1 => UnitOutcome::Done(dec_module(&mut d)?, dec_run_result(&mut d)?, CovDelta::new()),
        2 => {
            let module = dec_module(&mut d)?;
            let result = dec_run_result(&mut d)?;
            let delta = dec_cov_delta(&mut d)?;
            UnitOutcome::Done(module, result, delta)
        }
        _ => return Err(wire::WireError::Corrupt("unit outcome")),
    };
    let writer = d.u64()?;
    d.finish()?;
    Ok((index, outcome, writer))
}

/// Result of scanning one log file.
struct FileScan {
    /// Byte length of the trusted file prefix.
    trusted: u64,
    /// Total file length at scan time.
    file_len: u64,
    /// The file needs a fresh rewrite (missing / bad header / foreign
    /// campaign).
    fresh: bool,
    /// Read handle kept for on-demand replay, when the file held anything.
    reader: Option<File>,
}

impl CampaignLog {
    /// Opens (or creates) the primary checkpoint log under `dir` for the
    /// campaign identified by `config_fp` with `units` planned units. Scans
    /// all shard files too, so a daemon merge replays every worker's
    /// completed units.
    ///
    /// Never fails: a missing, corrupt, version-skewed or *mismatched*
    /// (different campaign) file degrades to an empty log, with the reason
    /// recorded in telemetry. A torn tail (kill mid-append) is truncated
    /// back to the last fully flushed record. Opening the primary removes
    /// shard files that fail their own header check (foreign campaign
    /// leftovers); shard opens never delete anything.
    pub fn open(dir: impl AsRef<Path>, config_fp: u64, units: usize) -> CampaignLog {
        Self::open_as(dir.as_ref(), config_fp, units, None)
    }

    /// Opens the checkpoint log as lease shard `shard`: scans the primary
    /// and every shard file (so completed units replay instead of
    /// recomputing), but appends only to `campaign.s<shard>.bin`. Each
    /// lease must use a distinct shard id — single-writer-per-file is what
    /// keeps torn-tail recovery sound across SIGKILLed workers.
    pub fn open_shard(
        dir: impl AsRef<Path>,
        config_fp: u64,
        units: usize,
        shard: u64,
    ) -> CampaignLog {
        Self::open_as(dir.as_ref(), config_fp, units, Some(shard))
    }

    fn open_as(dir: &Path, config_fp: u64, units: usize, shard: Option<u64>) -> CampaignLog {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir);
        let primary = dir.join(CHECKPOINT_FILE);
        let target = match shard {
            None => primary.clone(),
            Some(id) => dir.join(shard_file(id)),
        };
        // Scan order: primary first, then shards by id — deterministic, so
        // identical opens build identical span tables.
        let mut files = vec![primary];
        files.extend(Self::shard_paths(dir));
        if !files.contains(&target) {
            files.push(target.clone());
        }
        let mut spans: Vec<Option<PayloadSpan>> = (0..units).map(|_| None).collect();
        let mut replayed = 0usize;
        let mut readers = Vec::with_capacity(files.len());
        let mut own = None;
        for (fi, path) in files.iter().enumerate() {
            let own_file = *path == target;
            let fs = Self::scan_file(
                path,
                config_fp,
                units,
                fi,
                &mut spans,
                &mut replayed,
                &telemetry,
                own_file,
            );
            if fs.fresh && !own_file && fi > 0 && shard.is_none() {
                // Primary open: a shard file that fails its own header
                // check belongs to a foreign campaign — sweep it.
                let _ = std::fs::remove_file(path);
            }
            if own_file {
                own = Some((fi, fs.trusted, fs.file_len, fs.fresh));
            }
            readers.push(fs.reader);
        }
        let (own_idx, trusted, file_len, fresh) =
            own.expect("write target is always scanned");
        let file = Self::recover(&target, config_fp, units, trusted, file_len, fresh, &telemetry);
        if fresh {
            // A fresh rewrite replaced the inode; drop the stale handle.
            readers[own_idx] = None;
        }
        telemetry.set_loaded(replayed);
        CampaignLog {
            path: target,
            writer_id: shard.unwrap_or(0),
            prior: spans.into_iter().map(Mutex::new).collect(),
            replayed,
            readers: Mutex::new(readers),
            file: Mutex::new(file),
            telemetry,
        }
    }

    /// Existing shard files under `dir`, sorted by shard id.
    fn shard_paths(dir: &Path) -> Vec<PathBuf> {
        let mut ids: Vec<u64> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(id) = name
                    .strip_prefix("campaign.s")
                    .and_then(|rest| rest.strip_suffix(".bin"))
                    .and_then(|id| id.parse::<u64>().ok())
                {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|id| dir.join(shard_file(id))).collect()
    }

    /// Sequentially validates one log file with one reusable record buffer,
    /// folding its unit spans into the shared table — open-time memory is
    /// O(largest record). `own` marks the file this open will write (its
    /// torn tail gets truncated; foreign tails are merely distrusted).
    #[allow(clippy::too_many_arguments)]
    fn scan_file(
        path: &Path,
        config_fp: u64,
        units: usize,
        file_idx: usize,
        spans: &mut [Option<PayloadSpan>],
        replayed: &mut usize,
        telemetry: &StoreTelemetry,
        own: bool,
    ) -> FileScan {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("checkpoint");
        let mut out = FileScan { trusted: 0, file_len: 0, fresh: true, reader: None };
        let Ok(mut file) = File::open(path) else { return out };
        out.file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
        let mut header = [0u8; wire::HEADER_LEN];
        if file.read_exact(&mut header).is_err() {
            if out.file_len > 0 && own {
                telemetry.record_corruption(format!("{name} header: truncated"));
                telemetry.record_cold_start();
            }
            return out;
        }
        if let Err(e) = wire::check_header(&header, TableKind::Checkpoint) {
            if own {
                telemetry.record_corruption(format!("{name} header: {e}"));
                telemetry.record_cold_start();
            }
            return out;
        }
        let mut pos = wire::HEADER_LEN as u64;
        let mut buf = Vec::new();
        let mut first = true;
        // A torn/corrupt tail ends the scan: trust what came before it.
        while let Some((payload_off, payload_len)) =
            wire::read_record_at(&mut file, out.file_len, pos, &mut buf)
        {
            if first {
                // The header record pins the campaign identity.
                let mut d = Dec::new(&buf);
                let ok = d.u64() == Ok(config_fp)
                    && d.u64() == Ok(units as u64)
                    && d.finish().is_ok();
                if !ok {
                    if own {
                        telemetry.record_cold_start();
                    }
                    return out; // foreign campaign: contributes nothing
                }
                first = false;
            } else {
                match dec_unit(&buf) {
                    Ok((index, _, _)) if index < units => {
                        let slot = &mut spans[index];
                        if slot.is_none() {
                            *replayed += 1;
                        }
                        *slot = Some((file_idx, payload_off, payload_len));
                    }
                    Ok(_) => {
                        telemetry.record_corruption(format!(
                            "{name}: unit index out of plan"
                        ));
                        break;
                    }
                    Err(e) => {
                        telemetry.record_corruption(format!("{name} record: {e}"));
                        break;
                    }
                }
            }
            pos = payload_off + payload_len as u64 + 8;
            out.trusted = pos;
        }
        if first {
            // No valid header record at all.
            if own {
                telemetry.record_cold_start();
            }
            return out;
        }
        out.fresh = false;
        if out.trusted < out.file_len {
            if own {
                telemetry.record_tail_truncated();
            } else {
                telemetry.record_corruption(format!("{name}: untrusted tail ignored"));
            }
        }
        out.reader = Some(file);
        out
    }

    /// Puts the write target into an appendable state: a fresh header for
    /// cold starts, or a `set_len` truncation of any untrusted tail.
    fn recover(
        path: &Path,
        config_fp: u64,
        units: usize,
        trusted: u64,
        file_len: u64,
        fresh: bool,
        telemetry: &StoreTelemetry,
    ) -> Option<File> {
        if fresh
            && !wire::rewrite_file(path, TableKind::Checkpoint, &[enc_header(config_fp, units)])
        {
            telemetry.record_corruption("checkpoint directory unwritable".into());
            telemetry.record_cold_start();
            return None;
        }
        // O_APPEND, not seek-to-end: even though each file has exactly one
        // *intended* writer, a mis-deployed second process appending to the
        // same file then tears at record granularity instead of silently
        // interleaving bytes mid-record.
        match OpenOptions::new().read(true).append(true).open(path) {
            Ok(file) => {
                if !fresh && trusted < file_len {
                    let _ = file.set_len(trusted);
                }
                Some(file)
            }
            Err(_) => {
                telemetry.record_corruption(
                    "checkpoint not writable; checkpointing disabled".into(),
                );
                telemetry.record_cold_start();
                None
            }
        }
    }

    /// Takes unit `index`'s replayed outcome, reading and decoding its
    /// record on demand. Consuming rather than preloading keeps resumed
    /// campaigns' memory proportional to the in-flight streaming window.
    pub fn take_replay(&self, index: usize) -> Option<UnitOutcome> {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreReplay, index as u64);
        let (fi, offset, len) =
            relock_noting(self.prior.get(index)?, &self.telemetry, "replay slot lock")
                .take()?;
        let mut readers = relock_noting(&self.readers, &self.telemetry, "checkpoint reader lock");
        let file = readers.get_mut(fi)?.as_mut()?;
        let mut buf = vec![0u8; len as usize];
        if file.seek(SeekFrom::Start(offset)).is_err() || file.read_exact(&mut buf).is_err() {
            // Disk trouble after a clean open: recompute instead.
            self.telemetry.record_corruption("checkpoint replay read failed".into());
            return None;
        }
        drop(readers);
        match dec_unit(&buf) {
            Ok((i, outcome, _)) if i == index => Some(outcome),
            _ => {
                self.telemetry.record_corruption("checkpoint replay decode failed".into());
                None
            }
        }
    }

    /// Whether unit `index` has a not-yet-taken replayed outcome.
    pub fn has_replay(&self, index: usize) -> bool {
        self.prior.get(index).is_some_and(|slot| {
            relock_noting(slot, &self.telemetry, "replay slot lock").is_some()
        })
    }

    /// How many units this log replays.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Total units in the plan this log was opened for.
    pub fn planned(&self) -> usize {
        self.prior.len()
    }

    /// The writer stamp this log appends (0 = primary, else the shard id).
    pub fn writer_id(&self) -> u64 {
        self.writer_id
    }

    /// Appends (and flushes) one completed unit.
    pub fn record(&self, index: usize, outcome: &UnitOutcome) {
        let mut guard = relock_noting(&self.file, &self.telemetry, "checkpoint file lock");
        let Some(file) = guard.as_mut() else { return };
        let record = wire::frame(&enc_unit(index, outcome, self.writer_id));
        // The handle is O_APPEND: one write_all per record, no seek.
        if file.write_all(&record).and_then(|()| file.flush()).is_err() {
            self.telemetry.record_corruption("checkpoint append failed".into());
            *guard = None;
        } else {
            self.telemetry.record_persisted();
        }
    }

    /// The file this log writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/append telemetry for this log.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_replay_across_opens() {
        let dir = tmp_dir("replay");
        let log = CampaignLog::open(&dir, 42, 5);
        assert_eq!(log.replayed(), 0);
        let empty =
            Module { globals: vec![], funcs: vec![], san: Default::default(), build: None };
        let mut delta = ubfuzz_simcc::CovDelta::new();
        delta.insert((ubfuzz_simcc::Vendor::Gcc, "asan.rs", "run"));
        log.record(0, &UnitOutcome::Unsupported);
        log.record(3, &UnitOutcome::Done(empty, RunResult::Timeout, delta.clone()));
        drop(log);

        let log = CampaignLog::open(&dir, 42, 5);
        assert_eq!(log.replayed(), 2);
        assert_eq!(log.take_replay(0), Some(UnitOutcome::Unsupported));
        match log.take_replay(3) {
            Some(UnitOutcome::Done(_, RunResult::Timeout, d)) => {
                assert_eq!(d, delta, "coverage delta replays byte-faithfully")
            }
            other => panic!("unexpected replay: {other:?}"),
        }
        assert_eq!(log.take_replay(1), None);
        // Taking consumes the slot (the resume memory bound).
        assert_eq!(log.take_replay(0), None);
        assert!(!log.has_replay(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_campaign_fingerprint_cold_starts() {
        let dir = tmp_dir("fp");
        let log = CampaignLog::open(&dir, 1, 3);
        log.record(0, &UnitOutcome::Unsupported);
        drop(log);
        let other = CampaignLog::open(&dir, 2, 3);
        assert_eq!(other.replayed(), 0, "a different campaign must not replay");
        assert!(other.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let log = CampaignLog::open(&dir, 7, 4);
        log.record(0, &UnitOutcome::Unsupported);
        log.record(1, &UnitOutcome::Unsupported);
        let path = log.path().to_path_buf();
        drop(log);
        // Tear the file mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let log = CampaignLog::open(&dir, 7, 4);
        assert_eq!(log.replayed(), 1, "only the fully flushed record survives");
        assert!(log.telemetry().tail_truncated());
        log.record(1, &UnitOutcome::Unsupported);
        log.record(2, &UnitOutcome::Unsupported);
        drop(log);
        let log = CampaignLog::open(&dir, 7, 4);
        assert_eq!(log.replayed(), 3);
        assert_eq!(log.take_replay(1), Some(UnitOutcome::Unsupported));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_take_and_record_share_the_handle() {
        // take_replay seeks into the middle of the file while record
        // appends at the end; the shared handle must keep both correct.
        let dir = tmp_dir("interleave");
        let log = CampaignLog::open(&dir, 9, 6);
        for i in 0..3 {
            log.record(i, &UnitOutcome::Unsupported);
        }
        drop(log);
        let log = CampaignLog::open(&dir, 9, 6);
        assert_eq!(log.take_replay(1), Some(UnitOutcome::Unsupported));
        log.record(4, &UnitOutcome::Unsupported);
        assert_eq!(log.take_replay(0), Some(UnitOutcome::Unsupported));
        log.record(5, &UnitOutcome::Unsupported);
        assert_eq!(log.take_replay(2), Some(UnitOutcome::Unsupported));
        drop(log);
        assert_eq!(CampaignLog::open(&dir, 9, 6).replayed(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_records_union_into_every_open() {
        let dir = tmp_dir("shards");
        // The daemon creates the primary (plan addressing), workers write
        // disjoint ranges to their own shards.
        let primary = CampaignLog::open(&dir, 11, 6);
        drop(primary);
        let a = CampaignLog::open_shard(&dir, 11, 6, 1);
        assert_eq!(a.writer_id(), 1);
        a.record(0, &UnitOutcome::Unsupported);
        a.record(1, &UnitOutcome::Unsupported);
        drop(a);
        let b = CampaignLog::open_shard(&dir, 11, 6, 2);
        // A later-opened shard replays earlier shards' completed units.
        assert_eq!(b.replayed(), 2);
        assert!(b.has_replay(0) && b.has_replay(1));
        b.record(4, &UnitOutcome::Unsupported);
        drop(b);
        // The primary merge sees the union of all shards.
        let merged = CampaignLog::open(&dir, 11, 6);
        assert_eq!(merged.replayed(), 3);
        assert_eq!(merged.take_replay(0), Some(UnitOutcome::Unsupported));
        assert_eq!(merged.take_replay(4), Some(UnitOutcome::Unsupported));
        assert_eq!(merged.take_replay(2), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_shard_recovers_and_reissued_lease_skips_done_units() {
        let dir = tmp_dir("reissue");
        drop(CampaignLog::open(&dir, 13, 4));
        let w = CampaignLog::open_shard(&dir, 13, 4, 1);
        w.record(0, &UnitOutcome::Unsupported);
        w.record(1, &UnitOutcome::Unsupported);
        let shard_path = w.path().to_path_buf();
        drop(w);
        // SIGKILL mid-append: tear the shard file inside the last record.
        let bytes = std::fs::read(&shard_path).unwrap();
        std::fs::write(&shard_path, &bytes[..bytes.len() - 3]).unwrap();
        // The re-issued lease (fresh shard id) replays the intact record
        // and recomputes the torn one; the dead shard's file is untouched.
        let w2 = CampaignLog::open_shard(&dir, 13, 4, 2);
        assert_eq!(w2.replayed(), 1);
        assert!(w2.has_replay(0));
        assert!(!w2.has_replay(1), "torn record is recomputed, not trusted");
        w2.record(1, &UnitOutcome::Unsupported);
        drop(w2);
        assert_eq!(CampaignLog::open(&dir, 13, 4).replayed(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primary_cold_start_sweeps_foreign_shards() {
        let dir = tmp_dir("sweep");
        drop(CampaignLog::open(&dir, 1, 3));
        let s = CampaignLog::open_shard(&dir, 1, 3, 7);
        s.record(0, &UnitOutcome::Unsupported);
        let shard_path = s.path().to_path_buf();
        drop(s);
        // A different campaign cold-starts the primary and removes the
        // now-foreign shard file.
        let other = CampaignLog::open(&dir, 2, 3);
        assert_eq!(other.replayed(), 0);
        assert!(!shard_path.exists(), "foreign shard swept on primary cold start");
        drop(other);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
