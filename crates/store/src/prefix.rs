//! The persistent prefix cache: `(program fingerprint, vendor, version,
//! opt) → serialized post-early-opts Module`, amortizing staged compilation
//! across *invocations*.
//!
//! The file is an append-only record log (see [`crate::wire`]): opening
//! streams it with one reusable buffer, validates the header and every
//! record's checksum, truncates any torn/corrupt tail back to the longest
//! valid prefix (via `set_len`, no rewriting), and hands the surviving
//! entries to
//! [`CompileSession::with_backing`](ubfuzz_simcc::session::CompileSession).
//! Every in-memory miss is appended and flushed immediately, so a kill at
//! any instant loses at most the record being written — which the next open
//! truncates away.
//!
//! **Memory discipline.** A store grows without bound across invocations,
//! so [`PrefixStore::open_budgeted`] decodes full modules only up to the
//! session's preload budget; beyond it, records contribute their key to
//! the dedup set (checksum-validated, key-decoded, module skipped) and are
//! dropped — open-time memory is O(budget + largest record), not O(store).

use crate::modser::{dec_compiler, dec_module, dec_opt, enc_compiler, enc_module, enc_opt};
use crate::wire::{self, Dec, Enc, TableKind};
use crate::{relock_noting, CompactStats, LogState, StoreTelemetry};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use ubfuzz_simcc::session::{PersistedPrefix, PrefixBacking, PrefixEntryRef};
use ubfuzz_simcc::target::{CompilerId, OptLevel};

/// File name of the prefix table inside a store directory.
pub const PREFIX_FILE: &str = "prefix.bin";

/// A resident-on-disk key.
type PrefixKey = (u64, CompilerId, OptLevel);

#[derive(Debug)]
struct PrefixInner {
    /// Entries loaded at open, handed out once via [`PrefixBacking::load`].
    loaded: Option<Vec<PersistedPrefix>>,
    /// The append log: file handle, resident keys, recency, size.
    log: LogState<PrefixKey>,
}

/// The on-disk prefix cache. Open never fails: unreadable, version-skewed
/// or corrupt files degrade to a cold start recorded in [`StoreTelemetry`].
#[derive(Debug)]
pub struct PrefixStore {
    path: PathBuf,
    inner: Mutex<PrefixInner>,
    telemetry: StoreTelemetry,
}

fn enc_entry(entry: PrefixEntryRef<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(entry.hash);
    enc_compiler(&mut e, entry.compiler);
    enc_opt(&mut e, entry.opt);
    e.str(entry.source);
    enc_module(&mut e, entry.module);
    e.into_bytes()
}

fn dec_entry(payload: &[u8]) -> Result<PersistedPrefix, wire::WireError> {
    let mut d = Dec::new(payload);
    let entry = PersistedPrefix {
        hash: d.u64()?,
        compiler: dec_compiler(&mut d)?,
        opt: dec_opt(&mut d)?,
        source: d.str()?,
        module: dec_module(&mut d)?,
    };
    d.finish()?;
    Ok(entry)
}

/// Decodes only the dedup key (the payload's fixed-position head), skipping
/// the expensive module decode — what beyond-budget records pay at open.
fn dec_key(payload: &[u8]) -> Result<PrefixKey, wire::WireError> {
    let mut d = Dec::new(payload);
    Ok((d.u64()?, dec_compiler(&mut d)?, dec_opt(&mut d)?))
}

impl PrefixStore {
    /// Opens (or creates) the prefix table under `dir`, decoding every
    /// entry. Prefer [`PrefixStore::open_budgeted`] when the consuming
    /// session's capacity is known.
    pub fn open(dir: impl AsRef<Path>) -> PrefixStore {
        PrefixStore::open_budgeted(dir, usize::MAX)
    }

    /// Opens the prefix table, fully decoding at most `budget` entries (the
    /// session's preload budget — see `CompileSession::preload_budget`);
    /// the rest are checksum-validated and key-indexed only.
    pub fn open_budgeted(dir: impl AsRef<Path>, budget: usize) -> PrefixStore {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let path = dir.as_ref().join(PREFIX_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let mut loaded = Vec::new();
        let mut resident = std::collections::HashSet::new();
        let mut recency = std::collections::HashMap::new();
        let mut clock = 0u64;
        let mut fresh = true;
        let mut trusted = wire::HEADER_LEN as u64;
        let mut file_len = 0u64;
        if let Ok(mut file) = File::open(&path) {
            file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
            let mut header = [0u8; wire::HEADER_LEN];
            let header_ok = {
                use std::io::Read as _;
                file.read_exact(&mut header).is_ok()
            };
            if !header_ok {
                if file_len > 0 {
                    telemetry.record_corruption("prefix header: truncated".into());
                    telemetry.record_cold_start();
                }
            } else if let Err(e) = wire::check_header(&header, TableKind::Prefix) {
                telemetry.record_corruption(format!("prefix header: {e}"));
                telemetry.record_cold_start();
            } else {
                fresh = false;
                let mut pos = wire::HEADER_LEN as u64;
                let mut buf = Vec::new();
                // A torn/corrupt tail ends the scan: trust what came first.
                while let Some((payload_off, payload_len)) =
                    wire::read_record_at(&mut file, file_len, pos, &mut buf)
                {
                    // Within the budget, decode the full entry; beyond it
                    // the session would drop the entry anyway, so decode
                    // only its dedup key. A checksum-valid record that
                    // fails either decode means the *writer* disagreed
                    // with us (e.g. a foreign defect id) — stop trusting
                    // the rest.
                    let key = if loaded.len() < budget {
                        match dec_entry(&buf) {
                            Ok(entry) => {
                                let key = (entry.hash, entry.compiler, entry.opt);
                                loaded.push(entry);
                                key
                            }
                            Err(e) => {
                                telemetry.record_corruption(format!("prefix record: {e}"));
                                break;
                            }
                        }
                    } else {
                        match dec_key(&buf) {
                            Ok(key) => key,
                            Err(e) => {
                                telemetry.record_corruption(format!("prefix record: {e}"));
                                break;
                            }
                        }
                    };
                    resident.insert(key);
                    // File-order sequence: a store compacted before any hit
                    // lands deterministically keeps its newest tail.
                    clock += 1;
                    recency.insert(key, clock);
                    pos = payload_off + payload_len as u64 + 8;
                    trusted = pos;
                }
                if trusted < file_len {
                    telemetry.record_tail_truncated();
                }
            }
        }
        let file = Self::recover(&path, fresh, trusted, file_len, &telemetry);
        telemetry.set_loaded(loaded.len());
        let bytes = if file.is_some() {
            if fresh { wire::HEADER_LEN as u64 } else { trusted }
        } else {
            0
        };
        PrefixStore {
            path,
            inner: Mutex::new(PrefixInner {
                loaded: Some(loaded),
                log: LogState { file, resident, recency, clock, bytes },
            }),
            telemetry,
        }
    }

    /// Current on-disk size of this table in bytes, header included.
    pub fn size_bytes(&self) -> u64 {
        relock_noting(&self.inner, &self.telemetry, "prefix store lock").log.bytes
    }

    /// Compacts the table to at most `budget` bytes, evicting the
    /// least-recently-hit entries through the shared temp-file + rename
    /// rewrite. Evicted keys leave the resident set, so a later recompute
    /// re-persists them.
    pub fn compact(&self, budget: u64) -> CompactStats {
        let mut inner = relock_noting(&self.inner, &self.telemetry, "prefix store lock");
        crate::compact_log(
            &self.path,
            TableKind::Prefix,
            &mut inner.log,
            budget,
            dec_key,
            &self.telemetry,
        )
    }

    /// Puts the file into an appendable state: a fresh header for missing
    /// or unusable files, or a `set_len` truncation of any untrusted tail.
    fn recover(
        path: &Path,
        fresh: bool,
        trusted: u64,
        file_len: u64,
        telemetry: &StoreTelemetry,
    ) -> Option<File> {
        if fresh && !wire::rewrite_file(path, TableKind::Prefix, &[]) {
            telemetry.record_corruption("prefix store directory unwritable".into());
            telemetry.record_cold_start();
            return None;
        }
        // O_APPEND, not seek-to-end: with concurrent opens of one store
        // directory (daemon workers), every append lands atomically at the
        // current end of file instead of at a position another process may
        // have advanced past.
        match OpenOptions::new().read(true).append(true).open(path) {
            Ok(file) => {
                if !fresh && trusted < file_len {
                    let _ = file.set_len(trusted);
                }
                Some(file)
            }
            Err(_) => {
                // Read-only store: loaded entries still serve, but nothing
                // new persists — flag it so `cold=...` telemetry consumers
                // see the degradation instead of a silent no-op.
                telemetry
                    .record_corruption("prefix store not writable; persistence disabled".into());
                telemetry.record_cold_start();
                None
            }
        }
    }

    /// The file backing this table.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/flush telemetry for this table.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

impl PrefixBacking for PrefixStore {
    fn load(&self) -> Vec<PersistedPrefix> {
        // A worker that panicked mid-compile poisons this lock; the store's
        // contract is to degrade, not to cascade the panic into every
        // subsequent compile.
        relock_noting(&self.inner, &self.telemetry, "prefix store lock")
            .loaded
            .take()
            .unwrap_or_default()
    }


    fn persist(&self, entry: PrefixEntryRef<'_>) {
        let mut inner = relock_noting(&self.inner, &self.telemetry, "prefix store lock");
        let key = (entry.hash, entry.compiler, entry.opt);
        if inner.log.resident.contains(&key) {
            return; // already on disk (epoch-evicted recomputation)
        }
        let payload = enc_entry(entry);
        inner.log.append(key, &payload, &self.telemetry, "prefix");
    }

    fn note_hit(&self, hash: u64, compiler: CompilerId, opt: OptLevel) {
        relock_noting(&self.inner, &self.telemetry, "prefix store lock")
            .log
            .note_hit((hash, compiler, opt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::CompileConfig;
    use ubfuzz_simcc::session::CompileSession;
    use ubfuzz_simcc::target::Vendor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_invocation_is_fully_warm() {
        let dir = tmp_dir("warm");
        let reg = DefectRegistry::full();
        let p = parse("int main(void) { return 3; }").unwrap();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &reg);

        let first = CompileSession::with_backing(64, Arc::new(PrefixStore::open(&dir)));
        let out = first.compile(&p, &cfg).unwrap();
        assert_eq!(first.stats().misses, 1);
        drop(first);

        let store = Arc::new(PrefixStore::open(&dir));
        assert_eq!(store.telemetry().loaded(), 1);
        let second = CompileSession::with_backing(64, store);
        assert_eq!(second.preloaded(), 1);
        assert_eq!(second.compile(&p, &cfg).unwrap(), out);
        assert_eq!(second.stats().misses, 0, "warm store serves the prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_open_skips_module_decode_but_keeps_dedup_keys() {
        let dir = tmp_dir("budget");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, None, &reg);
        let programs: Vec<_> = (0..4)
            .map(|i| parse(&format!("int main(void) {{ return {i}; }}")).unwrap())
            .collect();
        let warm = CompileSession::with_backing(64, Arc::new(PrefixStore::open(&dir)));
        for p in &programs {
            warm.compile(p, &cfg).unwrap();
        }
        drop(warm);

        let store = Arc::new(PrefixStore::open_budgeted(&dir, 2));
        assert_eq!(store.telemetry().loaded(), 2, "budget caps decoded entries");
        let persisted_before = store.telemetry().persisted();
        let session = CompileSession::with_backing(64, store.clone());
        assert_eq!(session.preloaded(), 2);
        // Re-missing a beyond-budget program must not re-append it: its key
        // stayed in the resident set.
        for p in &programs {
            session.compile(p, &cfg).unwrap();
        }
        assert_eq!(
            store.telemetry().persisted(),
            persisted_before,
            "beyond-budget keys still dedup appends"
        );
        // And the file still holds exactly the 4 original entries.
        drop(session);
        assert_eq!(PrefixStore::open(&dir).telemetry().loaded(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &reg);
        let session = CompileSession::with_backing(16, Arc::new(PrefixStore::open(&dir)));
        session.compile(&parse("int main(void) { return 1; }").unwrap(), &cfg).unwrap();
        session.compile(&parse("int main(void) { return 2; }").unwrap(), &cfg).unwrap();
        drop(session);
        let path = dir.join(PREFIX_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let store = PrefixStore::open(&dir);
        assert_eq!(store.telemetry().loaded(), 1, "torn record dropped");
        assert!(store.telemetry().tail_truncated());
        // The truncated file is appendable and consistent on reopen.
        let session = CompileSession::with_backing(16, Arc::new(store));
        session.compile(&parse("int main(void) { return 3; }").unwrap(), &cfg).unwrap();
        drop(session);
        assert_eq!(PrefixStore::open(&dir).telemetry().loaded(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_recently_hit_entries_and_evicted_keys_remiss() {
        let dir = tmp_dir("compact");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, None, &reg);
        let programs: Vec<_> = (0..4)
            .map(|i| parse(&format!("int main(void) {{ return {i}; }}")).unwrap())
            .collect();
        let store = Arc::new(PrefixStore::open(&dir));
        let session = CompileSession::with_backing(64, store.clone());
        let outs: Vec<_> = programs.iter().map(|p| session.compile(p, &cfg).unwrap()).collect();
        // Hit the oldest entry so recency, not file order, decides survival.
        session.compile(&programs[0], &cfg).unwrap();
        let full = store.size_bytes();
        let header = wire::HEADER_LEN as u64;
        let budget = (full - header) / 2 + header;
        let stats = store.compact(budget);
        assert_eq!(stats.before_bytes, full);
        assert!(stats.after_bytes <= budget, "{stats:?} vs budget {budget}");
        assert_eq!((stats.kept, stats.evicted), (2, 2), "{stats:?}");
        assert_eq!(store.size_bytes(), stats.after_bytes);
        drop(session);
        drop(store);

        // Reopen: the hit entry (0) and the newest unhit entry (3) survive
        // and re-hit; the evicted keys re-miss, byte-identically, and
        // re-persist (they left the resident set).
        let store = Arc::new(PrefixStore::open(&dir));
        assert_eq!(store.telemetry().loaded(), 2);
        let session = CompileSession::with_backing(64, store.clone());
        for (p, out) in programs.iter().zip(&outs) {
            assert_eq!(&session.compile(p, &cfg).unwrap(), out, "identical after compaction");
        }
        assert_eq!(session.stats().hits, 2, "resident keys re-hit");
        assert_eq!(session.stats().misses, 2, "evicted keys re-miss");
        drop(session);
        assert_eq!(PrefixStore::open(&dir).telemetry().loaded(), 4, "evicted keys re-persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn standalone_compaction_without_hits_keeps_the_newest_tail() {
        let dir = tmp_dir("compact-tail");
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O1, None, &reg);
        let programs: Vec<_> = (0..3)
            .map(|i| parse(&format!("int main(void) {{ return {i}; }}")).unwrap())
            .collect();
        let warm = CompileSession::with_backing(64, Arc::new(PrefixStore::open(&dir)));
        for p in &programs {
            warm.compile(p, &cfg).unwrap();
        }
        drop(warm);

        // A fresh open with no hits: file order is the only recency signal,
        // so compaction keeps the newest records — deterministically.
        let store = PrefixStore::open_budgeted(&dir, 0);
        let full = store.size_bytes();
        let header = wire::HEADER_LEN as u64;
        let stats = store.compact((full - header) / 3 + header);
        assert_eq!((stats.kept, stats.evicted), (1, 2), "{stats:?}");
        drop(store);
        let survivors = Arc::new(PrefixStore::open(&dir));
        assert_eq!(survivors.telemetry().loaded(), 1);
        let session = CompileSession::with_backing(64, survivors);
        session.compile(&programs[2], &cfg).unwrap();
        assert_eq!(session.stats().hits, 1, "newest record survives");
        session.compile(&programs[0], &cfg).unwrap();
        assert_eq!(session.stats().misses, 1, "older records evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_lock_recovers_and_is_recorded() {
        let dir = tmp_dir("poison");
        let store = Arc::new(PrefixStore::open(&dir));
        let poisoner = store.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker panicked while holding the store lock");
        })
        .join()
        .unwrap_err();
        // The store must keep serving (degrade, never cascade the panic)...
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &reg);
        let session = CompileSession::with_backing(16, store.clone());
        session.compile(&parse("int main(void) { return 7; }").unwrap(), &cfg).unwrap();
        assert_eq!(store.telemetry().persisted(), 1);
        // ...and the recovery must be observable.
        assert!(
            store.telemetry().events().iter().any(|e| e.contains("poisoned lock recovered")),
            "{:?}",
            store.telemetry().events()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_cold_start_not_an_error() {
        let dir = tmp_dir("fresh");
        let store = PrefixStore::open(&dir);
        assert_eq!(store.telemetry().loaded(), 0);
        assert!(!store.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
