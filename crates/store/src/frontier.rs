//! The campaign coverage frontier: which `(vendor, file, point)` sanitizer
//! coverage points any prior unit has hit, persisted so a warm campaign
//! resumes steering where the last one left off.
//!
//! The frontier is the feedback substrate of guided generation
//! (`ubfuzz-guide`): a campaign loads it at start, derives its generation
//! plan from `(campaign seed, frontier state)`, absorbs every unit's
//! [`CovDelta`] in canonical consumer order, and rewrites the file on
//! successful completion. Like the corpus, the table is small (bounded by
//! the static `cov::POINTS` registry times two vendors) and rewritten
//! wholesale through the shared temp-file + rename protocol — a kill
//! mid-save leaves the previous frontier intact.
//!
//! Decoded points are re-interned against `cov::POINTS` via
//! [`ubfuzz_simcc::cov::lookup`]; a pair the registry does not know is
//! corruption (the scan stops there, trusting the valid prefix), and a
//! missing/corrupt/version-skewed file is a cold start with telemetry —
//! never an error, same contract as every other table.

use crate::wire::{self, Dec, Enc, TableKind};
use crate::StoreTelemetry;
use std::path::{Path, PathBuf};
use ubfuzz_simcc::cov::{self, CovDelta, CovPoint};
#[cfg(test)]
use ubfuzz_simcc::Vendor;

/// File name of the frontier table inside a store directory.
pub const FRONTIER_FILE: &str = "frontier.bin";

/// Encodes one coverage point (shared with the checkpoint log's per-unit
/// delta records).
pub(crate) fn enc_cov_point(e: &mut Enc, (vendor, file, point): CovPoint) {
    crate::modser::enc_vendor(e, vendor);
    e.vstr(file);
    e.vstr(point);
}

/// Decodes one coverage point, re-interning `(file, point)` against the
/// static registry — an unknown pair is corruption, not a new point.
pub(crate) fn dec_cov_point(d: &mut Dec<'_>) -> Result<CovPoint, wire::WireError> {
    let vendor = crate::modser::dec_vendor(d)?;
    let file = d.vstr()?;
    let point = d.vstr()?;
    let (file, point) =
        cov::lookup(&file, &point).ok_or(wire::WireError::Corrupt("unknown coverage point"))?;
    Ok((vendor, file, point))
}

/// Encodes a whole delta as one length-prefixed point list.
pub(crate) fn enc_cov_delta(e: &mut Enc, delta: &CovDelta) {
    e.vusize(delta.len());
    for point in delta.iter() {
        enc_cov_point(e, point);
    }
}

/// Decodes a delta encoded by [`enc_cov_delta`].
pub(crate) fn dec_cov_delta(d: &mut Dec<'_>) -> Result<CovDelta, wire::WireError> {
    let n = d.vcount(3)?;
    let mut delta = CovDelta::new();
    for _ in 0..n {
        delta.insert(dec_cov_point(d)?);
    }
    Ok(delta)
}

/// The on-disk coverage frontier. Open never fails; corrupt or
/// version-skewed files degrade to an empty frontier with telemetry.
#[derive(Debug)]
pub struct FrontierStore {
    path: PathBuf,
    covered: CovDelta,
    telemetry: StoreTelemetry,
}

impl FrontierStore {
    /// Opens (or creates) the frontier under `dir`.
    pub fn open(dir: impl AsRef<Path>) -> FrontierStore {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let path = dir.as_ref().join(FRONTIER_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let mut covered = CovDelta::new();
        match std::fs::read(&path) {
            Ok(bytes) if !bytes.is_empty() => {
                match wire::check_header(&bytes, TableKind::Frontier) {
                    Ok(()) => {
                        let (records, _) = wire::read_records(&bytes[wire::HEADER_LEN..]);
                        let mut trusted = wire::HEADER_LEN;
                        for payload in records {
                            let mut d = Dec::new(payload);
                            match dec_cov_point(&mut d).and_then(|p| d.finish().map(|()| p)) {
                                Ok(point) => {
                                    covered.insert(point);
                                    trusted += wire::record_span(payload.len());
                                }
                                Err(e) => {
                                    telemetry
                                        .record_corruption(format!("frontier record: {e}"));
                                    break;
                                }
                            }
                        }
                        if trusted < bytes.len() {
                            telemetry.record_tail_truncated();
                            telemetry.record_corruption(format!(
                                "frontier tail dropped ({} of {} bytes trusted)",
                                trusted,
                                bytes.len()
                            ));
                        }
                    }
                    Err(e) => {
                        telemetry.record_corruption(format!("frontier header: {e}"));
                        telemetry.record_cold_start();
                    }
                }
            }
            Ok(_) => {}
            Err(_) => {}
        }
        telemetry.set_loaded(covered.len());
        FrontierStore { path, covered, telemetry }
    }

    /// Replaces the persisted frontier with `covered` (the campaign's final
    /// union of loaded state and per-unit deltas) and rewrites the file.
    pub fn save(&mut self, covered: &CovDelta) {
        self.covered = covered.clone();
        let payloads: Vec<Vec<u8>> = self
            .covered
            .iter()
            .map(|point| {
                let mut e = Enc::new();
                enc_cov_point(&mut e, point);
                e.into_bytes()
            })
            .collect();
        if wire::rewrite_file(&self.path, TableKind::Frontier, &payloads) {
            self.telemetry.record_persisted();
        } else {
            self.telemetry.record_corruption("frontier directory unwritable".into());
        }
    }

    /// The loaded (or last-saved) covered point set, in canonical order.
    pub fn covered(&self) -> &CovDelta {
        &self.covered
    }

    /// Number of covered points.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether the frontier is empty (cold).
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// On-disk size of `frontier.bin` in bytes (0 when no file exists
    /// yet). The frontier is rewritten wholesale rather than appended, so
    /// the file length IS the table size — no log accounting to consult.
    /// Feeds the `[store] size:` line and the compaction budget split,
    /// which must account every table in the directory.
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// The file backing this frontier.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/save telemetry for this frontier.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-frontier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> CovDelta {
        let mut d = CovDelta::new();
        d.insert((Vendor::Gcc, "asan.rs", "run"));
        d.insert((Vendor::Gcc, "ubsan.rs", "arith_check"));
        d.insert((Vendor::Llvm, "msan.rs", "run"));
        d
    }

    #[test]
    fn frontier_round_trips_across_opens() {
        let dir = tmp_dir("roundtrip");
        let mut store = FrontierStore::open(&dir);
        assert!(store.is_empty());
        assert_eq!(store.size_bytes(), 0, "no file yet");
        store.save(&sample());
        drop(store);
        let store = FrontierStore::open(&dir);
        assert_eq!(store.covered(), &sample());
        assert_eq!(store.telemetry().loaded(), 3);
        assert!(store.size_bytes() > 0, "size reads the on-disk file length");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let dir = tmp_dir("torn");
        let mut store = FrontierStore::open(&dir);
        store.save(&sample());
        let path = store.path().to_path_buf();
        drop(store);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let store = FrontierStore::open(&dir);
        assert_eq!(store.len(), 2, "valid prefix loads, torn record dropped");
        assert!(store.telemetry().tail_truncated());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_and_garbage_cold_start() {
        let dir = tmp_dir("skew");
        let mut store = FrontierStore::open(&dir);
        store.save(&sample());
        let path = store.path().to_path_buf();
        drop(store);
        // Future format version: degrade to cold, never error.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = wire::FORMAT_VERSION + 1;
        std::fs::write(&path, &bytes).unwrap();
        let store = FrontierStore::open(&dir);
        assert!(store.is_empty());
        assert!(store.telemetry().recovered_cold());
        drop(store);
        std::fs::write(&path, b"garbage").unwrap();
        let store = FrontierStore::open(&dir);
        assert!(store.is_empty());
        assert!(store.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_points_are_corruption_not_new_points() {
        let dir = tmp_dir("unknown");
        let mut e = Enc::new();
        crate::modser::enc_vendor(&mut e, Vendor::Gcc);
        e.vstr("asan.rs");
        e.vstr("no_such_point");
        let mut file = wire::header(TableKind::Frontier);
        file.extend_from_slice(&wire::frame(&e.into_bytes()));
        let _ = std::fs::create_dir_all(&dir);
        std::fs::write(dir.join(FRONTIER_FILE), &file).unwrap();
        let store = FrontierStore::open(&dir);
        assert!(store.is_empty());
        assert!(store
            .telemetry()
            .events()
            .iter()
            .any(|e| e.contains("unknown coverage point")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_codec_round_trips() {
        let mut e = Enc::new();
        enc_cov_delta(&mut e, &sample());
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_cov_delta(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, sample());
    }
}
