//! The on-disk wire format: little-endian primitives, length-prefixed
//! strings, and checksummed record framing.
//!
//! Every store table is one file with the same outer shape:
//!
//! ```text
//! [8-byte magic][1-byte format version][1-byte table kind]
//! [record]*
//! record = [u32 payload length][payload bytes][u64 FNV-1a of payload]
//! ```
//!
//! The framing is what makes crash recovery trivial: a process killed
//! mid-append leaves at most one torn record at the end of the file, and a
//! reader that validates length bounds and checksums can always find the
//! longest valid prefix. Nothing in this module returns a panic path on
//! malformed input — corruption is an [`Err`], and the store layers above
//! translate it into a cold start plus telemetry, never a failed open.

/// Current format version. Bump on any incompatible change to the payload
/// encodings; readers seeing another version degrade to a cold start.
///
/// v2: module payloads switched to varint ints + interned `Loc`/string side
/// tables (see `modser`), and the `Sanitized` table kind was added.
///
/// v3: `SanMeta` gained the partial-sanitization skipped-site set and the
/// `Sanitized` table key gained the site-subset fingerprint — v2 stores
/// cold-start with telemetry, never error.
pub const FORMAT_VERSION: u8 = 3;

/// File magic common to every store table.
pub const MAGIC: [u8; 8] = *b"UBFZSTOR";

/// Which table a store file holds (byte 9 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// The persistent compile-prefix cache.
    Prefix,
    /// The campaign checkpoint log.
    Checkpoint,
    /// The deduplicated bug corpus.
    Corpus,
    /// The campaign lease table (daemon-mode bookkeeping).
    Lease,
    /// The persistent post-sanitize module cache.
    Sanitized,
    /// The campaign coverage frontier (guided-generation feedback).
    Frontier,
}

impl TableKind {
    fn tag(self) -> u8 {
        match self {
            TableKind::Prefix => 1,
            TableKind::Checkpoint => 2,
            TableKind::Corpus => 3,
            TableKind::Lease => 4,
            TableKind::Sanitized => 5,
            TableKind::Frontier => 6,
        }
    }
}

/// A decode failure. Deliberately coarse: the recovery action is the same
/// (stop trusting the file from here on) whatever the cause, and the label
/// only feeds telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// A structurally invalid value (bad tag, oversized length, unknown
    /// reference); the label names the decode site.
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt {what}"),
        }
    }
}

/// 64-bit FNV-1a — the record checksum. Dependency-free and stable by
/// construction (unlike `DefaultHasher`, which std does not pin across
/// releases).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (the store never round-trips between
    /// machines with different pointer widths *and* live indices that
    /// large; decode re-checks the fit).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a LEB128 varint `u64`: 7 value bits per byte, high bit set on
    /// every byte but the last. Small values (the common case for counts,
    /// indices and line numbers) take one byte instead of eight.
    pub fn vu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` as a varint.
    pub fn vu32(&mut self, v: u32) {
        self.vu64(v as u64);
    }

    /// Appends an `i64` as a zigzag varint, so small-magnitude negatives
    /// stay short.
    pub fn vi64(&mut self, v: i64) {
        self.vu64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends a `usize` as a varint `u64`.
    pub fn vusize(&mut self, v: usize) {
        self.vu64(v as u64);
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn vstr(&mut self, v: &str) {
        self.vusize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a varint-length-prefixed byte blob.
    pub fn vbytes(&mut self, v: &[u8]) {
        self.vusize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends already-encoded bytes verbatim (splicing a scratch encoder's
    /// output, e.g. a module body after its interning tables).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked payload decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte; values other than 0/1 are corruption.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Corrupt("usize"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let bytes = self.blob()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("utf8"))
    }

    /// Reads a length-prefixed byte blob. The length is validated against
    /// the remaining buffer before any allocation, so corrupt lengths can
    /// never trigger a huge `Vec` reservation.
    pub fn blob(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Corrupt("blob length"));
        }
        self.take(len)
    }

    /// Reads a collection count, sanity-bounded by the remaining bytes
    /// (`min_elem_size` per element) so corrupt counts cannot drive an
    /// allocation or a long loop.
    pub fn count(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(WireError::Corrupt("count"));
        }
        Ok(n)
    }

    /// Reads a LEB128 varint `u64`. Overlong encodings (more than 10 bytes,
    /// or a 10th byte carrying bits beyond the 64th) are corruption, not a
    /// silent wrap.
    pub fn vu64(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            // The 10th byte (shift 63) has room for one value bit only.
            if shift == 63 && bits > 1 {
                return Err(WireError::Corrupt("varint"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Corrupt("varint"))
    }

    /// Reads a varint `u32`; values beyond `u32::MAX` are corruption.
    pub fn vu32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.vu64()?).map_err(|_| WireError::Corrupt("varint u32"))
    }

    /// Reads a zigzag varint `i64`.
    pub fn vi64(&mut self) -> Result<i64, WireError> {
        let v = self.vu64()?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    /// Reads a varint `usize`.
    pub fn vusize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.vu64()?).map_err(|_| WireError::Corrupt("varint usize"))
    }

    /// Reads a varint-length-prefixed UTF-8 string, length validated against
    /// the remaining buffer before any allocation.
    pub fn vstr(&mut self) -> Result<String, WireError> {
        let len = self.vusize()?;
        if len > self.remaining() {
            return Err(WireError::Corrupt("vstr length"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("utf8"))
    }

    /// Reads a varint-length-prefixed byte blob, length validated against
    /// the remaining buffer before any allocation.
    pub fn vblob(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.vusize()?;
        if len > self.remaining() {
            return Err(WireError::Corrupt("vblob length"));
        }
        self.take(len)
    }

    /// Reads a varint collection count with the same remaining-bytes sanity
    /// bound as [`Dec::count`].
    pub fn vcount(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = self.vusize()?;
        if n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(WireError::Corrupt("count"));
        }
        Ok(n)
    }

    /// Asserts the payload was fully consumed (trailing garbage is
    /// corruption — it means the checksummed payload disagrees with the
    /// decoder about its own shape).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt("trailing bytes"))
        }
    }
}

/// Builds a file header for `kind`.
pub fn header(kind: TableKind) -> Vec<u8> {
    let mut h = Vec::with_capacity(10);
    h.extend_from_slice(&MAGIC);
    h.push(FORMAT_VERSION);
    h.push(kind.tag());
    h
}

/// Header length in bytes.
pub const HEADER_LEN: usize = 10;

/// Validates a file header for `kind`. Version skew is reported distinctly
/// so telemetry can tell "old format" from "garbage".
pub fn check_header(bytes: &[u8], kind: TableKind) -> Result<(), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(WireError::Corrupt("magic"));
    }
    if bytes[8] != FORMAT_VERSION {
        return Err(WireError::Corrupt("format version"));
    }
    if bytes[9] != kind.tag() {
        return Err(WireError::Corrupt("table kind"));
    }
    Ok(())
}

/// Frames a payload as one record: length prefix + payload + checksum.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Total on-disk bytes of one framed record: length prefix + payload +
/// checksum. The single place the framing overhead is defined for byte
/// accounting — every table's trusted-prefix arithmetic goes through it.
pub fn record_span(payload_len: usize) -> usize {
    4 + payload_len + 8
}

/// (Re)materializes a table file as header + the given framed records,
/// through a temp file + rename so a kill mid-recovery cannot corrupt
/// further — the one rewrite protocol every table shares. Returns `false`
/// when the directory is unwritable (tables then degrade to in-memory
/// behavior).
pub fn rewrite_file(path: &std::path::Path, kind: TableKind, payloads: &[Vec<u8>]) -> bool {
    let tmp = path.with_extension("bin.tmp");
    let mut out = header(kind);
    for payload in payloads {
        out.extend_from_slice(&frame(payload));
    }
    std::fs::write(&tmp, &out).is_ok() && std::fs::rename(&tmp, path).is_ok()
}

/// Reads the framed record whose length prefix starts at byte `pos` of
/// `file` into `buf` (reused across calls), verifying bounds and checksum.
/// Returns the payload's `(offset, length)`; `None` on a torn or corrupt
/// record — the shared streaming primitive behind every table scan, so
/// open-time memory stays O(largest record) however large the file.
pub fn read_record_at(
    file: &mut std::fs::File,
    file_len: u64,
    pos: u64,
    buf: &mut Vec<u8>,
) -> Option<(u64, u32)> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    if file_len.checked_sub(pos)? < 4 {
        return None;
    }
    let mut len_bytes = [0u8; 4];
    file.seek(SeekFrom::Start(pos)).ok()?;
    file.read_exact(&mut len_bytes).ok()?;
    let len = u32::from_le_bytes(len_bytes);
    let payload_off = pos + 4;
    let end = payload_off.checked_add(len as u64)?.checked_add(8)?;
    if end > file_len {
        return None;
    }
    buf.resize(len as usize, 0);
    file.read_exact(buf).ok()?;
    let mut sum_bytes = [0u8; 8];
    file.read_exact(&mut sum_bytes).ok()?;
    if fnv1a(buf) != u64::from_le_bytes(sum_bytes) {
        return None;
    }
    Some((payload_off, len))
}

/// Iterates the valid record payloads of a file body (bytes after the
/// header), stopping at the first torn or corrupt record.
///
/// Returns the payload slices and the byte offset (relative to the body)
/// where the valid prefix ends — the truncation point recovery rewrites the
/// file to.
pub fn read_records(body: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut pos = 0;
    loop {
        if body.len() - pos < 4 {
            break;
        }
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos.checked_add(4).and_then(|p| p.checked_add(len)).and_then(|p| p.checked_add(8)) else {
            break;
        };
        if end > body.len() {
            break;
        }
        let payload = &body[pos + 4..pos + 4 + len];
        let sum = u64::from_le_bytes(body[pos + 4 + len..end].try_into().expect("8 bytes"));
        if fnv1a(payload) != sum {
            break;
        }
        records.push(payload);
        pos = end;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(12345);
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.blob().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn decode_is_bounds_checked() {
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.u32(), Err(WireError::Truncated));
        // A blob length pointing past the end is corruption, not an alloc.
        let mut e = Enc::new();
        e.u32(1_000_000);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).blob(), Err(WireError::Corrupt("blob length")));
        // Bad bool byte.
        assert_eq!(Dec::new(&[9]).bool(), Err(WireError::Corrupt("bool")));
        // Trailing garbage is caught by finish().
        assert!(Dec::new(&[0]).finish().is_err());
    }

    #[test]
    fn varints_round_trip_and_stay_compact() {
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut e = Enc::new();
        for &v in &values {
            e.vu64(v);
        }
        e.vi64(0);
        e.vi64(-1);
        e.vi64(i64::MIN);
        e.vi64(i64::MAX);
        e.vstr("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for &v in &values {
            assert_eq!(d.vu64().unwrap(), v);
        }
        assert_eq!(d.vi64().unwrap(), 0);
        assert_eq!(d.vi64().unwrap(), -1);
        assert_eq!(d.vi64().unwrap(), i64::MIN);
        assert_eq!(d.vi64().unwrap(), i64::MAX);
        assert_eq!(d.vstr().unwrap(), "héllo");
        d.finish().unwrap();
        // Compactness: one byte up to 0x7F, two up to 0x3FFF.
        let mut small = Enc::new();
        small.vu64(0x7F);
        assert_eq!(small.into_bytes().len(), 1);
        let mut two = Enc::new();
        two.vu64(0x3FFF);
        assert_eq!(two.into_bytes().len(), 2);
        let mut max = Enc::new();
        max.vu64(u64::MAX);
        assert_eq!(max.into_bytes().len(), 10);
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        // Unterminated: every byte has the continuation bit.
        assert_eq!(Dec::new(&[0x80, 0x80]).vu64(), Err(WireError::Truncated));
        // 11-byte encoding can never be valid.
        let overlong = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(Dec::new(&overlong).vu64(), Err(WireError::Corrupt("varint")));
        // 10th byte with bits beyond the 64th is an overflow, not a wrap.
        let overflow = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(Dec::new(&overflow).vu64(), Err(WireError::Corrupt("varint")));
        // A vstr length past the end is corruption, not an allocation.
        let mut e = Enc::new();
        e.vusize(1_000_000);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).vstr(), Err(WireError::Corrupt("vstr length")));
        // vu32 range check.
        let mut e = Enc::new();
        e.vu64(u64::from(u32::MAX) + 1);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).vu32(), Err(WireError::Corrupt("varint u32")));
    }

    #[test]
    fn vcount_rejects_absurd_lengths() {
        let mut e = Enc::new();
        e.vu64(u64::from(u32::MAX));
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).vcount(1), Err(WireError::Corrupt("count")));
    }

    #[test]
    fn count_rejects_absurd_lengths() {
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).count(1), Err(WireError::Corrupt("count")));
    }

    #[test]
    fn records_survive_torn_tails() {
        let mut body = Vec::new();
        body.extend_from_slice(&frame(b"first"));
        body.extend_from_slice(&frame(b"second"));
        let valid_len = body.len();
        // Torn third record: length says 100 bytes, only 3 present.
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(b"abc");
        let (records, end) = read_records(&body);
        assert_eq!(records, vec![b"first".as_slice(), b"second".as_slice()]);
        assert_eq!(end, valid_len);
    }

    #[test]
    fn records_stop_at_checksum_mismatch() {
        let mut body = frame(b"ok");
        let mut bad = frame(b"tampered");
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        body.extend_from_slice(&bad);
        body.extend_from_slice(&frame(b"unreachable"));
        let (records, _) = read_records(&body);
        assert_eq!(records, vec![b"ok".as_slice()]);
    }

    #[test]
    fn header_checks() {
        let h = header(TableKind::Prefix);
        assert_eq!(h.len(), HEADER_LEN);
        check_header(&h, TableKind::Prefix).unwrap();
        assert_eq!(
            check_header(&h, TableKind::Corpus),
            Err(WireError::Corrupt("table kind"))
        );
        let mut skew = h.clone();
        skew[8] = FORMAT_VERSION + 1;
        assert_eq!(
            check_header(&skew, TableKind::Prefix),
            Err(WireError::Corrupt("format version"))
        );
        assert_eq!(check_header(&h[..4], TableKind::Prefix), Err(WireError::Truncated));
        let mut garbage = h;
        garbage[0] = b'X';
        assert_eq!(
            check_header(&garbage, TableKind::Prefix),
            Err(WireError::Corrupt("magic"))
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the checksum must never drift between builds, or
        // every store on disk silently cold-starts.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"ubfuzz"), fnv1a(b"ubfuzz"));
        assert_ne!(fnv1a(b"ubfuzz"), fnv1a(b"ubfuzy"));
    }
}
