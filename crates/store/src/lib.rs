//! `ubfuzz-store` — the persistent campaign store.
//!
//! A UBFuzz-style campaign is only production-viable if it survives process
//! restarts: the paper's campaigns ran for months, and everything the loop
//! computes — staged-compile prefixes, per-unit compile/run outcomes,
//! deduplicated bugs — is a deterministic function of inputs that one
//! invocation pays for and the next can reuse. This crate is the on-disk
//! side of that bargain: a versioned, content-checksummed store directory
//! with these tables.
//!
//! | table | file | granularity | consumer |
//! |---|---|---|---|
//! | [`PrefixStore`] | `prefix.bin` | `(fingerprint, vendor, version, opt) → Module` | `CompileSession::with_backings` |
//! | [`SanitizedStore`] | `sanitized.bin` | prefix key + `(sanitizer, registry epoch) → Module` | `CompileSession::with_backings` |
//! | [`CampaignLog`] | `campaign.bin` | `(campaign fingerprint, unit index) → outcome` | `ParallelCampaign` resume |
//! | [`BugCorpus`] | `corpus.bin` | attribution key → bug + provenance | campaign reporting |
//! | [`FrontierStore`] | `frontier.bin` | covered `(vendor, file, point)` set | guided-generation steering |
//!
//! The prefix/sanitized module caches additionally track per-key hit
//! recency and expose byte-budgeted compaction ([`CompactStats`]): the
//! least-recently-hit records are evicted through the shared temp-file +
//! rename rewrite, so a long-lived store directory can be pinned under a
//! size budget without losing its hottest entries.
//!
//! **Crash consistency.** Append-only tables flush every record and frame
//! it with a length prefix and an FNV-1a checksum; a kill mid-append tears
//! at most the final record, which the next open truncates away. The
//! corpus rewrites wholesale through a temp-file rename. **No store
//! failure is an error**: corrupt, truncated, version-skewed, unwritable —
//! every degraded path is a cold start recorded in [`StoreTelemetry`],
//! because a fuzzing campaign must never refuse to run over a bad cache.
//!
//! The wire format is hand-rolled ([`wire`], [`modser`]) — the workspace is
//! offline by policy, so no serde; the discipline mirrors the vendor shims:
//! small, explicit, and replaceable.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use ubfuzz_obs::{self as obs, Stage};

pub mod checkpoint;
pub mod corpus;
pub mod frontier;
pub mod lease;
pub mod modser;
pub mod prefix;
pub mod sanitized;
pub mod wire;

pub use checkpoint::{CampaignLog, UnitOutcome};
pub use corpus::{BugCorpus, BugRecord, CorpusEntry, MergeSummary};
pub use frontier::FrontierStore;
pub use lease::{LeaseRecord, LeaseState, LeaseTable};
pub use prefix::PrefixStore;
pub use sanitized::SanitizedStore;
pub use wire::{WireError, FORMAT_VERSION};

/// Locks a mutex, recovering the inner guard when a panicking holder
/// poisoned it. The store's contract is "degrade, never abort": a worker
/// that panicked mid-compile must not take every later compile down with a
/// poisoned-lock panic. Callers with telemetry at hand should prefer
/// [`relock_noting`] so the recovery is observable.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`relock`], recording a [`StoreTelemetry`] corruption event when the
/// lock was actually poisoned.
pub(crate) fn relock_noting<'a, T>(
    m: &'a Mutex<T>,
    telemetry: &StoreTelemetry,
    what: &str,
) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| {
        telemetry.record_corruption(format!("{what}: poisoned lock recovered"));
        e.into_inner()
    })
}

/// Open/recovery/flush telemetry for one store table.
///
/// Shared-reference friendly (atomics + a mutexed event list) because the
/// prefix table is written from every campaign worker.
#[derive(Debug, Default)]
pub struct StoreTelemetry {
    loaded: AtomicUsize,
    persisted: AtomicU64,
    cold_start: AtomicUsize,
    tail_truncated: AtomicUsize,
    corruption: Mutex<Vec<String>>,
}

impl StoreTelemetry {
    /// Entries (records) successfully loaded at open.
    pub fn loaded(&self) -> usize {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Records appended/flushed since open.
    pub fn persisted(&self) -> u64 {
        self.persisted.load(Ordering::Relaxed)
    }

    /// True when the file was unusable and the table cold-started.
    pub fn recovered_cold(&self) -> bool {
        self.cold_start.load(Ordering::Relaxed) > 0
    }

    /// True when a torn/corrupt tail was truncated (valid prefix kept).
    pub fn tail_truncated(&self) -> bool {
        self.tail_truncated.load(Ordering::Relaxed) > 0
    }

    /// Human-readable corruption/degradation events, in occurrence order.
    pub fn events(&self) -> Vec<String> {
        relock(&self.corruption).clone()
    }

    pub(crate) fn set_loaded(&self, n: usize) {
        self.loaded.store(n, Ordering::Relaxed);
    }

    pub(crate) fn record_persisted(&self) {
        self.persisted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cold_start(&self) {
        self.cold_start.fetch_add(1, Ordering::Relaxed);
        obs::count("store_cold_starts", 1);
    }

    pub(crate) fn record_tail_truncated(&self) {
        self.tail_truncated.fetch_add(1, Ordering::Relaxed);
        obs::count("store_tails_truncated", 1);
    }

    pub(crate) fn record_corruption(&self, event: String) {
        // Mirror the event to any attached recorder: read-only consumers
        // (the offline compactor) report corruption through the recorder
        // even when nothing later prints `events()`.
        obs::note("store", &event);
        // The event list is the one lock that cannot self-report poisoning;
        // recover silently rather than lose the event being recorded.
        relock(&self.corruption).push(event);
    }
}

/// Before/after accounting of one table compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// On-disk bytes (header + records) before the compaction.
    pub before_bytes: u64,
    /// On-disk bytes after the compaction.
    pub after_bytes: u64,
    /// Records kept (the most-recently-hit that fit the budget).
    pub kept: usize,
    /// Records evicted.
    pub evicted: usize,
}

/// Shared mutable state of one append-only record log with recency-tracked
/// keys: the file handle, the on-disk key set, and the per-key last-hit
/// sequence that byte-budgeted compaction ranks by.
///
/// At open, keys are assigned sequence numbers in file order, so a store
/// compacted without any hit information (the standalone compactor path)
/// deterministically keeps the newest tail.
#[derive(Debug)]
pub(crate) struct LogState<K> {
    /// Read+append handle; `None` when the directory is unwritable (the
    /// table then degrades to in-memory behavior).
    pub(crate) file: Option<File>,
    /// Keys already on disk, so epoch-evicted recomputations do not bloat
    /// the file with duplicates.
    pub(crate) resident: HashSet<K>,
    /// Last hit (or append/open) sequence per resident key.
    pub(crate) recency: HashMap<K, u64>,
    /// Monotonic hit/append counter feeding `recency`.
    pub(crate) clock: u64,
    /// Current on-disk size in bytes, header included.
    pub(crate) bytes: u64,
}

impl<K: Eq + Hash + Copy> LogState<K> {
    /// Appends one framed record, updating size/recency accounting. No-op
    /// for keys already resident or when persistence is disabled; an append
    /// failure disables persistence (the campaign keeps computing).
    pub(crate) fn append(
        &mut self,
        key: K,
        payload: &[u8],
        telemetry: &StoreTelemetry,
        what: &'static str,
    ) {
        if !self.resident.insert(key) {
            return;
        }
        let Some(file) = self.file.as_mut() else { return };
        let _span = obs::Span::enter(Stage::StorePersist, 0);
        let record = wire::frame(payload);
        // The handle is O_APPEND: one write_all lands the whole record at
        // the end of file regardless of concurrent appenders.
        if file.write_all(&record).and_then(|()| file.flush()).is_err() {
            telemetry.record_corruption(format!("{what} append failed"));
            self.file = None;
        } else {
            self.bytes += record.len() as u64;
            self.clock += 1;
            self.recency.insert(key, self.clock);
            telemetry.record_persisted();
        }
    }

    /// Bumps a resident key's recency — a cache hit served from this table.
    pub(crate) fn note_hit(&mut self, key: K) {
        if self.resident.contains(&key) {
            self.clock += 1;
            self.recency.insert(key, self.clock);
        }
    }
}

/// Compacts one record log to `budget` bytes: streams the file, ranks
/// records most-recently-hit first (open assigns file-order sequence, so
/// never-hit stores keep their newest tail), keeps the top-ranked records
/// that fit, and rewrites the file — original record order preserved among
/// the kept — through the shared temp-file + rename protocol. The `O_APPEND`
/// handle is reopened afterwards (the rename replaced the inode).
pub(crate) fn compact_log<K: Eq + Hash + Copy>(
    path: &Path,
    kind: wire::TableKind,
    state: &mut LogState<K>,
    budget: u64,
    dec_key: impl Fn(&[u8]) -> Result<K, WireError>,
    telemetry: &StoreTelemetry,
) -> CompactStats {
    let _span = obs::Span::enter(Stage::StoreCompact, 0);
    let before = state.bytes;
    let noop = CompactStats {
        before_bytes: before,
        after_bytes: before,
        kept: state.resident.len(),
        evicted: 0,
    };
    let Some(file) = state.file.as_mut() else { return noop };
    let file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
    let mut records: Vec<(Vec<u8>, K)> = Vec::new();
    let mut pos = wire::HEADER_LEN as u64;
    let mut buf = Vec::new();
    while let Some((payload_off, payload_len)) = wire::read_record_at(file, file_len, pos, &mut buf)
    {
        match dec_key(&buf) {
            Ok(key) => records.push((std::mem::take(&mut buf), key)),
            Err(e) => {
                telemetry.record_corruption(format!("compaction record: {e}"));
                break;
            }
        }
        pos = payload_off + payload_len as u64 + 8;
    }
    // Rank most-recently-hit first; open-time sequences make ties
    // impossible, but fall back to later-file-order-wins for safety.
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse((state.recency.get(&records[i].1).copied().unwrap_or(0), i))
    });
    let mut keep = vec![false; records.len()];
    let mut after = wire::HEADER_LEN as u64;
    for &i in &order {
        let span = wire::record_span(records[i].0.len()) as u64;
        if after + span > budget {
            break;
        }
        after += span;
        keep[i] = true;
    }
    let payloads: Vec<Vec<u8>> = records
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r.0.clone())
        .collect();
    if !wire::rewrite_file(path, kind, &payloads) {
        telemetry.record_corruption("compaction rewrite failed".into());
        return noop;
    }
    // Reopen: the append handle still points at the pre-rename inode.
    state.file = OpenOptions::new().read(true).append(true).open(path).ok();
    let kept_keys: HashSet<K> =
        records.iter().zip(&keep).filter(|(_, &k)| k).map(|(r, _)| r.1).collect();
    let kept = kept_keys.len();
    let evicted = records.len() - payloads.len();
    state.resident = kept_keys;
    let LogState { resident, recency, .. } = state;
    recency.retain(|k, _| resident.contains(k));
    state.bytes = after;
    CompactStats { before_bytes: before, after_bytes: after, kept, evicted }
}

/// A store directory: the root handle the binaries hold.
///
/// Thin by design — each table owns its own file, recovery and telemetry;
/// `Store` just fixes the layout so every consumer agrees on paths.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`. Never fails;
    /// an uncreatable directory degrades each table to its in-memory
    /// behavior.
    pub fn open(dir: impl AsRef<Path>) -> Store {
        let dir = dir.as_ref().to_path_buf();
        let _ = std::fs::create_dir_all(&dir);
        Store { dir }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens the persistent prefix cache table.
    pub fn prefix(&self) -> PrefixStore {
        PrefixStore::open(&self.dir)
    }

    /// Opens the persistent post-sanitize module cache table.
    pub fn sanitized(&self) -> SanitizedStore {
        SanitizedStore::open(&self.dir)
    }

    /// Opens the campaign checkpoint log for a campaign plan.
    pub fn campaign_log(&self, config_fp: u64, units: usize) -> CampaignLog {
        CampaignLog::open(&self.dir, config_fp, units)
    }

    /// Opens the bug corpus table.
    pub fn corpus(&self) -> BugCorpus {
        BugCorpus::open(&self.dir)
    }

    /// Opens the campaign lease table (daemon-mode bookkeeping).
    pub fn leases(&self) -> LeaseTable {
        LeaseTable::open(&self.dir)
    }

    /// Opens the coverage frontier table (guided-generation steering).
    pub fn frontier(&self) -> FrontierStore {
        FrontierStore::open(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_layout_is_stable() {
        let dir = std::env::temp_dir().join(format!("ubfuzz-store-root-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir);
        assert_eq!(store.prefix().path(), dir.join("prefix.bin"));
        assert_eq!(store.sanitized().path(), dir.join("sanitized.bin"));
        assert_eq!(store.campaign_log(0, 0).path(), dir.join("campaign.bin"));
        assert_eq!(store.corpus().path(), dir.join("corpus.bin"));
        assert_eq!(store.leases().path(), dir.join("leases.bin"));
        assert_eq!(store.frontier().path(), dir.join("frontier.bin"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
