//! `ubfuzz-store` — the persistent campaign store.
//!
//! A UBFuzz-style campaign is only production-viable if it survives process
//! restarts: the paper's campaigns ran for months, and everything the loop
//! computes — staged-compile prefixes, per-unit compile/run outcomes,
//! deduplicated bugs — is a deterministic function of inputs that one
//! invocation pays for and the next can reuse. This crate is the on-disk
//! side of that bargain: a versioned, content-checksummed store directory
//! with three tables.
//!
//! | table | file | granularity | consumer |
//! |---|---|---|---|
//! | [`PrefixStore`] | `prefix.bin` | `(fingerprint, vendor, version, opt) → Module` | `CompileSession::with_backing` |
//! | [`CampaignLog`] | `campaign.bin` | `(campaign fingerprint, unit index) → outcome` | `ParallelCampaign` resume |
//! | [`BugCorpus`] | `corpus.bin` | attribution key → bug + provenance | campaign reporting |
//!
//! **Crash consistency.** Append-only tables flush every record and frame
//! it with a length prefix and an FNV-1a checksum; a kill mid-append tears
//! at most the final record, which the next open truncates away. The
//! corpus rewrites wholesale through a temp-file rename. **No store
//! failure is an error**: corrupt, truncated, version-skewed, unwritable —
//! every degraded path is a cold start recorded in [`StoreTelemetry`],
//! because a fuzzing campaign must never refuse to run over a bad cache.
//!
//! The wire format is hand-rolled ([`wire`], [`modser`]) — the workspace is
//! offline by policy, so no serde; the discipline mirrors the vendor shims:
//! small, explicit, and replaceable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

pub mod checkpoint;
pub mod corpus;
pub mod lease;
pub mod modser;
pub mod prefix;
pub mod wire;

pub use checkpoint::{CampaignLog, UnitOutcome};
pub use corpus::{BugCorpus, BugRecord, CorpusEntry, MergeSummary};
pub use lease::{LeaseRecord, LeaseState, LeaseTable};
pub use prefix::PrefixStore;
pub use wire::{WireError, FORMAT_VERSION};

/// Locks a mutex, recovering the inner guard when a panicking holder
/// poisoned it. The store's contract is "degrade, never abort": a worker
/// that panicked mid-compile must not take every later compile down with a
/// poisoned-lock panic. Callers with telemetry at hand should prefer
/// [`relock_noting`] so the recovery is observable.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`relock`], recording a [`StoreTelemetry`] corruption event when the
/// lock was actually poisoned.
pub(crate) fn relock_noting<'a, T>(
    m: &'a Mutex<T>,
    telemetry: &StoreTelemetry,
    what: &str,
) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| {
        telemetry.record_corruption(format!("{what}: poisoned lock recovered"));
        e.into_inner()
    })
}

/// Open/recovery/flush telemetry for one store table.
///
/// Shared-reference friendly (atomics + a mutexed event list) because the
/// prefix table is written from every campaign worker.
#[derive(Debug, Default)]
pub struct StoreTelemetry {
    loaded: AtomicUsize,
    persisted: AtomicU64,
    cold_start: AtomicUsize,
    tail_truncated: AtomicUsize,
    corruption: Mutex<Vec<String>>,
}

impl StoreTelemetry {
    /// Entries (records) successfully loaded at open.
    pub fn loaded(&self) -> usize {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Records appended/flushed since open.
    pub fn persisted(&self) -> u64 {
        self.persisted.load(Ordering::Relaxed)
    }

    /// True when the file was unusable and the table cold-started.
    pub fn recovered_cold(&self) -> bool {
        self.cold_start.load(Ordering::Relaxed) > 0
    }

    /// True when a torn/corrupt tail was truncated (valid prefix kept).
    pub fn tail_truncated(&self) -> bool {
        self.tail_truncated.load(Ordering::Relaxed) > 0
    }

    /// Human-readable corruption/degradation events, in occurrence order.
    pub fn events(&self) -> Vec<String> {
        relock(&self.corruption).clone()
    }

    pub(crate) fn set_loaded(&self, n: usize) {
        self.loaded.store(n, Ordering::Relaxed);
    }

    pub(crate) fn record_persisted(&self) {
        self.persisted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cold_start(&self) {
        self.cold_start.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_tail_truncated(&self) {
        self.tail_truncated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_corruption(&self, event: String) {
        // The event list is the one lock that cannot self-report poisoning;
        // recover silently rather than lose the event being recorded.
        relock(&self.corruption).push(event);
    }
}

/// A store directory: the root handle the binaries hold.
///
/// Thin by design — each table owns its own file, recovery and telemetry;
/// `Store` just fixes the layout so every consumer agrees on paths.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`. Never fails;
    /// an uncreatable directory degrades each table to its in-memory
    /// behavior.
    pub fn open(dir: impl AsRef<Path>) -> Store {
        let dir = dir.as_ref().to_path_buf();
        let _ = std::fs::create_dir_all(&dir);
        Store { dir }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens the persistent prefix cache table.
    pub fn prefix(&self) -> PrefixStore {
        PrefixStore::open(&self.dir)
    }

    /// Opens the campaign checkpoint log for a campaign plan.
    pub fn campaign_log(&self, config_fp: u64, units: usize) -> CampaignLog {
        CampaignLog::open(&self.dir, config_fp, units)
    }

    /// Opens the bug corpus table.
    pub fn corpus(&self) -> BugCorpus {
        BugCorpus::open(&self.dir)
    }

    /// Opens the campaign lease table (daemon-mode bookkeeping).
    pub fn leases(&self) -> LeaseTable {
        LeaseTable::open(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_layout_is_stable() {
        let dir = std::env::temp_dir().join(format!("ubfuzz-store-root-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir);
        assert_eq!(store.prefix().path(), dir.join("prefix.bin"));
        assert_eq!(store.campaign_log(0, 0).path(), dir.join("campaign.bin"));
        assert_eq!(store.corpus().path(), dir.join("corpus.bin"));
        assert_eq!(store.leases().path(), dir.join("leases.bin"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
