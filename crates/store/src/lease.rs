//! The campaign lease table: daemon-mode bookkeeping for which worker
//! process owns which contiguous unit range of a campaign plan.
//!
//! The table is *observability and durability*, not the scheduler — the
//! live scheduling truth is the daemon's in-memory ledger
//! (`ubfuzz_exec::lease::LeaseLedger`). The daemon mirrors every lease
//! transition here so that status queries, CI artifacts, and post-mortems
//! of a killed daemon can see who held what; the checkpoint shards
//! (`campaign.s<id>.bin`) remain the source of truth for completed work.
//!
//! Small and rewritten wholesale through a temp-file rename, like the bug
//! corpus: a kill mid-flush leaves the previous table intact.

use crate::wire::{self, Dec, Enc, TableKind};
use crate::StoreTelemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the lease table inside a store directory.
pub const LEASE_FILE: &str = "leases.bin";

/// Lifecycle of one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Granted to a live worker.
    Active,
    /// The worker finished its range.
    Done,
    /// The worker died or its deadline passed; the range was re-issued
    /// under a fresh lease id.
    Reclaimed,
}

impl LeaseState {
    fn tag(self) -> u8 {
        match self {
            LeaseState::Active => 0,
            LeaseState::Done => 1,
            LeaseState::Reclaimed => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<LeaseState, wire::WireError> {
        match tag {
            0 => Ok(LeaseState::Active),
            1 => Ok(LeaseState::Done),
            2 => Ok(LeaseState::Reclaimed),
            _ => Err(wire::WireError::Corrupt("lease state")),
        }
    }

    /// Display form used by the daemon's status endpoint.
    pub fn name(self) -> &'static str {
        match self {
            LeaseState::Active => "active",
            LeaseState::Done => "done",
            LeaseState::Reclaimed => "reclaimed",
        }
    }
}

/// One lease: a contiguous unit range granted to one worker process. The
/// lease id doubles as the worker's checkpoint shard id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Lease id (== checkpoint shard id; unique per store directory).
    pub id: u64,
    /// Campaign fingerprint the range indexes into.
    pub campaign_fp: u64,
    /// First unit index (inclusive).
    pub start: u64,
    /// One past the last unit index (exclusive).
    pub end: u64,
    /// Worker process id, 0 when not yet spawned.
    pub pid: u64,
    /// Unix seconds when granted.
    pub granted: u64,
    /// Seconds the worker has to renew/finish before reclaim.
    pub ttl_secs: u64,
    /// Current lifecycle state.
    pub state: LeaseState,
}

fn enc_lease(e: &mut Enc, lease: &LeaseRecord) {
    e.u64(lease.id);
    e.u64(lease.campaign_fp);
    e.u64(lease.start);
    e.u64(lease.end);
    e.u64(lease.pid);
    e.u64(lease.granted);
    e.u64(lease.ttl_secs);
    e.u8(lease.state.tag());
}

fn dec_lease(payload: &[u8]) -> Result<LeaseRecord, wire::WireError> {
    let mut d = Dec::new(payload);
    let lease = LeaseRecord {
        id: d.u64()?,
        campaign_fp: d.u64()?,
        start: d.u64()?,
        end: d.u64()?,
        pid: d.u64()?,
        granted: d.u64()?,
        ttl_secs: d.u64()?,
        state: LeaseState::from_tag(d.u8()?)?,
    };
    d.finish()?;
    Ok(lease)
}

/// The on-disk lease table. Open never fails; corrupt or version-skewed
/// files degrade to an empty table with telemetry.
#[derive(Debug)]
pub struct LeaseTable {
    path: PathBuf,
    leases: BTreeMap<u64, LeaseRecord>,
    telemetry: StoreTelemetry,
}

impl LeaseTable {
    /// Opens (or creates) the lease table under `dir`.
    pub fn open(dir: impl AsRef<Path>) -> LeaseTable {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let path = dir.as_ref().join(LEASE_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let mut leases = BTreeMap::new();
        match std::fs::read(&path) {
            Ok(bytes) if !bytes.is_empty() => {
                match wire::check_header(&bytes, TableKind::Lease) {
                    Ok(()) => {
                        let (records, _) = wire::read_records(&bytes[wire::HEADER_LEN..]);
                        let mut trusted = wire::HEADER_LEN;
                        for payload in records {
                            match dec_lease(payload) {
                                Ok(lease) => {
                                    leases.insert(lease.id, lease);
                                    trusted += wire::record_span(payload.len());
                                }
                                Err(e) => {
                                    telemetry.record_corruption(format!("lease record: {e}"));
                                    break;
                                }
                            }
                        }
                        if trusted < bytes.len() {
                            telemetry.record_tail_truncated();
                        }
                    }
                    Err(e) => {
                        telemetry.record_corruption(format!("lease header: {e}"));
                        telemetry.record_cold_start();
                    }
                }
            }
            Ok(_) => {}
            Err(_) => {}
        }
        telemetry.set_loaded(leases.len());
        LeaseTable { path, leases, telemetry }
    }

    /// Inserts or replaces one lease and rewrites the file.
    pub fn upsert(&mut self, lease: LeaseRecord) {
        self.leases.insert(lease.id, lease);
        self.flush();
    }

    /// Updates lease `id`'s state (no-op for unknown ids) and rewrites.
    pub fn set_state(&mut self, id: u64, state: LeaseState) {
        if let Some(lease) = self.leases.get_mut(&id) {
            lease.state = state;
            self.flush();
        }
    }

    /// Drops every lease of a foreign campaign (the daemon starting a new
    /// campaign in a reused store directory).
    pub fn retain_campaign(&mut self, campaign_fp: u64) {
        let before = self.leases.len();
        self.leases.retain(|_, l| l.campaign_fp == campaign_fp);
        if self.leases.len() != before {
            self.flush();
        }
    }

    /// The next unused lease id (ids are never reused, so a re-issued
    /// range always lands in a fresh checkpoint shard).
    pub fn next_id(&self) -> u64 {
        self.leases.keys().next_back().map_or(1, |id| id + 1)
    }

    fn flush(&self) {
        let payloads: Vec<Vec<u8>> = self
            .leases
            .values()
            .map(|lease| {
                let mut e = Enc::new();
                enc_lease(&mut e, lease);
                e.into_bytes()
            })
            .collect();
        if wire::rewrite_file(&self.path, TableKind::Lease, &payloads) {
            self.telemetry.record_persisted();
        } else {
            self.telemetry.record_corruption("lease directory unwritable".into());
        }
    }

    /// All leases, in id order.
    pub fn leases(&self) -> &BTreeMap<u64, LeaseRecord> {
        &self.leases
    }

    /// The file backing this table.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/flush telemetry for this table.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-lease-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn lease(id: u64, fp: u64, range: std::ops::Range<u64>) -> LeaseRecord {
        LeaseRecord {
            id,
            campaign_fp: fp,
            start: range.start,
            end: range.end,
            pid: 4242,
            granted: 1000,
            ttl_secs: 60,
            state: LeaseState::Active,
        }
    }

    #[test]
    fn leases_survive_reopen_and_ids_never_reuse() {
        let dir = tmp_dir("roundtrip");
        let mut table = LeaseTable::open(&dir);
        assert_eq!(table.next_id(), 1);
        table.upsert(lease(1, 7, 0..10));
        table.upsert(lease(2, 7, 10..20));
        table.set_state(1, LeaseState::Done);
        drop(table);

        let table = LeaseTable::open(&dir);
        assert_eq!(table.leases().len(), 2);
        assert_eq!(table.leases()[&1].state, LeaseState::Done);
        assert_eq!(table.leases()[&2].state, LeaseState::Active);
        assert_eq!(table.next_id(), 3, "ids advance past everything on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_campaign_leases_are_dropped() {
        let dir = tmp_dir("foreign");
        let mut table = LeaseTable::open(&dir);
        table.upsert(lease(1, 7, 0..10));
        table.upsert(lease(2, 9, 0..10));
        table.retain_campaign(9);
        drop(table);
        let table = LeaseTable::open(&dir);
        assert_eq!(table.leases().len(), 1);
        assert_eq!(table.leases()[&2].campaign_fp, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_table_cold_starts() {
        let dir = tmp_dir("corrupt");
        let mut table = LeaseTable::open(&dir);
        table.upsert(lease(1, 7, 0..10));
        let path = table.path().to_path_buf();
        drop(table);
        std::fs::write(&path, b"garbage").unwrap();
        let table = LeaseTable::open(&dir);
        assert!(table.leases().is_empty());
        assert!(table.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
