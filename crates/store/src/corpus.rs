//! The cross-invocation bug corpus: every deduplicated bug a campaign has
//! ever found, keyed by its stable attribution key, with first-seen /
//! last-seen provenance.
//!
//! The paper's months-long campaigns live or die on triage: a finding is
//! only actionable against a stable, deduplicated history (SoK: Sanitizing
//! for Security makes the same point for FP/FN findings generally). The
//! corpus is that history — campaigns merge their `FoundBug`s in, and the
//! merge is idempotent per key: re-finding a known bug updates provenance
//! (`last_seen`, campaign count, duplicate totals) instead of duplicating
//! the entry.
//!
//! Unlike the append-only tables, the corpus is small (tens of entries) and
//! rewritten wholesale on every merge through a temp-file rename, which is
//! atomic on POSIX — a kill mid-merge leaves the previous corpus intact.

use crate::wire::{self, Dec, Enc, TableKind};
use crate::StoreTelemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the corpus table inside a store directory.
pub const CORPUS_FILE: &str = "corpus.bin";

/// One bug as a campaign reports it (the store-side mirror of
/// `ubfuzz::FoundBug`, by value so the store crate stays below the campaign
/// crate in the dependency order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugRecord {
    /// The campaign's stable dedup/attribution key.
    pub key: String,
    /// Vendor name (display form).
    pub vendor: String,
    /// Sanitizer name (display form).
    pub sanitizer: String,
    /// Ground-truth UB kind name.
    pub kind: String,
    /// Attributed defect id, when attribution succeeded.
    pub defect_id: Option<String>,
    /// True for the invalid-report shape.
    pub invalid: bool,
    /// True for wrong-report bugs.
    pub wrong_report: bool,
    /// A triggering test case.
    pub test_case: String,
    /// Triggering programs deduplicated into this bug by the reporting
    /// campaign.
    pub duplicates: u64,
}

/// A corpus entry: the bug plus cross-invocation provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The bug (test case and duplicate count are from the *first* finding
    /// campaign; later campaigns only grow the provenance).
    pub bug: BugRecord,
    /// Unix seconds when a campaign first merged this bug.
    pub first_seen: u64,
    /// Unix seconds when a campaign most recently merged this bug.
    pub last_seen: u64,
    /// How many campaign merges contained this bug.
    pub campaigns: u64,
    /// Total duplicates across all merges.
    pub total_duplicates: u64,
}

/// Summary of one merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeSummary {
    /// Bugs not previously in the corpus.
    pub new: usize,
    /// Bugs already known (provenance updated).
    pub known: usize,
}

/// The on-disk corpus. Open never fails; corrupt or version-skewed files
/// degrade to an empty corpus with telemetry.
#[derive(Debug)]
pub struct BugCorpus {
    path: PathBuf,
    entries: BTreeMap<String, CorpusEntry>,
    telemetry: StoreTelemetry,
}

fn enc_entry(e: &mut Enc, entry: &CorpusEntry) {
    e.str(&entry.bug.key);
    e.str(&entry.bug.vendor);
    e.str(&entry.bug.sanitizer);
    e.str(&entry.bug.kind);
    match &entry.bug.defect_id {
        Some(id) => {
            e.u8(1);
            e.str(id);
        }
        None => e.u8(0),
    }
    e.bool(entry.bug.invalid);
    e.bool(entry.bug.wrong_report);
    e.str(&entry.bug.test_case);
    e.u64(entry.bug.duplicates);
    e.u64(entry.first_seen);
    e.u64(entry.last_seen);
    e.u64(entry.campaigns);
    e.u64(entry.total_duplicates);
}

fn dec_entry(payload: &[u8]) -> Result<CorpusEntry, wire::WireError> {
    let mut d = Dec::new(payload);
    let key = d.str()?;
    let vendor = d.str()?;
    let sanitizer = d.str()?;
    let kind = d.str()?;
    let defect_id = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        _ => return Err(wire::WireError::Corrupt("defect id")),
    };
    let entry = CorpusEntry {
        bug: BugRecord {
            key,
            vendor,
            sanitizer,
            kind,
            defect_id,
            invalid: d.bool()?,
            wrong_report: d.bool()?,
            test_case: d.str()?,
            duplicates: d.u64()?,
        },
        first_seen: d.u64()?,
        last_seen: d.u64()?,
        campaigns: d.u64()?,
        total_duplicates: d.u64()?,
    };
    d.finish()?;
    Ok(entry)
}

impl BugCorpus {
    /// Opens (or creates) the corpus under `dir`.
    pub fn open(dir: impl AsRef<Path>) -> BugCorpus {
        let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::StoreOpen, 0);
        let path = dir.as_ref().join(CORPUS_FILE);
        let telemetry = StoreTelemetry::default();
        let _ = std::fs::create_dir_all(dir.as_ref());
        let mut entries = BTreeMap::new();
        match std::fs::read(&path) {
            Ok(bytes) if !bytes.is_empty() => {
                match wire::check_header(&bytes, TableKind::Corpus) {
                    Ok(()) => {
                        let (records, _) = wire::read_records(&bytes[wire::HEADER_LEN..]);
                        let mut trusted = wire::HEADER_LEN;
                        for payload in records {
                            match dec_entry(payload) {
                                Ok(entry) => {
                                    entries.insert(entry.bug.key.clone(), entry);
                                    trusted += wire::record_span(payload.len());
                                }
                                Err(e) => {
                                    telemetry
                                        .record_corruption(format!("corpus record: {e}"));
                                    break;
                                }
                            }
                        }
                        // Checksum-torn bytes past the valid prefix are
                        // unrecoverable (the next merge rewrites the file
                        // from what loaded) — say so, don't lose silently.
                        if trusted < bytes.len() {
                            telemetry.record_tail_truncated();
                            telemetry.record_corruption(format!(
                                "corpus tail dropped ({} of {} bytes trusted)",
                                trusted,
                                bytes.len()
                            ));
                        }
                    }
                    Err(e) => {
                        telemetry.record_corruption(format!("corpus header: {e}"));
                        telemetry.record_cold_start();
                    }
                }
            }
            Ok(_) => {}
            Err(_) => {}
        }
        telemetry.set_loaded(entries.len());
        BugCorpus { path, entries, telemetry }
    }

    /// Merges one campaign's bugs, stamped `now` (unix seconds), and
    /// rewrites the file. Idempotent per key: a bug already present only
    /// updates provenance.
    pub fn merge(&mut self, bugs: &[BugRecord], now: u64) -> MergeSummary {
        let mut summary = MergeSummary::default();
        for bug in bugs {
            match self.entries.get_mut(&bug.key) {
                Some(entry) => {
                    summary.known += 1;
                    entry.last_seen = now.max(entry.last_seen);
                    entry.campaigns += 1;
                    entry.total_duplicates += bug.duplicates;
                }
                None => {
                    summary.new += 1;
                    self.entries.insert(
                        bug.key.clone(),
                        CorpusEntry {
                            bug: bug.clone(),
                            first_seen: now,
                            last_seen: now,
                            campaigns: 1,
                            total_duplicates: bug.duplicates,
                        },
                    );
                }
            }
        }
        self.flush();
        summary
    }

    fn flush(&self) {
        let payloads: Vec<Vec<u8>> = self
            .entries
            .values()
            .map(|entry| {
                let mut e = Enc::new();
                enc_entry(&mut e, entry);
                e.into_bytes()
            })
            .collect();
        if wire::rewrite_file(&self.path, TableKind::Corpus, &payloads) {
            self.telemetry.record_persisted();
        } else {
            self.telemetry.record_corruption("corpus directory unwritable".into());
        }
    }

    /// All entries, in stable key order.
    pub fn entries(&self) -> &BTreeMap<String, CorpusEntry> {
        &self.entries
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The file backing this corpus.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open/flush telemetry for this corpus.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-corpus-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bug(key: &str, duplicates: u64) -> BugRecord {
        BugRecord {
            key: key.into(),
            vendor: "GCC".into(),
            sanitizer: "ASan".into(),
            kind: "UseAfterFree".into(),
            defect_id: Some("gcc-asan-d02".into()),
            invalid: false,
            wrong_report: false,
            test_case: "int main(void) { return 0; }".into(),
            duplicates,
        }
    }

    #[test]
    fn merge_is_idempotent_per_key_with_provenance() {
        let dir = tmp_dir("merge");
        let mut corpus = BugCorpus::open(&dir);
        let s = corpus.merge(&[bug("defect:gcc-asan-d02", 3)], 100);
        assert_eq!(s, MergeSummary { new: 1, known: 0 });
        drop(corpus);

        // Second invocation re-finds the same bug.
        let mut corpus = BugCorpus::open(&dir);
        assert_eq!(corpus.len(), 1);
        let s = corpus.merge(&[bug("defect:gcc-asan-d02", 2), bug("defect:other", 1)], 200);
        assert_eq!(s, MergeSummary { new: 1, known: 1 });
        let entry = &corpus.entries()["defect:gcc-asan-d02"];
        assert_eq!((entry.first_seen, entry.last_seen), (100, 200));
        assert_eq!(entry.campaigns, 2);
        assert_eq!(entry.total_duplicates, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_torn_tail_is_flagged_not_silent() {
        let dir = tmp_dir("torn");
        let mut corpus = BugCorpus::open(&dir);
        corpus.merge(&[bug("a", 1), bug("b", 1)], 1);
        let path = corpus.path().to_path_buf();
        drop(corpus);
        // Flip a byte inside the LAST record's payload: entry "a" survives,
        // "b" fails its checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();

        let corpus = BugCorpus::open(&dir);
        assert_eq!(corpus.len(), 1, "valid prefix loads");
        assert!(corpus.telemetry().tail_truncated(), "loss must be flagged");
        assert!(
            corpus.telemetry().events().iter().any(|e| e.contains("tail dropped")),
            "{:?}",
            corpus.telemetry().events()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_corpus_cold_starts() {
        let dir = tmp_dir("corrupt");
        let mut corpus = BugCorpus::open(&dir);
        corpus.merge(&[bug("k", 1)], 1);
        let path = corpus.path().to_path_buf();
        drop(corpus);
        std::fs::write(&path, b"not a corpus at all").unwrap();
        let corpus = BugCorpus::open(&dir);
        assert!(corpus.is_empty());
        assert!(corpus.telemetry().recovered_cold());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
