//! Hand-rolled serialization for the compiler IR ([`Module`]) and the VM
//! result vocabulary ([`RunResult`]).
//!
//! No serde (the workspace is offline and dependency-free by policy): every
//! type is encoded with explicit tag bytes over the [`crate::wire`]
//! primitives. Decoding validates every tag and every length; malformed
//! bytes produce a [`WireError`], never a panic or an unbounded allocation.
//!
//! Module payloads use the **v2 compact encoding**: two interning side
//! tables (strings, [`Loc`]s) in first-use order, followed by a body whose
//! ints are LEB128 varints and whose strings/locations are table indices.
//! Locations and names repeat heavily across the instructions of one module
//! (every instruction carries a `Loc`; sanitizer checks duplicate their
//! operand sites), so interning plus varints roughly halves the on-disk
//! module size — the `prefix.bin` warm-start I/O bottleneck. The encoding
//! stays self-delimiting, so a module can be spliced mid-payload (the
//! checkpoint log does). Fixed-width [`enc_compiler`]/[`enc_opt`] survive
//! unchanged: store entry heads decode keys at fixed positions.
//!
//! Two invariants the store layers rely on:
//!
//! * **Faithful, byte-stable round trip** — `decode(encode(m)) == m` and
//!   `encode(decode(b)) == b` for every module the pipeline can produce
//!   (property-tested in `tests/robustness.rs`); interning order is
//!   first-use order, which the decode walk reproduces exactly. This is
//!   what makes replaying a checkpointed compile bit-identical to
//!   recompiling it.
//! * **Interned defect ids** — `SanMeta::applied_defects` carries `&'static
//!   str` ids; decoding re-interns through [`DefectRegistry::get`], so an id
//!   unknown to this build (e.g. a store written by a different defect
//!   corpus) is corruption, which the store above turns into a cold start.

use std::collections::HashMap;

use crate::wire::{Dec, Enc, WireError};
use ubfuzz_minic::types::{IntType, IntWidth};
use ubfuzz_minic::Loc;
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::ir::{
    BinKind, Block, Func, GlobalDef, Instr, Meta, Module, MsanPolicy, MsanUse, Op, Operand,
    SanMeta, Sanitizer, Slot, Term, UnKind,
};
use ubfuzz_simcc::target::{BuildInfo, CompilerId, OptLevel, Vendor};
use ubfuzz_simvm::{CrashKind, ReportKind, RunResult, SanReport};

// ---- small leaf types ----

pub(crate) fn enc_vendor(e: &mut Enc, v: Vendor) {
    e.u8(match v {
        Vendor::Gcc => 0,
        Vendor::Llvm => 1,
    });
}

pub(crate) fn dec_vendor(d: &mut Dec<'_>) -> Result<Vendor, WireError> {
    match d.u8()? {
        0 => Ok(Vendor::Gcc),
        1 => Ok(Vendor::Llvm),
        _ => Err(WireError::Corrupt("vendor")),
    }
}

/// Encodes an optimization level tag (also used by the prefix-store keys).
pub fn enc_opt(e: &mut Enc, o: OptLevel) {
    e.u8(match o {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::Os => 2,
        OptLevel::O2 => 3,
        OptLevel::O3 => 4,
    });
}

/// Decodes an optimization level tag.
pub fn dec_opt(d: &mut Dec<'_>) -> Result<OptLevel, WireError> {
    match d.u8()? {
        0 => Ok(OptLevel::O0),
        1 => Ok(OptLevel::O1),
        2 => Ok(OptLevel::Os),
        3 => Ok(OptLevel::O2),
        4 => Ok(OptLevel::O3),
        _ => Err(WireError::Corrupt("opt level")),
    }
}

/// Encodes a compiler identity (vendor + version).
pub fn enc_compiler(e: &mut Enc, c: CompilerId) {
    enc_vendor(e, c.vendor);
    e.u32(c.version);
}

/// Decodes a compiler identity.
pub fn dec_compiler(d: &mut Dec<'_>) -> Result<CompilerId, WireError> {
    Ok(CompilerId { vendor: dec_vendor(d)?, version: d.u32()? })
}

/// Encodes a sanitizer tag (also used by the sanitized-store keys).
pub fn enc_sanitizer(e: &mut Enc, s: Sanitizer) {
    e.u8(match s {
        Sanitizer::Asan => 0,
        Sanitizer::Ubsan => 1,
        Sanitizer::Msan => 2,
    });
}

/// Decodes a sanitizer tag.
pub fn dec_sanitizer(d: &mut Dec<'_>) -> Result<Sanitizer, WireError> {
    match d.u8()? {
        0 => Ok(Sanitizer::Asan),
        1 => Ok(Sanitizer::Ubsan),
        2 => Ok(Sanitizer::Msan),
        _ => Err(WireError::Corrupt("sanitizer")),
    }
}

fn enc_int_type(e: &mut Enc, t: IntType) {
    let w = match t.width {
        IntWidth::W8 => 0,
        IntWidth::W16 => 1,
        IntWidth::W32 => 2,
        IntWidth::W64 => 3,
    };
    e.u8(w | ((t.signed as u8) << 4));
}

fn dec_int_type(d: &mut Dec<'_>) -> Result<IntType, WireError> {
    let b = d.u8()?;
    let width = match b & 0x0F {
        0 => IntWidth::W8,
        1 => IntWidth::W16,
        2 => IntWidth::W32,
        3 => IntWidth::W64,
        _ => return Err(WireError::Corrupt("int width")),
    };
    match b >> 4 {
        0 => Ok(IntType { width, signed: false }),
        1 => Ok(IntType { width, signed: true }),
        _ => Err(WireError::Corrupt("int type")),
    }
}

// ---- the v2 interning context ----

/// Encode-side interning state: strings and [`Loc`]s are assigned indices in
/// first-use order while the body is encoded into a scratch buffer; the
/// tables are then written ahead of the body. First-use order makes the
/// re-encode of a decoded module byte-identical.
#[derive(Debug, Default)]
struct ModEnc {
    strings: Vec<String>,
    string_idx: HashMap<String, u32>,
    locs: Vec<Loc>,
    loc_idx: HashMap<Loc, u32>,
    body: Enc,
}

impl ModEnc {
    fn istr(&mut self, s: &str) {
        let idx = match self.string_idx.get(s) {
            Some(&i) => i,
            None => {
                let i = self.strings.len() as u32;
                self.strings.push(s.to_string());
                self.string_idx.insert(s.to_string(), i);
                i
            }
        };
        self.body.vu32(idx);
    }

    fn iloc(&mut self, loc: Loc) {
        let idx = match self.loc_idx.get(&loc) {
            Some(&i) => i,
            None => {
                let i = self.locs.len() as u32;
                self.locs.push(loc);
                self.loc_idx.insert(loc, i);
                i
            }
        };
        self.body.vu32(idx);
    }
}

/// Decode-side interning state: the side tables, read ahead of the body.
/// Body indices past a table's end are corruption, never a panic.
#[derive(Debug)]
struct ModDec {
    strings: Vec<String>,
    locs: Vec<Loc>,
}

impl ModDec {
    fn read_tables(d: &mut Dec<'_>) -> Result<ModDec, WireError> {
        let n = d.vcount(1)?;
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(d.vstr()?);
        }
        let n = d.vcount(2)?;
        let mut locs = Vec::with_capacity(n);
        for _ in 0..n {
            locs.push(Loc { line: d.vu32()?, col: d.vu32()? });
        }
        Ok(ModDec { strings, locs })
    }

    fn istr(&self, d: &mut Dec<'_>) -> Result<&str, WireError> {
        let i = d.vusize()?;
        self.strings.get(i).map(String::as_str).ok_or(WireError::Corrupt("string index"))
    }

    fn iloc(&self, d: &mut Dec<'_>) -> Result<Loc, WireError> {
        let i = d.vusize()?;
        self.locs.get(i).copied().ok_or(WireError::Corrupt("loc index"))
    }
}

fn enc_operand(e: &mut Enc, o: Operand) {
    match o {
        Operand::Reg(r) => {
            e.u8(0);
            e.vu32(r);
        }
        Operand::Imm(v) => {
            e.u8(1);
            e.vi64(v);
        }
    }
}

fn dec_operand(d: &mut Dec<'_>) -> Result<Operand, WireError> {
    match d.u8()? {
        0 => Ok(Operand::Reg(d.vu32()?)),
        1 => Ok(Operand::Imm(d.vi64()?)),
        _ => Err(WireError::Corrupt("operand")),
    }
}

fn enc_bin_kind(e: &mut Enc, k: BinKind) {
    e.u8(match k {
        BinKind::Add => 0,
        BinKind::Sub => 1,
        BinKind::Mul => 2,
        BinKind::Div => 3,
        BinKind::Rem => 4,
        BinKind::Shl => 5,
        BinKind::Shr => 6,
        BinKind::And => 7,
        BinKind::Or => 8,
        BinKind::Xor => 9,
        BinKind::Lt => 10,
        BinKind::Le => 11,
        BinKind::Gt => 12,
        BinKind::Ge => 13,
        BinKind::Eq => 14,
        BinKind::Ne => 15,
    });
}

fn dec_bin_kind(d: &mut Dec<'_>) -> Result<BinKind, WireError> {
    Ok(match d.u8()? {
        0 => BinKind::Add,
        1 => BinKind::Sub,
        2 => BinKind::Mul,
        3 => BinKind::Div,
        4 => BinKind::Rem,
        5 => BinKind::Shl,
        6 => BinKind::Shr,
        7 => BinKind::And,
        8 => BinKind::Or,
        9 => BinKind::Xor,
        10 => BinKind::Lt,
        11 => BinKind::Le,
        12 => BinKind::Gt,
        13 => BinKind::Ge,
        14 => BinKind::Eq,
        15 => BinKind::Ne,
        _ => return Err(WireError::Corrupt("bin kind")),
    })
}

fn enc_un_kind(e: &mut Enc, k: UnKind) {
    e.u8(match k {
        UnKind::Neg => 0,
        UnKind::Not => 1,
        UnKind::LogicalNot => 2,
    });
}

fn dec_un_kind(d: &mut Dec<'_>) -> Result<UnKind, WireError> {
    match d.u8()? {
        0 => Ok(UnKind::Neg),
        1 => Ok(UnKind::Not),
        2 => Ok(UnKind::LogicalNot),
        _ => Err(WireError::Corrupt("un kind")),
    }
}

fn enc_msan_use(e: &mut Enc, u: MsanUse) {
    e.u8(match u {
        MsanUse::Branch => 0,
        MsanUse::Divisor => 1,
        MsanUse::Output => 2,
    });
}

fn dec_msan_use(d: &mut Dec<'_>) -> Result<MsanUse, WireError> {
    match d.u8()? {
        0 => Ok(MsanUse::Branch),
        1 => Ok(MsanUse::Divisor),
        2 => Ok(MsanUse::Output),
        _ => Err(WireError::Corrupt("msan use")),
    }
}

fn enc_meta(e: &mut Enc, m: Meta) {
    let bits = (m.sanitize as u8)
        | ((m.bool_widened as u8) << 1)
        | ((m.rmw as u8) << 2)
        | ((m.char_shift_amount as u8) << 3)
        | ((m.inlined as u8) << 4);
    e.u8(bits);
}

fn dec_meta(d: &mut Dec<'_>) -> Result<Meta, WireError> {
    let bits = d.u8()?;
    if bits & !0x1F != 0 {
        return Err(WireError::Corrupt("meta bits"));
    }
    Ok(Meta {
        sanitize: bits & 1 != 0,
        bool_widened: bits & 2 != 0,
        rmw: bits & 4 != 0,
        char_shift_amount: bits & 8 != 0,
        inlined: bits & 16 != 0,
    })
}

// ---- instructions ----

fn enc_op(me: &mut ModEnc, op: &Op) {
    match op {
        Op::Const(v) => {
            me.body.u8(0);
            me.body.vi64(*v);
        }
        Op::Bin { op, a, b, ty } => {
            me.body.u8(1);
            enc_bin_kind(&mut me.body, *op);
            enc_operand(&mut me.body, *a);
            enc_operand(&mut me.body, *b);
            enc_int_type(&mut me.body, *ty);
        }
        Op::Un { op, a, ty } => {
            me.body.u8(2);
            enc_un_kind(&mut me.body, *op);
            enc_operand(&mut me.body, *a);
            enc_int_type(&mut me.body, *ty);
        }
        Op::Cast { a, to } => {
            me.body.u8(3);
            enc_operand(&mut me.body, *a);
            enc_int_type(&mut me.body, *to);
        }
        Op::AddrLocal(s) => {
            me.body.u8(4);
            me.body.vusize(*s);
        }
        Op::AddrGlobal(g) => {
            me.body.u8(5);
            me.body.vusize(*g);
        }
        Op::PtrAdd { base, offset, scale } => {
            me.body.u8(6);
            enc_operand(&mut me.body, *base);
            enc_operand(&mut me.body, *offset);
            me.body.vi64(*scale);
        }
        Op::Load { addr, size, signed } => {
            me.body.u8(7);
            enc_operand(&mut me.body, *addr);
            me.body.u8(*size);
            me.body.bool(*signed);
        }
        Op::Store { addr, val, size } => {
            me.body.u8(8);
            enc_operand(&mut me.body, *addr);
            enc_operand(&mut me.body, *val);
            me.body.u8(*size);
        }
        Op::MemCopy { dst, src, len } => {
            me.body.u8(9);
            enc_operand(&mut me.body, *dst);
            enc_operand(&mut me.body, *src);
            me.body.vu32(*len);
        }
        Op::Call { callee, args } => {
            me.body.u8(10);
            me.istr(callee);
            me.body.vusize(args.len());
            for a in args {
                enc_operand(&mut me.body, *a);
            }
        }
        Op::Malloc { size } => {
            me.body.u8(11);
            enc_operand(&mut me.body, *size);
        }
        Op::Free { addr } => {
            me.body.u8(12);
            enc_operand(&mut me.body, *addr);
        }
        Op::Print { val } => {
            me.body.u8(13);
            enc_operand(&mut me.body, *val);
        }
        Op::LifetimeStart(s) => {
            me.body.u8(14);
            me.body.vusize(*s);
        }
        Op::LifetimeEnd(s) => {
            me.body.u8(15);
            me.body.vusize(*s);
        }
        Op::AsanCheck { addr, size, write } => {
            me.body.u8(16);
            enc_operand(&mut me.body, *addr);
            me.body.u8(*size);
            me.body.bool(*write);
        }
        Op::AsanPoisonScope(s) => {
            me.body.u8(17);
            me.body.vusize(*s);
        }
        Op::AsanUnpoisonScope(s) => {
            me.body.u8(18);
            me.body.vusize(*s);
        }
        Op::UbsanCheckArith { op, a, b, ty } => {
            me.body.u8(19);
            enc_bin_kind(&mut me.body, *op);
            enc_operand(&mut me.body, *a);
            enc_operand(&mut me.body, *b);
            enc_int_type(&mut me.body, *ty);
        }
        Op::UbsanCheckNeg { a, ty } => {
            me.body.u8(20);
            enc_operand(&mut me.body, *a);
            enc_int_type(&mut me.body, *ty);
        }
        Op::UbsanCheckShift { amount, bits } => {
            me.body.u8(21);
            enc_operand(&mut me.body, *amount);
            me.body.u8(*bits);
        }
        Op::UbsanCheckDiv { a, divisor, ty } => {
            me.body.u8(22);
            enc_operand(&mut me.body, *a);
            enc_operand(&mut me.body, *divisor);
            enc_int_type(&mut me.body, *ty);
        }
        Op::UbsanCheckNull { addr } => {
            me.body.u8(23);
            enc_operand(&mut me.body, *addr);
        }
        Op::UbsanCheckBound { idx, bound } => {
            me.body.u8(24);
            enc_operand(&mut me.body, *idx);
            me.body.vu64(*bound);
        }
        Op::MsanCheck { val, what } => {
            me.body.u8(25);
            enc_operand(&mut me.body, *val);
            enc_msan_use(&mut me.body, *what);
        }
    }
}

fn dec_op(md: &ModDec, d: &mut Dec<'_>) -> Result<Op, WireError> {
    Ok(match d.u8()? {
        0 => Op::Const(d.vi64()?),
        1 => Op::Bin {
            op: dec_bin_kind(d)?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        2 => Op::Un { op: dec_un_kind(d)?, a: dec_operand(d)?, ty: dec_int_type(d)? },
        3 => Op::Cast { a: dec_operand(d)?, to: dec_int_type(d)? },
        4 => Op::AddrLocal(d.vusize()?),
        5 => Op::AddrGlobal(d.vusize()?),
        6 => Op::PtrAdd { base: dec_operand(d)?, offset: dec_operand(d)?, scale: d.vi64()? },
        7 => Op::Load { addr: dec_operand(d)?, size: d.u8()?, signed: d.bool()? },
        8 => Op::Store { addr: dec_operand(d)?, val: dec_operand(d)?, size: d.u8()? },
        9 => Op::MemCopy { dst: dec_operand(d)?, src: dec_operand(d)?, len: d.vu32()? },
        10 => {
            let callee = md.istr(d)?.to_string();
            let n = d.vcount(2)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(dec_operand(d)?);
            }
            Op::Call { callee, args }
        }
        11 => Op::Malloc { size: dec_operand(d)? },
        12 => Op::Free { addr: dec_operand(d)? },
        13 => Op::Print { val: dec_operand(d)? },
        14 => Op::LifetimeStart(d.vusize()?),
        15 => Op::LifetimeEnd(d.vusize()?),
        16 => Op::AsanCheck { addr: dec_operand(d)?, size: d.u8()?, write: d.bool()? },
        17 => Op::AsanPoisonScope(d.vusize()?),
        18 => Op::AsanUnpoisonScope(d.vusize()?),
        19 => Op::UbsanCheckArith {
            op: dec_bin_kind(d)?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        20 => Op::UbsanCheckNeg { a: dec_operand(d)?, ty: dec_int_type(d)? },
        21 => Op::UbsanCheckShift { amount: dec_operand(d)?, bits: d.u8()? },
        22 => Op::UbsanCheckDiv {
            a: dec_operand(d)?,
            divisor: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        23 => Op::UbsanCheckNull { addr: dec_operand(d)? },
        24 => Op::UbsanCheckBound { idx: dec_operand(d)?, bound: d.vu64()? },
        25 => Op::MsanCheck { val: dec_operand(d)?, what: dec_msan_use(d)? },
        _ => return Err(WireError::Corrupt("op tag")),
    })
}

fn enc_instr(me: &mut ModEnc, i: &Instr) {
    match i.dst {
        Some(r) => {
            me.body.u8(1);
            me.body.vu32(r);
        }
        None => me.body.u8(0),
    }
    enc_op(me, &i.op);
    me.iloc(i.loc);
    enc_meta(&mut me.body, i.meta);
}

fn dec_instr(md: &ModDec, d: &mut Dec<'_>) -> Result<Instr, WireError> {
    let dst = match d.u8()? {
        0 => None,
        1 => Some(d.vu32()?),
        _ => return Err(WireError::Corrupt("instr dst")),
    };
    Ok(Instr { dst, op: dec_op(md, d)?, loc: md.iloc(d)?, meta: dec_meta(d)? })
}

fn enc_term(e: &mut Enc, t: &Term) {
    match t {
        Term::Jmp(b) => {
            e.u8(0);
            e.vusize(*b);
        }
        Term::Br { cond, then_bb, else_bb } => {
            e.u8(1);
            enc_operand(e, *cond);
            e.vusize(*then_bb);
            e.vusize(*else_bb);
        }
        Term::Ret(None) => e.u8(2),
        Term::Ret(Some(v)) => {
            e.u8(3);
            enc_operand(e, *v);
        }
    }
}

fn dec_term(d: &mut Dec<'_>) -> Result<Term, WireError> {
    Ok(match d.u8()? {
        0 => Term::Jmp(d.vusize()?),
        1 => Term::Br { cond: dec_operand(d)?, then_bb: d.vusize()?, else_bb: d.vusize()? },
        2 => Term::Ret(None),
        3 => Term::Ret(Some(dec_operand(d)?)),
        _ => return Err(WireError::Corrupt("terminator")),
    })
}

fn enc_block(me: &mut ModEnc, b: &Block) {
    me.body.vusize(b.instrs.len());
    for i in &b.instrs {
        enc_instr(me, i);
    }
    match &b.term {
        Some(t) => {
            me.body.u8(1);
            enc_term(&mut me.body, t);
        }
        // `None` is transient during construction, but a cached prefix is a
        // finished stage output, so encode it faithfully anyway.
        None => me.body.u8(0),
    }
}

fn dec_block(md: &ModDec, d: &mut Dec<'_>) -> Result<Block, WireError> {
    let n = d.vcount(4)?;
    let mut instrs = Vec::with_capacity(n);
    for _ in 0..n {
        instrs.push(dec_instr(md, d)?);
    }
    let term = match d.u8()? {
        0 => None,
        1 => Some(dec_term(d)?),
        _ => return Err(WireError::Corrupt("block term")),
    };
    Ok(Block { instrs, term })
}

fn enc_slot(me: &mut ModEnc, s: &Slot) {
    me.istr(&s.name);
    me.body.vu32(s.size);
    me.body.vu32(s.scope_depth);
    me.body.bool(s.address_taken);
}

fn dec_slot(md: &ModDec, d: &mut Dec<'_>) -> Result<Slot, WireError> {
    Ok(Slot {
        name: md.istr(d)?.to_string(),
        size: d.vu32()?,
        scope_depth: d.vu32()?,
        address_taken: d.bool()?,
    })
}

fn enc_func(me: &mut ModEnc, f: &Func) {
    me.istr(&f.name);
    me.body.vusize(f.params.len());
    for p in &f.params {
        me.body.vu32(*p);
    }
    me.body.vusize(f.slots.len());
    for s in &f.slots {
        enc_slot(me, s);
    }
    me.body.vusize(f.blocks.len());
    for b in &f.blocks {
        enc_block(me, b);
    }
    me.body.vu32(f.next_reg);
}

fn dec_func(md: &ModDec, d: &mut Dec<'_>) -> Result<Func, WireError> {
    let name = md.istr(d)?.to_string();
    let n = d.vcount(1)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(d.vu32()?);
    }
    let n = d.vcount(4)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(dec_slot(md, d)?);
    }
    let n = d.vcount(2)?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(dec_block(md, d)?);
    }
    Ok(Func { name, params, slots, blocks, next_reg: d.vu32()? })
}

fn enc_global(me: &mut ModEnc, g: &GlobalDef) {
    me.istr(&g.name);
    me.body.vu32(g.size);
    me.body.vbytes(&g.init);
    me.body.vusize(g.relocs.len());
    for (off, gid, addend) in &g.relocs {
        me.body.vu32(*off);
        me.body.vusize(*gid);
        me.body.vi64(*addend);
    }
    me.body.vu32(g.elem_size);
    me.body.vu32(g.elem_count);
}

fn dec_global(md: &ModDec, d: &mut Dec<'_>) -> Result<GlobalDef, WireError> {
    let name = md.istr(d)?.to_string();
    let size = d.vu32()?;
    let init = d.vblob()?.to_vec();
    let n = d.vcount(3)?;
    let mut relocs = Vec::with_capacity(n);
    for _ in 0..n {
        relocs.push((d.vu32()?, d.vusize()?, d.vi64()?));
    }
    Ok(GlobalDef { name, size, init, relocs, elem_size: d.vu32()?, elem_count: d.vu32()? })
}

fn enc_san_meta(me: &mut ModEnc, s: &SanMeta) {
    match s.sanitizer {
        Some(san) => {
            me.body.u8(1);
            enc_sanitizer(&mut me.body, san);
        }
        None => me.body.u8(0),
    }
    me.body.vusize(s.global_redzone_gaps.len());
    for (gid, bytes) in &s.global_redzone_gaps {
        me.body.vusize(*gid);
        me.body.vu32(*bytes);
    }
    me.body.bool(s.msan_policy.sub_const_fully_defined);
    me.body.vusize(s.applied_defects.len());
    for (id, loc) in &s.applied_defects {
        me.istr(id);
        me.iloc(*loc);
    }
    me.body.vusize(s.legit_transforms.len());
    for loc in &s.legit_transforms {
        me.iloc(*loc);
    }
    me.body.vusize(s.skipped_sites.len());
    for loc in &s.skipped_sites {
        me.iloc(*loc);
    }
}

fn dec_san_meta(md: &ModDec, d: &mut Dec<'_>) -> Result<SanMeta, WireError> {
    let sanitizer = match d.u8()? {
        0 => None,
        1 => Some(dec_sanitizer(d)?),
        _ => return Err(WireError::Corrupt("san meta")),
    };
    let n = d.vcount(2)?;
    let mut global_redzone_gaps = Vec::with_capacity(n);
    for _ in 0..n {
        global_redzone_gaps.push((d.vusize()?, d.vu32()?));
    }
    let msan_policy = MsanPolicy { sub_const_fully_defined: d.bool()? };
    let n = d.vcount(2)?;
    let mut applied_defects = Vec::with_capacity(n);
    for _ in 0..n {
        let id = md.istr(d)?;
        // Re-intern through the registry: the in-memory type is `&'static
        // str`, and an id this build does not know cannot be represented —
        // the store above degrades to recompiling.
        let interned = DefectRegistry::get(id).ok_or(WireError::Corrupt("unknown defect id"))?.id;
        let loc = md.iloc(d)?;
        applied_defects.push((interned, loc));
    }
    let n = d.vcount(1)?;
    let mut legit_transforms = Vec::with_capacity(n);
    for _ in 0..n {
        legit_transforms.push(md.iloc(d)?);
    }
    let n = d.vcount(1)?;
    let mut skipped_sites = Vec::with_capacity(n);
    for _ in 0..n {
        skipped_sites.push(md.iloc(d)?);
    }
    Ok(SanMeta {
        sanitizer,
        global_redzone_gaps,
        msan_policy,
        applied_defects,
        legit_transforms,
        skipped_sites,
    })
}

fn enc_module_body(me: &mut ModEnc, m: &Module) {
    me.body.vusize(m.globals.len());
    for g in &m.globals {
        enc_global(me, g);
    }
    me.body.vusize(m.funcs.len());
    for f in &m.funcs {
        enc_func(me, f);
    }
    enc_san_meta(me, &m.san);
    match &m.build {
        Some(b) => {
            me.body.u8(1);
            enc_compiler(&mut me.body, b.compiler);
            enc_opt(&mut me.body, b.opt);
        }
        None => me.body.u8(0),
    }
}

/// Encodes a [`Module`] into `e` (v2: interning tables, then varint body).
pub fn enc_module(e: &mut Enc, m: &Module) {
    let mut me = ModEnc::default();
    enc_module_body(&mut me, m);
    e.vusize(me.strings.len());
    for s in &me.strings {
        e.vstr(s);
    }
    e.vusize(me.locs.len());
    for loc in &me.locs {
        e.vu32(loc.line);
        e.vu32(loc.col);
    }
    e.raw(&me.body.into_bytes());
}

/// Decodes a [`Module`] from `d`.
pub fn dec_module(d: &mut Dec<'_>) -> Result<Module, WireError> {
    let md = ModDec::read_tables(d)?;
    let n = d.vcount(4)?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(dec_global(&md, d)?);
    }
    let n = d.vcount(4)?;
    let mut funcs = Vec::with_capacity(n);
    for _ in 0..n {
        funcs.push(dec_func(&md, d)?);
    }
    let san = dec_san_meta(&md, d)?;
    let build = match d.u8()? {
        0 => None,
        1 => Some(BuildInfo { compiler: dec_compiler(d)?, opt: dec_opt(d)? }),
        _ => return Err(WireError::Corrupt("build info")),
    };
    Ok(Module { globals, funcs, san, build })
}

/// Serializes a module to standalone bytes.
pub fn module_to_bytes(m: &Module) -> Vec<u8> {
    let mut e = Enc::new();
    enc_module(&mut e, m);
    e.into_bytes()
}

/// Deserializes a module from standalone bytes, requiring full consumption.
pub fn module_from_bytes(bytes: &[u8]) -> Result<Module, WireError> {
    let mut d = Dec::new(bytes);
    let m = dec_module(&mut d)?;
    d.finish()?;
    Ok(m)
}

// ---- run results ----

fn enc_report_kind(e: &mut Enc, k: ReportKind) {
    e.u8(match k {
        ReportKind::StackBufOverflow => 0,
        ReportKind::GlobalBufOverflow => 1,
        ReportKind::HeapBufOverflow => 2,
        ReportKind::UseAfterFree => 3,
        ReportKind::UseAfterScope => 4,
        ReportKind::SignedIntOverflow => 5,
        ReportKind::NegOverflow => 6,
        ReportKind::ShiftOob => 7,
        ReportKind::DivByZero => 8,
        ReportKind::NullDeref => 9,
        ReportKind::ArrayBound => 10,
        ReportKind::UninitUse => 11,
        ReportKind::BadFree => 12,
    });
}

fn dec_report_kind(d: &mut Dec<'_>) -> Result<ReportKind, WireError> {
    Ok(match d.u8()? {
        0 => ReportKind::StackBufOverflow,
        1 => ReportKind::GlobalBufOverflow,
        2 => ReportKind::HeapBufOverflow,
        3 => ReportKind::UseAfterFree,
        4 => ReportKind::UseAfterScope,
        5 => ReportKind::SignedIntOverflow,
        6 => ReportKind::NegOverflow,
        7 => ReportKind::ShiftOob,
        8 => ReportKind::DivByZero,
        9 => ReportKind::NullDeref,
        10 => ReportKind::ArrayBound,
        11 => ReportKind::UninitUse,
        12 => ReportKind::BadFree,
        _ => return Err(WireError::Corrupt("report kind")),
    })
}

fn enc_loc(e: &mut Enc, loc: Loc) {
    e.u32(loc.line);
    e.u32(loc.col);
}

fn dec_loc(d: &mut Dec<'_>) -> Result<Loc, WireError> {
    Ok(Loc { line: d.u32()?, col: d.u32()? })
}

/// Encodes a [`RunResult`] into `e`.
pub fn enc_run_result(e: &mut Enc, r: &RunResult) {
    match r {
        RunResult::Exit { status, output } => {
            e.u8(0);
            e.i64(*status);
            e.u32(output.len() as u32);
            for v in output {
                e.i64(*v);
            }
        }
        RunResult::Report(rep) => {
            e.u8(1);
            enc_sanitizer(e, rep.sanitizer);
            enc_report_kind(e, rep.kind);
            enc_loc(e, rep.loc);
        }
        RunResult::Crash { kind, loc } => {
            e.u8(2);
            e.u8(match kind {
                CrashKind::Segv => 0,
                CrashKind::Fpe => 1,
            });
            enc_loc(e, *loc);
        }
        RunResult::Timeout => e.u8(3),
        RunResult::Error(msg) => {
            e.u8(4);
            e.str(msg);
        }
    }
}

/// Decodes a [`RunResult`] from `d`.
pub fn dec_run_result(d: &mut Dec<'_>) -> Result<RunResult, WireError> {
    Ok(match d.u8()? {
        0 => {
            let status = d.i64()?;
            let n = d.count(8)?;
            let mut output = Vec::with_capacity(n);
            for _ in 0..n {
                output.push(d.i64()?);
            }
            RunResult::Exit { status, output }
        }
        1 => RunResult::Report(SanReport {
            sanitizer: dec_sanitizer(d)?,
            kind: dec_report_kind(d)?,
            loc: dec_loc(d)?,
        }),
        2 => {
            let kind = match d.u8()? {
                0 => CrashKind::Segv,
                1 => CrashKind::Fpe,
                _ => return Err(WireError::Corrupt("crash kind")),
            };
            RunResult::Crash { kind, loc: dec_loc(d)? }
        }
        3 => RunResult::Timeout,
        4 => RunResult::Error(d.str()?),
        _ => return Err(WireError::Corrupt("run result")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};

    fn modules() -> Vec<Module> {
        let reg = DefectRegistry::full();
        let p = parse(
            "int g[4]; int main(void) { int i = 1; g[i] = 3; int *p = g; return *p + g[0] / (i + 1); }",
        )
        .unwrap();
        let mut out = Vec::new();
        for vendor in Vendor::ALL {
            for opt in [OptLevel::O0, OptLevel::O2] {
                for sanitizer in [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan)] {
                    let cfg = CompileConfig::dev(vendor, opt, sanitizer, &reg);
                    if let Ok(m) = compile(&p, &cfg) {
                        out.push(m);
                    }
                }
            }
        }
        assert!(!out.is_empty());
        out
    }

    #[test]
    fn pipeline_modules_round_trip() {
        for m in modules() {
            let bytes = module_to_bytes(&m);
            let back = module_from_bytes(&bytes).unwrap();
            assert_eq!(m, back);
            // Re-encoding is byte-stable (the framing checksum depends on it).
            assert_eq!(bytes, module_to_bytes(&back));
        }
    }

    #[test]
    fn interned_encoding_is_compact() {
        // The v2 interned/varint encoding must beat a naive lower bound: the
        // per-instruction `Loc` alone was 8 fixed bytes in v1, so a module
        // with I instructions must now be well under 8·I bytes of location
        // data. Assert the aggregate win instead: each module's encoding is
        // smaller than instrs·8 + strings·naive — in practice v2 halves v1.
        for m in modules() {
            let instrs: usize =
                m.funcs.iter().flat_map(|f| &f.blocks).map(|b| b.instrs.len()).sum();
            let bytes = module_to_bytes(&m);
            // v1 spent ≥ 8 bytes/instr on Loc + ≥ 2 on dst/meta + ≥ 1 op tag.
            assert!(
                bytes.len() < instrs * 11 + 256,
                "v2 must undercut the v1 fixed-width floor: {} bytes for {} instrs",
                bytes.len(),
                instrs
            );
        }
    }

    #[test]
    fn run_results_round_trip() {
        let cases = [
            RunResult::Exit { status: -3, output: vec![1, -2, i64::MAX] },
            RunResult::Report(SanReport {
                sanitizer: Sanitizer::Msan,
                kind: ReportKind::UninitUse,
                loc: Loc::new(12, 4),
            }),
            RunResult::Crash { kind: CrashKind::Fpe, loc: Loc::new(3, 1) },
            RunResult::Timeout,
            RunResult::Error("bad module".into()),
        ];
        for r in cases {
            let mut e = Enc::new();
            enc_run_result(&mut e, &r);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_run_result(&mut d).unwrap(), r);
            d.finish().unwrap();
        }
    }

    #[test]
    fn unknown_defect_id_is_corruption_not_a_panic() {
        let mut m = modules().remove(0);
        m.san.applied_defects = vec![("gcc-asan-d01", Loc::new(1, 0))];
        let mut bytes = module_to_bytes(&m);
        // Flip a byte inside the defect-id string (it lives in the interned
        // string table, still a contiguous UTF-8 run in the payload).
        let pos = bytes.windows(12).position(|w| w == b"gcc-asan-d01").expect("id present");
        bytes[pos] = b'x';
        assert!(matches!(module_from_bytes(&bytes), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn out_of_range_table_index_is_corruption() {
        // A body referencing a string/loc index past its own table must be
        // corruption, never a panic. Encode a module with an empty program
        // and splice a huge index where the first global/func name goes.
        let m = modules().remove(0);
        let bytes = module_to_bytes(&m);
        // Corrupting the body's first table reference is fiddly to do
        // surgically; instead decode-check a hand-built payload: one empty
        // string table, zero locs, then a body asking for global 0 with
        // name index 7.
        let mut e = Enc::new();
        e.vusize(0); // string table: empty
        e.vusize(0); // loc table: empty
        e.vusize(1); // one global
        e.vu32(7); // name index 7 — out of range
        e.raw(&[0; 16]); // padding so the count sanity-bound passes
        let crafted = e.into_bytes();
        assert_eq!(module_from_bytes(&crafted), Err(WireError::Corrupt("string index")));
        // And sanity: the real module still decodes.
        assert!(module_from_bytes(&bytes).is_ok());
    }

    #[test]
    fn truncation_anywhere_is_an_error_never_a_panic() {
        let m = modules().remove(0);
        let bytes = module_to_bytes(&m);
        for cut in 0..bytes.len() {
            assert!(module_from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }
}
