//! Hand-rolled serialization for the compiler IR ([`Module`]) and the VM
//! result vocabulary ([`RunResult`]).
//!
//! No serde (the workspace is offline and dependency-free by policy): every
//! type is encoded with explicit tag bytes over the [`crate::wire`]
//! primitives. Decoding validates every tag and every length; malformed
//! bytes produce a [`WireError`], never a panic or an unbounded allocation.
//!
//! Two invariants the store layers rely on:
//!
//! * **Faithful round trip** — `decode(encode(m)) == m` for every module the
//!   pipeline can produce (property-tested in `tests/robustness.rs`). This
//!   is what makes replaying a checkpointed compile bit-identical to
//!   recompiling it.
//! * **Interned defect ids** — `SanMeta::applied_defects` carries `&'static
//!   str` ids; decoding re-interns through [`DefectRegistry::get`], so an id
//!   unknown to this build (e.g. a store written by a different defect
//!   corpus) is corruption, which the store above turns into a cold start.

use crate::wire::{Dec, Enc, WireError};
use ubfuzz_minic::types::{IntType, IntWidth};
use ubfuzz_minic::Loc;
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::ir::{
    BinKind, Block, Func, GlobalDef, Instr, Meta, Module, MsanPolicy, MsanUse, Op, Operand,
    SanMeta, Sanitizer, Slot, Term, UnKind,
};
use ubfuzz_simcc::target::{BuildInfo, CompilerId, OptLevel, Vendor};
use ubfuzz_simvm::{CrashKind, ReportKind, RunResult, SanReport};

// ---- small leaf types ----

fn enc_loc(e: &mut Enc, loc: Loc) {
    e.u32(loc.line);
    e.u32(loc.col);
}

fn dec_loc(d: &mut Dec<'_>) -> Result<Loc, WireError> {
    Ok(Loc { line: d.u32()?, col: d.u32()? })
}

fn enc_vendor(e: &mut Enc, v: Vendor) {
    e.u8(match v {
        Vendor::Gcc => 0,
        Vendor::Llvm => 1,
    });
}

fn dec_vendor(d: &mut Dec<'_>) -> Result<Vendor, WireError> {
    match d.u8()? {
        0 => Ok(Vendor::Gcc),
        1 => Ok(Vendor::Llvm),
        _ => Err(WireError::Corrupt("vendor")),
    }
}

/// Encodes an optimization level tag (also used by the prefix-store keys).
pub fn enc_opt(e: &mut Enc, o: OptLevel) {
    e.u8(match o {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::Os => 2,
        OptLevel::O2 => 3,
        OptLevel::O3 => 4,
    });
}

/// Decodes an optimization level tag.
pub fn dec_opt(d: &mut Dec<'_>) -> Result<OptLevel, WireError> {
    match d.u8()? {
        0 => Ok(OptLevel::O0),
        1 => Ok(OptLevel::O1),
        2 => Ok(OptLevel::Os),
        3 => Ok(OptLevel::O2),
        4 => Ok(OptLevel::O3),
        _ => Err(WireError::Corrupt("opt level")),
    }
}

/// Encodes a compiler identity (vendor + version).
pub fn enc_compiler(e: &mut Enc, c: CompilerId) {
    enc_vendor(e, c.vendor);
    e.u32(c.version);
}

/// Decodes a compiler identity.
pub fn dec_compiler(d: &mut Dec<'_>) -> Result<CompilerId, WireError> {
    Ok(CompilerId { vendor: dec_vendor(d)?, version: d.u32()? })
}

fn enc_sanitizer(e: &mut Enc, s: Sanitizer) {
    e.u8(match s {
        Sanitizer::Asan => 0,
        Sanitizer::Ubsan => 1,
        Sanitizer::Msan => 2,
    });
}

fn dec_sanitizer(d: &mut Dec<'_>) -> Result<Sanitizer, WireError> {
    match d.u8()? {
        0 => Ok(Sanitizer::Asan),
        1 => Ok(Sanitizer::Ubsan),
        2 => Ok(Sanitizer::Msan),
        _ => Err(WireError::Corrupt("sanitizer")),
    }
}

fn enc_int_type(e: &mut Enc, t: IntType) {
    let w = match t.width {
        IntWidth::W8 => 0,
        IntWidth::W16 => 1,
        IntWidth::W32 => 2,
        IntWidth::W64 => 3,
    };
    e.u8(w | ((t.signed as u8) << 4));
}

fn dec_int_type(d: &mut Dec<'_>) -> Result<IntType, WireError> {
    let b = d.u8()?;
    let width = match b & 0x0F {
        0 => IntWidth::W8,
        1 => IntWidth::W16,
        2 => IntWidth::W32,
        3 => IntWidth::W64,
        _ => return Err(WireError::Corrupt("int width")),
    };
    match b >> 4 {
        0 => Ok(IntType { width, signed: false }),
        1 => Ok(IntType { width, signed: true }),
        _ => Err(WireError::Corrupt("int type")),
    }
}

fn enc_operand(e: &mut Enc, o: Operand) {
    match o {
        Operand::Reg(r) => {
            e.u8(0);
            e.u32(r);
        }
        Operand::Imm(v) => {
            e.u8(1);
            e.i64(v);
        }
    }
}

fn dec_operand(d: &mut Dec<'_>) -> Result<Operand, WireError> {
    match d.u8()? {
        0 => Ok(Operand::Reg(d.u32()?)),
        1 => Ok(Operand::Imm(d.i64()?)),
        _ => Err(WireError::Corrupt("operand")),
    }
}

fn enc_bin_kind(e: &mut Enc, k: BinKind) {
    e.u8(match k {
        BinKind::Add => 0,
        BinKind::Sub => 1,
        BinKind::Mul => 2,
        BinKind::Div => 3,
        BinKind::Rem => 4,
        BinKind::Shl => 5,
        BinKind::Shr => 6,
        BinKind::And => 7,
        BinKind::Or => 8,
        BinKind::Xor => 9,
        BinKind::Lt => 10,
        BinKind::Le => 11,
        BinKind::Gt => 12,
        BinKind::Ge => 13,
        BinKind::Eq => 14,
        BinKind::Ne => 15,
    });
}

fn dec_bin_kind(d: &mut Dec<'_>) -> Result<BinKind, WireError> {
    Ok(match d.u8()? {
        0 => BinKind::Add,
        1 => BinKind::Sub,
        2 => BinKind::Mul,
        3 => BinKind::Div,
        4 => BinKind::Rem,
        5 => BinKind::Shl,
        6 => BinKind::Shr,
        7 => BinKind::And,
        8 => BinKind::Or,
        9 => BinKind::Xor,
        10 => BinKind::Lt,
        11 => BinKind::Le,
        12 => BinKind::Gt,
        13 => BinKind::Ge,
        14 => BinKind::Eq,
        15 => BinKind::Ne,
        _ => return Err(WireError::Corrupt("bin kind")),
    })
}

fn enc_un_kind(e: &mut Enc, k: UnKind) {
    e.u8(match k {
        UnKind::Neg => 0,
        UnKind::Not => 1,
        UnKind::LogicalNot => 2,
    });
}

fn dec_un_kind(d: &mut Dec<'_>) -> Result<UnKind, WireError> {
    match d.u8()? {
        0 => Ok(UnKind::Neg),
        1 => Ok(UnKind::Not),
        2 => Ok(UnKind::LogicalNot),
        _ => Err(WireError::Corrupt("un kind")),
    }
}

fn enc_msan_use(e: &mut Enc, u: MsanUse) {
    e.u8(match u {
        MsanUse::Branch => 0,
        MsanUse::Divisor => 1,
        MsanUse::Output => 2,
    });
}

fn dec_msan_use(d: &mut Dec<'_>) -> Result<MsanUse, WireError> {
    match d.u8()? {
        0 => Ok(MsanUse::Branch),
        1 => Ok(MsanUse::Divisor),
        2 => Ok(MsanUse::Output),
        _ => Err(WireError::Corrupt("msan use")),
    }
}

fn enc_meta(e: &mut Enc, m: Meta) {
    let bits = (m.sanitize as u8)
        | ((m.bool_widened as u8) << 1)
        | ((m.rmw as u8) << 2)
        | ((m.char_shift_amount as u8) << 3)
        | ((m.inlined as u8) << 4);
    e.u8(bits);
}

fn dec_meta(d: &mut Dec<'_>) -> Result<Meta, WireError> {
    let bits = d.u8()?;
    if bits & !0x1F != 0 {
        return Err(WireError::Corrupt("meta bits"));
    }
    Ok(Meta {
        sanitize: bits & 1 != 0,
        bool_widened: bits & 2 != 0,
        rmw: bits & 4 != 0,
        char_shift_amount: bits & 8 != 0,
        inlined: bits & 16 != 0,
    })
}

// ---- instructions ----

fn enc_op(e: &mut Enc, op: &Op) {
    match op {
        Op::Const(v) => {
            e.u8(0);
            e.i64(*v);
        }
        Op::Bin { op, a, b, ty } => {
            e.u8(1);
            enc_bin_kind(e, *op);
            enc_operand(e, *a);
            enc_operand(e, *b);
            enc_int_type(e, *ty);
        }
        Op::Un { op, a, ty } => {
            e.u8(2);
            enc_un_kind(e, *op);
            enc_operand(e, *a);
            enc_int_type(e, *ty);
        }
        Op::Cast { a, to } => {
            e.u8(3);
            enc_operand(e, *a);
            enc_int_type(e, *to);
        }
        Op::AddrLocal(s) => {
            e.u8(4);
            e.usize(*s);
        }
        Op::AddrGlobal(g) => {
            e.u8(5);
            e.usize(*g);
        }
        Op::PtrAdd { base, offset, scale } => {
            e.u8(6);
            enc_operand(e, *base);
            enc_operand(e, *offset);
            e.i64(*scale);
        }
        Op::Load { addr, size, signed } => {
            e.u8(7);
            enc_operand(e, *addr);
            e.u8(*size);
            e.bool(*signed);
        }
        Op::Store { addr, val, size } => {
            e.u8(8);
            enc_operand(e, *addr);
            enc_operand(e, *val);
            e.u8(*size);
        }
        Op::MemCopy { dst, src, len } => {
            e.u8(9);
            enc_operand(e, *dst);
            enc_operand(e, *src);
            e.u32(*len);
        }
        Op::Call { callee, args } => {
            e.u8(10);
            e.str(callee);
            e.u32(args.len() as u32);
            for a in args {
                enc_operand(e, *a);
            }
        }
        Op::Malloc { size } => {
            e.u8(11);
            enc_operand(e, *size);
        }
        Op::Free { addr } => {
            e.u8(12);
            enc_operand(e, *addr);
        }
        Op::Print { val } => {
            e.u8(13);
            enc_operand(e, *val);
        }
        Op::LifetimeStart(s) => {
            e.u8(14);
            e.usize(*s);
        }
        Op::LifetimeEnd(s) => {
            e.u8(15);
            e.usize(*s);
        }
        Op::AsanCheck { addr, size, write } => {
            e.u8(16);
            enc_operand(e, *addr);
            e.u8(*size);
            e.bool(*write);
        }
        Op::AsanPoisonScope(s) => {
            e.u8(17);
            e.usize(*s);
        }
        Op::AsanUnpoisonScope(s) => {
            e.u8(18);
            e.usize(*s);
        }
        Op::UbsanCheckArith { op, a, b, ty } => {
            e.u8(19);
            enc_bin_kind(e, *op);
            enc_operand(e, *a);
            enc_operand(e, *b);
            enc_int_type(e, *ty);
        }
        Op::UbsanCheckNeg { a, ty } => {
            e.u8(20);
            enc_operand(e, *a);
            enc_int_type(e, *ty);
        }
        Op::UbsanCheckShift { amount, bits } => {
            e.u8(21);
            enc_operand(e, *amount);
            e.u8(*bits);
        }
        Op::UbsanCheckDiv { a, divisor, ty } => {
            e.u8(22);
            enc_operand(e, *a);
            enc_operand(e, *divisor);
            enc_int_type(e, *ty);
        }
        Op::UbsanCheckNull { addr } => {
            e.u8(23);
            enc_operand(e, *addr);
        }
        Op::UbsanCheckBound { idx, bound } => {
            e.u8(24);
            enc_operand(e, *idx);
            e.u64(*bound);
        }
        Op::MsanCheck { val, what } => {
            e.u8(25);
            enc_operand(e, *val);
            enc_msan_use(e, *what);
        }
    }
}

fn dec_op(d: &mut Dec<'_>) -> Result<Op, WireError> {
    Ok(match d.u8()? {
        0 => Op::Const(d.i64()?),
        1 => Op::Bin {
            op: dec_bin_kind(d)?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        2 => Op::Un { op: dec_un_kind(d)?, a: dec_operand(d)?, ty: dec_int_type(d)? },
        3 => Op::Cast { a: dec_operand(d)?, to: dec_int_type(d)? },
        4 => Op::AddrLocal(d.usize()?),
        5 => Op::AddrGlobal(d.usize()?),
        6 => Op::PtrAdd { base: dec_operand(d)?, offset: dec_operand(d)?, scale: d.i64()? },
        7 => Op::Load { addr: dec_operand(d)?, size: d.u8()?, signed: d.bool()? },
        8 => Op::Store { addr: dec_operand(d)?, val: dec_operand(d)?, size: d.u8()? },
        9 => Op::MemCopy { dst: dec_operand(d)?, src: dec_operand(d)?, len: d.u32()? },
        10 => {
            let callee = d.str()?;
            let n = d.count(2)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(dec_operand(d)?);
            }
            Op::Call { callee, args }
        }
        11 => Op::Malloc { size: dec_operand(d)? },
        12 => Op::Free { addr: dec_operand(d)? },
        13 => Op::Print { val: dec_operand(d)? },
        14 => Op::LifetimeStart(d.usize()?),
        15 => Op::LifetimeEnd(d.usize()?),
        16 => Op::AsanCheck { addr: dec_operand(d)?, size: d.u8()?, write: d.bool()? },
        17 => Op::AsanPoisonScope(d.usize()?),
        18 => Op::AsanUnpoisonScope(d.usize()?),
        19 => Op::UbsanCheckArith {
            op: dec_bin_kind(d)?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        20 => Op::UbsanCheckNeg { a: dec_operand(d)?, ty: dec_int_type(d)? },
        21 => Op::UbsanCheckShift { amount: dec_operand(d)?, bits: d.u8()? },
        22 => Op::UbsanCheckDiv {
            a: dec_operand(d)?,
            divisor: dec_operand(d)?,
            ty: dec_int_type(d)?,
        },
        23 => Op::UbsanCheckNull { addr: dec_operand(d)? },
        24 => Op::UbsanCheckBound { idx: dec_operand(d)?, bound: d.u64()? },
        25 => Op::MsanCheck { val: dec_operand(d)?, what: dec_msan_use(d)? },
        _ => return Err(WireError::Corrupt("op tag")),
    })
}

fn enc_instr(e: &mut Enc, i: &Instr) {
    match i.dst {
        Some(r) => {
            e.u8(1);
            e.u32(r);
        }
        None => e.u8(0),
    }
    enc_op(e, &i.op);
    enc_loc(e, i.loc);
    enc_meta(e, i.meta);
}

fn dec_instr(d: &mut Dec<'_>) -> Result<Instr, WireError> {
    let dst = match d.u8()? {
        0 => None,
        1 => Some(d.u32()?),
        _ => return Err(WireError::Corrupt("instr dst")),
    };
    Ok(Instr { dst, op: dec_op(d)?, loc: dec_loc(d)?, meta: dec_meta(d)? })
}

fn enc_term(e: &mut Enc, t: &Term) {
    match t {
        Term::Jmp(b) => {
            e.u8(0);
            e.usize(*b);
        }
        Term::Br { cond, then_bb, else_bb } => {
            e.u8(1);
            enc_operand(e, *cond);
            e.usize(*then_bb);
            e.usize(*else_bb);
        }
        Term::Ret(None) => e.u8(2),
        Term::Ret(Some(v)) => {
            e.u8(3);
            enc_operand(e, *v);
        }
    }
}

fn dec_term(d: &mut Dec<'_>) -> Result<Term, WireError> {
    Ok(match d.u8()? {
        0 => Term::Jmp(d.usize()?),
        1 => Term::Br { cond: dec_operand(d)?, then_bb: d.usize()?, else_bb: d.usize()? },
        2 => Term::Ret(None),
        3 => Term::Ret(Some(dec_operand(d)?)),
        _ => return Err(WireError::Corrupt("terminator")),
    })
}

fn enc_block(e: &mut Enc, b: &Block) {
    e.u32(b.instrs.len() as u32);
    for i in &b.instrs {
        enc_instr(e, i);
    }
    match &b.term {
        Some(t) => {
            e.u8(1);
            enc_term(e, t);
        }
        // `None` is transient during construction, but a cached prefix is a
        // finished stage output, so encode it faithfully anyway.
        None => e.u8(0),
    }
}

fn dec_block(d: &mut Dec<'_>) -> Result<Block, WireError> {
    let n = d.count(4)?;
    let mut instrs = Vec::with_capacity(n);
    for _ in 0..n {
        instrs.push(dec_instr(d)?);
    }
    let term = match d.u8()? {
        0 => None,
        1 => Some(dec_term(d)?),
        _ => return Err(WireError::Corrupt("block term")),
    };
    Ok(Block { instrs, term })
}

fn enc_slot(e: &mut Enc, s: &Slot) {
    e.str(&s.name);
    e.u32(s.size);
    e.u32(s.scope_depth);
    e.bool(s.address_taken);
}

fn dec_slot(d: &mut Dec<'_>) -> Result<Slot, WireError> {
    Ok(Slot {
        name: d.str()?,
        size: d.u32()?,
        scope_depth: d.u32()?,
        address_taken: d.bool()?,
    })
}

fn enc_func(e: &mut Enc, f: &Func) {
    e.str(&f.name);
    e.u32(f.params.len() as u32);
    for p in &f.params {
        e.u32(*p);
    }
    e.u32(f.slots.len() as u32);
    for s in &f.slots {
        enc_slot(e, s);
    }
    e.u32(f.blocks.len() as u32);
    for b in &f.blocks {
        enc_block(e, b);
    }
    e.u32(f.next_reg);
}

fn dec_func(d: &mut Dec<'_>) -> Result<Func, WireError> {
    let name = d.str()?;
    let n = d.count(4)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(d.u32()?);
    }
    let n = d.count(4)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(dec_slot(d)?);
    }
    let n = d.count(4)?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(dec_block(d)?);
    }
    Ok(Func { name, params, slots, blocks, next_reg: d.u32()? })
}

fn enc_global(e: &mut Enc, g: &GlobalDef) {
    e.str(&g.name);
    e.u32(g.size);
    e.bytes(&g.init);
    e.u32(g.relocs.len() as u32);
    for (off, gid, addend) in &g.relocs {
        e.u32(*off);
        e.usize(*gid);
        e.i64(*addend);
    }
    e.u32(g.elem_size);
    e.u32(g.elem_count);
}

fn dec_global(d: &mut Dec<'_>) -> Result<GlobalDef, WireError> {
    let name = d.str()?;
    let size = d.u32()?;
    let init = d.blob()?.to_vec();
    let n = d.count(20)?;
    let mut relocs = Vec::with_capacity(n);
    for _ in 0..n {
        relocs.push((d.u32()?, d.usize()?, d.i64()?));
    }
    Ok(GlobalDef { name, size, init, relocs, elem_size: d.u32()?, elem_count: d.u32()? })
}

fn enc_san_meta(e: &mut Enc, s: &SanMeta) {
    match s.sanitizer {
        Some(san) => {
            e.u8(1);
            enc_sanitizer(e, san);
        }
        None => e.u8(0),
    }
    e.u32(s.global_redzone_gaps.len() as u32);
    for (gid, bytes) in &s.global_redzone_gaps {
        e.usize(*gid);
        e.u32(*bytes);
    }
    e.bool(s.msan_policy.sub_const_fully_defined);
    e.u32(s.applied_defects.len() as u32);
    for (id, loc) in &s.applied_defects {
        e.str(id);
        enc_loc(e, *loc);
    }
    e.u32(s.legit_transforms.len() as u32);
    for loc in &s.legit_transforms {
        enc_loc(e, *loc);
    }
}

fn dec_san_meta(d: &mut Dec<'_>) -> Result<SanMeta, WireError> {
    let sanitizer = match d.u8()? {
        0 => None,
        1 => Some(dec_sanitizer(d)?),
        _ => return Err(WireError::Corrupt("san meta")),
    };
    let n = d.count(12)?;
    let mut global_redzone_gaps = Vec::with_capacity(n);
    for _ in 0..n {
        global_redzone_gaps.push((d.usize()?, d.u32()?));
    }
    let msan_policy = MsanPolicy { sub_const_fully_defined: d.bool()? };
    let n = d.count(12)?;
    let mut applied_defects = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.str()?;
        let loc = dec_loc(d)?;
        // Re-intern through the registry: the in-memory type is `&'static
        // str`, and an id this build does not know cannot be represented —
        // the store above degrades to recompiling.
        let interned =
            DefectRegistry::get(&id).ok_or(WireError::Corrupt("unknown defect id"))?.id;
        applied_defects.push((interned, loc));
    }
    let n = d.count(8)?;
    let mut legit_transforms = Vec::with_capacity(n);
    for _ in 0..n {
        legit_transforms.push(dec_loc(d)?);
    }
    Ok(SanMeta { sanitizer, global_redzone_gaps, msan_policy, applied_defects, legit_transforms })
}

/// Encodes a [`Module`] into `e`.
pub fn enc_module(e: &mut Enc, m: &Module) {
    e.u32(m.globals.len() as u32);
    for g in &m.globals {
        enc_global(e, g);
    }
    e.u32(m.funcs.len() as u32);
    for f in &m.funcs {
        enc_func(e, f);
    }
    enc_san_meta(e, &m.san);
    match &m.build {
        Some(b) => {
            e.u8(1);
            enc_compiler(e, b.compiler);
            enc_opt(e, b.opt);
        }
        None => e.u8(0),
    }
}

/// Decodes a [`Module`] from `d`.
pub fn dec_module(d: &mut Dec<'_>) -> Result<Module, WireError> {
    let n = d.count(16)?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(dec_global(d)?);
    }
    let n = d.count(16)?;
    let mut funcs = Vec::with_capacity(n);
    for _ in 0..n {
        funcs.push(dec_func(d)?);
    }
    let san = dec_san_meta(d)?;
    let build = match d.u8()? {
        0 => None,
        1 => Some(BuildInfo { compiler: dec_compiler(d)?, opt: dec_opt(d)? }),
        _ => return Err(WireError::Corrupt("build info")),
    };
    Ok(Module { globals, funcs, san, build })
}

/// Serializes a module to standalone bytes.
pub fn module_to_bytes(m: &Module) -> Vec<u8> {
    let mut e = Enc::new();
    enc_module(&mut e, m);
    e.into_bytes()
}

/// Deserializes a module from standalone bytes, requiring full consumption.
pub fn module_from_bytes(bytes: &[u8]) -> Result<Module, WireError> {
    let mut d = Dec::new(bytes);
    let m = dec_module(&mut d)?;
    d.finish()?;
    Ok(m)
}

// ---- run results ----

fn enc_report_kind(e: &mut Enc, k: ReportKind) {
    e.u8(match k {
        ReportKind::StackBufOverflow => 0,
        ReportKind::GlobalBufOverflow => 1,
        ReportKind::HeapBufOverflow => 2,
        ReportKind::UseAfterFree => 3,
        ReportKind::UseAfterScope => 4,
        ReportKind::SignedIntOverflow => 5,
        ReportKind::NegOverflow => 6,
        ReportKind::ShiftOob => 7,
        ReportKind::DivByZero => 8,
        ReportKind::NullDeref => 9,
        ReportKind::ArrayBound => 10,
        ReportKind::UninitUse => 11,
        ReportKind::BadFree => 12,
    });
}

fn dec_report_kind(d: &mut Dec<'_>) -> Result<ReportKind, WireError> {
    Ok(match d.u8()? {
        0 => ReportKind::StackBufOverflow,
        1 => ReportKind::GlobalBufOverflow,
        2 => ReportKind::HeapBufOverflow,
        3 => ReportKind::UseAfterFree,
        4 => ReportKind::UseAfterScope,
        5 => ReportKind::SignedIntOverflow,
        6 => ReportKind::NegOverflow,
        7 => ReportKind::ShiftOob,
        8 => ReportKind::DivByZero,
        9 => ReportKind::NullDeref,
        10 => ReportKind::ArrayBound,
        11 => ReportKind::UninitUse,
        12 => ReportKind::BadFree,
        _ => return Err(WireError::Corrupt("report kind")),
    })
}

/// Encodes a [`RunResult`] into `e`.
pub fn enc_run_result(e: &mut Enc, r: &RunResult) {
    match r {
        RunResult::Exit { status, output } => {
            e.u8(0);
            e.i64(*status);
            e.u32(output.len() as u32);
            for v in output {
                e.i64(*v);
            }
        }
        RunResult::Report(rep) => {
            e.u8(1);
            enc_sanitizer(e, rep.sanitizer);
            enc_report_kind(e, rep.kind);
            enc_loc(e, rep.loc);
        }
        RunResult::Crash { kind, loc } => {
            e.u8(2);
            e.u8(match kind {
                CrashKind::Segv => 0,
                CrashKind::Fpe => 1,
            });
            enc_loc(e, *loc);
        }
        RunResult::Timeout => e.u8(3),
        RunResult::Error(msg) => {
            e.u8(4);
            e.str(msg);
        }
    }
}

/// Decodes a [`RunResult`] from `d`.
pub fn dec_run_result(d: &mut Dec<'_>) -> Result<RunResult, WireError> {
    Ok(match d.u8()? {
        0 => {
            let status = d.i64()?;
            let n = d.count(8)?;
            let mut output = Vec::with_capacity(n);
            for _ in 0..n {
                output.push(d.i64()?);
            }
            RunResult::Exit { status, output }
        }
        1 => RunResult::Report(SanReport {
            sanitizer: dec_sanitizer(d)?,
            kind: dec_report_kind(d)?,
            loc: dec_loc(d)?,
        }),
        2 => {
            let kind = match d.u8()? {
                0 => CrashKind::Segv,
                1 => CrashKind::Fpe,
                _ => return Err(WireError::Corrupt("crash kind")),
            };
            RunResult::Crash { kind, loc: dec_loc(d)? }
        }
        3 => RunResult::Timeout,
        4 => RunResult::Error(d.str()?),
        _ => return Err(WireError::Corrupt("run result")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};

    fn modules() -> Vec<Module> {
        let reg = DefectRegistry::full();
        let p = parse(
            "int g[4]; int main(void) { int i = 1; g[i] = 3; int *p = g; return *p + g[0] / (i + 1); }",
        )
        .unwrap();
        let mut out = Vec::new();
        for vendor in Vendor::ALL {
            for opt in [OptLevel::O0, OptLevel::O2] {
                for sanitizer in [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan)] {
                    let cfg = CompileConfig::dev(vendor, opt, sanitizer, &reg);
                    if let Ok(m) = compile(&p, &cfg) {
                        out.push(m);
                    }
                }
            }
        }
        assert!(!out.is_empty());
        out
    }

    #[test]
    fn pipeline_modules_round_trip() {
        for m in modules() {
            let bytes = module_to_bytes(&m);
            let back = module_from_bytes(&bytes).unwrap();
            assert_eq!(m, back);
            // Re-encoding is byte-stable (the framing checksum depends on it).
            assert_eq!(bytes, module_to_bytes(&back));
        }
    }

    #[test]
    fn run_results_round_trip() {
        let cases = [
            RunResult::Exit { status: -3, output: vec![1, -2, i64::MAX] },
            RunResult::Report(SanReport {
                sanitizer: Sanitizer::Msan,
                kind: ReportKind::UninitUse,
                loc: Loc::new(12, 4),
            }),
            RunResult::Crash { kind: CrashKind::Fpe, loc: Loc::new(3, 1) },
            RunResult::Timeout,
            RunResult::Error("bad module".into()),
        ];
        for r in cases {
            let mut e = Enc::new();
            enc_run_result(&mut e, &r);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_run_result(&mut d).unwrap(), r);
            d.finish().unwrap();
        }
    }

    #[test]
    fn unknown_defect_id_is_corruption_not_a_panic() {
        let mut m = modules().remove(0);
        m.san.applied_defects = vec![("gcc-asan-d01", Loc::new(1, 0))];
        let mut bytes = module_to_bytes(&m);
        // Flip a byte inside the defect-id string.
        let pos = bytes.windows(12).position(|w| w == b"gcc-asan-d01").expect("id present");
        bytes[pos] = b'x';
        assert!(matches!(module_from_bytes(&bytes), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn truncation_anywhere_is_an_error_never_a_panic() {
        let m = modules().remove(0);
        let bytes = module_to_bytes(&m);
        for cut in 0..bytes.len() {
            assert!(module_from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }
}
