//! Store robustness: the wire format round-trips arbitrary pipeline
//! modules identically (proptest over generated programs × the compile
//! matrix), and truncated / corrupted / version-skewed store files degrade
//! to a graceful cold start with telemetry — never an `Err` or a panic on
//! open.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::session::{CompileSession, PersistedPrefix, PrefixBacking};
use ubfuzz_simcc::target::{OptLevel, Vendor};
use ubfuzz_simcc::Sanitizer;
use ubfuzz_store::{modser, wire, CampaignLog, PrefixStore, Store, UnitOutcome};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ubfuzz-robust-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Arbitrary generated programs, compiled across a vendor × level ×
    /// sanitizer slice of the matrix, serialize and deserialize to the
    /// identical module — and re-encode to the identical bytes.
    #[test]
    fn arbitrary_modules_round_trip(seed in 0u64..5000) {
        let opts = SeedOptions { max_helpers: 1, max_stmts: 4, ..SeedOptions::default() };
        let program = generate_seed(seed, &opts);
        let registry = DefectRegistry::full();
        let mut checked = 0;
        for vendor in Vendor::ALL {
            for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
                for sanitizer in
                    [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan), Some(Sanitizer::Msan)]
                {
                    let cfg = CompileConfig::dev(vendor, opt, sanitizer, &registry);
                    let Ok(module) = compile(&program, &cfg) else { continue };
                    let bytes = modser::module_to_bytes(&module);
                    let back = modser::module_from_bytes(&bytes).expect("round trip decodes");
                    prop_assert_eq!(&module, &back, "seed {} {} {} {:?}", seed, vendor, opt, sanitizer);
                    prop_assert_eq!(&bytes, &modser::module_to_bytes(&back), "byte-stable");
                    checked += 1;
                }
            }
        }
        prop_assert!(checked > 0, "matrix slice compiled something");
    }

}

// Split across blocks: the `proptest!` macro recurses per property, and
// too many in one block overflow the default macro recursion limit.
proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// LEB128 varints round-trip values of every magnitude, and every
    /// strict prefix of an encoding decodes to an error — never a wrong
    /// value or a panic (the property the interned v2 module encoding
    /// leans on everywhere).
    #[test]
    fn varints_round_trip_and_reject_prefixes(seed in 0u64..u64::MAX) {
        // (The vendored proptest macro binds `seed` via an untyped closure
        // parameter; pin it before the first method call.)
        let seed: u64 = seed;
        // Derive a spread of magnitudes from the one sampled seed: small
        // (1-byte encodings), the seed itself, and a full-width mix.
        for u in [seed % 128, seed, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)] {
            for s in [u as i64, (u as i64).wrapping_neg()] {
                let mut e = wire::Enc::new();
                e.vu64(u);
                e.vi64(s);
                let bytes = e.into_bytes();
                let mut d = wire::Dec::new(&bytes);
                prop_assert_eq!(d.vu64().unwrap(), u);
                prop_assert_eq!(d.vi64().unwrap(), s);
                d.finish().unwrap();
                for cut in 0..bytes.len() {
                    let mut d = wire::Dec::new(&bytes[..cut]);
                    prop_assert!(
                        d.vu64().is_err() || d.vi64().is_err(),
                        "prefix of len {} must not decode both values", cut
                    );
                }
            }
        }
    }

    /// A module encoding truncated at an arbitrary offset never decodes
    /// successfully and never panics — the interned string/Loc tables and
    /// the varint body fail closed.
    #[test]
    fn truncated_module_bytes_fail_closed(seed in 0u64..5000) {
        let opts = SeedOptions { max_helpers: 1, max_stmts: 4, ..SeedOptions::default() };
        let program = generate_seed(seed, &opts);
        let registry = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Ubsan), &registry);
        let module = compile(&program, &cfg).expect("matrix cell compiles");
        let bytes = modser::module_to_bytes(&module);
        let cut_back = 1 + (seed as usize % 48);
        let cut = bytes.len().saturating_sub(cut_back);
        prop_assert!(
            modser::module_from_bytes(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes must be an error", cut, bytes.len()
        );
    }

    /// A prefix store truncated at an arbitrary byte offset opens to a
    /// valid (possibly shorter) store — never an error — and what it still
    /// loads is a prefix of what was persisted.
    #[test]
    fn truncated_prefix_store_cold_starts_gracefully(cut_back in 1usize..64) {
        let dir = tmp_dir("trunc");
        let registry = DefectRegistry::full();
        let session = CompileSession::with_backing(64, Arc::new(PrefixStore::open(&dir)));
        let opts = SeedOptions { max_helpers: 0, max_stmts: 3, ..SeedOptions::default() };
        for seed in 0..3u64 {
            let p = generate_seed(seed, &opts);
            let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &registry);
            session.compile(&p, &cfg).unwrap();
        }
        let persisted = session.stats().misses as usize;
        drop(session);

        let path = dir.join("prefix.bin");
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len().saturating_sub(cut_back).max(1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let store = PrefixStore::open(&dir);
        let loaded = store.telemetry().loaded();
        prop_assert!(loaded <= persisted, "loaded {} of {}", loaded, persisted);
        if cut < bytes.len() {
            prop_assert!(
                store.telemetry().tail_truncated() || store.telemetry().recovered_cold(),
                "a shortened file must be flagged"
            );
        }
        // The recovered store still works end to end.
        let session = CompileSession::with_backing(64, Arc::new(store));
        let p = generate_seed(0, &opts);
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &registry);
        prop_assert_eq!(session.compile(&p, &cfg).unwrap(), compile(&p, &cfg).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn version_skewed_store_files_cold_start_with_telemetry() {
    let dir = tmp_dir("skew");
    // Persist one real entry, then bump the format version byte.
    let store = PrefixStore::open(&dir);
    let registry = DefectRegistry::full();
    let p = generate_seed(1, &SeedOptions::default());
    let session = CompileSession::with_backing(16, Arc::new(store));
    session
        .compile(&p, &CompileConfig::dev(Vendor::Llvm, OptLevel::O2, None, &registry))
        .unwrap();
    drop(session);
    let path = dir.join("prefix.bin");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = wire::FORMAT_VERSION + 1;
    std::fs::write(&path, &bytes).unwrap();

    let store = PrefixStore::open(&dir);
    assert_eq!(store.telemetry().loaded(), 0, "skewed format loads nothing");
    assert!(store.telemetry().recovered_cold());
    assert!(
        store.telemetry().events().iter().any(|e| e.contains("format version")),
        "telemetry names the cause: {:?}",
        store.telemetry().events()
    );
    // And the store was rewritten to the current version: a re-open is
    // clean and persisting works again.
    let entry = PersistedPrefix {
        hash: 9,
        compiler: ubfuzz_simcc::target::CompilerId::dev(Vendor::Gcc),
        opt: OptLevel::O0,
        source: "int main(void) { return 0; }".into(),
        module: modser::module_from_bytes(&modser::module_to_bytes(
            &compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &registry))
                .unwrap(),
        ))
        .unwrap(),
    };
    store.persist(entry.as_entry_ref());
    let reopened = PrefixStore::open(&dir);
    assert_eq!(reopened.telemetry().loaded(), 1);
    assert!(!reopened.telemetry().recovered_cold());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byte_flipped_records_are_dropped_not_fatal() {
    let dir = tmp_dir("flip");
    let log = CampaignLog::open(&dir, 77, 3);
    log.record(0, &UnitOutcome::Unsupported);
    log.record(1, &UnitOutcome::Unsupported);
    log.record(2, &UnitOutcome::Unsupported);
    let path = log.path().to_path_buf();
    drop(log);

    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte inside the *second* unit record's payload: records 0 is
    // intact, 1 fails its checksum, 2 becomes unreachable.
    let target = bytes.len() - 25;
    bytes[target] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();

    let log = CampaignLog::open(&dir, 77, 3);
    assert!(log.replayed() < 3, "flipped record must not replay fully");
    assert!(log.telemetry().tail_truncated() || log.telemetry().recovered_cold());
    // The log remains appendable and consistent.
    log.record(2, &UnitOutcome::Unsupported);
    drop(log);
    let log = CampaignLog::open(&dir, 77, 3);
    assert!(log.has_replay(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_open_never_errors_on_garbage() {
    let dir = tmp_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    for name in ["prefix.bin", "campaign.bin", "corpus.bin"] {
        std::fs::write(dir.join(name), b"\xFF\x00garbage everywhere").unwrap();
    }
    let store = Store::open(&dir);
    let prefix = store.prefix();
    assert_eq!(prefix.telemetry().loaded(), 0);
    assert!(prefix.telemetry().recovered_cold());
    let log = store.campaign_log(1, 4);
    assert_eq!(log.replayed(), 0);
    assert!(log.telemetry().recovered_cold());
    let corpus = store.corpus();
    assert!(corpus.is_empty());
    assert!(corpus.telemetry().recovered_cold());
    let _ = std::fs::remove_dir_all(&dir);
}
