//! `ubfuzz-guide` — feedback-directed generation: the layer between the
//! campaign scheduler and the UB generator that closes the coverage loop.
//!
//! UBFuzz schedules seeds blind: every campaign samples UB kinds uniformly,
//! so late units mostly re-exercise sanitizer instrumentation paths earlier
//! units already covered. *Efficient Greybox Fuzzing to Detect Memory
//! Errors* motivates steering generation toward under-covered checks —
//! `simcc::cov` already names every sanitizer coverage point, and the
//! executor threads each unit's [`CovDelta`] back to the scheduler. This
//! crate turns that signal into a generation plan:
//!
//! - [`Frontier`] is the deterministic union of every coverage point any
//!   prior unit has hit, FNV-fingerprinted so checkpoint identity can pin
//!   the frontier state a plan was derived from.
//! - [`plan_guidance`] derives per-UB-kind generation budgets purely from
//!   `(campaign seed, frontier state)`: kinds whose sanitizer check points
//!   are all covered ("saturated") get a small seeded exploration budget,
//!   kinds with unreached points keep the full budget. A fixed seed over a
//!   fixed frontier replays bit-identically at any worker count.
//! - [`Strategy`] selects between the uniform reference (bit-identical to
//!   pre-guide campaigns) and guided mode.
//!
//! The frontier a campaign *starts* from is what the plan depends on;
//! per-unit deltas absorbed during the run feed the *next* campaign (via
//! the store's `frontier.bin` table), keeping the plan-up-front executor
//! architecture — and its determinism guarantees — intact.

use ubfuzz_minic::UbKind;
use ubfuzz_simcc::cov::{CovDelta, CovPoint};
use ubfuzz_simcc::Vendor;
use ubfuzz_store::wire::fnv1a;
use ubfuzz_ubgen::GenOptions;

/// Campaign generation strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Uniform-random UB-kind selection — the bit-identical reference mode.
    #[default]
    Uniform,
    /// Coverage-guided: budgets derived from the frontier state at campaign
    /// start, steering generation toward unreached sanitizer check points.
    Guided,
}

impl Strategy {
    /// Wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Uniform => "uniform",
            Strategy::Guided => "guided",
        }
    }

    /// Parses a wire/CLI name; `None` is a caller-side bad request.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "uniform" => Some(Strategy::Uniform),
            "guided" => Some(Strategy::Guided),
            _ => None,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The coverage frontier: every `(vendor, file, point)` sanitizer coverage
/// point any prior unit has hit, in canonical order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frontier {
    covered: CovDelta,
}

impl Frontier {
    /// An empty (cold) frontier.
    pub fn new() -> Frontier {
        Frontier::default()
    }

    /// A frontier over an already-collected point set (e.g. loaded from the
    /// store's `frontier.bin`).
    pub fn from_covered(covered: CovDelta) -> Frontier {
        Frontier { covered }
    }

    /// Unions one unit's delta in; returns how many points were new.
    pub fn absorb(&mut self, delta: &CovDelta) -> usize {
        let before = self.covered.len();
        self.covered.merge(delta);
        self.covered.len() - before
    }

    /// Whether `point` has been covered.
    pub fn contains(&self, point: CovPoint) -> bool {
        self.covered.contains(point)
    }

    /// The covered set, canonical order.
    pub fn covered(&self) -> &CovDelta {
        &self.covered
    }

    /// Number of covered points.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether the frontier is cold.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// FNV-1a fingerprint over the canonical point order — the frontier
    /// identity guided plans (and checkpoint fingerprints) are pinned to.
    pub fn fingerprint(&self) -> u64 {
        let mut canon = String::new();
        for (vendor, file, point) in self.covered.iter() {
            canon.push_str(vendor.name());
            canon.push('|');
            canon.push_str(file);
            canon.push('|');
            canon.push_str(point);
            canon.push('\n');
        }
        fnv1a(canon.as_bytes())
    }
}

/// The sanitizer coverage points a UB kind's detection path runs through:
/// instrumentation emitted for the construct plus the runtime report
/// entrypoint. A kind whose points are all covered (for both vendors) is
/// "saturated" — more units of that kind re-exercise known paths.
pub fn kind_points(kind: UbKind) -> &'static [(&'static str, &'static str)] {
    match kind {
        UbKind::BufOverflowArray => &[
            ("ubsan.rs", "bound_check"),
            ("asan.rs", "instrument_load"),
            ("asan.rs", "instrument_store"),
            ("rt_report.rs", "report_bound"),
            ("rt_report.rs", "report_overflow"),
        ],
        UbKind::BufOverflowPtr => &[
            ("asan.rs", "instrument_load"),
            ("asan.rs", "instrument_store"),
            ("rt_report.rs", "report_overflow"),
        ],
        UbKind::UseAfterFree => {
            &[("rt_shadow.rs", "poison_freed"), ("rt_report.rs", "report_uaf")]
        }
        UbKind::UseAfterScope => &[
            ("asan.rs", "poison_scope"),
            ("rt_shadow.rs", "poison_scope"),
            ("rt_report.rs", "report_uas"),
        ],
        UbKind::NullDeref => &[("ubsan.rs", "null_check"), ("rt_report.rs", "report_null")],
        UbKind::IntOverflow => &[
            ("ubsan.rs", "arith_check"),
            ("ubsan.rs", "neg_check"),
            ("rt_report.rs", "report_arith"),
        ],
        UbKind::ShiftOverflow => {
            &[("ubsan.rs", "shift_check"), ("rt_report.rs", "report_shift")]
        }
        UbKind::DivByZero => &[("ubsan.rs", "div_check"), ("rt_report.rs", "report_div")],
        UbKind::UninitUse => &[
            ("msan.rs", "branch_check"),
            ("rt_msan.rs", "taint_load"),
            ("rt_report.rs", "report_msan"),
        ],
        // Extension kinds have no dedicated check points yet: never
        // saturated, so guided mode treats them like unreached territory.
        _ => &[],
    }
}

/// A resolved guided-generation plan: per-kind budgets in canonical
/// [`UbKind::GENERATABLE`] order, plus the frontier identity the plan was
/// derived from (folded into the campaign checkpoint fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuidePlan {
    /// Per-kind emission budgets, canonical kind order.
    pub budgets: Vec<(UbKind, usize)>,
    /// Points covered by the frontier the plan saw.
    pub frontier_len: usize,
    /// Fingerprint of that frontier.
    pub frontier_fingerprint: u64,
}

/// Whether every detection point of `kind` is covered for both vendors.
fn saturated(kind: UbKind, frontier: &Frontier) -> bool {
    let points = kind_points(kind);
    !points.is_empty()
        && points.iter().all(|&(file, point)| {
            Vendor::ALL.iter().all(|&vendor| frontier.contains((vendor, file, point)))
        })
}

/// Derives the guided plan from `(campaign seed, frontier state)` — and
/// nothing else, so a fixed seed over a fixed frontier replays
/// bit-identically regardless of worker count or cache mode.
///
/// Unsaturated kinds keep the full `base.max_per_kind` budget; saturated
/// kinds drop to a small exploration budget (1–2, seeded per kind) that
/// keeps the kind alive without re-spending units on covered paths. Over a
/// cold frontier nothing is saturated and the plan equals the uniform one.
pub fn plan_guidance(campaign_seed: u64, base: &GenOptions, frontier: &Frontier) -> GuidePlan {
    let frontier_fingerprint = frontier.fingerprint();
    let budgets = UbKind::GENERATABLE
        .into_iter()
        .map(|kind| {
            let budget = if saturated(kind, frontier) {
                let mut tie = campaign_seed.to_le_bytes().to_vec();
                tie.extend_from_slice(&frontier_fingerprint.to_le_bytes());
                tie.extend_from_slice(format!("{kind:?}").as_bytes());
                1 + (fnv1a(&tie) % 2) as usize
            } else {
                base.max_per_kind
            };
            (kind, budget)
        })
        .collect();
    GuidePlan { budgets, frontier_len: frontier.len(), frontier_fingerprint }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_simcc::cov;

    fn full_frontier() -> Frontier {
        let mut covered = CovDelta::new();
        for &(file, point, _) in cov::POINTS {
            let (file, point) = cov::lookup(file, point).unwrap();
            for vendor in Vendor::ALL {
                covered.insert((vendor, file, point));
            }
        }
        Frontier::from_covered(covered)
    }

    #[test]
    fn kind_points_are_registered_coverage_points() {
        for kind in UbKind::GENERATABLE {
            let points = kind_points(kind);
            assert!(!points.is_empty(), "{kind:?} must map to check points");
            for &(file, point) in points {
                assert!(
                    cov::lookup(file, point).is_some(),
                    "{kind:?} maps to unregistered point {file}/{point}"
                );
            }
        }
    }

    #[test]
    fn cold_frontier_plans_the_uniform_budgets() {
        let opts = GenOptions::default();
        let plan = plan_guidance(42, &opts, &Frontier::new());
        assert_eq!(plan.frontier_len, 0);
        assert!(plan.budgets.iter().all(|&(_, b)| b == opts.max_per_kind));
        // Canonical kind order.
        let kinds: Vec<UbKind> = plan.budgets.iter().map(|&(k, _)| k).collect();
        assert_eq!(kinds, UbKind::GENERATABLE.to_vec());
    }

    #[test]
    fn saturated_kinds_drop_to_exploration_budgets() {
        let opts = GenOptions::default();
        let plan = plan_guidance(42, &opts, &full_frontier());
        assert!(
            plan.budgets.iter().all(|&(_, b)| (1..=2).contains(&b)),
            "all kinds saturated over the full frontier: {:?}",
            plan.budgets
        );
        // Pure function of (seed, frontier): same inputs, same plan.
        assert_eq!(plan, plan_guidance(42, &opts, &full_frontier()));
        // One covered point missing unsaturates its kinds.
        let mut partial = full_frontier();
        let mut covered = CovDelta::new();
        for p in partial.covered().iter() {
            if p != (Vendor::Gcc, "ubsan.rs", "div_check") {
                covered.insert(p);
            }
        }
        partial = Frontier::from_covered(covered);
        let plan = plan_guidance(42, &opts, &partial);
        let div = plan
            .budgets
            .iter()
            .find(|&&(k, _)| k == UbKind::DivByZero)
            .expect("DivByZero planned");
        assert_eq!(div.1, opts.max_per_kind, "unreached point keeps the full budget");
    }

    #[test]
    fn frontier_absorb_and_fingerprint_are_order_insensitive() {
        let a = (Vendor::Gcc, "asan.rs", "run");
        let b = (Vendor::Llvm, "msan.rs", "run");
        let mut f1 = Frontier::new();
        let mut f2 = Frontier::new();
        let mut d1 = CovDelta::new();
        d1.insert(a);
        let mut d2 = CovDelta::new();
        d2.insert(b);
        assert_eq!(f1.absorb(&d1), 1);
        assert_eq!(f1.absorb(&d2), 1);
        assert_eq!(f1.absorb(&d2), 0, "re-absorbing covers nothing new");
        f2.absorb(&d2);
        f2.absorb(&d1);
        assert_eq!(f1, f2);
        assert_eq!(f1.fingerprint(), f2.fingerprint());
        assert_ne!(f1.fingerprint(), Frontier::new().fingerprint());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [Strategy::Uniform, Strategy::Guided] {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert_eq!(Strategy::parse("greedy"), None);
        assert_eq!(Strategy::default(), Strategy::Uniform);
    }
}
