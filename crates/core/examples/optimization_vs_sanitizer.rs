//! Reproduces the paper's Figures 2 and 3: the sanitizer is a pass in the
//! middle of the optimization pipeline, so earlier passes can delete the UB
//! before the sanitizer ever sees it. The resulting -O0/-O2 discrepancy is
//! *not* a sanitizer bug — and crash-site mapping proves it, returning
//! `OptimizationArtifact` where `figure1.rs` returns `SanitizerBug`.
//!
//! ```sh
//! cargo run -p ubfuzz --example optimization_vs_sanitizer
//! ```

use ubfuzz::backend::{Artifact, RunRequest, SimBackend};
use ubfuzz::minic::parse;
use ubfuzz::oracle::{arbitrate, trace_artifact, Verdict};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::simvm::run_module;

// The Fig. 3 shape: the out-of-bounds store is dead, so -O2's store
// elimination removes it before the ASan pass runs.
const FIGURE3: &str = "
int g;
int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    g = 7;
    print_value(g);
    return 0;
}";

fn main() {
    println!("Fig. 2 pipeline: frontend -> early optimizer passes -> ASan pass");
    println!("                 -> late optimizer passes -> backend\n");
    let program = parse(FIGURE3).expect("Figure 3 parses");
    println!("a.c:{FIGURE3}\n");

    // Ground truth: the source program does contain a stack-buffer-overflow.
    let gt = ubfuzz::interp::run_program(&program);
    println!("ground truth (reference interpreter): {:?}\n", gt.ub().map(|e| (e.kind, e.loc)));

    let registry = DefectRegistry::full();
    for opt in [OptLevel::O0, OptLevel::O2] {
        let cfg = CompileConfig::dev(Vendor::Gcc, opt, Some(Sanitizer::Asan), &registry);
        let module = compile(&program, &cfg).expect("compiles");
        print!("$ gcc {opt} -fsanitize=address a.c && ./a.out\n  ");
        match run_module(&module) {
            ubfuzz::simvm::RunResult::Report(r) => println!("{r}"),
            ubfuzz::simvm::RunResult::Exit { .. } => {
                println!("(exits normally — the dead UB store was optimized away)")
            }
            other => println!("{other:?}"),
        }
    }

    // Same discrepancy shape as Figure 1 — but the oracle tells them apart.
    let bc = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let bn = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let backend = SimBackend::uncached();
    let req = RunRequest::default();
    let tc = trace_artifact(&backend, &Artifact::Sim(bc), &req).expect("crashing side traces");
    let tn = trace_artifact(&backend, &Artifact::Sim(bn), &req).expect("normal side traces");
    let verdict = arbitrate(&tc, tc.last(), &tn);
    println!("\ncrash-site mapping: crash site {} -> {:?}", tc.last(), verdict);
    assert_eq!(verdict, Verdict::OptimizationArtifact);
    println!("=> the crash site is no longer executed at -O2: the compiler removed");
    println!("   the UB, the sanitizer is innocent, and the discrepancy is dropped.");
}
