//! Reproduces the paper's Figure 1: GCC ASan catches the stack-buffer-
//! overflow at -O0 and silently misses it at -O2 (defect gcc-asan-d01).
//!
//! ```sh
//! cargo run -p ubfuzz --example figure1
//! ```

use ubfuzz::minic::parse;
use ubfuzz::oracle::crash_site_mapping;
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::simvm::run_module;

const FIGURE1: &str = "
struct a { int x; };
struct a b[2];
struct a *c = b;
struct a *d = b;
int k = 0;
int main(void) {
    c->x = b[0].x;
    k = 2;
    c->x = (d + k)->x;
    return c->x;
}";

fn main() {
    let program = parse(FIGURE1).expect("Figure 1 parses");
    println!("a.c:{FIGURE1}");
    let registry = DefectRegistry::full();
    for opt in [OptLevel::O0, OptLevel::O2] {
        let cfg = CompileConfig::dev(Vendor::Gcc, opt, Some(Sanitizer::Asan), &registry);
        let module = compile(&program, &cfg).expect("compiles");
        print!("$ gcc {opt} -fsanitize=address a.c && ./a.out\n  ");
        match run_module(&module) {
            ubfuzz::simvm::RunResult::Report(r) => println!("{r}"),
            ubfuzz::simvm::RunResult::Exit { .. } => println!("(exits normally — UB missed!)"),
            other => println!("{other:?}"),
        }
    }
    // The oracle confirms this is a sanitizer bug, not an optimization.
    let bc = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let bn = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let mapping = crash_site_mapping(&bc, &bn).expect("discrepancy");
    println!("\ncrash-site mapping: crash site {} executed at -O2: {:?}", mapping.crash_site, mapping.verdict);
    println!("attribution: {:?}", bn.san.applied_defects);
}
