//! Reproduces the paper's Figure 1: GCC ASan catches the stack-buffer-
//! overflow at -O0 and silently misses it at -O2 (defect gcc-asan-d01).
//!
//! ```sh
//! cargo run -p ubfuzz --example figure1
//! ```

use ubfuzz::backend::{Artifact, RunRequest, SimBackend};
use ubfuzz::minic::parse;
use ubfuzz::oracle::{arbitrate, trace_artifact};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::simvm::run_module;

const FIGURE1: &str = "
struct a { int x; };
struct a b[2];
struct a *c = b;
struct a *d = b;
int k = 0;
int main(void) {
    c->x = b[0].x;
    k = 2;
    c->x = (d + k)->x;
    return c->x;
}";

fn main() {
    let program = parse(FIGURE1).expect("Figure 1 parses");
    println!("a.c:{FIGURE1}");
    let registry = DefectRegistry::full();
    for opt in [OptLevel::O0, OptLevel::O2] {
        let cfg = CompileConfig::dev(Vendor::Gcc, opt, Some(Sanitizer::Asan), &registry);
        let module = compile(&program, &cfg).expect("compiles");
        print!("$ gcc {opt} -fsanitize=address a.c && ./a.out\n  ");
        match run_module(&module) {
            ubfuzz::simvm::RunResult::Report(r) => println!("{r}"),
            ubfuzz::simvm::RunResult::Exit { .. } => println!("(exits normally — UB missed!)"),
            other => println!("{other:?}"),
        }
    }
    // The oracle confirms this is a sanitizer bug, not an optimization:
    // trace both binaries (GetExecutedSites) and run Algorithm 2's
    // comparison on the crashing side's crash site.
    let bc = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let bn = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let applied = bn.san.applied_defects.clone();
    let backend = SimBackend::uncached();
    let req = RunRequest::default();
    let tc = trace_artifact(&backend, &Artifact::Sim(bc), &req).expect("crashing side traces");
    let tn = trace_artifact(&backend, &Artifact::Sim(bn), &req).expect("normal side traces");
    let verdict = arbitrate(&tc, tc.last(), &tn);
    println!("\ncrash-site mapping: crash site {} executed at -O2: {:?}", tc.last(), verdict);
    println!("attribution: {applied:?}");
}
