//! Quickstart: the whole UBfuzz pipeline on one seed program.
//!
//! ```sh
//! cargo run -p ubfuzz --example quickstart
//! ```

use ubfuzz::minic::pretty;
use ubfuzz::oracle::{crash_site_mapping, Verdict};
use ubfuzz::seedgen::{generate_seed, SeedOptions};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::{san, Sanitizer};
use ubfuzz::simvm::run_module;
use ubfuzz::ubgen::{generate_all, GenOptions};

fn main() {
    // 1. A valid, UB-free seed program (the Csmith role).
    let seed = generate_seed(11, &SeedOptions::default());
    println!("=== seed program (valid, UB-free) ===\n{}", pretty::print(&seed));

    // 2. Shadow statement insertion: one-UB mutants of the seed.
    let ub_programs = generate_all(&seed, &GenOptions::default());
    println!("generated {} UB programs:", ub_programs.len());
    for u in &ub_programs {
        println!("  - {:<22} at {:<7} {}", u.kind.name(), u.ub_loc.to_string(), u.description);
    }

    // 3. Differential testing of one UB program across compilers/levels.
    let registry = DefectRegistry::full();
    let Some(u) = ub_programs.first() else { return };
    println!("\n=== differential testing: {} ===", u.kind);
    let mut crashing = None;
    let mut normal = None;
    for sanitizer in san::sanitizers_for(u.kind) {
        for vendor in Vendor::ALL {
            if vendor == Vendor::Gcc && sanitizer == Sanitizer::Msan {
                continue;
            }
            for opt in OptLevel::ALL {
                let cfg = CompileConfig::dev(vendor, opt, Some(sanitizer), &registry);
                let m = compile(&u.program, &cfg).expect("compiles");
                let r = run_module(&m);
                println!("  {vendor:<4} {opt} {sanitizer:<5} -> {r:?}");
                if r.is_report() && crashing.is_none() {
                    crashing = Some(m);
                } else if r.is_normal_exit() && normal.is_none() {
                    normal = Some(m);
                }
            }
        }
    }

    // 4. Crash-site mapping (Algorithm 2) on the first discrepancy.
    if let (Some(bc), Some(bn)) = (crashing, normal) {
        if let Some(mapping) = crash_site_mapping(&bc, &bn) {
            println!("\ncrash site {} -> {:?}", mapping.crash_site, mapping.verdict);
            match mapping.verdict {
                Verdict::SanitizerBug => {
                    println!("=> sanitizer false-negative bug (would be reported)")
                }
                Verdict::OptimizationArtifact => {
                    println!("=> compiler optimization removed the UB (dropped)")
                }
            }
        }
    } else {
        println!("\nno discrepancy on this program — every compiler caught it");
    }
}
