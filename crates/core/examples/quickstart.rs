//! Quickstart: the whole UBfuzz pipeline on one seed program.
//!
//! ```sh
//! cargo run -p ubfuzz --example quickstart
//! ```

use ubfuzz::backend::{Artifact, SimBackend};
use ubfuzz::minic::pretty;
use ubfuzz::oracle::{CompiledCell, CrashOracle, OracleInput, OracleStack};
use ubfuzz::seedgen::{generate_seed, SeedOptions};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz::simcc::{san, Sanitizer};
use ubfuzz::simvm::run_module;
use ubfuzz::ubgen::{generate_all, GenOptions};

fn main() {
    // 1. A valid, UB-free seed program (the Csmith role).
    let seed = generate_seed(11, &SeedOptions::default());
    println!("=== seed program (valid, UB-free) ===\n{}", pretty::print(&seed));

    // 2. Shadow statement insertion: one-UB mutants of the seed.
    let ub_programs = generate_all(&seed, &GenOptions::default());
    println!("generated {} UB programs:", ub_programs.len());
    for u in &ub_programs {
        println!("  - {:<22} at {:<7} {}", u.kind.name(), u.ub_loc.to_string(), u.description);
    }

    // 3. Differential testing of one UB program across compilers/levels:
    //    collect the compiled matrix per sanitizer as oracle cells.
    let registry = DefectRegistry::full();
    let Some(u) = ub_programs.first() else { return };
    println!("\n=== differential testing: {} ===", u.kind);
    let backend = SimBackend::new();
    let oracle = OracleStack::standard();
    let mut judged = false;
    for sanitizer in san::sanitizers_for(u.kind) {
        let mut cells: Vec<CompiledCell> = Vec::new();
        for vendor in Vendor::ALL {
            if vendor == Vendor::Gcc && sanitizer == Sanitizer::Msan {
                continue;
            }
            for opt in OptLevel::ALL {
                let cfg = CompileConfig::dev(vendor, opt, Some(sanitizer), &registry);
                let m = compile(&u.program, &cfg).expect("compiles");
                let outcome = run_module(&m);
                println!("  {vendor:<4} {opt} {sanitizer:<5} -> {outcome:?}");
                cells.push(CompiledCell {
                    compiler: CompilerId::dev(vendor),
                    opt,
                    artifact: Artifact::Sim(m),
                    outcome,
                });
            }
        }

        // 4. The oracle stack (wrong-report detection → discrepancy
        //    accounting → crash-site mapping, Algorithm 2) judges the
        //    matrix; any backend with a trace capability could stand in.
        let verdicts =
            oracle.judge(&backend, OracleInput { sanitizer, ub_kind: u.kind, ub_loc: u.ub_loc }, &cells);
        if !verdicts.discrepancy {
            continue;
        }
        judged = true;
        if let Some(site) = verdicts.crash_site {
            println!("\ncrash site {site} ({sanitizer})");
        }
        if verdicts.selected() {
            for &i in &verdicts.sanitizer_bugs {
                println!(
                    "=> sanitizer false-negative bug: {} {} misses at {} (would be reported)",
                    cells[i].compiler, sanitizer, cells[i].opt
                );
            }
        } else {
            println!("=> compiler optimization removed the UB (dropped)");
        }
    }
    if !judged {
        println!("\nno discrepancy on this program — every compiler caught it");
    }
}
