//! Reproduces the paper's Figure 8: the one *invalid* report. GCC -O3
//! legitimately extends an inner-scope variable's lifetime out of the loop,
//! removing the use-after-scope while keeping the crash site executable —
//! so crash-site mapping wrongly flags a sanitizer bug, which the GCC
//! developers then mark invalid.
//!
//! ```sh
//! cargo run -p ubfuzz --example invalid_report
//! ```

use ubfuzz::backend::{Artifact, RunRequest, SimBackend};
use ubfuzz::minic::parse;
use ubfuzz::oracle::{arbitrate, trace_artifact, Verdict};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::simvm::run_module;

const FIGURE8: &str = "
int a;
int b;
int main(void) {
    int *s = &a;
    for (b = 0; b <= 3; b = b + 1) {
        int i = *s;
        s = &i;
    }
    *s = b;
    return 0;
}";

fn main() {
    let program = parse(FIGURE8).expect("Figure 8 parses");
    println!("{FIGURE8}\n");
    // Ground truth: the program does contain a use-after-scope.
    let gt = ubfuzz::interp::run_program(&program);
    println!("ground truth: {:?}\n", gt.ub().map(|e| (e.kind, e.loc)));
    let registry = DefectRegistry::full();
    let bc = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let bn = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O3, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    // Premise: -O0 reports, -O3 exits normally — then Algorithm 2 runs on
    // the executed-site traces.
    if !run_module(&bc).is_report() || !run_module(&bn).is_normal_exit() {
        println!("no discrepancy (GCC -O3 did not transform the loop)");
        return;
    }
    let applied = bn.san.applied_defects.clone();
    let legit = bn.san.legit_transforms.clone();
    let backend = SimBackend::uncached();
    let req = RunRequest::default();
    let tc = trace_artifact(&backend, &Artifact::Sim(bc), &req).expect("crashing side traces");
    let tn = trace_artifact(&backend, &Artifact::Sim(bn), &req).expect("normal side traces");
    let verdict = arbitrate(&tc, tc.last(), &tn);
    println!("oracle verdict: {verdict:?} (crash site {} still executed at -O3)", tc.last());
    if verdict == Verdict::SanitizerBug {
        println!("attribution: defects={applied:?} legit_transforms={legit:?}");
        println!("=> no defect applied, but a legitimate -O3 transformation did:");
        println!("   this report would be filed and marked INVALID (Table 3).");
    }
}
