//! Reproduces the paper's Figure 8: the one *invalid* report. GCC -O3
//! legitimately extends an inner-scope variable's lifetime out of the loop,
//! removing the use-after-scope while keeping the crash site executable —
//! so crash-site mapping wrongly flags a sanitizer bug, which the GCC
//! developers then mark invalid.
//!
//! ```sh
//! cargo run -p ubfuzz --example invalid_report
//! ```

use ubfuzz::minic::parse;
use ubfuzz::oracle::{crash_site_mapping, Verdict};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;

const FIGURE8: &str = "
int a;
int b;
int main(void) {
    int *s = &a;
    for (b = 0; b <= 3; b = b + 1) {
        int i = *s;
        s = &i;
    }
    *s = b;
    return 0;
}";

fn main() {
    let program = parse(FIGURE8).expect("Figure 8 parses");
    println!("{FIGURE8}\n");
    // Ground truth: the program does contain a use-after-scope.
    let gt = ubfuzz::interp::run_program(&program);
    println!("ground truth: {:?}\n", gt.ub().map(|e| (e.kind, e.loc)));
    let registry = DefectRegistry::full();
    let bc = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    let bn = compile(
        &program,
        &CompileConfig::dev(Vendor::Gcc, OptLevel::O3, Some(Sanitizer::Asan), &registry),
    )
    .unwrap();
    match crash_site_mapping(&bc, &bn) {
        Some(m) => {
            println!("oracle verdict: {:?} (crash site {} still executed at -O3)", m.verdict, m.crash_site);
            if m.verdict == Verdict::SanitizerBug {
                println!(
                    "attribution: defects={:?} legit_transforms={:?}",
                    bn.san.applied_defects, bn.san.legit_transforms
                );
                println!("=> no defect applied, but a legitimate -O3 transformation did:");
                println!("   this report would be filed and marked INVALID (Table 3).");
            }
        }
        None => println!("no discrepancy (GCC -O3 did not transform the loop)"),
    }
}
