//! Unit-executor vs. sequential campaign: same config, bit-identical
//! reports, plus the staged-compile cache telemetry.
//!
//! ```sh
//! cargo run --release --example parallel_campaign -- [seeds] [workers]
//! ```

use ubfuzz::campaign::CampaignConfig;
use ubfuzz::run_campaign;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
    let workers = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
    let cfg = CampaignConfig::builder().seeds(seeds).build();

    let t0 = std::time::Instant::now();
    let sequential = run_campaign(&cfg);
    let t_seq = t0.elapsed();

    let t0 = std::time::Instant::now();
    let parallel =
        CampaignConfig::builder().seeds(seeds).workers(workers).build_runner().run();
    let t_par = t0.elapsed();

    let t0 = std::time::Instant::now();
    let uncached = CampaignConfig::builder()
        .seeds(seeds)
        .workers(workers)
        .cache(false)
        .build_runner()
        .run();
    let t_nocache = t0.elapsed();

    println!(
        "sequential: {} bugs from {} programs in {t_seq:.2?}",
        sequential.bugs.len(),
        sequential.total_programs()
    );
    println!(
        "{workers}-worker:   {} bugs from {} programs in {t_par:.2?} (no cache: {t_nocache:.2?})",
        parallel.bugs.len(),
        parallel.total_programs()
    );
    println!(
        "compile cache: {} hits, {} misses, prefix reuse ratio {:.1}%",
        parallel.cache.hits,
        parallel.cache.misses,
        100.0 * parallel.cache.reuse_ratio()
    );
    println!(
        "reports identical: {}",
        if sequential == parallel && sequential == uncached {
            "yes"
        } else {
            "NO — DETERMINISM BUG"
        }
    );
    println!("{}", ubfuzz::report::table3(&parallel));
}
