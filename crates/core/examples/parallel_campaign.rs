//! Sharded vs. sequential campaign: same config, bit-identical reports.
//!
//! ```sh
//! cargo run --release --example parallel_campaign -- [seeds] [shards]
//! ```

use ubfuzz::campaign::{run_campaign, CampaignConfig, ParallelCampaign};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
    let shards = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(4);
    let cfg = CampaignConfig { seeds, ..CampaignConfig::default() };

    let t0 = std::time::Instant::now();
    let sequential = run_campaign(&cfg);
    let t_seq = t0.elapsed();

    let t0 = std::time::Instant::now();
    let sharded = ParallelCampaign::new(cfg).with_shards(shards).run();
    let t_par = t0.elapsed();

    println!(
        "sequential: {} bugs from {} programs in {t_seq:.2?}",
        sequential.bugs.len(),
        sequential.total_programs()
    );
    println!(
        "{shards}-shard:    {} bugs from {} programs in {t_par:.2?}",
        sharded.bugs.len(),
        sharded.total_programs()
    );
    println!(
        "reports identical: {}",
        if sequential == sharded { "yes" } else { "NO — DETERMINISM BUG" }
    );
    println!("{}", ubfuzz::report::table3(&sharded));
}
