//! Reproduces the paper's Fig. 12 case studies: one program per root-cause
//! category, each missed by the defective sanitizer and caught elsewhere.
//!
//! ```sh
//! cargo run -p ubfuzz --example case_studies
//! ```

use ubfuzz::minic::parse;
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::target::{OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::simvm::run_module;

struct Case {
    name: &'static str,
    src: &'static str,
    vendor: Vendor,
    sanitizer: Sanitizer,
    opt: OptLevel,
}

const CASES: &[Case] = &[
    Case {
        name: "Fig.12a (No Sanitizer Check): GCC ASan misses *ptr after *p_ptr = &buf[3]",
        src: "int g; int *ptr = &g;
              int **p_ptr = &ptr;
              int buf[3];
              int main(void) {
                  *ptr = 1;
                  *p_ptr = &buf[3];
                  *ptr = 4095;
                  return 0;
              }",
        vendor: Vendor::Gcc,
        sanitizer: Sanitizer::Asan,
        opt: OptLevel::O2,
    },
    Case {
        name: "Fig.12b (Expression Folding): GCC UBSan misses bool-widened division by zero",
        src: "int a; int c; short b; long d;
              int main(void) {
                  a = (short)(d == c | b > 9) / 0;
                  return a;
              }",
        vendor: Vendor::Gcc,
        sanitizer: Sanitizer::Ubsan,
        opt: OptLevel::O0,
    },
    Case {
        name: "Fig.12d (Wrong Red-Zone): LLVM ASan misses odd-length global array overflow",
        src: "int a[5]; int x = 5;
              int main(void) { a[x] = 7; return 0; }",
        vendor: Vendor::Llvm,
        sanitizer: Sanitizer::Asan,
        opt: OptLevel::O1,
    },
    Case {
        name: "Fig.12e (Incorrect Check): LLVM UBSan misses null deref in ++(*a)",
        src: "int main(void) {
                  int *a = (int*)0;
                  int b[3] = {1, 1, 1};
                  ++b[2];
                  ++(*a);
                  return 0;
              }",
        vendor: Vendor::Llvm,
        sanitizer: Sanitizer::Ubsan,
        opt: OptLevel::O0,
    },
    Case {
        name: "Fig.12f (Operation Handling): LLVM MSan misses uninit use in (a - 1) at -O1",
        src: "int main(void) {
                  unsigned char a;
                  if (a - 1) { print_value(1); }
                  return 1;
              }",
        vendor: Vendor::Llvm,
        sanitizer: Sanitizer::Msan,
        opt: OptLevel::O1,
    },
];

fn main() {
    let registry = DefectRegistry::full();
    for case in CASES {
        println!("== {}", case.name);
        let program = parse(case.src).expect("case parses");
        let gt = ubfuzz::interp::run_program(&program);
        println!("   ground truth: {}", gt.ub().map_or("no UB?".into(), |e| e.to_string()));
        let cfg = CompileConfig::dev(case.vendor, case.opt, Some(case.sanitizer), &registry);
        let m = compile(&program, &cfg).expect("compiles");
        let r = run_module(&m);
        let verdict = match &r {
            ubfuzz::simvm::RunResult::Exit { .. } => "MISSED (false negative)".to_string(),
            ubfuzz::simvm::RunResult::Report(rep) => format!("caught: {rep}"),
            other => format!("{other:?}"),
        };
        println!("   {} {} {}: {verdict}", case.vendor, case.opt, case.sanitizer);
        println!("   attribution: {:?}\n", m.san.applied_defects.iter().map(|(id, _)| id).collect::<Vec<_>>());
    }
}
