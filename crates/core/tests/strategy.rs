//! Property: the guided generation strategy is deterministic and the
//! `Uniform` default is invisible.
//!
//! Guided planning is a pure function of `(campaign first seed, frontier
//! snapshot at campaign start)`, so for a fixed seed and a fixed persisted
//! frontier the guided campaign must reproduce bit-identically at worker
//! counts 1/2/8/16, with the staged-compile cache enabled *and* disabled —
//! the same contract `parallel.rs` pins for the uniform reference. And a
//! guided campaign planning against a *cold* frontier degenerates to the
//! uniform plan exactly, which is what keeps `Strategy::Uniform` (and every
//! pre-strategy caller) byte-identical to the pre-guide behavior.
//!
//! Kept in its own file with a small case count: every case runs several
//! full generate→compile→run→oracle campaigns.

use proptest::prelude::*;
use ubfuzz::campaign::{CampaignConfig, ParallelCampaign};
use ubfuzz::store::{frontier::FRONTIER_FILE, FrontierStore};
use ubfuzz::{run_campaign, Strategy};

fn small_config(first_seed: u64, strategy: Strategy) -> CampaignConfig {
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(3)
        .strategy(strategy)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

/// A store directory whose frontier was warmed by a uniform campaign over
/// an unrelated seed range, so guided runs have coverage to plan against.
fn warmed_store(label: &str, warm_seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ubfuzz-strategy-{label}-{}-{warm_seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let warm = ParallelCampaign::new(small_config(warm_seed, Strategy::Uniform))
        .with_shards(2)
        .with_checkpoint(&dir)
        .run();
    assert!(warm.frontier_points > 0, "warm-up must cover coverage points");
    assert_eq!(FrontierStore::open(&dir).len(), warm.frontier_points);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    /// Fixed seed + fixed persisted frontier ⇒ bit-identical guided runs at
    /// every worker count, cache on and off.
    #[test]
    fn guided_campaign_is_deterministic(first_seed in 0u64..400) {
        let first_seed: u64 = first_seed;
        let dir = warmed_store("det", first_seed + 1000);
        let frontier0 = FrontierStore::open(&dir).covered().clone();
        let cfg = small_config(first_seed, Strategy::Guided);
        let mut reference = None;
        for workers in [1usize, 2, 8, 16] {
            for cache in [true, false] {
                // Every run must plan against the SAME frontier snapshot:
                // a completed guided run rewrites `frontier.bin` with the
                // union, so restore the warm-up snapshot between runs.
                let mut store = FrontierStore::open(&dir);
                store.save(&frontier0);
                let guided = ParallelCampaign::new(cfg.clone())
                    .with_shards(workers)
                    .with_cache(cache)
                    .with_checkpoint(&dir)
                    .run();
                // The checkpoint log now holds this run; sweep it so the
                // next configuration computes instead of replaying.
                for entry in std::fs::read_dir(&dir).unwrap() {
                    let path = entry.unwrap().path();
                    if path.file_name().is_some_and(|n| {
                        n.to_string_lossy().starts_with("campaign")
                    }) {
                        std::fs::remove_file(path).unwrap();
                    }
                }
                match &reference {
                    None => reference = Some(guided),
                    Some(reference) => {
                        prop_assert_eq!(
                            reference, &guided,
                            "guided first_seed {} diverges at {} workers (cache {})",
                            first_seed, workers, cache
                        );
                        prop_assert_eq!(
                            reference.frontier_fingerprint, guided.frontier_fingerprint,
                            "guided frontier diverges at {} workers (cache {})",
                            workers, cache
                        );
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A guided campaign with nothing persisted plans against a cold
    /// frontier, which is by construction the uniform plan: results match
    /// the storeless uniform reference bit-for-bit.
    #[test]
    fn cold_frontier_guided_equals_uniform(first_seed in 0u64..400) {
        let uniform = run_campaign(&small_config(first_seed, Strategy::Uniform));
        let guided = run_campaign(&small_config(first_seed, Strategy::Guided));
        prop_assert_eq!(&uniform, &guided, "cold guided diverges at seed {}", first_seed);
        prop_assert_eq!(uniform.frontier_fingerprint, guided.frontier_fingerprint);
    }
}

/// The frontier union of a fresh (cold-backend) run is deterministic across
/// the sequential loop and the unit executor: the sanitize-stage memo can
/// suppress *repeat* instrumentation hits, but over a fresh session every
/// distinct sanitize key misses exactly once, so the union is a pure
/// function of the campaign plan.
#[test]
fn frontier_union_matches_between_sequential_and_parallel() {
    let cfg = small_config(11, Strategy::Uniform);
    let sequential = run_campaign(&cfg);
    assert!(sequential.frontier_points > 0, "campaigns cover coverage points");
    for cache in [true, false] {
        let parallel =
            ParallelCampaign::new(cfg.clone()).with_shards(4).with_cache(cache).run();
        assert_eq!(
            sequential.frontier_points, parallel.frontier_points,
            "frontier size diverges (cache {cache})"
        );
        assert_eq!(
            sequential.frontier_fingerprint, parallel.frontier_fingerprint,
            "frontier fingerprint diverges (cache {cache})"
        );
    }
}

/// Cross-run feedback: a warm frontier makes the guided plan *smaller* than
/// uniform over the same seeds (saturated kinds get residual budgets), and
/// the persisted frontier only ever grows.
#[test]
fn warm_frontier_steers_the_guided_plan() {
    let dir = warmed_store("steer", 2000);
    let points_after_warmup = FrontierStore::open(&dir).len();
    let uniform = run_campaign(&small_config(5, Strategy::Uniform));
    let guided = ParallelCampaign::new(small_config(5, Strategy::Guided))
        .with_shards(2)
        .with_checkpoint(&dir)
        .run();
    assert!(
        guided.units < uniform.units,
        "a warm frontier must shrink the guided plan: {} guided vs {} uniform units",
        guided.units,
        uniform.units
    );
    let persisted = FrontierStore::open(&dir);
    assert!(persisted.len() >= points_after_warmup, "the persisted frontier only grows");
    assert_eq!(persisted.len(), guided.frontier_points);
    assert!(dir.join(FRONTIER_FILE).is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Strategy` parsing round-trips through its wire names and rejects
/// unknown values — the seam `ubfuzz-serve` and the bench flags build on.
#[test]
fn strategy_parse_round_trips() {
    for strategy in [Strategy::Uniform, Strategy::Guided] {
        assert_eq!(Strategy::parse(strategy.name()), Some(strategy));
        assert_eq!(format!("{strategy}"), strategy.name());
    }
    assert_eq!(Strategy::parse("greedy"), None);
    assert_eq!(Strategy::parse(""), None);
    assert_eq!(Strategy::default(), Strategy::Uniform);
}
