//! Property: partitioned-sanitization campaigns are deterministic.
//!
//! The instrumented site subset is a pure function of `(campaign seed,
//! salt, function id, site loc)` — no worker count, schedule, or cache
//! state participates. So a partial-policy campaign must equal its
//! sequential run at worker counts 1/2/8/16, with the staged-compile cache
//! enabled *and* disabled, down to the per-sanitizer expected-miss
//! accounting (telemetry is excluded from `CampaignStats` equality, so the
//! property compares it explicitly). And the boundary policies collapse:
//! `partial:1.0` is byte-identical to `full`, `partial:0.0` to `none`.
//!
//! Kept in its own file with a small case count: every case runs a dozen
//! full generate→compile→run→oracle campaigns.

use proptest::prelude::*;
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::{run_campaign, SanPolicy};

fn small_config(first_seed: u64, policy: SanPolicy) -> CampaignConfig {
    // Mirrors `parallel.rs`: small programs keep each case fast; the
    // determinism argument is size-independent.
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(3)
        .generator(GeneratorChoice::Ubfuzz)
        .san_policy(policy)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    #[test]
    fn partial_campaign_is_schedule_invariant(first_seed in 0u64..400) {
        // One proptest parameter keeps the vendored macro's expansion
        // depth in bounds; salt and ratio derive from the case seed. (The
        // macro binds the parameter through an untyped closure, so name
        // the type before calling an inference-sensitive method on it.)
        let first_seed: u64 = first_seed;
        let salt = first_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let ratio_pm = 250 + (salt % 3) as u16 * 250; // 250 / 500 / 750
        let policy = SanPolicy::Partial { ratio_pm, salt };
        let cfg = small_config(first_seed, policy);
        let sequential = run_campaign(&cfg);
        for workers in [1usize, 2, 8, 16] {
            for cache in [true, false] {
                let parallel = ParallelCampaign::new(cfg.clone())
                    .with_shards(workers)
                    .with_cache(cache)
                    .run();
                prop_assert_eq!(
                    &sequential, &parallel,
                    "seed {} {} diverges at {} workers (cache {})",
                    first_seed, policy, workers, cache
                );
                // The site subset — and with it the expected-miss
                // accounting — must not depend on the schedule or on
                // whether the sanitize stage was served from cache.
                prop_assert_eq!(
                    sequential.oracle.expected_miss_total(),
                    parallel.oracle.expected_miss_total(),
                    "expected-miss accounting diverges at {} workers (cache {})",
                    workers, cache
                );
            }
        }
        // Detection can only shrink as instrumentation shrinks: a partial
        // subset's reports are a subset of full instrumentation's.
        let full = run_campaign(&small_config(first_seed, SanPolicy::Full));
        prop_assert!(sequential.bugs.len() <= full.bugs.len());
        prop_assert_eq!(full.oracle.expected_miss_total(), 0, "full skips nothing");
    }
}

/// The ratio boundaries degenerate exactly: keeping every site is `Full`
/// (bit-identical results AND zero expected misses), keeping none is
/// `None`.
#[test]
fn boundary_ratios_collapse_to_full_and_none() {
    let full = run_campaign(&small_config(9, SanPolicy::Full));
    let all = run_campaign(&small_config(9, SanPolicy::Partial { ratio_pm: 1000, salt: 77 }));
    assert_eq!(full, all, "partial:1.0 must be byte-identical to full");
    assert_eq!(all.oracle.expected_miss_total(), 0);
    assert_eq!(ubfuzz::report::table3(&full), ubfuzz::report::table3(&all));

    let none = run_campaign(&small_config(9, SanPolicy::None));
    let empty = run_campaign(&small_config(9, SanPolicy::Partial { ratio_pm: 0, salt: 77 }));
    assert_eq!(none, empty, "partial:0.0 must be byte-identical to none");
    assert!(none.bugs.is_empty(), "uninstrumented campaigns cannot report");
    assert_eq!(
        none.oracle.expected_miss_total(),
        empty.oracle.expected_miss_total(),
        "both zero-site policies account the same expected misses"
    );
}
