//! Observability contract: telemetry is an observer.
//!
//! Two properties pin the `ubfuzz-obs` integration to the determinism
//! story the rest of the suite relies on:
//!
//! 1. **Byte identity** — a campaign run under a JSONL trace recorder (or
//!    a metrics sink) produces the same results and the same rendered
//!    report bytes as an uninstrumented run, at worker counts 1/2/8/16
//!    with the staged-compile cache on and off (the same grid as
//!    `parallel.rs`).
//! 2. **Merge algebra** — per-worker latency histograms folded in any
//!    order equal the histogram of all samples recorded in one place, so
//!    the daemon's receipt merge and the sharded sink's snapshot fold are
//!    schedule-independent.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::obs::{Event, Histogram, MetricsSink, Recorder, Stage, TraceRecorder};
use ubfuzz::run_campaign;

fn small_config(first_seed: u64, generator: GeneratorChoice) -> CampaignConfig {
    // Mirrors `parallel.rs`: small programs keep each full campaign fast;
    // the observer property is size-independent.
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(3)
        .generator(generator)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

/// A `Write` target the test can read back after the recorder flushed.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Enabling tracing changes no campaign output byte: same results, same
/// rendered report, at every tested worker count × cache setting — while
/// the trace itself demonstrably observed the pipeline.
#[test]
fn traced_campaign_output_is_byte_identical() {
    let cfg = small_config(11, GeneratorChoice::Ubfuzz);
    let sequential = run_campaign(&cfg);
    for workers in [1usize, 2, 8, 16] {
        for cache in [true, false] {
            let buf = SharedBuf::default();
            let trace = Arc::new(TraceRecorder::new(Box::new(buf.clone())));
            let traced = ParallelCampaign::new(cfg.clone())
                .with_recorder(trace.clone())
                .with_shards(workers)
                .with_cache(cache)
                .run();
            assert_eq!(
                sequential, traced,
                "trace changed results at {workers} workers (cache {cache})"
            );
            assert_eq!(
                ubfuzz::report::table3(&sequential),
                ubfuzz::report::table3(&traced),
                "trace changed report bytes at {workers} workers (cache {cache})"
            );
            trace.flush();
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            assert!(
                text.lines().any(|l| l.contains("\"type\":\"span\"")),
                "trace observed no spans at {workers} workers (cache {cache})"
            );
            assert!(
                text.contains("\"stage\":\"generate\""),
                "trace missed the generate stage at {workers} workers (cache {cache})"
            );
        }
    }
}

/// Per-stage span counts driven by campaign structure (one generate per
/// seed, one run and one oracle pass per unit) are schedule-independent:
/// sequential and every parallel width count the same events.
#[test]
fn structural_span_counts_are_schedule_independent() {
    let cfg = small_config(5, GeneratorChoice::Ubfuzz);
    let counts = |stats: &ubfuzz::CampaignStats, sink: &MetricsSink| {
        let snap = sink.snapshot();
        let of = |stage: Stage| snap.stages.get(&stage).map(|h| h.count).unwrap_or(0);
        (
            stats.clone(),
            of(Stage::Generate),
            of(Stage::Run),
            of(Stage::Oracle),
        )
    };
    let seq_sink = Arc::new(MetricsSink::new());
    let mut seq_cfg = cfg.clone();
    seq_cfg.recorder = Some(seq_sink.clone());
    let (seq_stats, seq_gen, seq_run, seq_oracle) = counts(&run_campaign(&seq_cfg), &seq_sink);
    assert_eq!(seq_gen, 3, "one generate span per seed");
    assert!(seq_oracle > 0, "oracle spans observed");
    // Each unit runs one oracle pass but executes one artifact per matrix
    // cell, so run spans dominate oracle spans.
    assert!(seq_run >= seq_oracle, "run spans at least cover the oracled units");
    // workers=1 exercises the executor's single-shard path, which must
    // match the plain sequential loop span-for-span.
    for workers in [1usize, 2, 8, 16] {
        let sink = Arc::new(MetricsSink::new());
        let par = ParallelCampaign::new(cfg.clone())
            .with_recorder(sink.clone())
            .with_shards(workers)
            .run();
        let (par_stats, par_gen, par_run, par_oracle) = counts(&par, &sink);
        assert_eq!(seq_stats, par_stats, "{workers} workers diverge");
        assert_eq!(
            (seq_gen, seq_run, seq_oracle),
            (par_gen, par_run, par_oracle),
            "structural span counts diverge at {workers} workers"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Histogram merging is partition- and order-invariant: round-robin
    /// the same samples over 1/2/8/16 workers, fold in canonical order or
    /// reversed, thread them through the sharded sink — every road yields
    /// the identical histogram, and its quantiles stay monotone. This is
    /// the algebra that lets the daemon fold worker receipts in completion
    /// order and still answer `METRICS` deterministically.
    #[test]
    fn histogram_merge_is_partition_invariant(seed in 0u64..1_000_000) {
        // The vendored proptest subset has integer strategies only; derive
        // the sample vector from the case seed (splitmix64) so every case
        // is reproducible from the reported input.
        let mut state: u64 = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // Span durations are bounded by reality (2^40 ns ≈ 18 minutes);
        // staying there keeps the sums clear of u64 saturation, where the
        // sink's wrapping atomics and Histogram's saturating adds would
        // legitimately disagree.
        let len = 1 + (next() % 199) as usize;
        let samples: Vec<u64> = (0..len).map(|_| next() % (1u64 << 40)).collect();
        let mut reference = Histogram::new();
        for &s in &samples {
            reference.record(s);
        }
        for workers in [1usize, 2, 8, 16] {
            let mut parts = vec![Histogram::new(); workers];
            for (i, &s) in samples.iter().enumerate() {
                parts[i % workers].record(s);
            }
            let mut forward = Histogram::new();
            let mut reverse = Histogram::new();
            for p in &parts {
                forward.merge(p);
            }
            for p in parts.iter().rev() {
                reverse.merge(p);
            }
            prop_assert_eq!(&forward, &reference, "forward fold diverges at {} workers", workers);
            prop_assert_eq!(&reverse, &reference, "reverse fold diverges at {} workers", workers);
            prop_assert!(forward.p95() >= forward.p50(), "quantiles must be monotone");
            prop_assert!(forward.max_ns >= forward.p95(), "max bounds the quantiles");
        }
        // The receipt wire format round-trips the merged histogram.
        let parsed = Histogram::parse(&reference.encode());
        prop_assert_eq!(parsed.as_ref(), Some(&reference), "encode/parse must round-trip");
        // The sharded sink's snapshot fold equals the same algebra under
        // real thread interleaving.
        let sink = MetricsSink::new();
        let sink = &sink;
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().div_ceil(4)) {
                scope.spawn(move || {
                    for &s in chunk {
                        sink.record(&Event::Span { stage: Stage::Run, unit: 0, nanos: s });
                    }
                });
            }
        });
        let snap = sink.snapshot();
        prop_assert_eq!(
            snap.stages.get(&Stage::Run),
            Some(&reference),
            "sharded sink fold diverges from the reference histogram"
        );
    }
}
