//! Review verification: span counts at workers=1 vs workers=2.

use std::sync::Arc;
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::obs::{MetricsSink, Stage};

fn small_config(first_seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(3)
        .generator(GeneratorChoice::Ubfuzz)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

#[test]
fn generate_span_count_at_one_worker() {
    let cfg = small_config(5);
    for workers in [1usize, 2] {
        let sink = Arc::new(MetricsSink::new());
        let _ = ParallelCampaign::new(cfg.clone())
            .with_recorder(sink.clone())
            .with_shards(workers)
            .run();
        let snap = sink.snapshot();
        let gen = snap.stages.get(&Stage::Generate).map(|h| h.count).unwrap_or(0);
        eprintln!("workers={workers} generate_spans={gen}");
        assert_eq!(gen, 3, "workers={workers}: expected one generate span per seed");
    }
}
