//! The persistent campaign store end-to-end: warm prefix caches across
//! backend reopens, kill-then-resume checkpoint equivalence (property-tested
//! across worker counts), and cross-invocation bug-corpus merges.

use std::path::PathBuf;
use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::{persist, run_campaign, SessionStats};
use ubfuzz_store::BugCorpus;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ubfuzz-core-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config(first_seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(2)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

/// The acceptance property: a second process over the same store compiles
/// nothing — every prefix lookup hits — and the campaign results (hence
/// rendered tables) are identical.
#[test]
fn second_invocation_over_a_store_has_zero_prefix_misses() {
    let dir = tmp_dir("warm-campaign");
    let cfg = small_config(11);
    let capacity = cfg.prefix_key_bound();

    let first_backend: Arc<dyn CompilerBackend> =
        Arc::new(SimBackend::with_store_capacity(&dir, capacity));
    let first = ParallelCampaign::new(cfg.clone())
        .with_backend(first_backend)
        .with_shards(2)
        .run();
    assert!(first.cache.misses > 0, "cold store computes prefixes: {:?}", first.cache);

    // "Next invocation": a fresh backend over the same directory.
    let second_backend = Arc::new(SimBackend::with_store_capacity(&dir, capacity));
    assert!(second_backend.session().preloaded() > 0, "store preloads prefixes");
    let second = ParallelCampaign::new(cfg.clone())
        .with_backend(second_backend.clone() as Arc<dyn CompilerBackend>)
        .with_shards(2)
        .run();
    assert_eq!(first, second, "the store must be invisible to results");
    assert_eq!(second.cache.misses, 0, "warm store misses nothing: {:?}", second.cache);
    assert_eq!(second.cache.san_misses, 0, "warm store re-sanitizes nothing: {:?}", second.cache);
    // Warm sanitizer cells are served from the sanitize-stage layer and
    // never reach the prefix layer, so reuse shows up in san_hits.
    assert!(second.cache.hits + second.cache.san_hits > 0, "{:?}", second.cache);
    assert_eq!(
        ubfuzz::report::table3(&first),
        ubfuzz::report::table3(&second),
        "rendered tables byte-identical"
    );
    // And the reference sequential loop agrees.
    assert_eq!(run_campaign(&cfg), second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint acceptance property: kill the campaign after every budget
/// of K units, resume until done, at several worker counts — the final
/// report is bit-identical to the uninterrupted run.
#[test]
fn killed_and_resumed_campaign_reports_bit_identically() {
    // A slim program budget keeps the kill/resume loop to a handful of
    // relaunches per worker count (each relaunch replays the log and
    // regenerates seeds); the equivalence argument is size-independent.
    let mut cfg = small_config(23);
    cfg.gen_options.max_per_kind = 1;
    let reference = run_campaign(&cfg);
    assert!(!reference.bugs.is_empty(), "reference campaign finds something to compare");

    for workers in [1usize, 2, 8] {
        let dir = tmp_dir(&format!("resume-w{workers}"));
        let mut kills = 0;
        let resumed = loop {
            let attempt = ParallelCampaign::new(cfg.clone())
                .with_shards(workers)
                .with_checkpoint(&dir)
                .with_unit_budget(25)
                .try_run();
            match attempt {
                Ok(stats) => break stats,
                Err(interrupted) => {
                    kills += 1;
                    assert!(
                        interrupted.total > 0 && kills < 10_000,
                        "resume must make progress: {interrupted}"
                    );
                }
            }
        };
        assert!(kills > 0, "budget of 25 units must interrupt at least once");
        assert_eq!(
            reference, resumed,
            "{workers}-worker kill/resume diverges after {kills} kills"
        );
        assert_eq!(ubfuzz::report::table6(&reference), ubfuzz::report::table6(&resumed));

        // A further run replays the complete log: no compiles at all.
        let replay = ParallelCampaign::new(cfg.clone())
            .with_shards(workers)
            .with_checkpoint(&dir)
            .run();
        assert_eq!(reference, replay);
        assert_eq!(
            replay.cache,
            SessionStats::default(),
            "full replay never touches the compile pipeline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An uninterrupted checkpointed campaign equals the plain one, and a
/// checkpoint written by a *different* configuration is ignored.
#[test]
fn checkpoint_compatibility_is_fingerprint_gated() {
    let dir = tmp_dir("fp-gate");
    let cfg = small_config(5);
    let plain = ParallelCampaign::new(cfg.clone()).with_shards(2).run();
    let checkpointed =
        ParallelCampaign::new(cfg.clone()).with_shards(2).with_checkpoint(&dir).run();
    assert_eq!(plain, checkpointed);

    // A different campaign over the same store directory must cold-start,
    // not replay foreign units.
    let other_cfg = small_config(6);
    assert_ne!(
        persist::config_fingerprint(&cfg),
        persist::config_fingerprint(&other_cfg)
    );
    let other =
        ParallelCampaign::new(other_cfg.clone()).with_shards(2).with_checkpoint(&dir).run();
    assert_eq!(other, run_campaign(&other_cfg));
    assert!(other.cache.misses > 0, "foreign checkpoint must not be replayed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bugs merge into the corpus across campaigns with first-seen/last-seen
/// provenance; re-finding is idempotent per key.
#[test]
fn corpus_accumulates_bugs_across_invocations() {
    let dir = tmp_dir("corpus");
    let cfg = CampaignConfig::builder().seeds(4).build();
    let stats = run_campaign(&cfg);
    assert!(!stats.bugs.is_empty());

    let mut corpus = BugCorpus::open(&dir);
    let first = persist::merge_bugs(&mut corpus, &stats);
    assert_eq!(first.new, stats.bugs.len());
    assert_eq!(first.known, 0);
    drop(corpus);

    // Second invocation finds the same world again.
    let mut corpus = BugCorpus::open(&dir);
    assert_eq!(corpus.len(), stats.bugs.len(), "corpus persists across opens");
    let second = persist::merge_bugs(&mut corpus, &stats);
    assert_eq!(second.new, 0, "re-found bugs do not duplicate");
    assert_eq!(second.known, stats.bugs.len());
    for entry in corpus.entries().values() {
        assert_eq!(entry.campaigns, 2);
        assert!(entry.first_seen <= entry.last_seen);
        assert_eq!(entry.total_duplicates, 2 * entry.bug.duplicates);
    }

    // A disjoint campaign (different seeds) can add genuinely new keys
    // while leaving known provenance intact.
    let more = run_campaign(&CampaignConfig::builder().first_seed(40).seeds(4).build());
    let third = persist::merge_bugs(&mut corpus, &more);
    assert_eq!(third.new + third.known, more.bugs.len());
    assert!(corpus.len() >= stats.bugs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The session auto-sizing satellite: runner sessions are sized from the
/// campaign config, comfortably above the old hand-tuned literals for
/// table-scale runs and never below the historic default.
#[test]
fn sessions_auto_size_from_the_campaign_config() {
    let small = CampaignConfig::builder().seeds(1).build();
    assert!(small.prefix_key_bound() >= 2048, "never below the historic default");

    let table_scale = CampaignConfig::builder().seeds(30).build();
    // 30 seeds × (9 kinds × 12 per kind) × (10 GCC + 14 LLVM versions) × 5
    // levels — far beyond the old 1<<15 literal.
    assert!(table_scale.prefix_key_bound() > (1 << 15), "table-scale sizing");

    let juliet = CampaignConfig::builder().generator(GeneratorChoice::Juliet).build();
    assert!(juliet.prefix_key_bound() >= 2048);
}
