//! The `CompilerBackend` seam: campaigns and report entry points are
//! generic over the backend, default to [`SimBackend`], and a single shared
//! backend persists its staged-compile cache across entry points (the first
//! step of cross-campaign cache persistence).

use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::{report, run_campaign, run_campaign_on};
use ubfuzz_simcc::defects::DefectRegistry;

const SEEDS: usize = 3;

/// One backend across `make_tables`-style entry points: the second campaign
/// must be served entirely from the prefixes the first one computed, and
/// the figure replays must keep hitting the same cache.
#[test]
fn shared_backend_reuses_prefixes_across_table_entry_points() {
    // Size the session from the campaign it will serve (a 6-seed default
    // campaign wants ~2.7k prefixes; the default 2048 budget epoch-evicts
    // mid-run and would defeat cross-run persistence).
    let capacity = CampaignConfig::builder().seeds(6).build().prefix_key_bound();
    let backend: Arc<dyn CompilerBackend> = Arc::new(SimBackend::with_session(
        ubfuzz_simcc::session::CompileSession::with_capacity(capacity),
    ));

    // Table 3 path (6 seeds: enough for attributable bugs to replay below).
    let stats_t3 = report::default_campaign_with(Arc::clone(&backend), 6);
    let after_t3 = backend.prefix_cache().expect("sim caches").stats();
    assert!(after_t3.misses > 0, "first campaign fills the cache: {after_t3:?}");
    assert!(after_t3.hits > 0, "sanitizer matrix already shares prefixes: {after_t3:?}");

    // Table 6 path recompiles the same campaign on the same backend: every
    // lookup must now be served from the cache (cross-table persistence).
    // Warm sanitizer cells hit the *sanitize-stage* layer and never reach
    // the prefix layer, so reuse shows up in `san_hits` while the prefix
    // counters stay frozen.
    let stats_t6 = report::default_campaign_with(Arc::clone(&backend), 6);
    let after_t6 = backend.prefix_cache().expect("sim caches").stats();
    assert_eq!(stats_t3, stats_t6, "shared cache must not change results");
    assert_eq!(
        after_t6.misses, after_t3.misses,
        "second campaign re-misses prefixes the first cached"
    );
    assert_eq!(
        after_t6.san_misses, after_t3.san_misses,
        "second campaign re-sanitizes cells the first cached"
    );
    assert!(after_t6.san_hits > after_t3.san_hits, "cross-table lookups hit: {after_t6:?}");
    // Per-run telemetry stays a delta even on a shared backend.
    assert_eq!(stats_t6.cache.misses, 0, "{:?}", stats_t6.cache);
    assert_eq!(stats_t6.cache.hits, after_t6.hits - after_t3.hits);
    assert_eq!(stats_t6.cache.san_hits, after_t6.san_hits - after_t3.san_hits);

    // The Fig. 11 replay recompiles found-bug test cases; on the shared
    // backend its lookups keep hitting the campaign's cached stages.
    let registry = DefectRegistry::full();
    let fig11_shared = report::fig11_with(&stats_t3, &registry, backend.as_ref());
    let after_fig = backend.prefix_cache().expect("sim caches").stats();
    assert!(!stats_t3.bugs.is_empty(), "campaign found bugs to replay");
    assert!(
        after_fig.hits + after_fig.san_hits > after_t6.hits + after_t6.san_hits,
        "figure replays reuse the cache: {after_fig:?}"
    );
    // And rendering through the shared backend matches the standalone path.
    assert_eq!(fig11_shared, report::fig11(&stats_t3, &registry));
}

/// `run_campaign_on` with an explicit backend matches the default-resolved
/// sequential reference, report text included.
#[test]
fn explicit_backend_sequential_run_matches_default() {
    let cfg = CampaignConfig::builder().seeds(SEEDS).build();
    let reference = run_campaign(&cfg);
    let cached = SimBackend::new();
    let on_cached = run_campaign_on(&cached, &cfg);
    assert_eq!(reference, on_cached);
    assert!(on_cached.cache.hits > 0, "explicit cached backend records telemetry");
    assert_eq!(reference.cache, ubfuzz::SessionStats::default(), "reference stays uncached");
    assert_eq!(report::table3(&reference), report::table3(&on_cached));
    assert_eq!(report::table6(&reference), report::table6(&on_cached));
}

/// A config-carried backend reaches the sequential loop too: `run_campaign`
/// resolves `cfg.backend` before falling back to the uncached default.
#[test]
fn config_carried_backend_is_used_by_run_campaign() {
    let shared: Arc<dyn CompilerBackend> = Arc::new(SimBackend::new());
    let cfg = CampaignConfig::builder().seeds(2).backend(Arc::clone(&shared)).build();
    let stats = run_campaign(&cfg);
    let cache = shared.prefix_cache().expect("sim caches").stats();
    assert!(cache.hits + cache.misses > 0, "sequential loop compiled on the shared backend");
    assert_eq!(stats.cache, cache, "first run's delta is the whole counter");

    // And the parallel runner over the same config shares the same cache.
    let parallel = ubfuzz::ParallelCampaign::new(cfg).with_shards(4).run();
    assert_eq!(stats, parallel);
    assert_eq!(parallel.cache.misses, 0, "warm backend serves every prefix: {:?}", parallel.cache);
}

/// A backend advertising only a subset of toolchains (here: GCC only, so
/// every MSan matrix is empty) must still keep the parallel streaming merge
/// bit-identical to the sequential loop — empty matrices used to stall the
/// group-boundary consumer and silently drop every oracle result.
#[test]
fn partial_toolchain_backend_keeps_parallel_equal_to_sequential() {
    use ubfuzz::backend::{Artifact, CompileRequest, PrefixCache, RunOutcome, RunRequest, ToolchainDesc};
    use ubfuzz_simcc::lower::CompileError;
    use ubfuzz_simcc::session::ProgramFingerprint;

    /// `SimBackend` restricted to its first toolchain (GCC, which ships no
    /// MSan) — the shape a real-toolchain probe produces on a gcc-only box.
    #[derive(Debug, Default)]
    struct GccOnly(SimBackend);

    impl CompilerBackend for GccOnly {
        fn name(&self) -> &str {
            "gcc-only"
        }

        fn toolchains(&self) -> Vec<ToolchainDesc> {
            self.0.toolchains().into_iter().take(1).collect()
        }

        fn fingerprint(&self, program: &ubfuzz::minic::Program) -> ProgramFingerprint {
            self.0.fingerprint(program)
        }

        fn compile(
            &self,
            fp: &ProgramFingerprint,
            program: &ubfuzz::minic::Program,
            req: &CompileRequest<'_>,
        ) -> Result<Artifact, CompileError> {
            self.0.compile(fp, program, req)
        }

        fn execute(&self, artifact: &Artifact, req: &RunRequest) -> RunOutcome {
            self.0.execute(artifact, req)
        }

        fn prefix_cache(&self) -> Option<&dyn PrefixCache> {
            self.0.prefix_cache()
        }
    }

    let backend: Arc<dyn CompilerBackend> = Arc::new(GccOnly::default());
    let cfg = CampaignConfig::builder().seeds(SEEDS).backend(backend).build();
    let sequential = run_campaign(&cfg);
    // UninitUse programs exist and their MSan matrix is empty on GCC.
    assert!(
        sequential.ub_programs.contains_key(&ubfuzz::minic::UbKind::UninitUse),
        "campaign generates MSan-only programs: {:?}",
        sequential.ub_programs
    );
    for workers in [1usize, 4] {
        let parallel = ubfuzz::ParallelCampaign::new(cfg.clone()).with_shards(workers).run();
        assert_eq!(sequential, parallel, "{workers}-worker merge diverges on empty matrices");
        assert!(parallel.discrepancies > 0 || !parallel.bugs.is_empty() || parallel.selected > 0
            || parallel.total_programs() > 0,
            "campaign did real work");
    }
}

/// The coverage experiment renders identically through a shared backend
/// (coverage points never live in the cached prefix).
#[test]
fn coverage_experiment_is_backend_share_invariant() {
    let fresh = report::coverage_experiment(2);
    let backend = SimBackend::new();
    // Warm the backend with an unrelated campaign first.
    let _ = run_campaign_on(&backend, &CampaignConfig::builder().seeds(1).build());
    let shared = report::coverage_experiment_with(&backend, 2);
    assert_eq!(fresh, shared);
}
