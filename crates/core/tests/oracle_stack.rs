//! The pluggable-oracle seam: trace-based arbitration of module-less
//! artifacts, drop-reason telemetry, and ablation-by-stack-selection.
//!
//! The headline regression here is the one the API redesign exists for: a
//! backend whose artifacts expose no module (the shape of every real
//! toolchain) used to have its discrepancies *silently dropped* — counted,
//! never arbitrated. With `CompilerBackend::trace` the oracle arbitrates
//! them and files `SanitizerBug` verdicts under the "unknown" attribution
//! key. `campaign_over_opaque_artifacts_files_trace_derived_bugs` fails on
//! the old API (selected was always 0 there).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use ubfuzz::backend::{
    Artifact, CompileRequest, CompilerBackend, OpaqueArtifact, PrefixCache, RunOutcome,
    RunRequest, SimBackend, SiteTrace, ToolchainDesc, TraceCapability,
};
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::oracle::DropReason;
use ubfuzz::{report, run_campaign, OracleStack, ParallelCampaign};
use ubfuzz_simcc::lower::CompileError;
use ubfuzz_simcc::session::ProgramFingerprint;
use ubfuzz_simcc::Module;
use ubfuzz_simvm::{run_module, run_traced, RunResult};

/// How much of the trace seam a test double exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DoubleTrace {
    /// Full simulated-VM tracing (the trace-capable native backend shape).
    Site,
    /// Claims line capability but every trace attempt fails (a probed
    /// debugger that cannot actually step — the `no-trace` drop path).
    Broken,
    /// No tracing at all (the pre-redesign `CcBackend` shape — the
    /// `no-module` drop path).
    None,
}

/// `SimBackend` behind opaque artifacts: compiles via the simulated
/// pipeline but hands out tokens instead of modules, so the oracle can see
/// exactly what a real-toolchain campaign sees — plus a trace capability
/// knob to exercise every arbitration path.
#[derive(Debug)]
struct OpaqueSim {
    inner: SimBackend,
    trace: DoubleTrace,
    tokens: AtomicU64,
    modules: Mutex<BTreeMap<u64, Module>>,
}

impl OpaqueSim {
    fn new(trace: DoubleTrace) -> OpaqueSim {
        OpaqueSim {
            inner: SimBackend::new(),
            trace,
            tokens: AtomicU64::new(0),
            modules: Mutex::new(BTreeMap::new()),
        }
    }

    fn module_of(&self, artifact: &Artifact) -> Option<Module> {
        let Artifact::Opaque(o) = artifact else { return None };
        self.modules.lock().unwrap().get(&o.token).cloned()
    }
}

impl CompilerBackend for OpaqueSim {
    fn name(&self) -> &str {
        "opaque-sim"
    }

    fn toolchains(&self) -> Vec<ToolchainDesc> {
        self.inner.toolchains()
    }

    fn fingerprint(&self, program: &ubfuzz::minic::Program) -> ProgramFingerprint {
        self.inner.fingerprint(program)
    }

    fn compile(
        &self,
        fp: &ProgramFingerprint,
        program: &ubfuzz::minic::Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError> {
        let artifact = self.inner.compile(fp, program, req)?;
        let Artifact::Sim(module) = artifact else { unreachable!("sim compiles to modules") };
        let token = self.tokens.fetch_add(1, Ordering::Relaxed);
        let opaque = OpaqueArtifact { token, compiler: req.compiler, sanitizer: req.sanitizer };
        self.modules.lock().unwrap().insert(token, module);
        Ok(Artifact::Opaque(opaque))
    }

    fn execute(&self, artifact: &Artifact, _req: &RunRequest) -> RunOutcome {
        match self.module_of(artifact) {
            Some(m) => run_module(&m),
            None => RunResult::Error("unknown opaque token".into()),
        }
    }

    fn trace_capability(&self) -> TraceCapability {
        match self.trace {
            DoubleTrace::Site => TraceCapability::Site,
            DoubleTrace::Broken => TraceCapability::Line,
            DoubleTrace::None => TraceCapability::None,
        }
    }

    fn trace(&self, artifact: &Artifact, _req: &RunRequest) -> Option<SiteTrace> {
        match self.trace {
            DoubleTrace::Site => {
                let m = self.module_of(artifact)?;
                let (_, trace) = run_traced(&m);
                Some(SiteTrace::from_vm(trace))
            }
            DoubleTrace::Broken | DoubleTrace::None => None,
        }
    }

    fn prefix_cache(&self) -> Option<&dyn PrefixCache> {
        self.inner.prefix_cache()
    }
}

const SEEDS: usize = 3;

fn campaign_config(backend: Arc<dyn CompilerBackend>) -> CampaignConfig {
    CampaignConfig::builder().seeds(SEEDS).backend(backend).build()
}

/// The acceptance regression: module-less discrepancies are arbitrated via
/// the trace path — verdicts filed (or rejected) exactly as over modules —
/// and the result is bit-identical between the sequential loop and the
/// parallel executor at 1 and 4 workers.
#[test]
fn campaign_over_opaque_artifacts_files_trace_derived_bugs() {
    // Reference: the same campaign over module-carrying artifacts.
    let sim = run_campaign(&campaign_config(Arc::new(SimBackend::new())));
    assert!(sim.selected > 0, "reference campaign selects bugs: {sim:?}");

    let cfg = campaign_config(Arc::new(OpaqueSim::new(DoubleTrace::Site)));
    let opaque = run_campaign(&cfg);
    // Trace-based arbitration reproduces the module path's triage exactly…
    assert_eq!(opaque.discrepancies, sim.discrepancies);
    assert_eq!(
        opaque.selected, sim.selected,
        "module-less discrepancies used to be dropped (selected == 0); the trace path \
         must arbitrate them identically to the module path"
    );
    assert_eq!(opaque.dropped, sim.dropped);
    // …and the verdicts file as bugs under the "unknown" attribution key
    // (no module ⇒ nothing to attribute to), not as silence.
    assert!(!opaque.bugs.is_empty());
    assert!(
        opaque.bugs.iter().all(|b| b.defect_id.is_none()),
        "opaque artifacts cannot attribute to injected defects"
    );
    assert!(
        opaque.bugs.iter().any(|b| !b.invalid && !b.wrong_report),
        "trace-derived FN verdicts are filed: {:?}",
        opaque.bugs.iter().map(|b| (b.vendor, b.sanitizer, b.kind)).collect::<Vec<_>>()
    );
    for bug in &opaque.bugs {
        assert!(bug.corpus_key().starts_with("unknown:") || bug.wrong_report || bug.invalid);
    }
    // Every drop that did happen was arbitrated, not a trace failure.
    assert_eq!(opaque.oracle.unarbitrated(), 0, "{:?}", opaque.oracle);

    // Sequential ≡ parallel at 1 and 4 workers over the same shared double.
    for workers in [1usize, 4] {
        let parallel = ParallelCampaign::new(cfg.clone()).with_shards(workers).run();
        assert_eq!(opaque, parallel, "{workers}-worker run diverges on opaque artifacts");
    }
}

/// Drop accounting separates "arbitrated away" from "could not arbitrate",
/// per sanitizer, and `oracle_stats` renders the breakdown only when
/// something was unarbitrated.
#[test]
fn drop_reasons_distinguish_no_module_from_no_trace() {
    // Trace-capable double: all drops are arbitrated optimization
    // artifacts; the stats line keeps its pre-redesign byte format.
    let arbitrated = run_campaign(&campaign_config(Arc::new(OpaqueSim::new(DoubleTrace::Site))));
    assert_eq!(arbitrated.oracle.unarbitrated(), 0);
    let text = report::oracle_stats(&arbitrated);
    assert!(!text.contains("dropped["), "no breakdown without unarbitrated drops: {text}");

    // No trace capability at all: the pre-redesign conservative drop,
    // now accounted as `no-module` instead of silently folded in.
    let no_module = run_campaign(&campaign_config(Arc::new(OpaqueSim::new(DoubleTrace::None))));
    assert_eq!(no_module.selected, 0, "nothing can be arbitrated");
    assert_eq!(no_module.dropped, no_module.discrepancies);
    assert!(no_module.discrepancies > 0);
    assert_eq!(no_module.oracle.dropped_for(DropReason::NoModule), no_module.dropped);
    assert_eq!(no_module.oracle.dropped_for(DropReason::NoTrace), 0);
    let text = report::oracle_stats(&no_module);
    assert!(text.contains("no-module="), "breakdown renders: {text}");

    // Claimed-but-broken tracing: same outcomes, but accounted as
    // `no-trace` so a real-toolchain operator can tell a missing debugger
    // from a missing module.
    let no_trace = run_campaign(&campaign_config(Arc::new(OpaqueSim::new(DoubleTrace::Broken))));
    assert_eq!(no_trace.selected, 0);
    assert_eq!(no_trace.oracle.dropped_for(DropReason::NoTrace), no_trace.dropped);
    assert_eq!(no_trace.oracle.dropped_for(DropReason::NoModule), 0);
    // Reason buckets are execution metadata: results still compare equal.
    assert_eq!(no_module, no_trace);
}

/// The ablation is stack selection: the naive stack files every
/// discrepancy the standard stack triages.
#[test]
fn naive_stack_selection_matches_discrepancies() {
    let backend: Arc<dyn CompilerBackend> = Arc::new(SimBackend::new());
    let standard = run_campaign(&campaign_config(Arc::clone(&backend)));
    let naive = run_campaign(
        &CampaignConfig::builder()
            .seeds(SEEDS)
            .backend(Arc::clone(&backend))
            .oracle(Arc::new(OracleStack::naive()))
            .build(),
    );
    assert_eq!(naive.discrepancies, standard.discrepancies, "discrepancy counting is stack-independent");
    assert_eq!(naive.selected, naive.discrepancies, "naive files everything");
    assert_eq!(naive.dropped, 0);
    assert!(
        standard.selected <= naive.selected,
        "mapping can only triage down: {} vs {}",
        standard.selected,
        naive.selected
    );

    // An explicitly configured standard stack is the default.
    let explicit = run_campaign(
        &CampaignConfig::builder()
            .seeds(SEEDS)
            .backend(Arc::clone(&backend))
            .oracle(Arc::new(OracleStack::standard()))
            .build(),
    );
    assert_eq!(explicit, standard, "explicit standard stack ≡ default");
    assert_eq!(report::table3(&explicit), report::table3(&standard));
}
