//! Property: the unit-executor campaign runner is observationally identical
//! to the sequential loop (proptest), whatever backend plumbing is in play.
//!
//! Same deduplicated bug reports — same order, same test cases, same
//! `missed_at`/`duplicates` — and same counters, for the same campaign
//! seed, at worker counts 1/2/8/16, with the staged-compile cache enabled
//! *and* disabled, and with an explicitly shared [`SimBackend`] standing in
//! for the default per-run one. This is what keeps the paper's Table 3/4/6
//! and figure outputs reproducible under parallelism — and what pins the
//! `CompilerBackend` refactor to the pre-refactor behavior.
//!
//! Kept in its own file with a small case count: every case runs ten full
//! generate→compile→run→oracle campaigns.

use proptest::prelude::*;
use std::sync::Arc;
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::{run_campaign, SimBackend};

fn small_config(first_seed: u64, generator: GeneratorChoice) -> CampaignConfig {
    // Small seed programs and a slim per-seed program budget keep each
    // case fast (the full suite runs in debug mode on one core); the
    // equivalence argument is size-independent, and the in-crate
    // campaign tests cover default-sized runs.
    CampaignConfig::builder()
        .first_seed(first_seed)
        .seeds(3)
        .generator(generator)
        .seed_options(ubfuzz::seedgen::SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..ubfuzz::seedgen::SeedOptions::default()
        })
        .gen_options(ubfuzz::ubgen::GenOptions {
            max_per_kind: 2,
            ..ubfuzz::ubgen::GenOptions::default()
        })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    #[test]
    fn parallel_campaign_equals_sequential(first_seed in 0u64..400) {
        let generator = if first_seed % 3 == 0 {
            GeneratorChoice::Music
        } else {
            GeneratorChoice::Ubfuzz
        };
        let cfg = small_config(first_seed, generator);
        let sequential = run_campaign(&cfg);
        let mut two_workers = None;
        for workers in [1usize, 2, 8, 16] {
            for cache in [true, false] {
                // Reuse the exact `cfg` the sequential side ran — the
                // property must compare the same config on both sides.
                let parallel = ParallelCampaign::new(cfg.clone())
                    .with_shards(workers)
                    .with_cache(cache)
                    .run();
                prop_assert_eq!(
                    &sequential, &parallel,
                    "first_seed {} diverges at {} workers (cache {})",
                    first_seed, workers, cache
                );
                if !cache {
                    prop_assert_eq!(parallel.cache, ubfuzz::SessionStats::default());
                }
                if workers == 2 && cache {
                    two_workers = Some(parallel);
                }
            }
        }
        // An explicitly shared backend (the cross-campaign persistence
        // path) must be just as invisible: run it twice so the second pass
        // serves prefixes cached by the first.
        let shared = Arc::new(SimBackend::new());
        let mut last = None;
        for workers in [2usize, 8] {
            let parallel = ParallelCampaign::new(cfg.clone())
                .with_backend(shared.clone())
                .with_shards(workers)
                .run();
            prop_assert_eq!(
                &sequential, &parallel,
                "first_seed {} diverges on the shared backend at {} workers",
                first_seed, workers
            );
            last = Some(parallel);
        }
        let last = last.expect("shared-backend runs happened");
        prop_assert_eq!(
            last.cache.misses, 0,
            "second run over the shared backend re-misses: {:?}", last.cache
        );
        // And the rendered reports are byte-identical.
        let parallel = two_workers.expect("workers=2 ran");
        prop_assert_eq!(ubfuzz::report::table3(&sequential), ubfuzz::report::table3(&parallel));
        prop_assert_eq!(ubfuzz::report::table6(&sequential), ubfuzz::report::table6(&parallel));
        prop_assert_eq!(ubfuzz::report::fig7(&sequential), ubfuzz::report::fig7(&parallel));
    }
}

/// The high-width determinism gate CI runs: many more workers than tasks per
/// group, so the work-stealing path is exercised hard. Worker count is
/// overridable via `UBFUZZ_TEST_WORKERS` (CI pins 16).
#[test]
fn parallel_campaign_equals_sequential_at_high_worker_count() {
    let workers: usize = std::env::var("UBFUZZ_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let cfg = small_config(7, GeneratorChoice::Ubfuzz);
    let sequential = run_campaign(&cfg);
    for cache in [true, false] {
        let parallel =
            ParallelCampaign::new(cfg.clone()).with_shards(workers).with_cache(cache).run();
        assert_eq!(sequential, parallel, "{workers} workers diverge (cache {cache})");
        assert_eq!(ubfuzz::report::table3(&sequential), ubfuzz::report::table3(&parallel));
        if cache {
            assert!(
                parallel.cache.hits > 0,
                "sanitizer matrix must share compile prefixes: {:?}",
                parallel.cache
            );
        }
    }
}
