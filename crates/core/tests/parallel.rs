//! Property: the sharded campaign runner is observationally identical to
//! the sequential loop (proptest).
//!
//! Same deduplicated bug reports — same order, same test cases, same
//! `missed_at`/`duplicates` — and same counters, for the same campaign
//! seed, at every shard count. This is what keeps the paper's Table 3/4/6
//! and figure outputs reproducible under parallelism.
//!
//! Kept in its own file with a small case count: every case runs five full
//! generate→compile→run→oracle campaigns.

use proptest::prelude::*;
use ubfuzz::campaign::{CampaignConfig, GeneratorChoice, ParallelCampaign};
use ubfuzz::run_campaign;

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    #[test]
    fn parallel_campaign_equals_sequential(first_seed in 0u64..400) {
        let generator = if first_seed % 3 == 0 {
            GeneratorChoice::Music
        } else {
            GeneratorChoice::Ubfuzz
        };
        // Small seed programs and a slim per-seed program budget keep each
        // case fast (the full suite runs in debug mode on one core); the
        // equivalence argument is size-independent, and the in-crate
        // campaign tests cover default-sized runs.
        let cfg = CampaignConfig {
            first_seed,
            seeds: 3,
            generator,
            seed_options: ubfuzz::seedgen::SeedOptions {
                max_helpers: 1,
                max_globals: 5,
                max_stmts: 4,
                max_depth: 2,
                ..ubfuzz::seedgen::SeedOptions::default()
            },
            gen_options: ubfuzz::ubgen::GenOptions {
                max_per_kind: 2,
                ..ubfuzz::ubgen::GenOptions::default()
            },
            ..CampaignConfig::default()
        };
        let sequential = run_campaign(&cfg);
        let mut two_shards = None;
        for shards in [1usize, 2, 8] {
            let sharded = ParallelCampaign::new(cfg.clone()).with_shards(shards).run();
            prop_assert_eq!(
                &sequential, &sharded,
                "first_seed {} diverges at {} shards", first_seed, shards
            );
            if shards == 2 {
                two_shards = Some(sharded);
            }
        }
        // And the rendered reports are byte-identical.
        let sharded = two_shards.expect("shards=2 ran");
        prop_assert_eq!(ubfuzz::report::table3(&sequential), ubfuzz::report::table3(&sharded));
        prop_assert_eq!(ubfuzz::report::table6(&sequential), ubfuzz::report::table6(&sharded));
        prop_assert_eq!(ubfuzz::report::fig7(&sequential), ubfuzz::report::fig7(&sharded));
    }
}
