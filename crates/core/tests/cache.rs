//! Property: staged-compile caching is invisible to compilation results.
//!
//! For generated UB programs, a [`CompileSession`]'s output must be
//! bit-identical to the single-shot `compile()` across the full vendor ×
//! version × level × sanitizer matrix — including repeated lookups that are
//! served from the cache — and the hit/miss counters must account for every
//! prefix lookup.

use proptest::prelude::*;
use ubfuzz::seedgen::{generate_seed, SeedOptions};
use ubfuzz::simcc::defects::DefectRegistry;
use ubfuzz::simcc::pipeline::{compile, CompileConfig};
use ubfuzz::simcc::session::CompileSession;
use ubfuzz::simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz::simcc::Sanitizer;
use ubfuzz::ubgen::GenOptions;

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    #[test]
    fn cached_compile_equals_uncached_across_matrix(seed_id in 0u64..500) {
        let seed = generate_seed(seed_id, &SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..SeedOptions::default()
        });
        let programs = ubfuzz::ubgen::generate_all(
            &seed,
            &GenOptions { max_per_kind: 1, ..GenOptions::default() },
        );
        // (No prop_assume in the vendored shim; an empty program list would
        // vacuously pass, but ubgen always yields programs for valid seeds.)
        prop_assert!(!programs.is_empty(), "ubgen produced no programs for seed {}", seed_id);
        let registry = DefectRegistry::full();
        let session = CompileSession::new();
        // Dev heads plus one stable version per vendor, so cached prefixes
        // are exercised across the version axis too (Fig. 10 replays).
        let compilers: Vec<CompilerId> = Vendor::ALL
            .into_iter()
            .flat_map(|v| [CompilerId::dev(v), CompilerId { vendor: v, version: 9 }])
            .collect();
        let mut lookups = 0u64;
        for u in &programs {
            let fp = CompileSession::fingerprint(&u.program);
            for &compiler in &compilers {
                for opt in OptLevel::ALL {
                    for sanitizer in
                        [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan), Some(Sanitizer::Msan)]
                    {
                        // Rejected combinations (GCC × MSan) never reach the
                        // prefix; everything else is exactly one lookup.
                        if !(compiler.vendor == Vendor::Gcc && sanitizer == Some(Sanitizer::Msan)) {
                            lookups += 1;
                        }
                        let cfg = CompileConfig {
                            compiler,
                            opt,
                            sanitizer,
                            registry: &registry,
                            san_policy: ubfuzz_simcc::SanPolicy::Full,
                        };
                        let direct = compile(&u.program, &cfg);
                        let cached = session.compile_fp(&fp, &u.program, &cfg);
                        match (direct, cached) {
                            (Ok(a), Ok(b)) => {
                                prop_assert_eq!(
                                    a, b,
                                    "cache changed output: {} {} {:?}", compiler, opt, sanitizer
                                );
                            }
                            (Err(a), Err(b)) => prop_assert_eq!(a.message, b.message),
                            (a, b) => {
                                return Err(TestCaseError::fail(format!(
                                    "outcome mismatch at {compiler} {opt} {sanitizer:?}: {a:?} vs {b:?}"
                                )))
                            }
                        }
                    }
                }
            }
        }
        let stats = session.stats();
        prop_assert_eq!(stats.hits + stats.misses, lookups, "one lookup per accepted compile");
        // Multiple sanitizer variants share each (program, compiler, opt)
        // prefix, so reuse must show up.
        prop_assert!(stats.hits > 0, "{:?}", stats);
    }
}
