//! Integration tests spanning every crate: the full paper pipeline.

use ubfuzz::campaign::{run_campaign, CampaignConfig, GeneratorChoice};
use ubfuzz::report;
use ubfuzz_minic::UbKind;
use ubfuzz_simcc::defects::{DefectRegistry, DEFECTS};
use ubfuzz_simcc::target::Vendor;

#[test]
fn campaign_reproduces_table3_shape() {
    // A mid-sized campaign: bugs appear in both vendors and multiple
    // sanitizers, attributed to real defects; Table 3 renders.
    let stats = run_campaign(&CampaignConfig::builder().seeds(12).build());
    assert!(stats.total_programs() > 60, "programs: {}", stats.total_programs());
    assert!(stats.discrepancies > 5, "discrepancies: {}", stats.discrepancies);
    let attributed: Vec<_> = stats.bugs.iter().filter(|b| b.defect_id.is_some()).collect();
    assert!(attributed.len() >= 6, "bugs: {}", attributed.len());
    assert!(attributed.iter().any(|b| b.vendor == Vendor::Gcc));
    assert!(attributed.iter().any(|b| b.vendor == Vendor::Llvm));
    let sans: std::collections::HashSet<_> =
        attributed.iter().map(|b| b.sanitizer).collect();
    assert!(sans.len() >= 2, "multiple sanitizers: {sans:?}");
    let t3 = report::table3(&stats);
    assert!(t3.contains("Reported"));
    let t6 = report::table6(&stats);
    assert!(t6.contains("No Sanitizer Check"));
    let f7 = report::fig7(&stats);
    assert!(f7.contains("BufOverflow"));
}

#[test]
fn fig1_defect_is_found_and_attributed() {
    // The headline bug (gcc-asan-d01, paper Fig. 1) is found by a small
    // campaign and attributed to the right defect.
    let mut found = false;
    for first in [0u64, 40] {
        let stats = run_campaign(&CampaignConfig::builder().first_seed(first).seeds(10).build());
        if stats.bugs.iter().any(|b| b.defect_id == Some("gcc-asan-d01")) {
            found = true;
            break;
        }
    }
    assert!(found, "gcc-asan-d01 (Fig. 1) discoverable");
}

#[test]
fn baselines_find_far_fewer_and_only_shallow_bugs() {
    // §4.3: the paper's baselines found zero FN bugs in a million programs.
    // Our injected defect corpus is necessarily coarser than the real bugs,
    // so at this scale the baselines occasionally trip the *broadest*
    // triggers — but they find far fewer bugs than UBfuzz at the same seed
    // count and never reach the lifetime kinds (use-after-free/scope) or
    // the uninitialized-memory kind (see EXPERIMENTS.md §4.3).
    let ubfuzz = run_campaign(&CampaignConfig::builder().seeds(6).build());
    let ubfuzz_found =
        ubfuzz.bugs.iter().filter(|b| !b.invalid && !b.wrong_report).count();
    for generator in [GeneratorChoice::Music, GeneratorChoice::CsmithNoSafe] {
        let stats = run_campaign(&CampaignConfig::builder().seeds(6).generator(generator).build());
        let real: Vec<_> = stats
            .bugs
            .iter()
            .filter(|b| !b.invalid && !b.wrong_report)
            .collect();
        assert!(
            real.len() < ubfuzz_found,
            "{generator:?}: {} vs UBfuzz {ubfuzz_found}",
            real.len()
        );
        for b in &real {
            assert!(
                !matches!(
                    b.kind,
                    UbKind::UseAfterFree | UbKind::UseAfterScope | UbKind::UninitUse
                ),
                "{generator:?} cannot reach lifetime/uninit defects: {:?}",
                b.kind
            );
        }
        if generator == GeneratorChoice::CsmithNoSafe {
            // NoSafe only produces arithmetic UB (Table 4), so any finds are
            // confined to arithmetic kinds.
            assert!(real.iter().all(|b| matches!(
                b.kind,
                UbKind::IntOverflow | UbKind::ShiftOverflow | UbKind::DivByZero
            )));
        }
    }
}

#[test]
fn every_defect_kind_class_is_discoverable() {
    // Fig. 7 claim: UBfuzz finds bugs in every UB kind. Run a larger
    // campaign and check kind coverage of the found bugs (not all 30
    // defects need to show at this scale, but most kinds should).
    let stats = run_campaign(&CampaignConfig::builder().seeds(18).build());
    let kinds: std::collections::HashSet<UbKind> = stats
        .bugs
        .iter()
        .filter(|b| b.defect_id.is_some())
        .map(|b| b.kind)
        .collect();
    assert!(kinds.len() >= 5, "bug kinds found: {kinds:?}");
}

#[test]
fn defect_metadata_is_consistent_with_found_bugs() {
    let stats = run_campaign(&CampaignConfig::builder().seeds(8).build());
    for bug in stats.bugs.iter().filter(|b| b.defect_id.is_some()) {
        let d = DEFECTS.iter().find(|d| Some(d.id) == bug.defect_id).expect("registry");
        assert_eq!(d.vendor, bug.vendor);
        assert_eq!(d.sanitizer, bug.sanitizer);
        // The levels at which the campaign observed the miss are within the
        // defect's declared mask (Fig. 11 ground truth).
        for opt in &bug.missed_at {
            assert!(
                d.opt_levels.contains(opt),
                "{}: missed at {} outside mask {:?}",
                d.id,
                opt,
                d.opt_levels
            );
        }
    }
}

#[test]
fn table2_and_fig9_are_static_reproductions() {
    assert!(report::table2().lines().count() >= 9);
    let f9 = report::fig9();
    assert!(f9.contains("2022"));
    assert!(f9.contains("GCC (total 40, by UBfuzz 16)"));
}

#[test]
fn reduced_fig1_report_still_triggers_the_bug() {
    // The paper's reporting pipeline: before filing, C-Reduce shrinks the
    // triggering program while "GCC ASan -O0 catches it, -O2 misses it, and
    // the oracle says sanitizer bug" keeps holding.
    use ubfuzz::backend::{Artifact, RunRequest, SimBackend};
    use ubfuzz::minic::{parse, pretty, Program};
    use ubfuzz::oracle::{arbitrate, trace_artifact, Verdict};
    use ubfuzz::simcc::pipeline::{compile, CompileConfig};
    use ubfuzz::simcc::target::OptLevel;
    use ubfuzz::simcc::Sanitizer;
    use ubfuzz::simvm::run_module;

    let program = parse(
        "
        struct a { int x; };
        struct a b[2];
        struct a *c = b;
        struct a *d = b;
        int k = 0;
        int main(void) {
            c->x = b[0].x;
            k = 2;
            c->x = (d + k)->x;
            return c->x;
        }",
    )
    .expect("Fig. 1 parses");
    let registry = DefectRegistry::full();
    let backend = SimBackend::new();
    let mut interesting = |p: &Program| {
        let Ok(bc) = compile(
            p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
        ) else {
            return false;
        };
        let Ok(bn) = compile(
            p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry),
        ) else {
            return false;
        };
        // The oracle premise, then Algorithm 2 over the trace seam.
        if !run_module(&bc).is_report() || !run_module(&bn).is_normal_exit() {
            return false;
        }
        let req = RunRequest::default();
        let Ok(tc) = trace_artifact(&backend, &Artifact::Sim(bc), &req) else { return false };
        let Ok(tn) = trace_artifact(&backend, &Artifact::Sim(bn), &req) else { return false };
        arbitrate(&tc, tc.last(), &tn) == Verdict::SanitizerBug
    };
    assert!(interesting(&program), "premise: Fig. 1 triggers gcc-asan-d01");
    let reduced = ubfuzz::reduce::reduce(&program, &mut interesting);
    assert!(interesting(&reduced), "reduction preserves the discrepancy");
    assert!(
        pretty::print(&reduced).lines().count() <= pretty::print(&program).lines().count(),
        "reduction must not grow the report"
    );
}

#[test]
fn campaign_with_reduction_files_reduced_test_cases() {
    // `reduce: true` drives the same reducer inside the campaign; every
    // filed test case must still parse.
    let stats = run_campaign(&CampaignConfig::builder().seeds(4).reduce(true).build());
    for bug in &stats.bugs {
        assert!(
            ubfuzz::minic::parse(&bug.test_case).is_ok(),
            "filed test case must parse:\n{}",
            bug.test_case
        );
    }
}

#[test]
fn ptr_diff_extension_is_missed_by_every_sanitizer() {
    // §3.2.4: "We chose not to realize this UB because none of the existing
    // sanitizers support its detection." The extension realizes it anyway;
    // this test is the executable form of the paper's observation — even
    // *pristine* sanitizers run the cross-object pointer difference to a
    // normal exit.
    use ubfuzz::simcc::pipeline::{compile, CompileConfig};
    use ubfuzz::simcc::target::OptLevel;
    use ubfuzz::simcc::Sanitizer;
    use ubfuzz::simvm::run_module;

    let program = ubfuzz::minic::parse(
        "int a;
         int b;
         int main(void) {
            int *p = &a;
            int *q = &b;
            int d = (int)(p - q);
            print_value(d != 0);
            return 0;
         }",
    )
    .expect("parses");
    // Ground truth: the reference interpreter flags it.
    assert_eq!(
        ubfuzz::interp::run_program(&program).ub().map(|e| e.kind),
        Some(UbKind::PtrDiff)
    );
    let reg = DefectRegistry::pristine();
    for vendor in Vendor::ALL {
        for sanitizer in [Sanitizer::Asan, Sanitizer::Ubsan, Sanitizer::Msan] {
            if vendor == Vendor::Gcc && sanitizer == Sanitizer::Msan {
                continue;
            }
            for opt in [OptLevel::O0, OptLevel::O2] {
                let m = compile(
                    &program,
                    &CompileConfig::dev(vendor, opt, Some(sanitizer), &reg),
                )
                .unwrap();
                let r = run_module(&m);
                assert!(
                    r.is_normal_exit(),
                    "{vendor} {sanitizer} {opt}: no sanitizer detects CWE-469, got {r:?}"
                );
            }
        }
    }
}

#[test]
fn pristine_registry_ablation() {
    // Ablation: disabling the defect corpus removes all findings — the
    // oracle never blames the optimizer incorrectly.
    let stats = run_campaign(
        &CampaignConfig::builder().seeds(5).registry(DefectRegistry::pristine()).build(),
    );
    assert!(stats.bugs.iter().all(|b| b.invalid),
        "only invalid-report entries possible: {:?}",
        stats.bugs.iter().map(|b| (b.defect_id, b.invalid, b.kind)).collect::<Vec<_>>());
}
