//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use ubfuzz_interp::run_program;
use ubfuzz_minic::{parse, pretty};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::target::{OptLevel, Vendor};
use ubfuzz_simvm::{run_module, RunResult};
use ubfuzz_ubgen::{generate_all, GenOptions};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Seeds are UB-free, terminate, and round-trip through the printer.
    #[test]
    fn seeds_are_valid_and_roundtrip(seed in 0u64..5000) {
        let p = generate_seed(seed, &SeedOptions::default());
        prop_assert!(run_program(&p).is_clean_exit());
        // Printing reaches a fixed point after one round-trip (negative
        // literals reparse as unary minus), so compare second vs third form.
        let text1 = pretty::print(&p);
        let p2 = parse(&text1).unwrap();
        let text2 = pretty::print(&p2);
        let p3 = parse(&text2).unwrap();
        prop_assert_eq!(&text2, &pretty::print(&p3));
        // And the round-trip preserves semantics exactly.
        prop_assert_eq!(run_program(&p), run_program(&p3));
    }

    /// Compilation at any level preserves the observable behavior of
    /// UB-free programs (interpreter vs VM differential).
    #[test]
    fn optimization_preserves_seed_semantics(seed in 0u64..3000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let gt = match run_program(&p) {
            ubfuzz_interp::Outcome::Exit { output, .. } => output,
            other => return Err(TestCaseError::fail(format!("seed not clean: {other:?}"))),
        };
        let reg = DefectRegistry::full();
        for vendor in Vendor::ALL {
            for opt in OptLevel::ALL {
                let cfg = CompileConfig::dev(vendor, opt, None, &reg);
                let m = compile(&p, &cfg).unwrap();
                match run_module(&m) {
                    RunResult::Exit { output, .. } => {
                        prop_assert_eq!(
                            &output, &gt,
                            "{} {} diverges", vendor, opt
                        );
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "{vendor} {opt}: {other:?}"
                        )))
                    }
                }
            }
        }
    }

    /// Every UBfuzz-generated program contains exactly the intended UB kind
    /// (the Table 4 "no `No UB` column" property).
    #[test]
    fn generated_programs_contain_intended_ub(seed in 0u64..2000) {
        let p = generate_seed(seed, &SeedOptions::default());
        for u in generate_all(&p, &GenOptions { max_per_kind: 3, ..GenOptions::default() }) {
            let outcome = run_program(&u.program);
            let ev = outcome.ub().ok_or_else(|| {
                TestCaseError::fail(format!("{}: {outcome:?}", u.description))
            })?;
            prop_assert_eq!(ev.kind, u.kind);
        }
    }

    /// Sanitizer instrumentation never breaks UB-free programs (no false
    /// positives in the pristine world).
    #[test]
    fn pristine_sanitizers_have_no_false_positives(seed in 0u64..2000) {
        let p = generate_seed(seed, &SeedOptions::default());
        let reg = DefectRegistry::pristine();
        for vendor in Vendor::ALL {
            for sanitizer in [ubfuzz_simcc::Sanitizer::Asan, ubfuzz_simcc::Sanitizer::Ubsan] {
                for opt in [OptLevel::O0, OptLevel::O2] {
                    let cfg = CompileConfig::dev(vendor, opt, Some(sanitizer), &reg);
                    let m = compile(&p, &cfg).unwrap();
                    let r = run_module(&m);
                    prop_assert!(
                        r.is_normal_exit(),
                        "{} {} {}: false positive {:?}", vendor, sanitizer, opt, r
                    );
                }
            }
        }
    }
}
