//! Campaign-side glue for the persistent store ([`ubfuzz_store`]): campaign
//! fingerprinting for checkpoint compatibility, and merging found bugs into
//! the cross-invocation corpus.

use crate::campaign::{CampaignConfig, CampaignStats};
use ubfuzz_store::{BugCorpus, BugRecord, MergeSummary};

/// A stable identity for a campaign *plan*: two configurations with the
/// same fingerprint enumerate the same unit list in the same order, which
/// is the precondition for replaying a checkpoint log by unit index.
///
/// Implemented as an FNV-1a over the `Debug` rendering of every
/// plan-relevant field — deliberately including the generator/seed/defect
/// options wholesale, so *any* change to what a campaign would do reads as
/// "a different campaign" and cold-starts the log (the safe direction; a
/// false mismatch only costs recomputation). The backend's name
/// participates too: a checkpoint written by the simulated backend must not
/// be replayed into a real-toolchain campaign.
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let backend_name =
        cfg.backend.as_ref().map(|b| b.name().to_string()).unwrap_or_else(|| "sim".into());
    let mut plan = format!(
        "{}|{}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{backend_name}",
        cfg.first_seed,
        cfg.seeds,
        cfg.seed_options,
        cfg.gen_options,
        cfg.generator,
        cfg.registry,
        cfg.reduce,
        cfg.strategy,
    );
    // Appended only for non-full policies so every pre-partition
    // fingerprint — and the checkpoint logs keyed by it — stays valid.
    if !cfg.san_policy.is_full() {
        plan.push_str(&format!("|san:{}", cfg.san_policy));
    }
    ubfuzz_store::wire::fnv1a(plan.as_bytes())
}

/// [`config_fingerprint`] extended with the resolved backend's toolchain
/// descriptors — what the checkpoint log is actually keyed by. The unit
/// plan maps indices to `(compiler, opt, sanitizer)` cells through
/// `toolchains()`, so a probed toolchain set that changed between
/// invocations (a compiler upgraded or un/installed under `CcBackend`)
/// must read as a different campaign even when the config — and the unit
/// *count* — happens to match.
///
/// A guided campaign's plan additionally depends on the coverage frontier
/// it was derived from (`ubfuzz_guide::plan_guidance` sets the per-kind
/// generation budgets, which set the unit list), so the guidance's frontier
/// fingerprint folds in too: a checkpoint written against one frontier
/// state must never replay into a campaign planned against another.
pub fn campaign_fingerprint(
    cfg: &CampaignConfig,
    toolchains: &[ubfuzz_backend::ToolchainDesc],
    guidance: Option<&ubfuzz_guide::GuidePlan>,
) -> u64 {
    let mut plan = format!("{}|{toolchains:?}", config_fingerprint(cfg));
    if let Some(g) = guidance {
        plan.push_str(&format!("|frontier:{:016x}", g.frontier_fingerprint));
    }
    ubfuzz_store::wire::fnv1a(plan.as_bytes())
}

/// Converts a campaign's deduplicated bugs into corpus records.
pub fn bug_records(stats: &CampaignStats) -> Vec<BugRecord> {
    stats
        .bugs
        .iter()
        .map(|b| BugRecord {
            key: b.corpus_key(),
            vendor: b.vendor.to_string(),
            sanitizer: b.sanitizer.to_string(),
            kind: b.kind.name().to_string(),
            defect_id: b.defect_id.map(str::to_string),
            invalid: b.invalid,
            wrong_report: b.wrong_report,
            test_case: b.test_case.clone(),
            duplicates: b.duplicates as u64,
        })
        .collect()
}

/// Merges a finished campaign's bugs into `corpus`, stamped with the
/// current wall-clock time. Idempotent per attribution key: re-finding a
/// known bug updates `last_seen`/counters instead of duplicating it.
pub fn merge_bugs(corpus: &mut BugCorpus, stats: &CampaignStats) -> MergeSummary {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    corpus.merge(&bug_records(stats), now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::GeneratorChoice;

    #[test]
    fn fingerprint_separates_plans() {
        let a = CampaignConfig::builder().seeds(3).build();
        let b = CampaignConfig::builder().seeds(4).build();
        let c = CampaignConfig::builder().seeds(3).generator(GeneratorChoice::Music).build();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
    }

    #[test]
    fn fingerprint_separates_san_policies() {
        use ubfuzz_simcc::SanPolicy;
        let full = CampaignConfig::builder().seeds(3).build();
        let explicit_full =
            CampaignConfig::builder().seeds(3).san_policy(SanPolicy::Full).build();
        let half = CampaignConfig::builder()
            .seeds(3)
            .san_policy(SanPolicy::Partial { ratio_pm: 500, salt: 0 })
            .build();
        let quarter = CampaignConfig::builder()
            .seeds(3)
            .san_policy(SanPolicy::Partial { ratio_pm: 250, salt: 0 })
            .build();
        // Full is the no-token default: pre-partition logs stay compatible.
        assert_eq!(config_fingerprint(&full), config_fingerprint(&explicit_full));
        assert_ne!(config_fingerprint(&full), config_fingerprint(&half));
        assert_ne!(config_fingerprint(&half), config_fingerprint(&quarter));
    }

    #[test]
    fn bug_records_carry_the_dedup_key() {
        let stats = crate::campaign::run_campaign(&CampaignConfig::builder().seeds(4).build());
        assert!(!stats.bugs.is_empty());
        let records = bug_records(&stats);
        assert_eq!(records.len(), stats.bugs.len());
        for (bug, rec) in stats.bugs.iter().zip(&records) {
            assert_eq!(rec.key, bug.corpus_key());
            assert_eq!(rec.defect_id.as_deref(), bug.defect_id);
            // Keys are unique per deduplicated bug by construction.
            assert_eq!(records.iter().filter(|r| r.key == rec.key).count(), 1);
        }
    }
}
