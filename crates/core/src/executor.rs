//! The unified campaign task executor: fine-grained streaming execution
//! with a canonical-order merge, checkpointing and resume.
//!
//! [`run_unit_campaign`] decomposes a campaign into three stages:
//!
//! 1. **Generate** — one task per seed id, producing that seed's UB programs
//!    (each seed id derives its own RNG stream from the campaign seed, so
//!    scheduling cannot perturb generation).
//! 2. **Compile+run** — one task per `(seed, program, compiler, opt,
//!    sanitizer)` unit, drained by [`Executor::map_consume`]: workers
//!    stream unit results to the oracle **in canonical unit order** with a
//!    bounded look-ahead window, so the oracle overlaps compilation and
//!    memory is capped at the window size instead of the whole campaign's
//!    compiled-module set. Units share a `CompileSession` that memoizes the
//!    sanitizer-independent `lower → early-opts` prefix.
//! 3. **Oracle merge** — the streaming consumer groups each program's
//!    compiled matrix and feeds it to [`crate::campaign::oracle_one`] — the
//!    *same* function the sequential loop runs — so discrepancy counts,
//!    crash-site mapping and dedup/attribution are bit-identical to
//!    [`crate::campaign::run_campaign`] at any worker count, cache on or
//!    off.
//!
//! **Checkpointing** ([`run_unit_campaign_checkpointed`] with a store
//! directory): every completed unit is appended to a
//! [`CampaignLog`] keyed by the campaign fingerprint, and units a previous
//! invocation logged are *replayed* instead of recompiled. Because unit
//! planning is deterministic and replay is byte-faithful, a campaign killed
//! at any point and relaunched over the same store produces a final report
//! bit-identical to an uninterrupted run.
//!
//! The determinism argument, in one line: stages 1 and 2 are pure functions
//! of their task inputs (the cache and the checkpoint log memoize a
//! deterministic function, so they can only change *when/where* a unit's
//! outcome is computed, never what it is), and stage 3 is the sequential
//! algorithm consuming those outcomes in the sequential order.

use crate::campaign::{
    compile_cell, generate_programs, oracle_one, test_matrix, CampaignConfig, CampaignCtx,
    CampaignInterrupted, CampaignStats,
};
use ubfuzz_oracle::CompiledCell;
use crate::persist::campaign_fingerprint;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use ubfuzz_backend::{Artifact, CompilerBackend, RunOutcome};
use ubfuzz_exec::Executor;
use ubfuzz_guide::{Frontier, GuidePlan};
use ubfuzz_obs::{self as obs, Stage};
use ubfuzz_simcc::cov::CovDelta;
use ubfuzz_simcc::session::ProgramFingerprint;
use ubfuzz_simcc::target::{CompilerId, OptLevel};
use ubfuzz_simcc::{san, Sanitizer};
use ubfuzz_store::{CampaignLog, FrontierStore, UnitOutcome};
use ubfuzz_ubgen::UbProgram;

/// One compile unit: indices into the canonical program list plus the matrix
/// cell to build.
struct Unit {
    /// Canonical program index.
    pi: usize,
    /// Sanitizer under test.
    sanitizer: Sanitizer,
    /// Compiler identity.
    compiler: CompilerId,
    /// Optimization level.
    opt: OptLevel,
}

/// One `(program, sanitizer)` oracle group: the contiguous unit range whose
/// results reconstruct the program's compiled matrix for that sanitizer.
struct Group {
    pi: usize,
    sanitizer: Sanitizer,
    units: std::ops::Range<usize>,
}

/// What one unit task delivered to the streaming consumer.
// The size skew vs the payload-less `Starved` marker is fine: one `Cell`
// flows per unit through a bounded window, so boxing would only add a
// pointer hop on the hot path.
#[allow(clippy::large_enum_variant)]
enum UnitResult {
    /// Compiled (or replayed): the matrix cell identity, the outcome
    /// (`None` for unsupported cells), whether the outcome is durably
    /// in the checkpoint log (replayed from it, or recorded this run —
    /// module-less native artifacts are not), and the sanitizer coverage
    /// delta the unit exercised (captured fresh, or replayed from the log).
    Cell(CompilerId, OptLevel, Option<(Artifact, RunOutcome)>, bool, CovDelta),
    /// The unit budget ran out before this unit was computed.
    Starved,
}

/// Bounded look-ahead of the streaming merge, in units per worker: enough
/// in-flight work to keep every worker busy while the oracle consumes, small
/// enough that campaign memory stays O(workers), not O(campaign).
const STREAM_WINDOW_PER_WORKER: usize = 8;

/// The deterministic decomposition of one campaign: the canonical program
/// list, the fine-grained unit list, the oracle groups, and the plan's
/// identity. Every participant in a multi-process campaign — the daemon,
/// each worker, the final merge — builds this independently from the same
/// [`CampaignConfig`] and arrives at the same plan, which is what lets a
/// bare unit index address work across processes.
struct Plan {
    programs: Vec<UbProgram>,
    fingerprints: Vec<ProgramFingerprint>,
    units: Vec<Unit>,
    groups: Vec<Group>,
    /// Full plan identity: config fingerprint + resolved toolchain set.
    fingerprint: u64,
}

/// Builds the campaign plan. Stage-1 generation runs on `exec`; unit and
/// group order is exactly the sequential loop's iteration order.
/// `guidance` — the resolved guided-generation budgets, `None` in uniform
/// mode — steers generation and folds its frontier fingerprint into the
/// plan identity, so every participant must resolve it from the same
/// frontier state (the store's `frontier.bin` at campaign start).
fn build_plan(
    cfg: &CampaignConfig,
    exec: &Executor,
    backend: &dyn CompilerBackend,
    guidance: Option<&GuidePlan>,
) -> Plan {
    let toolchains = backend.toolchains();
    // Stage 1: per-seed generation, results in canonical seed order (each
    // seed id derives its own RNG stream, so scheduling cannot perturb it).
    let seed_ids: Vec<u64> = (cfg.first_seed..cfg.first_seed + cfg.seeds as u64).collect();
    let per_seed = exec.map(seed_ids, |_, seed_id| {
        // Executor worker threads carry no recorder of their own; each task
        // scopes the campaign's recorder so generation spans land in it.
        let _obs = cfg.recorder.clone().map(obs::attach);
        generate_programs(cfg, seed_id, guidance)
    });
    let programs: Vec<UbProgram> = per_seed.into_iter().flatten().collect();
    let fingerprints: Vec<_> =
        programs.iter().map(|u| backend.fingerprint(&u.program)).collect();
    let mut units: Vec<Unit> = Vec::new();
    let mut groups: Vec<Group> = Vec::new();
    for (pi, u) in programs.iter().enumerate() {
        for sanitizer in san::sanitizers_for(u.kind) {
            let start = units.len();
            for (compiler, opt) in test_matrix(&toolchains, sanitizer) {
                units.push(Unit { pi, sanitizer, compiler, opt });
            }
            // An empty matrix (no toolchain ships this sanitizer — e.g. a
            // gcc-only real-toolchain backend asked for MSan) plans no
            // group: the oracle over zero cells is a no-op in the
            // sequential loop, and an empty group would never match the
            // consumer's end-of-group boundary check.
            if units.len() > start {
                groups.push(Group { pi, sanitizer, units: start..units.len() });
            }
        }
    }
    let fingerprint = campaign_fingerprint(cfg, &toolchains, guidance);
    Plan { programs, fingerprints, units, groups, fingerprint }
}

/// The frontier a campaign *starts* from: the store's persisted
/// `frontier.bin` when a store directory is given, cold otherwise. Guided
/// plans are derived from exactly this state — the store is only rewritten
/// at successful campaign completion, so every participant (daemon, each
/// worker, the final merge) loading it mid-campaign sees the same snapshot.
fn starting_frontier(store_dir: Option<&Path>) -> Frontier {
    match store_dir {
        Some(dir) => Frontier::from_covered(FrontierStore::open(dir).covered().clone()),
        None => Frontier::new(),
    }
}

/// Plan addressing for the campaign service: the campaign fingerprint (the
/// checkpoint log identity) and the planned unit count, computed without
/// compiling anything. The daemon uses this to open the primary checkpoint
/// log and carve unit-range leases; workers rebuild the same plan from the
/// same config and store directory and the indices line up. `store_dir`
/// matters for guided configs: the plan depends on the persisted frontier.
pub fn plan_campaign(cfg: &CampaignConfig, cache: bool, store_dir: Option<&Path>) -> (u64, usize) {
    let backend = cfg.resolve_backend(cache);
    let frontier = starting_frontier(store_dir);
    let guidance = cfg.resolve_guidance(&frontier);
    let plan = build_plan(cfg, &Executor::new(1), backend.as_ref(), guidance.as_ref());
    (plan.fingerprint, plan.units.len())
}

/// What one worker-mode invocation did with its leased range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Units freshly compiled (and, module-carrying, recorded).
    pub computed: usize,
    /// Units skipped because some shard already held their outcome.
    pub replayed: usize,
}

/// Worker-mode entry: computes the units of `range` and records them to
/// checkpoint shard `shard` under `store_dir`, **without** running the
/// oracle — merging is the daemon's job (it replays the shard union through
/// the canonical-order path, so the merged report is bit-identical to a
/// single-process run). Units any existing shard already completed are
/// skipped, which is what makes a re-issued lease over a half-finished
/// range cheap.
pub fn run_unit_range(
    cfg: &CampaignConfig,
    workers: usize,
    cache: bool,
    store_dir: &Path,
    shard: u64,
    range: std::ops::Range<usize>,
) -> RangeStats {
    let _obs = cfg.recorder.clone().map(obs::attach);
    let exec = Executor::new(workers);
    let backend = cfg.resolve_backend(cache);
    let backend = backend.as_ref();
    let frontier = starting_frontier(Some(store_dir));
    let guidance = cfg.resolve_guidance(&frontier);
    let plan = build_plan(cfg, &exec, backend, guidance.as_ref());
    let log = CampaignLog::open_shard(store_dir, plan.fingerprint, plan.units.len(), shard);
    let indices: Vec<usize> = range.filter(|i| *i < plan.units.len()).collect();
    let plan = &plan;
    let log = &log;
    let outcomes = exec.map(indices, |_, i| {
        let _obs = cfg.recorder.clone().map(obs::attach);
        if log.has_replay(i) {
            return false;
        }
        let unit = &plan.units[i];
        let (cell, delta) = compile_cell(
            backend,
            &cfg.registry,
            cfg.effective_san_policy(),
            &plan.fingerprints[unit.pi],
            &plan.programs[unit.pi].program,
            unit.sanitizer,
            unit.compiler,
            unit.opt,
        );
        match &cell {
            None => log.record(i, &UnitOutcome::Unsupported),
            Some((artifact, result)) => {
                // Module-less artifacts (opaque native binaries) cannot be
                // replayed faithfully; the merge recomputes them.
                if let Some(module) = artifact.module() {
                    log.record(
                        i,
                        &UnitOutcome::Done(module.clone(), result.clone(), delta),
                    );
                }
            }
        }
        true
    });
    let computed = outcomes.iter().filter(|fresh| **fresh).count();
    RangeStats { computed, replayed: outcomes.len() - computed }
}

/// Runs `cfg` over `workers` work-stealing threads, compile cache on or off
/// (the toggle selects the default [`ubfuzz_backend::SimBackend`]'s session
/// mode; an explicit `cfg.backend` owns its own cache policy). Output is
/// bit-identical to [`crate::campaign::run_campaign`].
pub fn run_unit_campaign(cfg: &CampaignConfig, workers: usize, cache: bool) -> CampaignStats {
    run_unit_campaign_checkpointed(cfg, workers, cache, None, None)
        .expect("uncheckpointed campaigns have no budget to exhaust")
}

/// [`run_unit_campaign`] with persistence: when `store_dir` is given, every
/// completed unit is checkpointed there and compatible prior checkpoints
/// are replayed; `unit_budget` (testing hook) bounds the *newly computed*
/// units before the run reports [`CampaignInterrupted`].
pub fn run_unit_campaign_checkpointed(
    cfg: &CampaignConfig,
    workers: usize,
    cache: bool,
    store_dir: Option<&Path>,
    unit_budget: Option<u64>,
) -> Result<CampaignStats, CampaignInterrupted> {
    // Scope the campaign's recorder to this (consumer) thread for the whole
    // run: store opens, replay spans and oracle spans all land in it. Unit
    // tasks re-attach per task — worker threads are executor-internal.
    let _obs = cfg.recorder.clone().map(obs::attach);
    let exec = Executor::new(workers);
    let backend = cfg.resolve_backend(cache);
    let backend = backend.as_ref();
    let oracle = cfg.resolve_oracle();
    let ctx = CampaignCtx { cfg, backend, oracle: oracle.as_ref() };
    // Counters are monotone and may be shared across campaigns (one backend
    // can back every `make_tables` entry point); report this run's delta.
    let cache_before = backend.prefix_cache().map(|c| c.stats()).unwrap_or_default();

    // The frontier snapshot this campaign starts from (and, when guided,
    // plans against); per-unit deltas are absorbed during the merge and
    // the union is persisted back on successful completion.
    let mut frontier_store = store_dir.map(FrontierStore::open);
    let mut frontier = frontier_store
        .as_ref()
        .map(|s| Frontier::from_covered(s.covered().clone()))
        .unwrap_or_default();
    let guidance = cfg.resolve_guidance(&frontier);

    // Stages 1 + planning: the deterministic decomposition shared with the
    // campaign service's workers. Group order (and unit order within a
    // group) is exactly the sequential loop's iteration order; the
    // streaming merge below relies on it.
    let plan = build_plan(cfg, &exec, backend, guidance.as_ref());
    let Plan { programs, fingerprints, units, groups, fingerprint } = plan;

    // The checkpoint log identifies the campaign by the full plan identity
    // — config fingerprint plus the resolved toolchain set (unit indices
    // map to matrix cells through `toolchains()`) — and the plan size; an
    // incompatible log on disk cold-starts rather than mixes.
    let log = store_dir.map(|dir| CampaignLog::open(dir, fingerprint, units.len()));
    let budget = AtomicU64::new(unit_budget.unwrap_or(u64::MAX));

    // Seed/program tallies are generation facts, independent of compile
    // results; fill them exactly as the sequential loop would.
    let mut stats = CampaignStats { seeds: cfg.seeds, ..CampaignStats::default() };
    for u in &programs {
        *stats.ub_programs.entry(u.kind).or_default() += 1;
    }
    stats.units = units.len();

    // Stages 2+3, overlapped: workers compute (or replay) units; the
    // consumer below reassembles each group's matrix in canonical order and
    // runs the oracle as soon as the group completes.
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut starved = false;
    let mut completed_cells = 0usize;
    let mut gi = 0usize;
    let mut group_cells: Vec<CompiledCell> = Vec::new();
    let window = workers.saturating_mul(STREAM_WINDOW_PER_WORKER).max(1);
    let total_units = units.len();
    exec.map_consume(
        units,
        window,
        |i, unit| {
            let _obs = cfg.recorder.clone().map(obs::attach);
            // Replay beats recompute: a prior invocation already paid for
            // this unit. `take_replay` moves the outcome out of the log, so
            // replayed modules live only as long as their trip through the
            // bounded stream — resume memory stays O(window).
            if let Some(log) = &log {
                // Only an actual replay opens a `Replay` span — units with
                // nothing logged fall through to the compute path unspanned.
                if log.has_replay(i) {
                    let _replay = obs::Span::enter(Stage::Replay, i as u64);
                    match log.take_replay(i) {
                        Some(UnitOutcome::Unsupported) => {
                            return UnitResult::Cell(
                                unit.compiler,
                                unit.opt,
                                None,
                                true,
                                CovDelta::new(),
                            )
                        }
                        Some(UnitOutcome::Done(module, result, delta)) => {
                            return UnitResult::Cell(
                                unit.compiler,
                                unit.opt,
                                Some((Artifact::Sim(module), result)),
                                true,
                                delta,
                            )
                        }
                        None => {}
                    }
                }
            }
            // Claim budget *before* computing, so a "kill" stops work.
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                return UnitResult::Starved;
            }
            let (cell, delta) = compile_cell(
                backend,
                &cfg.registry,
                cfg.effective_san_policy(),
                &fingerprints[unit.pi],
                &programs[unit.pi].program,
                unit.sanitizer,
                unit.compiler,
                unit.opt,
            );
            let mut logged = false;
            if let Some(log) = &log {
                // Module-less artifacts (opaque native binaries) cannot be
                // replayed faithfully; leave them unlogged so resume
                // recomputes them.
                match &cell {
                    None => {
                        log.record(i, &UnitOutcome::Unsupported);
                        logged = true;
                    }
                    Some((artifact, result)) => {
                        if let Some(module) = artifact.module() {
                            log.record(
                                i,
                                &UnitOutcome::Done(
                                    module.clone(),
                                    result.clone(),
                                    delta.clone(),
                                ),
                            );
                            logged = true;
                        }
                    }
                }
            }
            UnitResult::Cell(unit.compiler, unit.opt, cell, logged, delta)
        },
        |i, result| {
            match result {
                UnitResult::Starved => starved = true,
                UnitResult::Cell(compiler, opt, cell, logged, delta) => {
                    completed_cells += usize::from(logged);
                    if !starved {
                        frontier.absorb(&delta);
                        if let Some((artifact, outcome)) = cell {
                            group_cells.push(CompiledCell { compiler, opt, artifact, outcome });
                        }
                    }
                }
            }
            // Group boundary: the oracle consumes the finished matrix. (A
            // starved run keeps consuming — cheaply — so the stream drains,
            // but files no results: the partial campaign is reported as
            // interrupted, never as a report.)
            while gi < groups.len() && groups[gi].units.end == i + 1 {
                if !starved {
                    let g = &groups[gi];
                    oracle_one(
                        &ctx,
                        &programs[g.pi],
                        g.sanitizer,
                        &group_cells,
                        &mut stats,
                        &mut bug_index,
                    );
                }
                group_cells.clear();
                gi += 1;
            }
        },
    );

    stats.cache =
        backend.prefix_cache().map(|c| c.stats()).unwrap_or_default() - cache_before;
    if starved {
        // Interrupted: the checkpoint log holds every completed unit's
        // delta, so the resume reconstructs the frontier; persisting a
        // partial union here would hand the *next* campaign a frontier no
        // finished run ever produced.
        return Err(CampaignInterrupted { completed: completed_cells, total: total_units });
    }
    stats.frontier_points = frontier.len();
    stats.frontier_fingerprint = frontier.fingerprint();
    if let Some(fs) = frontier_store.as_mut() {
        fs.save(frontier.covered());
    }
    Ok(stats)
}
