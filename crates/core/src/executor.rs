//! The unified campaign task executor: fine-grained work stealing with a
//! canonical-order merge.
//!
//! [`run_unit_campaign`] decomposes a campaign into three stages:
//!
//! 1. **Generate** — one task per seed id, producing that seed's UB programs
//!    (each seed id derives its own RNG stream from the campaign seed, so
//!    scheduling cannot perturb generation).
//! 2. **Compile+run** — one task per `(seed, program, compiler, opt,
//!    sanitizer)` unit, all units drained by one work-stealing
//!    [`Executor`]. Units share a [`CompileSession`] that memoizes the
//!    sanitizer-independent `lower → early-opts` prefix per
//!    `(program, vendor, version, opt)`, so a program's sanitizer matrix
//!    pre-optimizes each cell once instead of once per sanitizer.
//! 3. **Oracle merge** — sequential, in canonical seed order, feeding each
//!    program's compiled matrix to [`crate::campaign::oracle_one`] — the
//!    *same* function the sequential loop runs — so discrepancy counts,
//!    crash-site mapping and dedup/attribution are bit-identical to
//!    [`crate::campaign::run_campaign`] at any worker count, cache on or
//!    off.
//!
//! The determinism argument, in one line: stages 1 and 2 are pure functions
//! of their task inputs (the cache memoizes a deterministic function, so it
//! can only change *when* a prefix is computed, never *what* it is), and
//! stage 3 is the sequential algorithm consuming those results in the
//! sequential order.

use crate::campaign::{
    compile_cell, generate_programs, oracle_one, test_matrix, CampaignConfig, CampaignStats,
    CompiledCell,
};
use std::collections::BTreeMap;
use ubfuzz_exec::Executor;
use ubfuzz_simcc::target::{CompilerId, OptLevel};
use ubfuzz_simcc::{san, Sanitizer};

/// One compile unit: indices into the canonical program list plus the matrix
/// cell to build.
struct Unit {
    /// Canonical program index.
    pi: usize,
    /// Sanitizer under test.
    sanitizer: Sanitizer,
    /// Compiler identity.
    compiler: CompilerId,
    /// Optimization level.
    opt: OptLevel,
}

/// One `(program, sanitizer)` oracle group: the contiguous unit range whose
/// results reconstruct the program's compiled matrix for that sanitizer.
struct Group {
    pi: usize,
    sanitizer: Sanitizer,
    units: std::ops::Range<usize>,
}

/// Runs `cfg` over `workers` work-stealing threads, compile cache on or off
/// (the toggle selects the default [`ubfuzz_backend::SimBackend`]'s session
/// mode; an explicit `cfg.backend` owns its own cache policy). Output is
/// bit-identical to [`crate::campaign::run_campaign`].
pub fn run_unit_campaign(cfg: &CampaignConfig, workers: usize, cache: bool) -> CampaignStats {
    let exec = Executor::new(workers);
    let backend = cfg.resolve_backend(cache);
    let backend = backend.as_ref();
    let toolchains = backend.toolchains();
    // Counters are monotone and may be shared across campaigns (one backend
    // can back every `make_tables` entry point); report this run's delta.
    let cache_before = backend.prefix_cache().map(|c| c.stats()).unwrap_or_default();

    // Stage 1: per-seed generation, results in canonical seed order.
    let seed_ids: Vec<u64> = (cfg.first_seed..cfg.first_seed + cfg.seeds as u64).collect();
    let per_seed = exec.map(seed_ids, |_, seed_id| generate_programs(cfg, seed_id));

    // Plan the fine-grained units and their oracle groups. Group order (and
    // unit order within a group) is exactly the sequential loop's iteration
    // order; the merge below relies on it.
    let programs: Vec<_> = per_seed.iter().flatten().collect();
    let fingerprints: Vec<_> =
        programs.iter().map(|u| backend.fingerprint(&u.program)).collect();
    let mut units: Vec<Unit> = Vec::new();
    let mut groups: Vec<Group> = Vec::new();
    for (pi, u) in programs.iter().enumerate() {
        for sanitizer in san::sanitizers_for(u.kind) {
            let start = units.len();
            for (compiler, opt) in test_matrix(&toolchains, sanitizer) {
                units.push(Unit { pi, sanitizer, compiler, opt });
            }
            groups.push(Group { pi, sanitizer, units: start..units.len() });
        }
    }

    // Stage 2: drain every compile unit through the work-stealing executor.
    let cells = exec.map(units, |_, unit| {
        compile_cell(
            backend,
            &cfg.registry,
            &fingerprints[unit.pi],
            &programs[unit.pi].program,
            unit.sanitizer,
            unit.compiler,
            unit.opt,
        )
    });

    // Stage 3: sequential oracle merge in canonical seed order.
    let mut stats = CampaignStats::default();
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut cells = cells.into_iter();
    let mut groups = groups.into_iter().peekable();
    let mut pi = 0;
    for seed_programs in &per_seed {
        stats.seeds += 1;
        for u in seed_programs {
            *stats.ub_programs.entry(u.kind).or_default() += 1;
            while let Some(g) = groups.next_if(|g| g.pi == pi) {
                let compiled: Vec<CompiledCell> = test_matrix(&toolchains, g.sanitizer)
                    .into_iter()
                    .zip(cells.by_ref().take(g.units.len()))
                    .filter_map(|((compiler, opt), cell)| {
                        cell.map(|(artifact, result)| (compiler, opt, artifact, result))
                    })
                    .collect();
                oracle_one(cfg, backend, u, g.sanitizer, &compiled, &mut stats, &mut bug_index);
            }
            pi += 1;
        }
    }
    stats.cache =
        backend.prefix_cache().map(|c| c.stats()).unwrap_or_default() - cache_before;
    stats
}
