//! `ubfuzz` — the UBfuzz testing framework (ASPLOS 2024 reproduction).
//!
//! The facade crate ties the whole pipeline together (paper §4.1, "Testing
//! process"):
//!
//! 1. generate a valid seed program ([`ubfuzz_seedgen`], the Csmith role);
//! 2. mutate it into UB programs via shadow statement insertion
//!    ([`ubfuzz_ubgen`]);
//! 3. compile every UB program with multiple sanitizer-enabled compilers
//!    ([`ubfuzz_simcc`]) and execute the binaries ([`ubfuzz_simvm`]);
//! 4. on a discrepant sanitizer report, run crash-site mapping
//!    ([`ubfuzz_oracle`]) to separate sanitizer FN bugs from optimization
//!    artifacts;
//! 5. reduce ([`ubfuzz_reduce`]), deduplicate and report.
//!
//! The [`campaign`] module is the automated loop; [`history`] holds the
//! bug-tracker survey data behind the paper's Fig. 9; [`report`] renders
//! every table and figure of the evaluation section.
//!
//! Compilation and execution go through the [`ubfuzz_backend`] abstraction:
//! campaigns are generic over [`CompilerBackend`], default to the simulated
//! [`SimBackend`] (bit-identical to driving [`ubfuzz_simcc`]/
//! [`ubfuzz_simvm`] directly), and can target real gcc/clang through the
//! feature-gated `CcBackend` adapter.

pub mod campaign;
pub mod executor;
pub mod history;
pub mod persist;
pub mod report;

pub use campaign::{
    run_campaign, run_campaign_on, run_parallel_campaign, CampaignConfig,
    CampaignConfigBuilder, CampaignInterrupted, CampaignStats, FoundBug, ParallelCampaign,
};
pub use ubfuzz_backend::{CompilerBackend, SimBackend};
pub use ubfuzz_guide::{Frontier, GuidePlan, Strategy};
pub use ubfuzz_oracle::{CrashOracle, OracleStack, OracleTelemetry};
pub use ubfuzz_simcc::session::SessionStats;
pub use ubfuzz_simcc::SanPolicy;

pub use ubfuzz_backend as backend;
pub use ubfuzz_guide as guide;
pub use ubfuzz_obs as obs;
pub use ubfuzz_store as store;
pub use ubfuzz_baselines as baselines;
pub use ubfuzz_interp as interp;
pub use ubfuzz_minic as minic;
pub use ubfuzz_oracle as oracle;
pub use ubfuzz_reduce as reduce;
pub use ubfuzz_seedgen as seedgen;
pub use ubfuzz_simcc as simcc;
pub use ubfuzz_simvm as simvm;
pub use ubfuzz_ubgen as ubgen;
