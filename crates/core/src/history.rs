//! The bug-tracker survey behind the paper's Fig. 9 and the "how significant
//! are the results" analysis (§4.2).
//!
//! The paper manually surveyed all sanitizer false-negative reports in the
//! GCC and LLVM trackers since the first stable sanitizer releases (GCC 5,
//! 2015; LLVM 5, 2017): 40 reports for GCC of which UBfuzz found 16 (40%),
//! and 24 for LLVM of which UBfuzz found 14 (58%). This module records that
//! dataset so Fig. 9 can be regenerated; it is survey data, not something an
//! experiment can recompute.

use ubfuzz_simcc::target::Vendor;

/// Per-year tracker counts of sanitizer FN reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YearCount {
    /// Calendar year.
    pub year: u32,
    /// FN reports filed that year.
    pub total: u32,
    /// Of those, reports filed by the UBfuzz campaign.
    pub by_ubfuzz: u32,
}

/// GCC tracker: 40 FN reports 2015–2023, 16 by UBfuzz (all in the final
/// campaign year).
pub const GCC_HISTORY: &[YearCount] = &[
    YearCount { year: 2015, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2016, total: 3, by_ubfuzz: 0 },
    YearCount { year: 2017, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2018, total: 3, by_ubfuzz: 0 },
    YearCount { year: 2019, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2020, total: 4, by_ubfuzz: 0 },
    YearCount { year: 2021, total: 3, by_ubfuzz: 0 },
    YearCount { year: 2022, total: 12, by_ubfuzz: 9 },
    YearCount { year: 2023, total: 9, by_ubfuzz: 7 },
];

/// LLVM tracker: 24 FN reports 2017–2023, 14 by UBfuzz.
pub const LLVM_HISTORY: &[YearCount] = &[
    YearCount { year: 2017, total: 1, by_ubfuzz: 0 },
    YearCount { year: 2018, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2019, total: 1, by_ubfuzz: 0 },
    YearCount { year: 2020, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2021, total: 2, by_ubfuzz: 0 },
    YearCount { year: 2022, total: 9, by_ubfuzz: 8 },
    YearCount { year: 2023, total: 7, by_ubfuzz: 6 },
];

/// The survey for one vendor.
pub fn history(vendor: Vendor) -> &'static [YearCount] {
    match vendor {
        Vendor::Gcc => GCC_HISTORY,
        Vendor::Llvm => LLVM_HISTORY,
    }
}

/// Total FN reports ever filed for a vendor.
pub fn total_reports(vendor: Vendor) -> u32 {
    history(vendor).iter().map(|y| y.total).sum()
}

/// FN reports filed by the UBfuzz campaign for a vendor.
pub fn ubfuzz_reports(vendor: Vendor) -> u32 {
    history(vendor).iter().map(|y| y.by_ubfuzz).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        assert_eq!(total_reports(Vendor::Gcc), 40, "paper: 40 GCC FN reports");
        assert_eq!(ubfuzz_reports(Vendor::Gcc), 16, "paper: UBfuzz found 16 (40%)");
        assert_eq!(total_reports(Vendor::Llvm), 24, "paper: 24 LLVM FN reports");
        assert_eq!(ubfuzz_reports(Vendor::Llvm), 14, "paper: UBfuzz found 14 (58%)");
    }

    #[test]
    fn ubfuzz_share_percentages() {
        let gcc = ubfuzz_reports(Vendor::Gcc) as f64 / total_reports(Vendor::Gcc) as f64;
        let llvm = ubfuzz_reports(Vendor::Llvm) as f64 / total_reports(Vendor::Llvm) as f64;
        assert!((gcc - 0.40).abs() < 0.01);
        assert!((llvm - 0.583).abs() < 0.01);
    }

    #[test]
    fn yearly_invariants() {
        for v in Vendor::ALL {
            for y in history(v) {
                assert!(y.by_ubfuzz <= y.total, "{v} {}", y.year);
            }
        }
    }
}
