//! The automated testing loop (paper §4.1 "Testing process") plus bug
//! deduplication/attribution.

use std::collections::{BTreeMap, BTreeSet};
use ubfuzz_minic::{pretty, Program, UbKind};
use ubfuzz_oracle::{crash_site_mapping, Verdict};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::session::{CompileSession, ProgramFingerprint, SessionStats};
use ubfuzz_simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz_simcc::{san, Module, Sanitizer};
use ubfuzz_simvm::{run_module, RunResult};
use ubfuzz_ubgen::{GenOptions, UbProgram};

/// Which generator feeds the campaign (the §4.3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorChoice {
    /// UBfuzz shadow-statement insertion (the paper's tool).
    Ubfuzz,
    /// MUSIC-style mutation baseline.
    Music,
    /// Csmith-NoSafe baseline.
    CsmithNoSafe,
    /// The Juliet-style fixed corpus.
    Juliet,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First seed index.
    pub first_seed: u64,
    /// Number of seed programs.
    pub seeds: usize,
    /// Seed generator options.
    pub seed_options: SeedOptions,
    /// UB generator options.
    pub gen_options: GenOptions,
    /// The defect world under test.
    pub registry: DefectRegistry,
    /// Which generator to drive (paper §4.3 swaps baselines in).
    pub generator: GeneratorChoice,
    /// Reduce bug-triggering programs before reporting.
    pub reduce: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            first_seed: 0,
            seeds: 20,
            seed_options: SeedOptions::default(),
            gen_options: GenOptions::default(),
            registry: DefectRegistry::full(),
            generator: GeneratorChoice::Ubfuzz,
            reduce: false,
        }
    }
}

/// One deduplicated bug found by the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundBug {
    /// Vendor whose sanitizer missed (or mis-reported) the UB.
    pub vendor: Vendor,
    /// The sanitizer.
    pub sanitizer: Sanitizer,
    /// Ground-truth UB kind of the triggering programs.
    pub kind: UbKind,
    /// Attribution: ground-truth defect id (the analogue of the paper's
    /// root-cause analysis), or `None` for the invalid-report case.
    pub defect_id: Option<&'static str>,
    /// True when attribution found no defect but a legitimate transform —
    /// the paper's one "Invalid" report.
    pub invalid: bool,
    /// True for wrong-report bugs (report fired with wrong line info).
    pub wrong_report: bool,
    /// Optimization levels observed to miss the UB.
    pub missed_at: Vec<OptLevel>,
    /// A (possibly reduced) triggering program.
    pub test_case: String,
    /// Number of triggering programs deduplicated into this bug.
    pub duplicates: usize,
}

/// Aggregate campaign statistics (feeds Tables 3/4/6 and Figs. 7/10/11).
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Seeds consumed.
    pub seeds: usize,
    /// UB programs generated (per kind).
    pub ub_programs: BTreeMap<UbKind, usize>,
    /// Programs whose compilations produced discrepant sanitizer reports.
    pub discrepancies: usize,
    /// Discrepancies selected by crash-site mapping as sanitizer bugs.
    pub selected: usize,
    /// Discrepancies dropped as optimization artifacts.
    pub dropped: usize,
    /// Deduplicated bugs.
    pub bugs: Vec<FoundBug>,
    /// Compile-cache telemetry of the run (hits/misses/reuse ratio). Zero on
    /// the uncached sequential path.
    pub cache: SessionStats,
}

impl CampaignStats {
    /// Total generated UB programs.
    pub fn total_programs(&self) -> usize {
        self.ub_programs.values().sum()
    }
}

/// Equality compares campaign *results* — the fields the paper's tables and
/// figures render. Cache telemetry is execution metadata: with a shared
/// cache, *which* lookup hits depends on worker scheduling, so including it
/// would spuriously fail the sequential-vs-parallel bit-identity property
/// the whole design preserves.
impl PartialEq for CampaignStats {
    fn eq(&self, other: &CampaignStats) -> bool {
        self.seeds == other.seeds
            && self.ub_programs == other.ub_programs
            && self.discrepancies == other.discrepancies
            && self.selected == other.selected
            && self.dropped == other.dropped
            && self.bugs == other.bugs
    }
}

impl Eq for CampaignStats {}

/// The compilers the campaign tests: both vendors' development heads at
/// every optimization level the paper enables.
pub(crate) fn test_matrix(sanitizer: Sanitizer) -> Vec<(CompilerId, OptLevel)> {
    let mut out = Vec::new();
    for vendor in Vendor::ALL {
        if vendor == Vendor::Gcc && sanitizer == Sanitizer::Msan {
            continue;
        }
        for opt in OptLevel::ALL {
            out.push((CompilerId::dev(vendor), opt));
        }
    }
    out
}

/// Runs the full loop: generate seeds → generate UB programs → differential
/// testing → crash-site mapping → dedup/attribution.
///
/// This is the *sequential, uncached* reference implementation the parallel
/// executor ([`ParallelCampaign`]) is property-tested against; it never
/// touches a compile cache so equivalence checks exercise the cache on one
/// side only.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignStats {
    let mut stats = CampaignStats::default();
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    let session = CompileSession::disabled();
    for seed_id in cfg.first_seed..cfg.first_seed + cfg.seeds as u64 {
        stats.seeds += 1;
        let programs = generate_programs(cfg, seed_id);
        for u in programs {
            *stats.ub_programs.entry(u.kind).or_default() += 1;
            test_one(cfg, &u, &session, &mut stats, &mut bug_index);
        }
    }
    stats
}

/// The parallel campaign runner: a work-stealing executor over fine-grained
/// `(seed, program, compiler, opt, sanitizer)` compile units, with results
/// merged back in canonical seed order (see [`crate::executor`]).
///
/// The merged [`CampaignStats`] is **identical** to what [`run_campaign`]
/// produces for the same config — same bugs, same order, same test cases,
/// same `missed_at`/`duplicates` — so the paper's tables and figures are
/// reproducible at any worker count, with the compile cache on or off:
///
/// * every seed id derives its own deterministic RNG from the campaign seed,
///   so thread scheduling cannot perturb any generated program;
/// * compile units are pure functions of their inputs (the shared
///   [`CompileSession`] memoizes a deterministic pipeline prefix, so cache
///   state never changes what a unit returns);
/// * the oracle and dedup/attribution stage consumes unit results in exactly
///   the sequential loop's order.
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    config: CampaignConfig,
    shards: usize,
    cache: bool,
}

impl ParallelCampaign {
    /// A runner over `config` with one worker per available core and the
    /// compile cache enabled.
    pub fn new(config: CampaignConfig) -> ParallelCampaign {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelCampaign { config, shards, cache: true }
    }

    /// Overrides the worker count (must be nonzero). The name is historical:
    /// workers no longer own seed ranges, they steal compile units, so even
    /// a 1-seed campaign spreads across all of them.
    pub fn with_shards(mut self, shards: usize) -> ParallelCampaign {
        assert!(shards > 0, "shard count must be nonzero");
        self.shards = shards;
        self
    }

    /// Enables or disables the staged-compile cache (enabled by default).
    pub fn with_cache(mut self, cache: bool) -> ParallelCampaign {
        self.cache = cache;
        self
    }

    /// The effective worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the compile cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign on the unit executor and merges in seed order.
    pub fn run(&self) -> CampaignStats {
        crate::executor::run_unit_campaign(&self.config, self.shards, self.cache)
    }
}

/// Convenience wrapper: a parallel run of `cfg` over `shards` workers.
pub fn run_parallel_campaign(cfg: &CampaignConfig, shards: usize) -> CampaignStats {
    ParallelCampaign::new(cfg.clone()).with_shards(shards).run()
}

pub(crate) fn dedup_key(
    defect_id: Option<&'static str>,
    invalid: bool,
    vendor: Vendor,
    sanitizer: Sanitizer,
    kind: UbKind,
) -> String {
    match defect_id {
        Some(id) => format!("defect:{id}"),
        None if invalid => format!("invalid:{vendor}:{sanitizer}:{kind}"),
        None => format!("unknown:{vendor}:{sanitizer}:{kind}"),
    }
}

pub(crate) fn generate_programs(cfg: &CampaignConfig, seed_id: u64) -> Vec<UbProgram> {
    match cfg.generator {
        GeneratorChoice::Ubfuzz => {
            let seed = generate_seed(seed_id, &cfg.seed_options);
            let mut opts = cfg.gen_options.clone();
            opts.rng_seed = seed_id.wrapping_mul(31).wrapping_add(7);
            ubfuzz_ubgen::generate_all(&seed, &opts)
        }
        GeneratorChoice::Music => {
            let seed = generate_seed(seed_id, &cfg.seed_options);
            (0..14)
                .filter_map(|m| {
                    let p = ubfuzz_baselines::music::mutate(&seed, seed_id * 100 + m);
                    classify(p)
                })
                .collect()
        }
        GeneratorChoice::CsmithNoSafe => {
            let p = generate_seed(seed_id, &ubfuzz_baselines::nosafe_options());
            classify(p).into_iter().collect()
        }
        GeneratorChoice::Juliet => {
            if seed_id == cfg.first_seed {
                ubfuzz_baselines::juliet_suite()
                    .into_iter()
                    .map(|c| UbProgram {
                        program: c.program.clone(),
                        kind: c.kind,
                        ub_loc: ground_truth_loc(&c.program).unwrap_or_default(),
                        ub_node: ubfuzz_minic::NodeId::DUMMY,
                        description: c.name,
                    })
                    .collect()
            } else {
                Vec::new()
            }
        }
    }
}

fn ground_truth_loc(p: &Program) -> Option<ubfuzz_minic::Loc> {
    ubfuzz_interp::run_program(p).ub().map(|ev| ev.loc)
}

/// Classifies a baseline-generated program with the reference interpreter
/// (the role sanitizers play for MUSIC in §4.3, footnote 4); `None` when the
/// program has no UB, does not terminate or is invalid.
fn classify(p: Program) -> Option<UbProgram> {
    let outcome = ubfuzz_interp::run_program(&p);
    let ev = outcome.ub()?;
    Some(UbProgram {
        kind: ev.kind,
        ub_loc: ev.loc,
        ub_node: ev.node,
        description: format!("baseline-generated {}", ev.kind),
        program: p,
    })
}

/// One compiled cell of the per-program test matrix.
pub(crate) type CompiledCell = (CompilerId, OptLevel, Module, RunResult);

/// Compiles and runs one `(program, sanitizer, compiler, opt)` unit — the
/// executor's task granularity. `None` for unsupported/uncompilable cells,
/// mirroring the sequential loop's `continue`.
pub(crate) fn compile_cell(
    registry: &DefectRegistry,
    session: &CompileSession,
    fp: &ProgramFingerprint,
    program: &Program,
    sanitizer: Sanitizer,
    compiler: CompilerId,
    opt: OptLevel,
) -> Option<(Module, RunResult)> {
    let ccfg = CompileConfig { compiler, opt, sanitizer: Some(sanitizer), registry };
    let module = session.compile_fp(fp, program, &ccfg).ok()?;
    let result = run_module(&module);
    Some((module, result))
}

fn test_one(
    cfg: &CampaignConfig,
    u: &UbProgram,
    session: &CompileSession,
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
) {
    let fp = session.fingerprint_for(&u.program);
    for sanitizer in san::sanitizers_for(u.kind) {
        let compiled: Vec<CompiledCell> = test_matrix(sanitizer)
            .into_iter()
            .filter_map(|(compiler, opt)| {
                compile_cell(&cfg.registry, session, &fp, &u.program, sanitizer, compiler, opt)
                    .map(|(module, result)| (compiler, opt, module, result))
            })
            .collect();
        oracle_one(cfg, u, sanitizer, &compiled, stats, bug_index);
    }
}

/// The differential-testing oracle over one program's compiled matrix for
/// one sanitizer: wrong-report detection, discrepancy counting, crash-site
/// mapping, dedup/attribution. Shared verbatim by the sequential loop and
/// the unit executor's canonical-order merge, so the two paths cannot drift.
pub(crate) fn oracle_one(
    cfg: &CampaignConfig,
    u: &UbProgram,
    sanitizer: Sanitizer,
    compiled: &[CompiledCell],
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
) {
    let reporting: Vec<usize> =
        (0..compiled.len()).filter(|&i| compiled[i].3.is_report()).collect();
    let normal: Vec<usize> =
        (0..compiled.len()).filter(|&i| compiled[i].3.is_normal_exit()).collect();
    // Wrong-report detection: the sanitizer reported, but the report
    // points *before* the UB site (two of the paper's 31 bugs carry
    // wrong report information). Reports at later lines are legitimate:
    // the optimizer may have removed a dead UB access and the sanitizer
    // then correctly blames the next one.
    for &i in &reporting {
        let (compiler, opt, module, result) = &compiled[i];
        let report = result.report().expect("reporting index");
        if report.kind.matches_ub(u.kind) && report.loc.line < u.ub_loc.line {
            record_bug(
                cfg,
                stats,
                bug_index,
                BugObservation {
                    vendor: compiler.vendor,
                    sanitizer,
                    kind: u.kind,
                    module,
                    opt: *opt,
                    wrong_report: true,
                    program: &u.program,
                },
            );
        }
    }
    if reporting.is_empty() || normal.is_empty() {
        return;
    }
    stats.discrepancies += 1;
    let bc = &compiled[reporting[0]].2;
    let mut any_selected = false;
    for &ni in &normal {
        let (compiler, opt, bn, _) = &compiled[ni];
        let Some(mapping) = crash_site_mapping(bc, bn) else { continue };
        match mapping.verdict {
            Verdict::SanitizerBug => {
                any_selected = true;
                record_bug(
                    cfg,
                    stats,
                    bug_index,
                    BugObservation {
                        vendor: compiler.vendor,
                        sanitizer,
                        kind: u.kind,
                        module: bn,
                        opt: *opt,
                        wrong_report: false,
                        program: &u.program,
                    },
                );
            }
            Verdict::OptimizationArtifact => {}
        }
    }
    if any_selected {
        stats.selected += 1;
    } else {
        stats.dropped += 1;
    }
}

struct BugObservation<'a> {
    vendor: Vendor,
    sanitizer: Sanitizer,
    kind: UbKind,
    module: &'a Module,
    opt: OptLevel,
    wrong_report: bool,
    program: &'a Program,
}

fn record_bug(
    cfg: &CampaignConfig,
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
    obs: BugObservation<'_>,
) {
    // Attribution = the defects the vendor's passes recorded in the module
    // (the analogue of the paper's root-cause analysis with developers).
    // A BTreeSet so attribution iterates in a stable order: bug vec order
    // (and thus table rendering) must not depend on hash seeding, or
    // sequential and sharded runs could not be compared bit-for-bit.
    let applied: BTreeSet<&'static str> =
        obs.module.san.applied_defects.iter().map(|(id, _)| *id).collect();
    let legit = !obs.module.san.legit_transforms.is_empty();
    let mut keys: Vec<(Option<&'static str>, bool)> = Vec::new();
    if obs.wrong_report {
        // Attribute wrong reports to the wrong-line defects if applied.
        let wl = applied
            .iter()
            .find(|id| {
                DefectRegistry::get(id)
                    .is_some_and(|d| d.category == ubfuzz_simcc::DefectCategory::WrongLineInfo)
            })
            .copied();
        keys.push((wl, false));
    } else if applied.is_empty() {
        keys.push((None, legit));
    } else {
        // Attribute to defects matching the observed sanitizer + kind when
        // possible; otherwise to all applied defects.
        let matching: Vec<&'static str> = applied
            .iter()
            .filter(|id| {
                DefectRegistry::get(id).is_some_and(|d| {
                    d.sanitizer == obs.sanitizer && d.ub_kind == obs.kind
                })
            })
            .copied()
            .collect();
        if matching.is_empty() {
            for id in applied {
                keys.push((Some(id), false));
            }
        } else {
            for id in matching {
                keys.push((Some(id), false));
            }
        }
    }
    for (defect_id, invalid) in keys {
        let key = dedup_key(defect_id, invalid, obs.vendor, obs.sanitizer, obs.kind);
        if let Some(&i) = bug_index.get(&key) {
            let bug = &mut stats.bugs[i];
            bug.duplicates += 1;
            if !bug.missed_at.contains(&obs.opt) {
                bug.missed_at.push(obs.opt);
            }
            continue;
        }
        let test_case = if cfg.reduce {
            let sanitizer = obs.sanitizer;
            let registry = cfg.registry.clone();
            let vendor = obs.vendor;
            let opt = obs.opt;
            let mut pred = move |q: &Program| {
                let ccfg = CompileConfig {
                    compiler: CompilerId::dev(vendor),
                    opt,
                    sanitizer: Some(sanitizer),
                    registry: &registry,
                };
                match compile(q, &ccfg) {
                    Ok(m) => {
                        run_module(&m).is_normal_exit()
                            && !ubfuzz_interp::run_program(q).is_clean_exit()
                    }
                    Err(_) => false,
                }
            };
            if pred(obs.program) {
                pretty::print(&ubfuzz_reduce::reduce(obs.program, &mut pred))
            } else {
                pretty::print(obs.program)
            }
        } else {
            pretty::print(obs.program)
        };
        bug_index.insert(key, stats.bugs.len());
        stats.bugs.push(FoundBug {
            vendor: obs.vendor,
            sanitizer: obs.sanitizer,
            kind: obs.kind,
            defect_id,
            invalid,
            wrong_report: obs.wrong_report,
            missed_at: vec![obs.opt],
            test_case,
            duplicates: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_finds_real_bugs() {
        let cfg = CampaignConfig { seeds: 6, ..CampaignConfig::default() };
        let stats = run_campaign(&cfg);
        assert!(stats.total_programs() > 10, "programs: {}", stats.total_programs());
        assert!(stats.discrepancies > 0);
        assert!(!stats.bugs.is_empty(), "bugs found");
        // Every attributed bug maps to a real defect of the right vendor.
        for bug in &stats.bugs {
            if let Some(id) = bug.defect_id {
                let d = DefectRegistry::get(id).expect("known defect");
                assert_eq!(d.vendor, bug.vendor, "{id}");
                assert_eq!(d.sanitizer, bug.sanitizer, "{id}");
            }
        }
    }

    #[test]
    fn pristine_world_finds_nothing() {
        let cfg = CampaignConfig {
            seeds: 4,
            registry: DefectRegistry::pristine(),
            ..CampaignConfig::default()
        };
        let stats = run_campaign(&cfg);
        let real: Vec<_> = stats.bugs.iter().filter(|b| !b.invalid).collect();
        assert!(
            real.is_empty(),
            "correct sanitizers yield no FN bugs: {:?}",
            real.iter().map(|b| (&b.defect_id, b.vendor, b.kind)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        // The broad equivalence property (worker counts 1/2/8/16, cache
        // on/off, varying first seeds and generators) lives in
        // tests/parallel.rs; this is the fast in-crate smoke check.
        let cfg = CampaignConfig { seeds: 3, ..CampaignConfig::default() };
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(2).run();
        assert_eq!(sequential, parallel);
        assert!(parallel.cache.hits > 0, "sanitizer matrix shares prefixes: {:?}", parallel.cache);
    }

    #[test]
    fn one_seed_campaign_still_runs_on_the_executor() {
        // A 1-seed campaign used to fall back to the sequential loop; the
        // unit executor must still parallelize its programs and report cache
        // telemetry.
        let cfg = CampaignConfig { seeds: 1, ..CampaignConfig::default() };
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(4).run();
        assert_eq!(sequential, parallel);
        assert!(
            parallel.cache.hits + parallel.cache.misses > 0,
            "executor path exercises the compile session: {:?}",
            parallel.cache
        );
        assert_eq!(sequential.cache, SessionStats::default());
    }

    #[test]
    fn cache_toggle_preserves_results() {
        let cfg = CampaignConfig { seeds: 2, ..CampaignConfig::default() };
        let cached = ParallelCampaign::new(cfg.clone()).with_shards(2).run();
        let uncached = ParallelCampaign::new(cfg).with_shards(2).with_cache(false).run();
        assert_eq!(cached, uncached);
        assert!(cached.cache.hits > 0);
        assert_eq!(uncached.cache, SessionStats::default());
    }

    #[test]
    fn parallel_juliet_anchors_suite_to_the_global_first_seed() {
        // The Juliet generator fires only on the campaign's first seed; a
        // shard-local `first_seed` would replay the suite once per shard.
        let cfg = CampaignConfig {
            seeds: 4,
            generator: GeneratorChoice::Juliet,
            ..CampaignConfig::default()
        };
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(4).run();
        assert_eq!(sequential.total_programs(), parallel.total_programs());
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn juliet_campaign_finds_no_bugs() {
        // §4.3: the fixed Juliet corpus exposes no sanitizer FN bugs.
        let cfg = CampaignConfig {
            seeds: 1,
            generator: GeneratorChoice::Juliet,
            ..CampaignConfig::default()
        };
        let stats = run_campaign(&cfg);
        assert!(stats.total_programs() >= 20);
        let real: Vec<_> =
            stats.bugs.iter().filter(|b| !b.invalid && !b.wrong_report).collect();
        assert!(real.is_empty(), "{:?}", real.iter().map(|b| b.defect_id).collect::<Vec<_>>());
    }
}
