//! The automated testing loop (paper §4.1 "Testing process") plus bug
//! deduplication/attribution.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use ubfuzz_backend::{
    Artifact, CompileRequest, CompilerBackend, RunOutcome, RunRequest, SimBackend, ToolchainDesc,
};
use ubfuzz_guide::{plan_guidance, Frontier, GuidePlan, Strategy};
use ubfuzz_minic::{pretty, Program, UbKind};
use ubfuzz_oracle::{CompiledCell, CrashOracle, OracleInput, OracleStack, OracleTelemetry};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::cov::{self, CovDelta};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::session::{ProgramFingerprint, SessionStats};
use ubfuzz_simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz_simcc::{san, Module, SanPolicy, Sanitizer};
use ubfuzz_obs::{self as obs, Stage};
use ubfuzz_ubgen::{GenOptions, UbProgram};

/// Which generator feeds the campaign (the §4.3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorChoice {
    /// UBfuzz shadow-statement insertion (the paper's tool).
    Ubfuzz,
    /// MUSIC-style mutation baseline.
    Music,
    /// Csmith-NoSafe baseline.
    CsmithNoSafe,
    /// The Juliet-style fixed corpus.
    Juliet,
}

/// MUSIC mutants generated per seed (the paper's 14k mutants from 1k
/// seeds). One definition: both program generation and the prefix-cache
/// sizing bound derive from it, so they cannot drift apart.
pub const MUSIC_MUTANTS_PER_SEED: u64 = 14;

/// Campaign configuration.
///
/// Prefer [`CampaignConfig::builder`] over field-struct construction: the
/// builder survives field additions (the `backend` field is the precedent)
/// and is the supported construction path for examples, benches and tests.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First seed index.
    pub first_seed: u64,
    /// Number of seed programs.
    pub seeds: usize,
    /// Seed generator options.
    pub seed_options: SeedOptions,
    /// UB generator options.
    pub gen_options: GenOptions,
    /// The defect world under test.
    pub registry: DefectRegistry,
    /// Which generator to drive (paper §4.3 swaps baselines in).
    pub generator: GeneratorChoice,
    /// Generation strategy: [`Strategy::Uniform`] (the default) is the
    /// bit-identical reference mode; [`Strategy::Guided`] re-weights
    /// UB-kind budgets toward unreached sanitizer coverage points, derived
    /// purely from `(campaign seed, frontier at campaign start)` so a fixed
    /// seed over a fixed frontier replays bit-identically. Only the
    /// [`GeneratorChoice::Ubfuzz`] generator consults it.
    pub strategy: Strategy,
    /// Reduce bug-triggering programs before reporting.
    pub reduce: bool,
    /// Partial-sanitization policy for every compile cell (the
    /// PartiSan-style overhead/detection trade-off). [`SanPolicy::Full`]
    /// (the default) is bit-identical to the pre-partition pipeline. A
    /// `Partial` policy has the campaign seed folded into its salt once, up
    /// front ([`CampaignConfig::effective_san_policy`]), so distinct
    /// campaigns sample distinct site subsets while any one campaign
    /// replays the same subset at every worker count.
    pub san_policy: SanPolicy,
    /// The compilation/execution backend. `None` (the default) lets each
    /// runner construct its own [`SimBackend`] whose cache matches the
    /// runner's cache toggle; an explicit backend is shared as-is — its
    /// cache (if any) persists across every run over this config, which is
    /// what cross-campaign prefix reuse builds on.
    pub backend: Option<Arc<dyn CompilerBackend>>,
    /// The test oracle judging each program's compiled matrix. `None` (the
    /// default) is the paper's crash-site-mapping stack
    /// ([`OracleStack::standard`]); ablations select a different stack
    /// ([`OracleStack::naive`]) instead of forking campaign code.
    pub oracle: Option<Arc<dyn CrashOracle>>,
    /// Observability recorder receiving the campaign's stage spans and
    /// counters (a [`ubfuzz_obs::MetricsSink`], a
    /// [`ubfuzz_obs::TraceRecorder`], …). `None` (the default) leaves every
    /// probe inert. Pure telemetry: excluded from the campaign fingerprint
    /// (see `persist::config_fingerprint`'s explicit field list) and from
    /// result equality — an attached recorder changes no output byte.
    pub recorder: Option<Arc<dyn obs::Recorder>>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            first_seed: 0,
            seeds: 20,
            seed_options: SeedOptions::default(),
            gen_options: GenOptions::default(),
            registry: DefectRegistry::full(),
            generator: GeneratorChoice::Ubfuzz,
            strategy: Strategy::Uniform,
            reduce: false,
            san_policy: SanPolicy::Full,
            backend: None,
            oracle: None,
            recorder: None,
        }
    }
}

impl CampaignConfig {
    /// Starts a builder over the default configuration.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder::default()
    }

    /// An upper bound on the UB programs one seed can expand into under
    /// this config's generator.
    fn programs_per_seed_bound(&self) -> usize {
        match self.generator {
            GeneratorChoice::Ubfuzz => {
                ubfuzz_minic::UbKind::GENERATABLE.len() * self.gen_options.max_per_kind
            }
            GeneratorChoice::Music => MUSIC_MUTANTS_PER_SEED as usize,
            GeneratorChoice::CsmithNoSafe => 1,
            // Fixed corpus, emitted once on the first seed.
            GeneratorChoice::Juliet => ubfuzz_baselines::juliet_suite().len(),
        }
    }

    /// An upper bound on the distinct prefix-cache keys this campaign (and
    /// its figure replays) can touch: seeds × programs-per-seed × every
    /// vendor's versions (stable + dev, so Fig. 10 replays stay resident) ×
    /// optimization levels.
    ///
    /// This is what sizes compile sessions: the old hand-tuned `1 << 15`
    /// literals under-sized large `--seeds` runs (epoch eviction below
    /// table scale defeats cross-run persistence) and over-sized tiny ones.
    /// The bound is a key *budget*, not an allocation — the map only ever
    /// holds keys actually compiled.
    pub fn prefix_key_bound(&self) -> usize {
        let compilers: usize = Vendor::ALL
            .iter()
            .map(|v| v.stable_versions().count() + 1)
            .sum();
        self.seeds
            .max(1)
            .saturating_mul(self.programs_per_seed_bound().max(1))
            .saturating_mul(compilers)
            .saturating_mul(OptLevel::ALL.len())
            .max(ubfuzz_simcc::session::CompileSession::DEFAULT_CAPACITY)
    }

    /// The backend this config's campaigns compile and execute on: the
    /// configured one, or a fresh [`SimBackend`] whose session is sized by
    /// [`CampaignConfig::prefix_key_bound`], cache on or off per `cache`.
    pub(crate) fn resolve_backend(&self, cache: bool) -> Arc<dyn CompilerBackend> {
        match &self.backend {
            Some(b) => Arc::clone(b),
            None if cache => Arc::new(SimBackend::with_session(
                ubfuzz_simcc::session::CompileSession::with_capacity(self.prefix_key_bound()),
            )),
            None => Arc::new(SimBackend::uncached()),
        }
    }

    /// The oracle this config's campaigns judge discrepancies with: the
    /// configured stack, or the paper's standard one.
    pub(crate) fn resolve_oracle(&self) -> Arc<dyn CrashOracle> {
        match &self.oracle {
            Some(o) => Arc::clone(o),
            None => Arc::new(OracleStack::standard()),
        }
    }

    /// The site-subset policy compile cells actually run under: the
    /// configured policy with the campaign seed folded into a `Partial`
    /// salt. Pure function of the config — every worker and the sequential
    /// reference derive the same subset.
    pub fn effective_san_policy(&self) -> SanPolicy {
        self.san_policy.seeded(self.first_seed)
    }

    /// The guided-generation plan this campaign runs under: `None` for the
    /// uniform reference mode, otherwise the budgets derived purely from
    /// `(campaign seed, frontier)` — the frontier loaded from the store at
    /// campaign start, or the cold (empty) one when there is no store.
    pub(crate) fn resolve_guidance(&self, frontier: &Frontier) -> Option<GuidePlan> {
        match self.strategy {
            Strategy::Uniform => None,
            Strategy::Guided => {
                Some(plan_guidance(self.first_seed, &self.gen_options, frontier))
            }
        }
    }
}

/// Builder for [`CampaignConfig`] — and, via
/// [`CampaignConfigBuilder::build_runner`], for a configured
/// [`ParallelCampaign`] (worker count and cache toggle included).
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    cfg: CampaignConfig,
    workers: Option<usize>,
    cache: bool,
    checkpoint: Option<std::path::PathBuf>,
}

impl Default for CampaignConfigBuilder {
    fn default() -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            cfg: CampaignConfig::default(),
            workers: None,
            cache: true,
            checkpoint: None,
        }
    }
}

impl CampaignConfigBuilder {
    /// First seed index.
    pub fn first_seed(mut self, first_seed: u64) -> Self {
        self.cfg.first_seed = first_seed;
        self
    }

    /// Number of seed programs.
    pub fn seeds(mut self, seeds: usize) -> Self {
        self.cfg.seeds = seeds;
        self
    }

    /// Seed generator options.
    pub fn seed_options(mut self, seed_options: SeedOptions) -> Self {
        self.cfg.seed_options = seed_options;
        self
    }

    /// UB generator options.
    pub fn gen_options(mut self, gen_options: GenOptions) -> Self {
        self.cfg.gen_options = gen_options;
        self
    }

    /// The defect world under test.
    pub fn registry(mut self, registry: DefectRegistry) -> Self {
        self.cfg.registry = registry;
        self
    }

    /// Which generator feeds the campaign.
    pub fn generator(mut self, generator: GeneratorChoice) -> Self {
        self.cfg.generator = generator;
        self
    }

    /// Generation strategy (defaults to [`Strategy::Uniform`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Reduce bug-triggering programs before reporting.
    pub fn reduce(mut self, reduce: bool) -> Self {
        self.cfg.reduce = reduce;
        self
    }

    /// Partial-sanitization policy (defaults to the bit-identical
    /// [`SanPolicy::Full`]).
    pub fn san_policy(mut self, san_policy: SanPolicy) -> Self {
        self.cfg.san_policy = san_policy;
        self
    }

    /// Explicit compilation/execution backend (shared across runs).
    pub fn backend(mut self, backend: Arc<dyn CompilerBackend>) -> Self {
        self.cfg.backend = Some(backend);
        self
    }

    /// Explicit test oracle (defaults to the paper's crash-site-mapping
    /// stack, [`OracleStack::standard`]).
    pub fn oracle(mut self, oracle: Arc<dyn CrashOracle>) -> Self {
        self.cfg.oracle = Some(oracle);
        self
    }

    /// Observability recorder for the campaign's stage spans and counters
    /// (pure telemetry — never affects results, fingerprints or equality).
    pub fn recorder(mut self, recorder: Arc<dyn obs::Recorder>) -> Self {
        self.cfg.recorder = Some(recorder);
        self
    }

    /// Worker count for [`CampaignConfigBuilder::build_runner`] (defaults to
    /// one per core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Cache toggle for [`CampaignConfigBuilder::build_runner`] (defaults to
    /// enabled). Only meaningful without an explicit backend — a configured
    /// backend owns its own cache policy.
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Checkpoint/resume directory for
    /// [`CampaignConfigBuilder::build_runner`] (see
    /// [`ParallelCampaign::with_checkpoint`]).
    pub fn checkpoint(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// The finished configuration.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }

    /// A [`ParallelCampaign`] over the finished configuration, with the
    /// builder's worker count, cache toggle and checkpoint directory
    /// applied. Without an explicit backend, the runner's compile session
    /// is auto-sized from the config ([`CampaignConfig::prefix_key_bound`]).
    pub fn build_runner(self) -> ParallelCampaign {
        let mut runner = ParallelCampaign::new(self.cfg).with_cache(self.cache);
        if let Some(workers) = self.workers {
            runner = runner.with_shards(workers);
        }
        if let Some(dir) = self.checkpoint {
            runner = runner.with_checkpoint(dir);
        }
        runner
    }
}

/// One deduplicated bug found by the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundBug {
    /// Vendor whose sanitizer missed (or mis-reported) the UB.
    pub vendor: Vendor,
    /// The sanitizer.
    pub sanitizer: Sanitizer,
    /// Ground-truth UB kind of the triggering programs.
    pub kind: UbKind,
    /// Attribution: ground-truth defect id (the analogue of the paper's
    /// root-cause analysis), or `None` for the invalid-report case.
    pub defect_id: Option<&'static str>,
    /// True when attribution found no defect but a legitimate transform —
    /// the paper's one "Invalid" report.
    pub invalid: bool,
    /// True for wrong-report bugs (report fired with wrong line info).
    pub wrong_report: bool,
    /// Optimization levels observed to miss the UB.
    pub missed_at: Vec<OptLevel>,
    /// A (possibly reduced) triggering program.
    pub test_case: String,
    /// Number of triggering programs deduplicated into this bug.
    pub duplicates: usize,
}

impl FoundBug {
    /// The stable attribution key this bug deduplicates under — also the
    /// key the cross-invocation bug corpus merges by (see
    /// [`crate::persist`]).
    pub fn corpus_key(&self) -> String {
        dedup_key(self.defect_id, self.invalid, self.vendor, self.sanitizer, self.kind)
    }
}

/// Aggregate campaign statistics (feeds Tables 3/4/6 and Figs. 7/10/11).
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Seeds consumed.
    pub seeds: usize,
    /// UB programs generated (per kind).
    pub ub_programs: BTreeMap<UbKind, usize>,
    /// Programs whose compilations produced discrepant sanitizer reports.
    pub discrepancies: usize,
    /// Discrepancies selected by crash-site mapping as sanitizer bugs.
    pub selected: usize,
    /// Discrepancies dropped as optimization artifacts.
    pub dropped: usize,
    /// Deduplicated bugs.
    pub bugs: Vec<FoundBug>,
    /// Compile-cache telemetry of the run (hits/misses/reuse ratio). Zero on
    /// the uncached sequential path.
    pub cache: SessionStats,
    /// Planned compile units (matrix cells) of the run — throughput
    /// denominator for benches. Execution metadata like `cache`: excluded
    /// from equality.
    pub units: usize,
    /// Per-sanitizer drop accounting (`no-module` / `no-trace` /
    /// `optimization-artifact`) — what makes real-toolchain campaigns
    /// debuggable. Execution metadata like `cache` (trace availability can
    /// vary between machines): excluded from equality.
    pub oracle: OracleTelemetry,
    /// Sanitizer coverage points covered by the end of the run (loaded
    /// frontier plus every unit's delta). Like `cache`: execution metadata
    /// — an explicit warm backend can memoize a sanitize stage and so
    /// suppress its instrumentation hits — excluded from equality.
    pub frontier_points: usize,
    /// FNV fingerprint of that final frontier (see
    /// [`ubfuzz_guide::Frontier::fingerprint`]). Excluded from equality.
    pub frontier_fingerprint: u64,
}

impl CampaignStats {
    /// Total generated UB programs.
    pub fn total_programs(&self) -> usize {
        self.ub_programs.values().sum()
    }
}

/// Equality compares campaign *results* — the fields the paper's tables and
/// figures render. Cache telemetry is execution metadata: with a shared
/// cache, *which* lookup hits depends on worker scheduling, so including it
/// would spuriously fail the sequential-vs-parallel bit-identity property
/// the whole design preserves. The oracle's drop-reason breakdown follows
/// the same rule: whether a drop was arbitrated or merely untraceable
/// depends on the machine's trace equipment, never on the results.
impl PartialEq for CampaignStats {
    fn eq(&self, other: &CampaignStats) -> bool {
        self.seeds == other.seeds
            && self.ub_programs == other.ub_programs
            && self.discrepancies == other.discrepancies
            && self.selected == other.selected
            && self.dropped == other.dropped
            && self.bugs == other.bugs
    }
}

impl Eq for CampaignStats {}

/// The compile matrix for one sanitizer: every backend toolchain that ships
/// the sanitizer, at every optimization level the paper enables, in the
/// backend's stable toolchain order. For [`SimBackend`] this is exactly the
/// paper's matrix — both vendors' development heads minus GCC × MSan.
pub(crate) fn test_matrix(
    toolchains: &[ToolchainDesc],
    sanitizer: Sanitizer,
) -> Vec<(CompilerId, OptLevel)> {
    let mut out = Vec::new();
    for tc in toolchains {
        if !tc.supports(sanitizer) {
            continue;
        }
        for opt in OptLevel::ALL {
            out.push((tc.id, opt));
        }
    }
    out
}

/// Runs the full loop: generate seeds → generate UB programs → differential
/// testing → crash-site mapping → dedup/attribution.
///
/// This is the *sequential* reference implementation the parallel executor
/// ([`ParallelCampaign`]) is property-tested against. Without an explicit
/// backend in the config it compiles on an uncached [`SimBackend`], so
/// equivalence checks exercise the cache on one side only.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignStats {
    run_campaign_on(cfg.resolve_backend(false).as_ref(), cfg)
}

/// [`run_campaign`] over an explicit backend (ignoring `cfg.backend`).
///
/// The sequential path is storeless, so a guided config plans against the
/// cold frontier — exactly what a parallel guided run over a fresh (or
/// absent) store does, preserving the sequential≡parallel property.
pub fn run_campaign_on(backend: &dyn CompilerBackend, cfg: &CampaignConfig) -> CampaignStats {
    let _obs = cfg.recorder.clone().map(obs::attach);
    let toolchains = backend.toolchains();
    let oracle = cfg.resolve_oracle();
    let ctx = CampaignCtx { cfg, backend, oracle: oracle.as_ref() };
    let cache_before = backend.prefix_cache().map(|c| c.stats()).unwrap_or_default();
    let mut frontier = Frontier::new();
    let guidance = cfg.resolve_guidance(&frontier);
    let mut stats = CampaignStats::default();
    let mut bug_index: BTreeMap<String, usize> = BTreeMap::new();
    for seed_id in cfg.first_seed..cfg.first_seed + cfg.seeds as u64 {
        stats.seeds += 1;
        let programs = generate_programs(cfg, seed_id, guidance.as_ref());
        for u in programs {
            *stats.ub_programs.entry(u.kind).or_default() += 1;
            test_one(&ctx, &toolchains, &u, &mut stats, &mut bug_index, &mut frontier);
        }
    }
    stats.cache =
        backend.prefix_cache().map(|c| c.stats()).unwrap_or_default() - cache_before;
    stats.frontier_points = frontier.len();
    stats.frontier_fingerprint = frontier.fingerprint();
    stats
}

/// The parallel campaign runner: a work-stealing executor over fine-grained
/// `(seed, program, compiler, opt, sanitizer)` compile units, with results
/// merged back in canonical seed order (see [`crate::executor`]).
///
/// The merged [`CampaignStats`] is **identical** to what [`run_campaign`]
/// produces for the same config — same bugs, same order, same test cases,
/// same `missed_at`/`duplicates` — so the paper's tables and figures are
/// reproducible at any worker count, with the compile cache on or off:
///
/// * every seed id derives its own deterministic RNG from the campaign seed,
///   so thread scheduling cannot perturb any generated program;
/// * compile units are pure functions of their inputs (the shared
///   [`CompileSession`] memoizes a deterministic pipeline prefix, so cache
///   state never changes what a unit returns);
/// * the oracle and dedup/attribution stage consumes unit results in exactly
///   the sequential loop's order.
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    config: CampaignConfig,
    shards: usize,
    cache: bool,
    checkpoint: Option<std::path::PathBuf>,
    unit_budget: Option<u64>,
}

/// A checkpointed campaign stopped before completing every unit (only
/// possible with [`ParallelCampaign::with_unit_budget`]). The completed
/// units are on disk; rerunning with the same store resumes from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignInterrupted {
    /// Units whose outcomes are checkpointed (replayed + newly computed).
    pub completed: usize,
    /// Planned units of the campaign.
    pub total: usize,
}

impl std::fmt::Display for CampaignInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign interrupted at {}/{} units", self.completed, self.total)
    }
}

impl std::error::Error for CampaignInterrupted {}

impl ParallelCampaign {
    /// A runner over `config` with one worker per available core and the
    /// compile cache enabled.
    pub fn new(config: CampaignConfig) -> ParallelCampaign {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelCampaign { config, shards, cache: true, checkpoint: None, unit_budget: None }
    }

    /// Overrides the worker count (must be nonzero). The name is historical:
    /// workers no longer own seed ranges, they steal compile units, so even
    /// a 1-seed campaign spreads across all of them.
    pub fn with_shards(mut self, shards: usize) -> ParallelCampaign {
        assert!(shards > 0, "shard count must be nonzero");
        self.shards = shards;
        self
    }

    /// Enables or disables the staged-compile cache (enabled by default).
    /// Only meaningful without an explicit backend in the config — a
    /// configured backend owns its own cache policy.
    pub fn with_cache(mut self, cache: bool) -> ParallelCampaign {
        self.cache = cache;
        self
    }

    /// Sets an explicit compilation/execution backend (shared across runs).
    pub fn with_backend(mut self, backend: Arc<dyn CompilerBackend>) -> ParallelCampaign {
        self.config.backend = Some(backend);
        self
    }

    /// Attaches an observability recorder for the run's stage spans and
    /// counters (see [`CampaignConfig::recorder`]). Telemetry only: a
    /// recorded run's results are byte-identical to an unrecorded one.
    pub fn with_recorder(mut self, recorder: Arc<dyn obs::Recorder>) -> ParallelCampaign {
        self.config.recorder = Some(recorder);
        self
    }

    /// Checkpoints every completed compile unit into the store directory
    /// `dir` (file `campaign.bin`), and resumes from any compatible log
    /// already there.
    ///
    /// Compatibility is by campaign fingerprint (see
    /// [`crate::persist::config_fingerprint`]): a log written by a
    /// different configuration is discarded, never mixed in. Replay is
    /// bit-faithful, so a killed-and-resumed campaign renders the same
    /// report as an uninterrupted one — the property `tests/store.rs`
    /// exercises across worker counts.
    pub fn with_checkpoint(mut self, dir: impl Into<std::path::PathBuf>) -> ParallelCampaign {
        self.checkpoint = Some(dir.into());
        self
    }

    /// Stops the campaign after `units` *newly computed* units (replayed
    /// checkpoint units are free), making [`ParallelCampaign::try_run`]
    /// return [`CampaignInterrupted`]. This is deterministic kill
    /// injection for resume testing; production kills (SIGKILL, OOM) leave
    /// the same on-disk state, minus at most one torn record.
    pub fn with_unit_budget(mut self, units: u64) -> ParallelCampaign {
        self.unit_budget = Some(units);
        self
    }

    /// The effective worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the compile cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign on the unit executor and merges in seed order.
    ///
    /// # Panics
    ///
    /// If a unit budget was set and exhausted — budgeted runs should use
    /// [`ParallelCampaign::try_run`].
    pub fn run(&self) -> CampaignStats {
        self.try_run().expect("campaign interrupted by unit budget; use try_run")
    }

    /// Runs the campaign; [`Err`] only when a configured unit budget ran
    /// out before every unit completed (the simulated-kill path).
    pub fn try_run(&self) -> Result<CampaignStats, CampaignInterrupted> {
        crate::executor::run_unit_campaign_checkpointed(
            &self.config,
            self.shards,
            self.cache,
            self.checkpoint.as_deref(),
            self.unit_budget,
        )
    }
}

/// Convenience wrapper: a parallel run of `cfg` over `shards` workers.
pub fn run_parallel_campaign(cfg: &CampaignConfig, shards: usize) -> CampaignStats {
    ParallelCampaign::new(cfg.clone()).with_shards(shards).run()
}

pub(crate) fn dedup_key(
    defect_id: Option<&'static str>,
    invalid: bool,
    vendor: Vendor,
    sanitizer: Sanitizer,
    kind: UbKind,
) -> String {
    match defect_id {
        Some(id) => format!("defect:{id}"),
        None if invalid => format!("invalid:{vendor}:{sanitizer}:{kind}"),
        None => format!("unknown:{vendor}:{sanitizer}:{kind}"),
    }
}

/// Expands one seed into UB programs. `guidance` (the resolved per-kind
/// budgets of a guided campaign, `None` in uniform mode) only steers the
/// Ubfuzz generator — baselines are comparison points and stay unweighted.
pub(crate) fn generate_programs(
    cfg: &CampaignConfig,
    seed_id: u64,
    guidance: Option<&GuidePlan>,
) -> Vec<UbProgram> {
    let _span = obs::Span::enter(Stage::Generate, seed_id);
    match cfg.generator {
        GeneratorChoice::Ubfuzz => {
            let seed = generate_seed(seed_id, &cfg.seed_options);
            let mut opts = cfg.gen_options.clone();
            opts.rng_seed = seed_id.wrapping_mul(31).wrapping_add(7);
            match guidance {
                Some(plan) => ubfuzz_ubgen::generate_budgeted(&seed, &plan.budgets, &opts),
                None => ubfuzz_ubgen::generate_all(&seed, &opts),
            }
        }
        GeneratorChoice::Music => {
            let seed = generate_seed(seed_id, &cfg.seed_options);
            (0..MUSIC_MUTANTS_PER_SEED)
                .filter_map(|m| {
                    let p = ubfuzz_baselines::music::mutate(&seed, seed_id * 100 + m);
                    classify(p)
                })
                .collect()
        }
        GeneratorChoice::CsmithNoSafe => {
            let p = generate_seed(seed_id, &ubfuzz_baselines::nosafe_options());
            classify(p).into_iter().collect()
        }
        GeneratorChoice::Juliet => {
            if seed_id == cfg.first_seed {
                ubfuzz_baselines::juliet_suite()
                    .into_iter()
                    .map(|c| UbProgram {
                        program: c.program.clone(),
                        kind: c.kind,
                        ub_loc: ground_truth_loc(&c.program).unwrap_or_default(),
                        ub_node: ubfuzz_minic::NodeId::DUMMY,
                        description: c.name,
                    })
                    .collect()
            } else {
                Vec::new()
            }
        }
    }
}

fn ground_truth_loc(p: &Program) -> Option<ubfuzz_minic::Loc> {
    ubfuzz_interp::run_program(p).ub().map(|ev| ev.loc)
}

/// Classifies a baseline-generated program with the reference interpreter
/// (the role sanitizers play for MUSIC in §4.3, footnote 4); `None` when the
/// program has no UB, does not terminate or is invalid.
fn classify(p: Program) -> Option<UbProgram> {
    let outcome = ubfuzz_interp::run_program(&p);
    let ev = outcome.ub()?;
    Some(UbProgram {
        kind: ev.kind,
        ub_loc: ev.loc,
        ub_node: ev.node,
        description: format!("baseline-generated {}", ev.kind),
        program: p,
    })
}

/// The per-campaign judgment context: configuration, the backend that
/// builds/runs cells, and the oracle that judges them. One per campaign —
/// shared verbatim by the sequential loop and the unit executor's
/// canonical-order merge, so the two paths cannot drift.
pub(crate) struct CampaignCtx<'a> {
    pub cfg: &'a CampaignConfig,
    pub backend: &'a dyn CompilerBackend,
    pub oracle: &'a dyn CrashOracle,
}

/// Compiles and runs one `(program, sanitizer, compiler, opt)` unit — the
/// executor's task granularity. `None` for unsupported/uncompilable cells,
/// mirroring the sequential loop's `continue`.
///
/// The cell runs inside a [`cov::capture`] scope, so the returned
/// [`CovDelta`] is exactly the sanitizer coverage this unit exercised —
/// the feedback signal guided generation steers by. A failed cell reports
/// an *empty* delta even if hits fired before the failure: the checkpoint
/// log replays failures as bare `Unsupported` records, and a fresh run and
/// its resume must absorb identical coverage.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_cell(
    backend: &dyn CompilerBackend,
    registry: &DefectRegistry,
    san_policy: SanPolicy,
    fp: &ProgramFingerprint,
    program: &Program,
    sanitizer: Sanitizer,
    compiler: CompilerId,
    opt: OptLevel,
) -> (Option<(Artifact, RunOutcome)>, CovDelta) {
    let (cell, delta) = cov::capture(|| {
        let req = CompileRequest { compiler, opt, sanitizer: Some(sanitizer), registry, san_policy };
        let artifact = backend.compile(fp, program, &req).ok()?;
        let result =
            obs::time(Stage::Run, 0, || backend.execute(&artifact, &RunRequest::default()));
        Some((artifact, result))
    });
    match cell {
        Some(_) => (cell, delta),
        None => (None, CovDelta::new()),
    }
}

fn test_one(
    ctx: &CampaignCtx<'_>,
    toolchains: &[ToolchainDesc],
    u: &UbProgram,
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
    frontier: &mut Frontier,
) {
    let fp = ctx.backend.fingerprint(&u.program);
    for sanitizer in san::sanitizers_for(u.kind) {
        let matrix = test_matrix(toolchains, sanitizer);
        stats.units += matrix.len();
        let compiled: Vec<CompiledCell> = matrix
            .into_iter()
            .filter_map(|(compiler, opt)| {
                let (cell, delta) = compile_cell(
                    ctx.backend,
                    &ctx.cfg.registry,
                    ctx.cfg.effective_san_policy(),
                    &fp,
                    &u.program,
                    sanitizer,
                    compiler,
                    opt,
                );
                frontier.absorb(&delta);
                cell.map(|(artifact, outcome)| CompiledCell { compiler, opt, artifact, outcome })
            })
            .collect();
        oracle_one(ctx, u, sanitizer, &compiled, stats, bug_index);
    }
}

/// The thin campaign driver over the configured [`CrashOracle`]: judge one
/// program's compiled matrix for one sanitizer, then fold the verdicts into
/// campaign statistics and dedup/attribution. Shared verbatim by the
/// sequential loop and the unit executor's canonical-order merge, so the
/// two paths cannot drift. Judgment itself — wrong-report detection,
/// discrepancy accounting, crash-site mapping — lives in the oracle stack
/// (`ubfuzz_oracle`).
pub(crate) fn oracle_one(
    ctx: &CampaignCtx<'_>,
    u: &UbProgram,
    sanitizer: Sanitizer,
    compiled: &[CompiledCell],
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
) {
    let _span = obs::Span::enter(Stage::Oracle, 0);
    let verdicts = ctx.oracle.judge(
        ctx.backend,
        OracleInput { sanitizer, ub_kind: u.kind, ub_loc: u.ub_loc },
        compiled,
    );
    // Two of the paper's 31 bugs carry wrong report information; they file
    // regardless of the discrepancy outcome.
    for &i in &verdicts.wrong_reports {
        let cell = &compiled[i];
        record_bug(
            ctx,
            stats,
            bug_index,
            BugObservation {
                vendor: cell.compiler.vendor,
                sanitizer,
                kind: u.kind,
                module: cell.artifact.module(),
                opt: cell.opt,
                wrong_report: true,
                program: &u.program,
            },
        );
    }
    if verdicts.discrepancy {
        stats.discrepancies += 1;
    }
    // Selected normal cells file as FN bugs. Module-carrying artifacts
    // attribute to injected defects; module-less ones (native/opaque
    // backends, arbitrated via their trace) dedup under the per-(vendor,
    // sanitizer, kind) "unknown" key — a trace-derived verdict instead of
    // the old silent drop.
    for &ni in &verdicts.sanitizer_bugs {
        let cell = &compiled[ni];
        record_bug(
            ctx,
            stats,
            bug_index,
            BugObservation {
                vendor: cell.compiler.vendor,
                sanitizer,
                kind: u.kind,
                module: cell.artifact.module(),
                opt: cell.opt,
                wrong_report: false,
                program: &u.program,
            },
        );
    }
    // Expected misses mostly arrive *without* a discrepancy — a skipped UB
    // site silences every cell identically — so they are accounted from the
    // stage's flag, not from the drop path (which only fires when some cell
    // did report).
    if verdicts.expected_miss {
        stats.oracle.record_drop(sanitizer, ubfuzz_oracle::DropReason::ExpectedMiss);
    }
    if verdicts.selected() {
        stats.selected += 1;
    } else if let Some(reason) = verdicts.drop_reason() {
        stats.dropped += 1;
        if reason != ubfuzz_oracle::DropReason::ExpectedMiss {
            stats.oracle.record_drop(sanitizer, reason);
        }
    }
}

struct BugObservation<'a> {
    vendor: Vendor,
    sanitizer: Sanitizer,
    kind: UbKind,
    /// The compiled module, when the backend's artifacts carry one —
    /// attribution to injected defects is only possible then.
    module: Option<&'a Module>,
    opt: OptLevel,
    wrong_report: bool,
    program: &'a Program,
}

fn record_bug(
    ctx: &CampaignCtx<'_>,
    stats: &mut CampaignStats,
    bug_index: &mut BTreeMap<String, usize>,
    obs: BugObservation<'_>,
) {
    let (cfg, backend) = (ctx.cfg, ctx.backend);
    // Attribution = the defects the vendor's passes recorded in the module
    // (the analogue of the paper's root-cause analysis with developers).
    // A BTreeSet so attribution iterates in a stable order: bug vec order
    // (and thus table rendering) must not depend on hash seeding, or
    // sequential and sharded runs could not be compared bit-for-bit.
    // Module-less artifacts (real toolchains) attribute to nothing and
    // dedup under the per-(vendor, sanitizer, kind) "unknown" key.
    let applied: BTreeSet<&'static str> = obs
        .module
        .map(|m| m.san.applied_defects.iter().map(|(id, _)| *id).collect())
        .unwrap_or_default();
    let legit = obs.module.is_some_and(|m| !m.san.legit_transforms.is_empty());
    let mut keys: Vec<(Option<&'static str>, bool)> = Vec::new();
    if obs.wrong_report {
        // Attribute wrong reports to the wrong-line defects if applied.
        let wl = applied
            .iter()
            .find(|id| {
                DefectRegistry::get(id)
                    .is_some_and(|d| d.category == ubfuzz_simcc::DefectCategory::WrongLineInfo)
            })
            .copied();
        keys.push((wl, false));
    } else if applied.is_empty() {
        keys.push((None, legit));
    } else {
        // Attribute to defects matching the observed sanitizer + kind when
        // possible; otherwise to all applied defects.
        let matching: Vec<&'static str> = applied
            .iter()
            .filter(|id| {
                DefectRegistry::get(id).is_some_and(|d| {
                    d.sanitizer == obs.sanitizer && d.ub_kind == obs.kind
                })
            })
            .copied()
            .collect();
        if matching.is_empty() {
            for id in applied {
                keys.push((Some(id), false));
            }
        } else {
            for id in matching {
                keys.push((Some(id), false));
            }
        }
    }
    for (defect_id, invalid) in keys {
        let key = dedup_key(defect_id, invalid, obs.vendor, obs.sanitizer, obs.kind);
        if let Some(&i) = bug_index.get(&key) {
            let bug = &mut stats.bugs[i];
            bug.duplicates += 1;
            if !bug.missed_at.contains(&obs.opt) {
                bug.missed_at.push(obs.opt);
            }
            continue;
        }
        let test_case = if cfg.reduce {
            let sanitizer = obs.sanitizer;
            let registry = cfg.registry.clone();
            let vendor = obs.vendor;
            let opt = obs.opt;
            let san_policy = cfg.effective_san_policy();
            let mut pred = move |q: &Program| {
                let req = CompileRequest {
                    compiler: CompilerId::dev(vendor),
                    opt,
                    sanitizer: Some(sanitizer),
                    registry: &registry,
                    san_policy,
                };
                match backend.compile_program(q, &req) {
                    Ok(artifact) => {
                        backend.execute(&artifact, &RunRequest::default()).is_normal_exit()
                            && !ubfuzz_interp::run_program(q).is_clean_exit()
                    }
                    Err(_) => false,
                }
            };
            if pred(obs.program) {
                pretty::print(&ubfuzz_reduce::reduce(obs.program, &mut pred))
            } else {
                pretty::print(obs.program)
            }
        } else {
            pretty::print(obs.program)
        };
        bug_index.insert(key, stats.bugs.len());
        stats.bugs.push(FoundBug {
            vendor: obs.vendor,
            sanitizer: obs.sanitizer,
            kind: obs.kind,
            defect_id,
            invalid,
            wrong_report: obs.wrong_report,
            missed_at: vec![obs.opt],
            test_case,
            duplicates: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_finds_real_bugs() {
        let cfg = CampaignConfig::builder().seeds(6).build();
        let stats = run_campaign(&cfg);
        assert!(stats.total_programs() > 10, "programs: {}", stats.total_programs());
        assert!(stats.discrepancies > 0);
        assert!(!stats.bugs.is_empty(), "bugs found");
        // Every attributed bug maps to a real defect of the right vendor.
        for bug in &stats.bugs {
            if let Some(id) = bug.defect_id {
                let d = DefectRegistry::get(id).expect("known defect");
                assert_eq!(d.vendor, bug.vendor, "{id}");
                assert_eq!(d.sanitizer, bug.sanitizer, "{id}");
            }
        }
    }

    #[test]
    fn pristine_world_finds_nothing() {
        let cfg =
            CampaignConfig::builder().seeds(4).registry(DefectRegistry::pristine()).build();
        let stats = run_campaign(&cfg);
        let real: Vec<_> = stats.bugs.iter().filter(|b| !b.invalid).collect();
        assert!(
            real.is_empty(),
            "correct sanitizers yield no FN bugs: {:?}",
            real.iter().map(|b| (&b.defect_id, b.vendor, b.kind)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        // The broad equivalence property (worker counts 1/2/8/16, cache
        // on/off, varying first seeds and generators) lives in
        // tests/parallel.rs; this is the fast in-crate smoke check.
        let cfg = CampaignConfig::builder().seeds(3).build();
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(2).run();
        assert_eq!(sequential, parallel);
        assert!(parallel.cache.hits > 0, "sanitizer matrix shares prefixes: {:?}", parallel.cache);
    }

    #[test]
    fn one_seed_campaign_still_runs_on_the_executor() {
        // A 1-seed campaign used to fall back to the sequential loop; the
        // unit executor must still parallelize its programs and report cache
        // telemetry.
        let cfg = CampaignConfig::builder().seeds(1).build();
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(4).run();
        assert_eq!(sequential, parallel);
        assert!(
            parallel.cache.hits + parallel.cache.misses > 0,
            "executor path exercises the compile session: {:?}",
            parallel.cache
        );
        assert_eq!(sequential.cache, SessionStats::default());
    }

    #[test]
    fn cache_toggle_preserves_results() {
        let cfg = CampaignConfig::builder().seeds(2).build();
        let cached = ParallelCampaign::new(cfg.clone()).with_shards(2).run();
        let uncached = ParallelCampaign::new(cfg).with_shards(2).with_cache(false).run();
        assert_eq!(cached, uncached);
        assert!(cached.cache.hits > 0);
        assert_eq!(uncached.cache, SessionStats::default());
    }

    #[test]
    fn parallel_juliet_anchors_suite_to_the_global_first_seed() {
        // The Juliet generator fires only on the campaign's first seed; a
        // shard-local `first_seed` would replay the suite once per shard.
        let cfg =
            CampaignConfig::builder().seeds(4).generator(GeneratorChoice::Juliet).build();
        let sequential = run_campaign(&cfg);
        let parallel = ParallelCampaign::new(cfg).with_shards(4).run();
        assert_eq!(sequential.total_programs(), parallel.total_programs());
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn juliet_campaign_finds_no_bugs() {
        // §4.3: the fixed Juliet corpus exposes no sanitizer FN bugs.
        let cfg =
            CampaignConfig::builder().seeds(1).generator(GeneratorChoice::Juliet).build();
        let stats = run_campaign(&cfg);
        assert!(stats.total_programs() >= 20);
        let real: Vec<_> =
            stats.bugs.iter().filter(|b| !b.invalid && !b.wrong_report).collect();
        assert!(real.is_empty(), "{:?}", real.iter().map(|b| b.defect_id).collect::<Vec<_>>());
    }
}
