//! Renders every table and figure of the paper's evaluation (§4).
//!
//! Each `table*`/`fig*` function returns the finished text block; the
//! `ubfuzz-bench` binaries print them, and the integration tests assert
//! their shapes against the paper's numbers (see EXPERIMENTS.md for the
//! paper-vs-measured record).

use crate::campaign::{CampaignConfig, CampaignStats, GeneratorChoice};
use crate::history;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use ubfuzz_backend::{CompileRequest, CompilerBackend, RunRequest, SimBackend};
use ubfuzz_exec::Executor;
use ubfuzz_oracle::OracleStack;
use ubfuzz_minic::{parse, UbKind};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::{BugStatus, DefectCategory, DefectRegistry};
use ubfuzz_simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz_simcc::{cov, san, Sanitizer};

/// Table 2: UB kinds supported by each sanitizer.
pub fn table2() -> String {
    let mut out = String::from("Table 2. UB types supported by each sanitizer.\n");
    for kind in UbKind::GENERATABLE {
        let sans: Vec<&str> =
            san::sanitizers_for(kind).into_iter().map(|s| s.name()).collect();
        let _ = writeln!(out, "  {:<22} {}", kind.name(), sans.join(", "));
    }
    out
}

/// Table 3: status of the found bugs, by vendor and sanitizer.
pub fn table3(stats: &CampaignStats) -> String {
    let cols: [(Vendor, Sanitizer); 5] = [
        (Vendor::Gcc, Sanitizer::Asan),
        (Vendor::Gcc, Sanitizer::Ubsan),
        (Vendor::Llvm, Sanitizer::Asan),
        (Vendor::Llvm, Sanitizer::Ubsan),
        (Vendor::Llvm, Sanitizer::Msan),
    ];
    let count = |pred: &dyn Fn(&crate::FoundBug) -> bool| -> Vec<usize> {
        let mut v: Vec<usize> =
            cols.iter().map(|&(ven, s)| {
                stats.bugs.iter().filter(|b| b.vendor == ven && b.sanitizer == s && pred(b)).count()
            }).collect();
        v.push(v.iter().sum());
        v
    };
    let status_of = |b: &crate::FoundBug| b.defect_id.and_then(DefectRegistry::get).map(|d| d.status);
    let reported = count(&|_| true);
    let confirmed = count(&|b| {
        matches!(status_of(b), Some(BugStatus::Confirmed) | Some(BugStatus::Fixed))
    });
    let fixed = count(&|b| matches!(status_of(b), Some(BugStatus::Fixed)));
    let invalid = count(&|b| b.invalid);
    let mut out = String::from(
        "Table 3. Status of the reported bugs in GCC and LLVM.\n\
                     GCC-ASan GCC-UBSan LLVM-ASan LLVM-UBSan LLVM-MSan Total\n",
    );
    for (name, row) in
        [("Reported", reported), ("Confirmed", confirmed), ("Fixed", fixed), ("Invalid", invalid)]
    {
        let _ = writeln!(
            out,
            "  {:<9} {:>8} {:>9} {:>9} {:>10} {:>9} {:>5}",
            name, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    out
}

/// Per-generator program counts for Table 4.
#[derive(Debug, Clone, Default)]
pub struct GeneratorCounts {
    /// UB programs per kind.
    pub per_kind: BTreeMap<UbKind, usize>,
    /// Programs without UB.
    pub no_ub: usize,
    /// Programs that did not terminate or were invalid.
    pub other: usize,
}

impl GeneratorCounts {
    /// Total UB programs.
    pub fn total_ub(&self) -> usize {
        self.per_kind.values().sum()
    }
}

impl GeneratorCounts {
    /// Folds another count block into this one (per-seed task merge).
    fn absorb(&mut self, other: GeneratorCounts) {
        for (kind, n) in other.per_kind {
            *self.per_kind.entry(kind).or_default() += n;
        }
        self.no_ub += other.no_ub;
        self.other += other.other;
    }
}

/// Classifies one baseline-generated program into a count block.
fn classify_counts(p: &ubfuzz_minic::Program) -> GeneratorCounts {
    let mut c = GeneratorCounts::default();
    match ubfuzz_interp::run_program(p) {
        ubfuzz_interp::Outcome::Ub(ev) => {
            *c.per_kind.entry(ev.kind).or_default() += 1;
        }
        ubfuzz_interp::Outcome::Exit { .. } => c.no_ub += 1,
        _ => c.other += 1,
    }
    c
}

/// Runs the §4.3 generator-comparison experiment over `seeds` seed programs
/// (the paper uses 1,000; scale with available time). Each generator's
/// per-seed work is one executor task; counts are folded in seed order, so
/// the table is identical at any worker count.
pub fn generator_comparison(seeds: usize) -> BTreeMap<&'static str, GeneratorCounts> {
    let exec = Executor::auto();
    let mut out = BTreeMap::new();
    let seed_opts = SeedOptions::default();
    // UBfuzz: all generated programs contain UB by construction.
    let mut ub = GeneratorCounts::default();
    let per_seed = exec.map((0..seeds as u64).collect(), |_, s| {
        let seed = generate_seed(s, &seed_opts);
        let mut c = GeneratorCounts::default();
        for u in ubfuzz_ubgen::generate_all(&seed, &ubfuzz_ubgen::GenOptions::default()) {
            *c.per_kind.entry(u.kind).or_default() += 1;
        }
        c
    });
    per_seed.into_iter().for_each(|c| ub.absorb(c));
    out.insert("UBfuzz", ub);
    // MUSIC: 14 mutants per seed (matching the paper's 14k from 1k seeds).
    let mut music = GeneratorCounts::default();
    let per_seed = exec.map((0..seeds as u64).collect(), |_, s| {
        let seed = generate_seed(s, &seed_opts);
        let mut c = GeneratorCounts::default();
        for m in 0..14 {
            let p = ubfuzz_baselines::music::mutate(&seed, s * 100 + m);
            c.absorb(classify_counts(&p));
        }
        c
    });
    per_seed.into_iter().for_each(|c| music.absorb(c));
    out.insert("MUSIC", music);
    // Csmith-NoSafe: 14 fresh programs per seed slot.
    let mut nosafe = GeneratorCounts::default();
    let nosafe_opts = ubfuzz_baselines::nosafe_options();
    let per_slot = exec.map((0..seeds as u64 * 14).collect(), |_, s| {
        classify_counts(&generate_seed(900_000 + s, &nosafe_opts))
    });
    per_slot.into_iter().for_each(|c| nosafe.absorb(c));
    out.insert("Csmith-NoSafe", nosafe);
    out
}

/// Table 4: generated UB programs per generator.
pub fn table4(data: &BTreeMap<&'static str, GeneratorCounts>) -> String {
    let kinds = UbKind::GENERATABLE;
    let mut out = String::from("Table 4. Number of generated UB programs per generator.\n");
    let _ = write!(out, "  {:<14}", "Generator");
    for k in kinds {
        let _ = write!(out, " {:>12}", shorten(k.name()));
    }
    let _ = writeln!(out, " {:>7} {:>7}", "Total", "NoUB");
    for (name, counts) in data {
        let _ = write!(out, "  {:<14}", name);
        for k in kinds {
            let _ = write!(out, " {:>12}", counts.per_kind.get(&k).copied().unwrap_or(0));
        }
        let no_ub =
            if *name == "UBfuzz" { "-".to_string() } else { counts.no_ub.to_string() };
        let _ = writeln!(out, " {:>7} {:>7}", counts.total_ub(), no_ub);
    }
    out
}

fn shorten(name: &str) -> String {
    name.replace("BufOverflow", "BufOvf").replace("Overflow", "Ovf")
}

/// The Table 5 coverage experiment: compile+run a program mix per generator
/// and read the sanitizer self-coverage counters.
///
/// Each program's vendor × sanitizer × level sweep is one executor task; the
/// shared [`CompileSession`] reuses the pre-sanitizer prefix across the
/// three sanitizers of every `(vendor, opt)` cell. Coverage is unaffected by
/// either: hit points live only in the sanitizer passes and the runtime
/// (never the cached prefix), and the collector is an order-insensitive set.
pub fn coverage_experiment(seeds: usize) -> String {
    coverage_experiment_with(&SimBackend::new(), seeds)
}

/// [`coverage_experiment`] over an explicit backend — share one backend
/// across table entry points and the sanitizer-independent compile prefixes
/// persist between them. (The coverage counters themselves are the
/// simulated toolchains' measurement substrate; a foreign backend compiles
/// and runs the same mix but contributes no self-coverage.)
pub fn coverage_experiment_with(backend: &dyn CompilerBackend, seeds: usize) -> String {
    let registry = DefectRegistry::full();
    let exec = Executor::auto();
    let toolchains = backend.toolchains();
    let mut out = String::from(
        "Table 5. Line (LC), function (FC), branch (BC) coverage of the sanitizer\n\
         implementation, per vendor.\n\
                            GCC                     LLVM\n\
                     LC     FC     BC        LC     FC     BC\n",
    );
    let seed_opts = SeedOptions::default();
    let run_mix = |programs: &[ubfuzz_minic::Program]| {
        let collector = cov::Collector::new();
        exec.map((0..programs.len()).collect(), |_, pi: usize| {
            collector.attach(|| {
                let p = &programs[pi];
                let fp = backend.fingerprint(p);
                for tc in &toolchains {
                    for sanitizer in Sanitizer::ALL {
                        if !tc.supports(sanitizer) {
                            continue;
                        }
                        for opt in [OptLevel::O0, OptLevel::O2] {
                            let req = CompileRequest {
                                compiler: tc.id,
                                opt,
                                sanitizer: Some(sanitizer),
                                registry: &registry,
                                san_policy: ubfuzz_simcc::SanPolicy::Full,
                            };
                            if let Ok(a) = backend.compile(&fp, p, &req) {
                                let _ = backend.execute(&a, &RunRequest::default());
                            }
                        }
                    }
                }
            })
        });
        (collector.stats(Vendor::Gcc), collector.stats(Vendor::Llvm))
    };
    let seeds_programs: Vec<_> =
        (0..seeds as u64).map(|s| generate_seed(s, &seed_opts)).collect();
    let music_programs: Vec<_> = seeds_programs
        .iter()
        .enumerate()
        .flat_map(|(i, s)| (0..3).map(move |m| ubfuzz_baselines::music::mutate(s, (i * 10 + m) as u64)))
        .collect();
    let nosafe_programs: Vec<_> = (0..seeds as u64 * 3)
        .map(|s| generate_seed(800_000 + s, &ubfuzz_baselines::nosafe_options()))
        .collect();
    let ubfuzz_programs: Vec<_> = seeds_programs
        .iter()
        .flat_map(|s| {
            ubfuzz_ubgen::generate_all(s, &ubfuzz_ubgen::GenOptions::default())
                .into_iter()
                .map(|u| u.program)
        })
        .collect();
    for (name, programs) in [
        ("Seeds", &seeds_programs),
        ("MUSIC", &music_programs),
        ("Csmith-NoSafe", &nosafe_programs),
        ("UBfuzz", &ubfuzz_programs),
    ] {
        let (g, l) = run_mix(programs);
        let _ = writeln!(
            out,
            "  {:<14} {:>5.1}% {:>5.1}% {:>5.1}%    {:>5.1}% {:>5.1}% {:>5.1}%",
            name, g.line_pct, g.func_pct, g.branch_pct, l.line_pct, l.func_pct, l.branch_pct
        );
    }
    out
}

/// Table 6: bug categories by root cause.
pub fn table6(stats: &CampaignStats) -> String {
    let mut out = String::from("Table 6. Bug category according to root cause analysis.\n");
    let _ = writeln!(out, "  {:<38} {:>4} {:>5}", "Category", "GCC", "LLVM");
    for cat in DefectCategory::ALL {
        let count = |vendor| {
            stats
                .bugs
                .iter()
                .filter(|b| {
                    b.vendor == vendor
                        && (b
                            .defect_id
                            .and_then(DefectRegistry::get)
                            .is_some_and(|d| d.category == cat)
                            // The invalid report presents as a bogus
                            // sanitizer-optimization finding (Fig. 8).
                            || (b.invalid && cat == DefectCategory::IncorrectSanitizerOpt))
                })
                .count()
        };
        let _ = writeln!(out, "  {:<38} {:>4} {:>5}", cat.name(), count(Vendor::Gcc), count(Vendor::Llvm));
    }
    out
}

/// Fig. 7: number of bugs per UB kind, with buffer overflow split between
/// ASan and UBSan as in the paper.
pub fn fig7(stats: &CampaignStats) -> String {
    let mut rows: BTreeMap<String, usize> = BTreeMap::new();
    for b in &stats.bugs {
        if b.invalid {
            continue;
        }
        let label = match b.kind {
            UbKind::BufOverflowArray | UbKind::BufOverflowPtr => {
                format!("BufOverflow ({})", b.sanitizer)
            }
            k => k.name().to_string(),
        };
        *rows.entry(label).or_default() += 1;
    }
    let mut out = String::from("Fig. 7. Number of bugs triggered by each kind of UB.\n");
    for (label, n) in rows {
        let _ = writeln!(out, "  {:<28} {:>3} {}", label, n, "#".repeat(n));
    }
    out
}

/// Fig. 9: sanitizer FN reports per year in the GCC and LLVM trackers.
pub fn fig9() -> String {
    let mut out =
        String::from("Fig. 9. Sanitizer FN bug reports in GCC and LLVM trackers per year.\n");
    for vendor in Vendor::ALL {
        let _ = writeln!(
            out,
            "  {} (total {}, by UBfuzz {}):",
            vendor,
            history::total_reports(vendor),
            history::ubfuzz_reports(vendor)
        );
        for y in history::history(vendor) {
            let _ = writeln!(
                out,
                "    {} {:>3} {}{}",
                y.year,
                y.total,
                "#".repeat((y.total - y.by_ubfuzz) as usize),
                "u".repeat(y.by_ubfuzz as usize)
            );
        }
    }
    out
}

/// Fig. 10: stable compiler versions affected by each found bug, *measured*
/// by re-running every bug's test case against every stable version.
pub fn fig10(stats: &CampaignStats, registry: &DefectRegistry) -> String {
    fig10_with(stats, registry, &SimBackend::new())
}

/// [`fig10`] over an explicit backend; the stable-version replays recompile
/// every bug's test case, so a shared cached backend dedups their prefixes
/// against the campaign that found them.
pub fn fig10_with(
    stats: &CampaignStats,
    registry: &DefectRegistry,
    backend: &dyn CompilerBackend,
) -> String {
    let mut out =
        String::from("Fig. 10. Stable compiler versions affected by the reported FN bugs.\n");
    for vendor in Vendor::ALL {
        let versions: Vec<u32> = vendor.stable_versions().collect();
        let mut affected: BTreeMap<u32, usize> = versions.iter().map(|&v| (v, 0)).collect();
        for bug in &stats.bugs {
            if bug.vendor != vendor || bug.invalid || bug.wrong_report {
                continue;
            }
            let Ok(program) = parse(&bug.test_case) else { continue };
            let opt = bug.missed_at.first().copied().unwrap_or(OptLevel::O2);
            let fp = backend.fingerprint(&program);
            for &version in &versions {
                let req = CompileRequest {
                    compiler: CompilerId { vendor, version },
                    opt,
                    sanitizer: Some(bug.sanitizer),
                    registry,
                    san_policy: ubfuzz_simcc::SanPolicy::Full,
                };
                let Ok(a) = backend.compile(&fp, &program, &req) else { continue };
                if backend.execute(&a, &RunRequest::default()).is_normal_exit() {
                    *affected.entry(version).or_default() += 1;
                }
            }
        }
        let _ = writeln!(out, "  {vendor}:");
        for (v, n) in affected {
            let _ = writeln!(out, "    {vendor}-{v:<3} {n:>3} {}", "#".repeat(n));
        }
    }
    out
}

/// Fig. 11: optimization levels affected, measured by re-running every bug's
/// test case at every level on the development compiler.
pub fn fig11(stats: &CampaignStats, registry: &DefectRegistry) -> String {
    fig11_with(stats, registry, &SimBackend::new())
}

/// [`fig11`] over an explicit backend.
pub fn fig11_with(
    stats: &CampaignStats,
    registry: &DefectRegistry,
    backend: &dyn CompilerBackend,
) -> String {
    let mut affected: BTreeMap<&'static str, usize> =
        OptLevel::ALL.iter().map(|o| (o.name(), 0)).collect();
    for bug in &stats.bugs {
        if bug.invalid || bug.wrong_report {
            continue;
        }
        let Ok(program) = parse(&bug.test_case) else { continue };
        let fp = backend.fingerprint(&program);
        for opt in OptLevel::ALL {
            let req = CompileRequest {
                compiler: CompilerId::dev(bug.vendor),
                opt,
                sanitizer: Some(bug.sanitizer),
                registry,
                san_policy: ubfuzz_simcc::SanPolicy::Full,
            };
            let Ok(a) = backend.compile(&fp, &program, &req) else { continue };
            if backend.execute(&a, &RunRequest::default()).is_normal_exit()
                && !ubfuzz_interp::run_program(&program).is_clean_exit()
            {
                *affected.entry(opt.name()).or_default() += 1;
            }
        }
    }
    let mut out = String::from("Fig. 11. Affected optimization levels.\n");
    for opt in OptLevel::ALL {
        let n = affected[opt.name()];
        let _ = writeln!(out, "  {:<4} {:>3} {}", opt.name(), n, "#".repeat(n));
    }
    out
}

/// §4.4 oracle precision/recall summary line, with a per-sanitizer drop
/// breakdown whenever any drop was *unarbitrated* (no module to map, no
/// trace to arbitrate with). Fully trace-capable backends — the simulated
/// world every table is measured in — have no unarbitrated drops, so their
/// output is byte-identical to the pre-breakdown format; the extra lines
/// exist to make real-toolchain campaigns debuggable.
pub fn oracle_stats(stats: &CampaignStats) -> String {
    let mut out = format!(
        "Oracle: {} UB programs, {} discrepancies, {} selected as sanitizer bugs, {} dropped as optimization artifacts\n",
        stats.total_programs(),
        stats.discrepancies,
        stats.selected,
        stats.dropped
    );
    if stats.oracle.unarbitrated() > 0 {
        use ubfuzz_oracle::DropReason;
        for sanitizer in stats.oracle.sanitizers() {
            let _ = writeln!(
                out,
                "  dropped[{sanitizer}]: optimization-artifact={} no-module={} no-trace={}",
                stats.oracle.dropped(sanitizer, DropReason::OptimizationArtifact),
                stats.oracle.dropped(sanitizer, DropReason::NoModule),
                stats.oracle.dropped(sanitizer, DropReason::NoTrace),
            );
        }
    }
    out
}

/// §4.4 ablation: what differential testing would file *without* the
/// crash-site-mapping oracle.
///
/// Since the oracle became configuration ([`CampaignConfig`] carries a
/// [`ubfuzz_oracle::CrashOracle`]), the ablation is pure *stack selection*: the same
/// campaign runs once under [`OracleStack::standard`] and once under
/// [`OracleStack::naive`] — no forked campaign code. In the pristine world
/// (correct sanitizers) every cross-level discrepancy is
/// optimization-caused: the naive stack files them all — the "practically
/// infeasible" triage burden the paper motivates the oracle with — while
/// crash-site mapping files none, except the engineered Fig. 8
/// invalid-report shape when a seed happens to produce it.
pub fn oracle_ablation(seeds: usize) -> String {
    oracle_ablation_with(Arc::new(SimBackend::new()), seeds)
}

/// [`oracle_ablation`] over an explicit (shared) backend — both stacks
/// recompile the same matrix, so the second run is served from the
/// backend's prefix cache.
pub fn oracle_ablation_with(backend: Arc<dyn CompilerBackend>, seeds: usize) -> String {
    let campaign = |oracle: OracleStack| {
        CampaignConfig::builder()
            .seeds(seeds)
            .registry(DefectRegistry::pristine())
            .backend(Arc::clone(&backend))
            .oracle(Arc::new(oracle))
            .build_runner()
            .run()
    };
    let stats = campaign(OracleStack::standard());
    let naive = campaign(OracleStack::naive());
    let invalid = stats.bugs.iter().filter(|b| b.invalid).count();
    let mut out = String::new();
    let _ = writeln!(out, "Oracle ablation (pristine sanitizers, {seeds} seeds):");
    let _ = writeln!(out, "  UB programs tested:       {}", stats.total_programs());
    let _ = writeln!(out, "  discrepancies observed:   {}", stats.discrepancies);
    let _ = writeln!(
        out,
        "  naive oracle would file:  {} (every one a false accusation)",
        naive.selected
    );
    let _ = writeln!(
        out,
        "  crash-site mapping files: {} (of which {invalid} invalid-report shapes)",
        stats.selected
    );
    out
}

/// Convenience: run a default campaign sized for quick regeneration.
///
/// Runs on the parallel unit executor with the compile cache enabled —
/// output is bit-identical to [`run_campaign`] by the executor's
/// determinism property, so regenerated tables/figures match the
/// sequential loop's.
pub fn default_campaign(seeds: usize) -> CampaignStats {
    CampaignConfig::builder().seeds(seeds).build_runner().run()
}

/// [`default_campaign`] over an explicit (shared) backend — `make_tables`
/// threads one backend through every entry point so hot compile prefixes
/// persist across tables (`stats.cache` still reports per-run deltas).
pub fn default_campaign_with(backend: Arc<dyn CompilerBackend>, seeds: usize) -> CampaignStats {
    CampaignConfig::builder().seeds(seeds).backend(backend).build_runner().run()
}

/// Convenience: run a baseline campaign (§4.3) on the parallel unit
/// executor.
pub fn baseline_campaign(generator: GeneratorChoice, seeds: usize) -> CampaignStats {
    CampaignConfig::builder().seeds(seeds).generator(generator).build_runner().run()
}

/// [`baseline_campaign`] over an explicit (shared) backend.
pub fn baseline_campaign_with(
    backend: Arc<dyn CompilerBackend>,
    generator: GeneratorChoice,
    seeds: usize,
) -> CampaignStats {
    CampaignConfig::builder()
        .seeds(seeds)
        .generator(generator)
        .backend(backend)
        .build_runner()
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    #[test]
    fn table2_matches_paper_matrix() {
        let t = table2();
        assert!(t.contains("BufOverflow(Array)     ASan, UBSan"));
        assert!(t.contains("UseAfterFree           ASan"));
        assert!(t.contains("UseOfUninit            MSan"));
    }

    #[test]
    fn fig9_renders_survey() {
        let f = fig9();
        assert!(f.contains("GCC (total 40, by UBfuzz 16)"));
        assert!(f.contains("LLVM (total 24, by UBfuzz 14)"));
    }

    #[test]
    fn table4_shape_small() {
        let data = generator_comparison(2);
        let t = table4(&data);
        assert!(t.contains("UBfuzz"));
        assert!(t.contains("MUSIC"));
        assert!(t.contains("Csmith-NoSafe"));
        let ub = &data["UBfuzz"];
        let music = &data["MUSIC"];
        assert!(ub.total_ub() > music.total_ub(), "UBfuzz generates the most UB programs");
        assert_eq!(ub.no_ub, 0, "every UBfuzz program contains UB");
    }

    #[test]
    fn oracle_ablation_quantifies_mapping_value() {
        // In the pristine world the naive oracle's count equals the
        // discrepancy count (all false), while crash-site mapping may file
        // only invalid-report shapes.
        let stats = run_campaign(
            &CampaignConfig::builder().seeds(6).registry(DefectRegistry::pristine()).build(),
        );
        assert!(
            stats.discrepancies > 0,
            "optimization artifacts exist even with correct sanitizers"
        );
        assert!(stats.bugs.iter().all(|b| b.invalid), "only Fig. 8 shapes may be filed");
        let text = oracle_ablation(6);
        assert!(text.contains("naive oracle would file:  "), "{text}");
        assert!(text.contains(&format!("discrepancies observed:   {}", stats.discrepancies)));
    }
}
