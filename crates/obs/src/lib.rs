//! Dependency-free observability substrate for the UBFuzz workspace.
//!
//! Every layer of the system measures itself through this crate: the
//! campaign executor times its per-unit pipeline stages, the compile
//! session times its cached stages, the store times its open/replay/
//! compact/persist paths, and the daemon counts its lease lifecycle.
//! Three pieces make that work without perturbing any output byte:
//!
//! * **Spans and counters** ([`Span::enter`], [`count`], [`note`]) record
//!   against whatever [`Recorder`]s are *attached* — a thread-scoped stack
//!   (the same panic-safe guard idiom as `simcc::cov`) plus an optional
//!   process-wide default. With nothing attached every probe is a no-op
//!   that never reads the clock, so the instrumented hot paths cost one
//!   thread-local check in the default configuration.
//! * **Aggregation** ([`MetricsSink`], [`Histogram`]) folds span durations
//!   into fixed log2-bucket latency histograms behind sharded relaxed
//!   atomics (lock-free on the record path). Histograms merge
//!   associatively, so per-worker measurements combine in canonical order
//!   into the same totals regardless of scheduling — and they are
//!   *telemetry*: excluded from result equality, never folded into
//!   checkpoints or fingerprints, exactly like `SessionStats`.
//! * **Export** — a text encoding for shipping histograms across the
//!   worker-process receipt pipe ([`Histogram::encode`],
//!   [`parse_metric_line`]), a JSONL event stream ([`TraceRecorder`]) for
//!   offline analysis, and the [`Line`] formatter that is the single
//!   source of truth for the `[store] …` telemetry lines CI greps.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::{self, Display, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Poison-recovering lock: a recorder shared across campaign worker
/// threads must keep accepting samples after an unrelated unit panics —
/// the counters behind these locks stay consistent across an unwind
/// because each critical section is a single read-modify-write.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// Every instrumented stage in the system, in canonical report order.
///
/// The first block is the executor's per-unit pipeline, the second the
/// store's I/O paths, the third the daemon's lease lifecycle. Names are
/// stable wire format: they appear in worker receipts, `METRICS`
/// responses, and JSONL traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    Generate,
    PrefixCompile,
    Sanitize,
    LateOpt,
    Run,
    Trace,
    Oracle,
    Replay,
    StoreOpen,
    StoreReplay,
    StoreCompact,
    StorePersist,
    LeaseIssue,
    LeaseHeartbeat,
    LeaseReclaim,
    Merge,
}

impl Stage {
    /// Every stage, in canonical order (the order of `METRICS` lines and
    /// the table-8 breakdown).
    pub const ALL: [Stage; 16] = [
        Stage::Generate,
        Stage::PrefixCompile,
        Stage::Sanitize,
        Stage::LateOpt,
        Stage::Run,
        Stage::Trace,
        Stage::Oracle,
        Stage::Replay,
        Stage::StoreOpen,
        Stage::StoreReplay,
        Stage::StoreCompact,
        Stage::StorePersist,
        Stage::LeaseIssue,
        Stage::LeaseHeartbeat,
        Stage::LeaseReclaim,
        Stage::Merge,
    ];

    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::PrefixCompile => "prefix_compile",
            Stage::Sanitize => "sanitize",
            Stage::LateOpt => "late_opt",
            Stage::Run => "run",
            Stage::Trace => "trace",
            Stage::Oracle => "oracle",
            Stage::Replay => "replay",
            Stage::StoreOpen => "store_open",
            Stage::StoreReplay => "store_replay",
            Stage::StoreCompact => "store_compact",
            Stage::StorePersist => "store_persist",
            Stage::LeaseIssue => "lease_issue",
            Stage::LeaseHeartbeat => "lease_heartbeat",
            Stage::LeaseReclaim => "lease_reclaim",
            Stage::Merge => "merge",
        }
    }

    /// Inverse of [`Stage::name`]; `None` for an unknown name (skew-safe
    /// receipt parsing: an unknown stage is dropped, never an error).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).expect("stage in ALL")
    }
}

impl Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Events and recorders
// ---------------------------------------------------------------------------

/// One observation. Borrowed so the hot path never allocates; a recorder
/// that needs to keep the data copies it.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A completed span: `unit` is the caller's correlation id (compile
    /// unit index, seed id, lease id — whatever the stage iterates over).
    Span { stage: Stage, unit: u64, nanos: u64 },
    /// A named counter increment (cache hits, lease issues, …).
    Count { name: &'a str, delta: u64 },
    /// A free-text event on a topic (store corruption reports, …).
    Note { topic: &'a str, text: &'a str },
}

/// A sink for [`Event`]s. Implementations must tolerate concurrent calls
/// from every campaign worker thread.
///
/// `Debug` is required because recorders ride inside `Debug`-deriving
/// configuration structs (`CampaignConfig`).
pub trait Recorder: Send + Sync + fmt::Debug {
    fn record(&self, event: &Event<'_>);
}

thread_local! {
    /// The attached recorder stack for this thread. Innermost last; an
    /// event is delivered to every frame, so nested attachments compose
    /// (a trace recorder inside a metrics sink sees the same events).
    static RECORDERS: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default recorder, observed by every thread that has
/// no scoped attachment of its own (executor worker threads included).
static GLOBAL: OnceLock<Arc<dyn Recorder>> = OnceLock::new();

/// Installs a process-wide default recorder. First caller wins; returns
/// whether this call installed it. Intended for binaries (`--trace-out`,
/// table 8) — library code should prefer scoped [`attach`].
pub fn set_global(recorder: Arc<dyn Recorder>) -> bool {
    GLOBAL.set(recorder).is_ok()
}

/// Attaches `recorder` to the current thread until the guard drops.
/// Pop-on-drop is panic-safe: an unwinding campaign unit cannot leak its
/// recorder frame into unrelated later work on the same worker thread.
///
/// Attaching is idempotent per recorder instance: if this exact `Arc` is
/// already on the thread's stack, no new frame is pushed and the guard is
/// a no-op. Events are delivered to every frame, so without this a
/// single-worker executor — whose tasks run inline on the already-attached
/// consumer thread and re-attach the campaign recorder per task — would
/// double-count every span. Distinct recorders still compose.
#[must_use = "the recorder detaches when the guard drops"]
pub fn attach(recorder: Arc<dyn Recorder>) -> AttachGuard {
    let pushed = RECORDERS.with(|r| {
        let mut stack = r.borrow_mut();
        if stack.iter().any(|existing| Arc::ptr_eq(existing, &recorder)) {
            return false;
        }
        stack.push(recorder);
        true
    });
    AttachGuard { pushed }
}

/// Scope guard returned by [`attach`].
#[derive(Debug)]
pub struct AttachGuard {
    pushed: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        let _ = RECORDERS.try_with(|r| {
            r.borrow_mut().pop();
        });
    }
}

/// Whether any recorder (scoped or global) would observe an event from
/// this thread. Probes check this before touching the clock.
pub fn active() -> bool {
    GLOBAL.get().is_some()
        || RECORDERS.try_with(|r| !r.borrow().is_empty()).unwrap_or(false)
}

/// Delivers `event` to every attached recorder and the global default.
pub fn record(event: &Event<'_>) {
    let _ = RECORDERS.try_with(|r| {
        for rec in r.borrow().iter() {
            rec.record(event);
        }
    });
    if let Some(g) = GLOBAL.get() {
        g.record(event);
    }
}

/// Increments counter `name` on every active recorder.
pub fn count(name: &str, delta: u64) {
    if active() {
        record(&Event::Count { name, delta });
    }
}

/// Emits a free-text note on `topic` to every active recorder.
pub fn note(topic: &str, text: &str) {
    if active() {
        record(&Event::Note { topic, text });
    }
}

/// An in-flight stage measurement. Records its duration when dropped —
/// including during unwinding, so a panicking unit still accounts its
/// partial stage time. When no recorder is active the span is inert and
/// never reads the clock.
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    unit: u64,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span for `stage` correlated to `unit`.
    pub fn enter(stage: Stage, unit: u64) -> Span {
        let start = active().then(Instant::now);
        Span { stage, unit, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record(&Event::Span { stage: self.stage, unit: self.unit, nanos });
        }
    }
}

/// Times `f` under a span — the expression-position sibling of
/// [`Span::enter`].
pub fn time<T>(stage: Stage, unit: u64, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(stage, unit);
    f()
}

/// Broadcasts every event to several recorders, in order — how a binary
/// runs a [`TraceRecorder`] and a [`MetricsSink`] off one attachment
/// (e.g. `make_tables --table 8 --trace-out FILE`).
#[derive(Debug)]
pub struct Fanout(pub Vec<Arc<dyn Recorder>>);

impl Recorder for Fanout {
    fn record(&self, event: &Event<'_>) {
        for recorder in &self.0 {
            recorder.record(event);
        }
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log2 latency buckets: bucket `i` holds durations `d` with
/// `floor(log2(max(d, 1))) == i`, so the range covers 1 ns to ~584 years.
pub const BUCKETS: usize = 64;

/// A fixed log2-bucket latency histogram.
///
/// Merging is associative and commutative, so per-worker histograms
/// folded in canonical order equal the histogram of the sequential run —
/// the property the cross-worker tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum_ns: 0, max_ns: 0, buckets: [0; BUCKETS] }
    }
}

/// The bucket index for a duration of `nanos`.
fn bucket_of(nanos: u64) -> usize {
    63 - nanos.max(1).leading_zeros() as usize
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Folds one duration in.
    pub fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(nanos);
        self.max_ns = self.max_ns.max(nanos);
        self.buckets[bucket_of(nanos)] += 1;
    }

    /// Folds another histogram in (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `num/den` quantile as a bucket upper bound (integer math: no
    /// float rounding to diverge across platforms), capped at the exact
    /// observed maximum.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank = ceil(count * num / den), clamped to [1, count]
        let rank = (self.count.saturating_mul(num)).div_ceil(den).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency (bucket-resolution upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    /// 95th-percentile latency (bucket-resolution upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(19, 20)
    }

    /// The receipt text encoding: `count=N sum_ns=N max_ns=N
    /// buckets=i:c,i:c` (sparse; `buckets=-` when empty).
    pub fn encode(&self) -> String {
        let mut s = format!("count={} sum_ns={} max_ns={} buckets=", self.count, self.sum_ns, self.max_ns);
        let mut any = false;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                if any {
                    s.push(',');
                }
                let _ = write!(s, "{i}:{b}");
                any = true;
            }
        }
        if !any {
            s.push('-');
        }
        s
    }

    /// Inverse of [`Histogram::encode`]. Unknown tokens are ignored and
    /// malformed fields yield `None` — receipts from a skewed worker
    /// degrade to "no metrics", never an error.
    pub fn parse(text: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut seen_count = false;
        for token in text.split_whitespace() {
            if let Some(v) = token.strip_prefix("count=") {
                h.count = v.parse().ok()?;
                seen_count = true;
            } else if let Some(v) = token.strip_prefix("sum_ns=") {
                h.sum_ns = v.parse().ok()?;
            } else if let Some(v) = token.strip_prefix("max_ns=") {
                h.max_ns = v.parse().ok()?;
            } else if let Some(v) = token.strip_prefix("buckets=") {
                if v == "-" {
                    continue;
                }
                for pair in v.split(',') {
                    let (i, c) = pair.split_once(':')?;
                    let i: usize = i.parse().ok()?;
                    if i >= BUCKETS {
                        return None;
                    }
                    h.buckets[i] = c.parse().ok()?;
                }
            }
        }
        seen_count.then_some(h)
    }
}

// ---------------------------------------------------------------------------
// The metrics sink
// ---------------------------------------------------------------------------

/// Shards in the sink; a small power of two keeps the thread-id spread
/// cheap while bounding the snapshot merge.
const SHARDS: usize = 16;

/// Per-shard, per-stage atomic accumulators.
#[derive(Debug)]
struct Shard {
    counts: [AtomicU64; Stage::ALL.len()],
    sums: [AtomicU64; Stage::ALL.len()],
    maxes: [AtomicU64; Stage::ALL.len()],
    buckets: Box<[AtomicU64]>, // Stage::ALL.len() × BUCKETS, row-major
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
            maxes: std::array::from_fn(|_| AtomicU64::new(0)),
            buckets: (0..Stage::ALL.len() * BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The standard aggregating [`Recorder`]: lock-free sharded per-stage
/// latency histograms plus (cold-path, mutex-guarded) named counters and
/// free-text notes.
///
/// Sharding spreads worker-thread contention; [`MetricsSink::snapshot`]
/// folds the shards back together in fixed order, so the snapshot of a
/// given sample set is scheduling-independent.
#[derive(Debug)]
pub struct MetricsSink {
    shards: Vec<Shard>,
    counters: Mutex<BTreeMap<String, u64>>,
    notes: Mutex<Vec<(String, String)>>,
}

impl Default for MetricsSink {
    fn default() -> MetricsSink {
        MetricsSink::new()
    }
}

impl MetricsSink {
    pub fn new() -> MetricsSink {
        MetricsSink {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            counters: Mutex::new(BTreeMap::new()),
            notes: Mutex::new(Vec::new()),
        }
    }

    fn shard(&self) -> &Shard {
        // Cheap thread spread: hash the thread id. Correctness does not
        // depend on the distribution — every shard merges into the
        // snapshot — only contention does.
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Folds every shard into one snapshot, in fixed shard/stage order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for stage in Stage::ALL {
            let si = stage.index();
            let mut h = Histogram::new();
            for shard in &self.shards {
                h.count += shard.counts[si].load(Ordering::Relaxed);
                h.sum_ns = h.sum_ns.saturating_add(shard.sums[si].load(Ordering::Relaxed));
                h.max_ns = h.max_ns.max(shard.maxes[si].load(Ordering::Relaxed));
                for b in 0..BUCKETS {
                    h.buckets[b] += shard.buckets[si * BUCKETS + b].load(Ordering::Relaxed);
                }
            }
            if !h.is_empty() {
                snap.stages.insert(stage, h);
            }
        }
        snap.counters = relock(&self.counters).clone();
        snap.notes = relock(&self.notes).clone();
        snap
    }
}

impl Recorder for MetricsSink {
    fn record(&self, event: &Event<'_>) {
        match *event {
            Event::Span { stage, nanos, .. } => {
                let shard = self.shard();
                let si = stage.index();
                shard.counts[si].fetch_add(1, Ordering::Relaxed);
                shard.sums[si].fetch_add(nanos, Ordering::Relaxed);
                shard.maxes[si].fetch_max(nanos, Ordering::Relaxed);
                shard.buckets[si * BUCKETS + bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
            }
            Event::Count { name, delta } => {
                *relock(&self.counters).entry(name.to_string()).or_insert(0) += delta;
            }
            Event::Note { topic, text } => {
                relock(&self.notes).push((topic.to_string(), text.to_string()));
            }
        }
    }
}

/// A point-in-time fold of a [`MetricsSink`] (or of several, via
/// [`MetricsSnapshot::merge`] — the daemon merges one per worker receipt
/// in lease order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-stage histograms, canonical stage order. Empty stages are
    /// absent.
    pub stages: BTreeMap<Stage, Histogram>,
    pub counters: BTreeMap<String, u64>,
    pub notes: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Folds `other` in (histograms merge, counters add, notes append).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (stage, h) in &other.stages {
            self.stages.entry(*stage).or_default().merge(h);
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        self.notes.extend(other.notes.iter().cloned());
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.counters.is_empty() && self.notes.is_empty()
    }

    /// The counter value, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total recorded time for `stage` in seconds (0.0 when unseen).
    pub fn stage_secs(&self, stage: Stage) -> f64 {
        self.stages.get(&stage).map(|h| h.sum_ns as f64 / 1e9).unwrap_or(0.0)
    }

    /// Renders the worker-receipt `metric …` lines ([`parse_metric_line`]
    /// / [`parse_counter_line`] read them back on the daemon side).
    pub fn encode_lines(&self) -> String {
        let mut out = String::new();
        for (stage, h) in &self.stages {
            let _ = writeln!(out, "metric stage={} {}", stage.name(), h.encode());
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "metric counter={name} value={v}");
        }
        out
    }
}

/// Parses one `metric stage=… count=… …` receipt line. `None` for
/// anything else (unknown lines are the caller's to skip).
pub fn parse_metric_line(line: &str) -> Option<(Stage, Histogram)> {
    let rest = line.trim().strip_prefix("metric ")?;
    let (first, tail) = rest.split_once(' ')?;
    let stage = Stage::from_name(first.strip_prefix("stage=")?)?;
    Some((stage, Histogram::parse(tail)?))
}

/// Parses one `metric counter=… value=…` receipt line.
pub fn parse_counter_line(line: &str) -> Option<(String, u64)> {
    let rest = line.trim().strip_prefix("metric ")?;
    let (first, tail) = rest.split_once(' ')?;
    let name = first.strip_prefix("counter=")?;
    let value = tail.trim().strip_prefix("value=")?.parse().ok()?;
    Some((name.to_string(), value))
}

// ---------------------------------------------------------------------------
// JSONL tracing
// ---------------------------------------------------------------------------

/// A [`Recorder`] that streams every event as one JSON object per line.
///
/// Schema (all three shapes, every field always present):
///
/// ```text
/// {"type":"span","stage":"run","unit":12,"nanos":48211}
/// {"type":"count","name":"prefix_hit","delta":1}
/// {"type":"note","topic":"store","text":"prefix.bin: truncated torn tail"}
/// ```
///
/// Tracing is an observer: it writes to its own sink, so an attached
/// trace changes no campaign output byte (the identity tests pin this).
pub struct TraceRecorder {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceRecorder")
    }
}

impl TraceRecorder {
    pub fn new(out: Box<dyn std::io::Write + Send>) -> TraceRecorder {
        TraceRecorder { out: Mutex::new(out) }
    }

    /// Creates (truncating) `path` and streams events to it, buffered.
    pub fn create(path: &std::path::Path) -> std::io::Result<TraceRecorder> {
        let file = std::fs::File::create(path)?;
        Ok(TraceRecorder::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Flushes the underlying sink (also happens on drop).
    pub fn flush(&self) {
        let _ = relock(&self.out).flush();
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Recorder for TraceRecorder {
    fn record(&self, event: &Event<'_>) {
        let line = match *event {
            Event::Span { stage, unit, nanos } => {
                format!("{{\"type\":\"span\",\"stage\":\"{}\",\"unit\":{unit},\"nanos\":{nanos}}}\n", stage.name())
            }
            Event::Count { name, delta } => {
                format!("{{\"type\":\"count\",\"name\":{},\"delta\":{delta}}}\n", json_string(name))
            }
            Event::Note { topic, text } => {
                format!(
                    "{{\"type\":\"note\",\"topic\":{},\"text\":{}}}\n",
                    json_string(topic),
                    json_string(text)
                )
            }
        };
        let _ = relock(&self.out).write_all(line.as_bytes());
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Telemetry line formatting
// ---------------------------------------------------------------------------

/// The single source of truth for `[scope] topic: k=v …` telemetry lines
/// (the `[store] …` stderr format CI greps). Every emitter in the
/// workspace renders through this builder, so the format cannot drift
/// between call sites.
#[derive(Debug)]
pub struct Line {
    buf: String,
}

impl Line {
    /// Starts a `[scope] topic:` line.
    pub fn new(scope: &str, topic: &str) -> Line {
        Line { buf: format!("[{scope}] {topic}:") }
    }

    /// Appends a bare word (e.g. the table name in `compact: prefix …`).
    pub fn text(mut self, word: impl Display) -> Line {
        let _ = write!(self.buf, " {word}");
        self
    }

    /// Appends a `key=value` field.
    pub fn field(mut self, key: &str, value: impl Display) -> Line {
        let _ = write!(self.buf, " {key}={value}");
        self
    }

    /// The finished line (no trailing newline).
    pub fn render(self) -> String {
        self.buf
    }
}

/// Convenience for the `[scope] event: text` shape.
pub fn event_line(scope: &str, text: &str) -> String {
    Line::new(scope, "event").text(text).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug, Default)]
    struct CountingRecorder {
        spans: AtomicUsize,
        counts: AtomicUsize,
        notes: AtomicUsize,
    }

    impl Recorder for CountingRecorder {
        fn record(&self, event: &Event<'_>) {
            match event {
                Event::Span { .. } => self.spans.fetch_add(1, Ordering::Relaxed),
                Event::Count { .. } => self.counts.fetch_add(1, Ordering::Relaxed),
                Event::Note { .. } => self.notes.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    #[test]
    fn spans_are_inert_without_a_recorder() {
        // Must not read the clock or record anywhere: start stays None.
        let span = Span::enter(Stage::Run, 0);
        assert!(span.start.is_none());
    }

    #[test]
    fn nested_spans_record_to_every_attached_frame() {
        let outer = Arc::new(CountingRecorder::default());
        let inner = Arc::new(CountingRecorder::default());
        {
            let _a = attach(outer.clone());
            {
                let _b = attach(inner.clone());
                // Nested spans: the inner span closes first; both frames
                // see both spans.
                let _s1 = Span::enter(Stage::Oracle, 1);
                let _s2 = Span::enter(Stage::Run, 2);
            }
            count("after_inner", 1);
        }
        assert_eq!(outer.spans.load(Ordering::Relaxed), 2);
        assert_eq!(inner.spans.load(Ordering::Relaxed), 2);
        assert_eq!(outer.counts.load(Ordering::Relaxed), 1);
        assert_eq!(inner.counts.load(Ordering::Relaxed), 0, "popped frame no longer records");
        assert!(!active());
    }

    #[test]
    fn reattaching_the_same_recorder_records_once() {
        // The single-worker executor runs tasks inline on the consumer
        // thread, which already holds the campaign recorder; the per-task
        // re-attach must not add a second delivery frame — and its guard
        // must not pop the outer frame when it drops.
        let rec = Arc::new(CountingRecorder::default());
        {
            let _outer = attach(rec.clone());
            {
                let _inner = attach(rec.clone());
                let _s = Span::enter(Stage::Generate, 0);
            }
            let _s = Span::enter(Stage::Generate, 1);
        }
        assert_eq!(rec.spans.load(Ordering::Relaxed), 2, "one delivery per span");
        assert!(!active());
    }

    #[test]
    fn attach_guard_pops_on_panic() {
        let rec = Arc::new(CountingRecorder::default());
        let rec2 = rec.clone();
        let result = std::panic::catch_unwind(move || {
            let _g = attach(rec2);
            panic!("unit exploded");
        });
        assert!(result.is_err());
        assert!(!active(), "panicked frame must not leak its recorder");
        note("store", "ignored");
        assert_eq!(rec.notes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds_capped_at_max() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.max_ns, 1000);
        // p50 rank 3 → value 30 lives in bucket 4 ([16,32)) → upper 31.
        assert_eq!(h.p50(), 31);
        // p95 rank 5 → bucket of 1000 is 9 ([512,1024)) → upper 1023,
        // capped at the observed max 1000.
        assert_eq!(h.p95(), 1000);
        assert!(h.p95() >= h.p50());
        assert_eq!(Histogram::new().p50(), 0);
    }

    #[test]
    fn histogram_merge_equals_sequential_recording() {
        let samples: Vec<u64> = (0..200).map(|i| (i * 37 + 11) % 5000).collect();
        let mut sequential = Histogram::new();
        for &s in &samples {
            sequential.record(s);
        }
        // Partition across any worker count; merging in canonical order
        // must reproduce the sequential histogram exactly.
        for workers in [1usize, 2, 8, 16] {
            let mut parts = vec![Histogram::new(); workers];
            for (i, &s) in samples.iter().enumerate() {
                parts[i % workers].record(s);
            }
            let mut merged = Histogram::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged, sequential, "workers={workers}");
        }
    }

    #[test]
    fn histogram_encode_roundtrips() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 4096, 123_456_789] {
            h.record(v);
        }
        let encoded = h.encode();
        assert_eq!(Histogram::parse(&encoded), Some(h));
        assert_eq!(Histogram::parse(&Histogram::new().encode()), Some(Histogram::new()));
        assert_eq!(Histogram::parse("garbage"), None);
        assert_eq!(Histogram::parse("count=x"), None);
        assert_eq!(Histogram::parse("count=1 buckets=99:1"), None, "bucket out of range");
    }

    #[test]
    fn metrics_sink_aggregates_and_snapshots() {
        let sink = MetricsSink::new();
        for i in 0..10 {
            sink.record(&Event::Span { stage: Stage::Run, unit: i, nanos: 100 * (i + 1) });
        }
        sink.record(&Event::Count { name: "prefix_hit", delta: 3 });
        sink.record(&Event::Note { topic: "store", text: "torn tail" });
        let snap = sink.snapshot();
        let run = &snap.stages[&Stage::Run];
        assert_eq!(run.count, 10);
        assert_eq!(run.sum_ns, 100 * 55);
        assert_eq!(run.max_ns, 1000);
        assert_eq!(snap.counter("prefix_hit"), 3);
        assert_eq!(snap.notes, vec![("store".to_string(), "torn tail".to_string())]);
        assert!(!snap.stages.contains_key(&Stage::Oracle), "unseen stages are absent");
    }

    #[test]
    fn snapshot_merge_is_order_insensitive_on_totals() {
        let a_sink = MetricsSink::new();
        let b_sink = MetricsSink::new();
        a_sink.record(&Event::Span { stage: Stage::Sanitize, unit: 0, nanos: 50 });
        b_sink.record(&Event::Span { stage: Stage::Sanitize, unit: 1, nanos: 70 });
        b_sink.record(&Event::Count { name: "san_miss", delta: 2 });
        let (a, b) = (a_sink.snapshot(), b_sink.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.stages, ba.stages);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.stages[&Stage::Sanitize].count, 2);
        assert_eq!(ab.counter("san_miss"), 2);
    }

    #[test]
    fn receipt_lines_roundtrip() {
        let sink = MetricsSink::new();
        sink.record(&Event::Span { stage: Stage::PrefixCompile, unit: 0, nanos: 2048 });
        sink.record(&Event::Span { stage: Stage::Run, unit: 0, nanos: 17 });
        sink.record(&Event::Count { name: "prefix_miss", delta: 1 });
        let snap = sink.snapshot();
        let mut decoded = MetricsSnapshot::default();
        for line in snap.encode_lines().lines() {
            if let Some((stage, h)) = parse_metric_line(line) {
                decoded.stages.entry(stage).or_default().merge(&h);
            } else if let Some((name, v)) = parse_counter_line(line) {
                *decoded.counters.entry(name).or_insert(0) += v;
            } else {
                panic!("unparseable receipt line: {line}");
            }
        }
        assert_eq!(decoded.stages, snap.stages);
        assert_eq!(decoded.counters, snap.counters);
        // Unknown receipt lines are somebody else's (computed=/replayed=).
        assert_eq!(parse_metric_line("computed=3 replayed=0"), None);
        assert_eq!(parse_metric_line("metric stage=not_a_stage count=1 buckets=-"), None);
    }

    #[test]
    fn trace_recorder_emits_valid_jsonl() {
        use std::sync::atomic::AtomicBool;
        #[derive(Debug, Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>, Arc<AtomicBool>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                relock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.1.store(true, Ordering::Relaxed);
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let tracer = TraceRecorder::new(Box::new(buf.clone()));
        tracer.record(&Event::Span { stage: Stage::StoreOpen, unit: 7, nanos: 99 });
        tracer.record(&Event::Count { name: "leases_issued", delta: 1 });
        tracer.record(&Event::Note { topic: "store", text: "a \"quoted\"\nnote" });
        drop(tracer);
        assert!(buf.1.load(Ordering::Relaxed), "drop flushes");
        let text = String::from_utf8(relock(&buf.0).clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"type\":\"span\",\"stage\":\"store_open\",\"unit\":7,\"nanos\":99}");
        assert_eq!(lines[1], "{\"type\":\"count\",\"name\":\"leases_issued\",\"delta\":1}");
        assert_eq!(lines[2], "{\"type\":\"note\",\"topic\":\"store\",\"text\":\"a \\\"quoted\\\"\\nnote\"}");
    }

    #[test]
    fn stage_names_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn line_formatter_matches_the_store_telemetry_shapes() {
        let line = Line::new("store", "prefix")
            .field("loaded", 3)
            .field("persisted", 4)
            .field("hits", 5)
            .field("misses", 0)
            .field("cold", false)
            .field("truncated", false)
            .render();
        assert_eq!(line, "[store] prefix: loaded=3 persisted=4 hits=5 misses=0 cold=false truncated=false");
        let compact = Line::new("store", "compact")
            .text("prefix")
            .field("before", 10)
            .field("after", 6)
            .render();
        assert_eq!(compact, "[store] compact: prefix before=10 after=6");
        assert_eq!(event_line("store", "torn tail"), "[store] event: torn tail");
    }
}
