//! Lease-based range scheduling for multi-process campaigns.
//!
//! The daemon carves a campaign's unit index space `0..units` into
//! contiguous ranges (via [`crate::chunk_ranges`], the same split
//! [`crate::Executor::map`] seeds its workers with) and hands each range to
//! a worker *process* under a **lease**: an id, the range, a holder pid and
//! a deadline. The ledger is purely in-memory scheduling state — durability
//! lives in the store's checkpoint shards (the work itself) and lease table
//! (observability); a daemon restart re-carves from scratch and the shard
//! replay makes re-execution free.
//!
//! Lease ids are never reused. A failed or expired lease is *re-issued* as
//! a fresh lease over the same range, so the replacement worker writes a
//! fresh checkpoint shard (single-writer-per-file) and its open-time replay
//! scan skips whatever the dead worker already completed.

use std::ops::Range;

/// Lifecycle of one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseStatus {
    /// Carved but not yet claimed by a worker.
    Pending,
    /// Held by a live worker, with a deadline.
    Active,
    /// The worker reported completion.
    Done,
    /// The worker died or overran its deadline; the range was re-issued.
    Failed,
}

/// One lease over a contiguous unit range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Unique id (doubles as the worker's checkpoint shard id).
    pub id: u64,
    /// Unit index range `[start, end)`.
    pub range: Range<usize>,
    /// Holder pid (0 while pending).
    pub holder: u64,
    /// Unix-seconds deadline (0 while pending).
    pub deadline: u64,
    /// Current status.
    pub status: LeaseStatus,
}

/// The daemon's in-memory lease ledger for one campaign.
#[derive(Debug)]
pub struct LeaseLedger {
    leases: Vec<Lease>,
    next_id: u64,
}

impl LeaseLedger {
    /// Carves `0..units` into at most `parts` contiguous pending leases,
    /// numbering them from `first_id` (take it past any ids already in the
    /// store's lease table so shard files never collide).
    pub fn carve(units: usize, parts: usize, first_id: u64) -> LeaseLedger {
        let mut next_id = first_id.max(1);
        let leases = crate::chunk_ranges(units, parts)
            .into_iter()
            .map(|range| {
                let id = next_id;
                next_id += 1;
                Lease { id, range, holder: 0, deadline: 0, status: LeaseStatus::Pending }
            })
            .collect();
        LeaseLedger { leases, next_id }
    }

    /// Claims the first pending lease for `holder`, arming a deadline of
    /// `now + ttl_secs`. Returns the claimed lease, or `None` when nothing
    /// is pending.
    pub fn claim(&mut self, holder: u64, now: u64, ttl_secs: u64) -> Option<Lease> {
        let lease =
            self.leases.iter_mut().find(|l| l.status == LeaseStatus::Pending)?;
        lease.holder = holder;
        lease.deadline = now.saturating_add(ttl_secs);
        lease.status = LeaseStatus::Active;
        Some(lease.clone())
    }

    /// Marks an active lease done. Returns `false` for unknown or
    /// non-active ids (a late completion from an already-reclaimed worker
    /// is ignored — its replacement owns the range now).
    pub fn complete(&mut self, id: u64) -> bool {
        match self.lease_mut(id) {
            Some(l) if l.status == LeaseStatus::Active => {
                l.status = LeaseStatus::Done;
                true
            }
            _ => false,
        }
    }

    /// Fails an active or pending lease and re-issues its range as a fresh
    /// pending lease with a new id. Returns the replacement id.
    pub fn fail(&mut self, id: u64) -> Option<u64> {
        let range = match self.lease_mut(id) {
            Some(l) if matches!(l.status, LeaseStatus::Active | LeaseStatus::Pending) => {
                l.status = LeaseStatus::Failed;
                l.range.clone()
            }
            _ => return None,
        };
        let new_id = self.next_id;
        self.next_id += 1;
        self.leases.push(Lease {
            id: new_id,
            range,
            holder: 0,
            deadline: 0,
            status: LeaseStatus::Pending,
        });
        Some(new_id)
    }

    /// Ids of active leases whose deadline has passed at `now`.
    pub fn expired(&self, now: u64) -> Vec<u64> {
        self.leases
            .iter()
            .filter(|l| l.status == LeaseStatus::Active && l.deadline < now)
            .map(|l| l.id)
            .collect()
    }

    /// True once every range chain has terminated in a done lease (nothing
    /// pending or active remains).
    pub fn all_done(&self) -> bool {
        self.leases
            .iter()
            .all(|l| matches!(l.status, LeaseStatus::Done | LeaseStatus::Failed))
    }

    /// Whether any lease is still claimable.
    pub fn has_pending(&self) -> bool {
        self.leases.iter().any(|l| l.status == LeaseStatus::Pending)
    }

    /// All leases, in issue order.
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// One lease by id.
    pub fn lease(&self, id: u64) -> Option<&Lease> {
        self.leases.iter().find(|l| l.id == id)
    }

    fn lease_mut(&mut self, id: u64) -> Option<&mut Lease> {
        self.leases.iter_mut().find(|l| l.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_covers_the_unit_space_contiguously() {
        let ledger = LeaseLedger::carve(17, 4, 1);
        let leases = ledger.leases();
        assert_eq!(leases.len(), 4);
        assert_eq!(leases[0].range.start, 0);
        assert_eq!(leases.last().unwrap().range.end, 17);
        for pair in leases.windows(2) {
            assert_eq!(pair[0].range.end, pair[1].range.start);
        }
        assert!(leases.iter().all(|l| l.status == LeaseStatus::Pending));
    }

    #[test]
    fn claim_complete_drains_to_all_done() {
        let mut ledger = LeaseLedger::carve(10, 2, 1);
        let a = ledger.claim(100, 50, 30).unwrap();
        let b = ledger.claim(101, 50, 30).unwrap();
        assert_eq!((a.holder, a.deadline), (100, 80));
        assert!(ledger.claim(102, 50, 30).is_none(), "nothing left to carve");
        assert!(!ledger.all_done());
        assert!(ledger.complete(a.id));
        assert!(ledger.complete(b.id));
        assert!(ledger.all_done());
    }

    #[test]
    fn failed_lease_reissues_same_range_under_fresh_id() {
        let mut ledger = LeaseLedger::carve(10, 2, 5);
        let a = ledger.claim(100, 0, 30).unwrap();
        let replacement = ledger.fail(a.id).unwrap();
        assert!(replacement > a.id, "ids are never reused");
        let again = ledger.claim(200, 10, 30).unwrap();
        // The next claim may get the untouched second carve or the
        // re-issue; drain both and check the re-issued range survives.
        let other = ledger.claim(201, 10, 30).unwrap();
        let ranges: Vec<_> = [&again, &other].iter().map(|l| l.range.clone()).collect();
        assert!(ranges.contains(&a.range), "failed range re-enters the pool");
        // A late completion from the dead worker is ignored.
        assert!(!ledger.complete(a.id));
        assert!(ledger.complete(again.id));
        assert!(ledger.complete(other.id));
        assert!(ledger.all_done());
    }

    #[test]
    fn expiry_is_deadline_based() {
        let mut ledger = LeaseLedger::carve(4, 1, 1);
        let a = ledger.claim(100, 1000, 60).unwrap();
        assert!(ledger.expired(1059).is_empty());
        assert_eq!(ledger.expired(1061), vec![a.id]);
        ledger.fail(a.id).unwrap();
        assert!(ledger.expired(2000).is_empty(), "failed leases stop expiring");
    }

    #[test]
    fn empty_campaign_is_immediately_done() {
        let ledger = LeaseLedger::carve(0, 4, 1);
        assert!(ledger.leases().is_empty());
        assert!(ledger.all_done());
    }
}
