//! A deterministic work-stealing task executor.
//!
//! Every campaign runner in the workspace has the same shape: a statically
//! known list of independent tasks (compile-and-run cells, seed expansions,
//! analyzer invocations) whose results must be *merged in task order* so the
//! output is bit-identical to the sequential loop. [`Executor::map`] provides
//! exactly that contract:
//!
//! * tasks are indexed `0..n` and the result vector is returned in index
//!   order, so thread scheduling can never reorder observable output;
//! * workers start with contiguous chunks of the index space (good locality
//!   for per-seed task runs) and **steal from the back** of other workers'
//!   deques when they run dry, which smooths imbalance at any granularity —
//!   the motivation for moving the campaign from per-seed shards to
//!   per-compile units.
//!
//! The implementation is plain `std`: mutex-guarded deques, scoped threads.
//! Task sets are in the thousands at most and each task is a full
//! compile+run pipeline, so queue overhead is noise.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

pub mod lease;
pub use lease::{LeaseLedger, LeaseStatus};

/// Poison-recovering lock. A panicking task must abort *its* unit of work,
/// not every later lock acquisition: the executor already propagates panics
/// deliberately (AbortGuard / the completion count), so the poison flag
/// carries no extra information — recover the guard and move on. The state
/// behind these locks (task slots, result slots, counters) stays consistent
/// across an unwind because each critical section is a single take/store.
trait Relock<T> {
    fn relock(&self) -> MutexGuard<'_, T>;
}

impl<T> Relock<T> for Mutex<T> {
    fn relock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A work-stealing executor with a fixed worker count.
///
/// Construction is cheap; the threads live only for the duration of each
/// [`Executor::map`] call.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor over `workers` threads (must be nonzero).
    pub fn new(workers: usize) -> Executor {
        assert!(workers > 0, "worker count must be nonzero");
        Executor { workers }
    }

    /// An executor with one worker per available core.
    pub fn auto() -> Executor {
        Executor::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every task and returns the results **in task order**.
    ///
    /// `f` receives `(task index, task)` and must be pure with respect to
    /// shared state for the output to be deterministic (interior-mutability
    /// telemetry like cache counters is fine; anything order-dependent is
    /// not).
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return tasks.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.workers.min(n);
        // Each task is claimed exactly once by taking it out of its slot;
        // results land in the slot of the same index.
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Initial distribution: contiguous chunks, earlier workers take the
        // remainder (mirrors the old per-seed shard split).
        let queues: Vec<Mutex<VecDeque<usize>>> = chunk_ranges(n, workers)
            .into_iter()
            .map(|r| Mutex::new(r.collect()))
            .collect();
        let progress = Progress { done: Mutex::new(0), cv: Condvar::new() };
        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let results = &results;
                let queues = &queues;
                let progress = &progress;
                let f = &f;
                scope.spawn(move || loop {
                    let Some(i) = next_task(queues, w) else {
                        // Every queue looked empty — but a thief may hold a
                        // just-stolen batch outside any queue, so "empty
                        // everywhere" is not proof of completion. Park until
                        // all tasks are done (exit) or another completion
                        // lands (rescan: any in-flight batch is queued by
                        // then or soon after).
                        if progress.wait_or_done(n) {
                            return;
                        }
                        continue;
                    };
                    let task = slots[i]
                        .relock()
                        .take()
                        .expect("task claimed twice");
                    // Count the completion even if `f` unwinds, so parked
                    // peers exit and the scope re-raises the panic instead
                    // of deadlocking on a count that can never be reached.
                    let _completed = progress.complete_on_drop();
                    let r = f(i, task);
                    *results[i].relock() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).expect("task completed"))
            .collect()
    }

    /// Runs `f` over every task and feeds the results to `consume` **in
    /// task order**, holding at most `window` completed-but-unconsumed
    /// results at any moment.
    ///
    /// This is the streaming sibling of [`Executor::map`]: instead of
    /// buffering all `n` results and returning them, the consumer (running
    /// on the calling thread) overlaps with the workers, and memory is
    /// capped at `window` results regardless of `n`. Tasks are claimed in
    /// index order — a worker that would run more than `window` tasks ahead
    /// of the consumer parks until the consumer catches up, and because
    /// claims are ordered, the task the consumer is waiting on is always
    /// the one a non-parked worker holds (no deadlock at any `window ≥ 1`).
    ///
    /// Ordered claiming trades the chunked locality of [`Executor::map`]
    /// for the bound; campaign tasks are full compile+run pipelines, so the
    /// shared-counter contention is noise.
    ///
    /// Determinism contract: identical to [`Executor::map`] — `consume`
    /// observes exactly the sequence `(0, f(0, t0)), (1, f(1, t1)), …`
    /// whatever the worker count or scheduling.
    pub fn map_consume<T, R, F, C>(&self, tasks: Vec<T>, window: usize, f: F, mut consume: C)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        C: FnMut(usize, R),
    {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let window = window.max(1);
        let slots: Vec<Mutex<Option<T>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let state = StreamState {
            inner: Mutex::new(StreamInner { next: 0, cursor: 0, done: vec![false; n], aborted: false }),
            claim_cv: Condvar::new(),
            result_cv: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let slots = &slots;
                let results = &results;
                let state = &state;
                let f = &f;
                scope.spawn(move || {
                    // If this worker unwinds, wake everyone so the consumer
                    // and peers exit instead of parking forever; the scope
                    // then re-raises the panic.
                    let _abort = AbortGuard(state);
                    while let Some(i) = state.claim(n, window) {
                        let task = slots[i]
                            .relock()
                            .take()
                            .expect("task claimed twice");
                        let r = f(i, task);
                        *results[i].relock() = Some(r);
                        state.complete(i);
                    }
                });
            }
            // The consumer runs here, inside the scope, on the caller's
            // thread — guarded the same way so a panicking `consume` frees
            // the workers before the scope joins them.
            let _abort = AbortGuard(&state);
            for (i, slot) in results.iter().enumerate() {
                if !state.await_result(i) {
                    break; // a worker died; its panic surfaces at scope exit
                }
                let r = slot.relock().take().expect("completed result present");
                consume(i, r);
                state.advance();
            }
        });
    }
}

/// Shared state of a [`Executor::map_consume`] run.
struct StreamState {
    inner: Mutex<StreamInner>,
    /// Signaled when the consumer advances (parked claimants recheck).
    claim_cv: Condvar,
    /// Signaled when a result lands (the consumer rechecks).
    result_cv: Condvar,
}

struct StreamInner {
    /// Next unclaimed task index.
    next: usize,
    /// Next index the consumer will take.
    cursor: usize,
    /// Completion flags, indexed by task.
    done: Vec<bool>,
    /// Set when any participant unwinds.
    aborted: bool,
}

impl StreamState {
    /// Claims the next task index, parking while the claim would run more
    /// than `window` ahead of the consumer. `None` when tasks are exhausted
    /// or the run aborted.
    fn claim(&self, n: usize, window: usize) -> Option<usize> {
        let mut inner = self.inner.relock();
        loop {
            if inner.aborted || inner.next >= n {
                return None;
            }
            if inner.next < inner.cursor + window {
                let i = inner.next;
                inner.next += 1;
                return Some(i);
            }
            inner = self.claim_cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks task `i` complete and wakes the consumer.
    fn complete(&self, i: usize) {
        let mut inner = self.inner.relock();
        inner.done[i] = true;
        drop(inner);
        self.result_cv.notify_all();
    }

    /// Waits until task `i`'s result landed; `false` on abort.
    fn await_result(&self, i: usize) -> bool {
        let mut inner = self.inner.relock();
        loop {
            if inner.done[i] {
                return true;
            }
            if inner.aborted {
                return false;
            }
            inner = self.result_cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Advances the consumption cursor, unparking claim-bounded workers.
    fn advance(&self) {
        let mut inner = self.inner.relock();
        inner.cursor += 1;
        drop(inner);
        self.claim_cv.notify_all();
    }

    fn abort(&self) {
        let mut inner = self.inner.relock();
        inner.aborted = true;
        drop(inner);
        self.claim_cv.notify_all();
        self.result_cv.notify_all();
    }
}

/// Sets the abort flag if the holder unwinds (and only then): parked peers
/// wake, drain, and the panic propagates out of the thread scope instead of
/// deadlocking it.
struct AbortGuard<'a>(&'a StreamState);

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// Completion tracking: how many tasks have finished (successfully or by
/// panic), with a condvar so idle workers park instead of busy-spinning
/// through queue scans while the tail of the task set executes.
struct Progress {
    done: Mutex<usize>,
    cv: Condvar,
}

impl Progress {
    /// Returns `true` once all `n` tasks have completed. Otherwise blocks
    /// until the next completion (or a spurious wakeup) and returns whether
    /// everything finished by then — on `false` the caller rescans the
    /// queues for newly landed stolen work.
    fn wait_or_done(&self, n: usize) -> bool {
        let mut done = self.done.relock();
        if *done < n {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        *done == n
    }

    /// A guard that records one completion when dropped — including during
    /// unwinding, which is what keeps a panicking task from stranding the
    /// other workers in [`Progress::wait_or_done`].
    fn complete_on_drop(&self) -> CompleteGuard<'_> {
        CompleteGuard(self)
    }
}

struct CompleteGuard<'a>(&'a Progress);

impl Drop for CompleteGuard<'_> {
    fn drop(&mut self) {
        *self.0.done.relock() += 1;
        self.0.cv.notify_all();
    }
}

/// Pops the next task index for worker `w`: front of its own deque, else
/// steal the back half of the first non-empty victim. Returns `None` when
/// every deque looked empty during the scan; the caller decides whether that
/// means "done" (all tasks completed) or "retry" (a stolen batch was in
/// flight between two locks).
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        if let Some(i) = queues[w].relock().pop_front() {
            return Some(i);
        }
        let mut stolen: VecDeque<usize> = VecDeque::new();
        for off in 1..queues.len() {
            let v = (w + off) % queues.len();
            let mut victim = queues[v].relock();
            if victim.is_empty() {
                continue;
            }
            // Victim keeps the front half, thief takes the back half (all of
            // it when only one task remains).
            let keep = victim.len() / 2;
            stolen = victim.split_off(keep);
            break;
        }
        if stolen.is_empty() {
            return None;
        }
        let first = stolen.pop_front();
        queues[w].relock().extend(stolen);
        if let Some(i) = first {
            return Some(i);
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges (earlier ranges take the remainder).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(n.max(1)).max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_are_contiguous_and_balanced() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(4, 8), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(chunk_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
        let ranges = chunk_ranges(17, 4);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 17);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn map_preserves_task_order() {
        for workers in [1, 2, 3, 8, 16] {
            let exec = Executor::new(workers);
            let tasks: Vec<usize> = (0..100).collect();
            let out = exec.map(tasks, |i, t| {
                assert_eq!(i, t);
                t * 3
            });
            assert_eq!(out, (0..100).map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(Vec::<usize>::new(), |_, t| t), Vec::<usize>::new());
        assert_eq!(exec.map(vec![7], |_, t| t + 1), vec![8]);
        assert_eq!(exec.map(vec![1, 2], |_, t| t), vec![1, 2]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let exec = Executor::new(8);
        let counter = AtomicUsize::new(0);
        let out = exec.map((0..500).collect(), |_, t: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn imbalanced_tasks_are_stolen() {
        // One pathological chunk (all the work at the front) still completes
        // and preserves order; with more workers than the slow chunk's share
        // the steal path must engage for the run to finish at all quickly —
        // we only assert correctness here, the balancing is observable in
        // the campaign benches.
        let exec = Executor::new(4);
        let out = exec.map((0..64).collect(), |i, t: usize| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t * t
        });
        assert_eq!(out, (0..64).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panicking_task_propagates_instead_of_hanging() {
        // The completion guard must count a panicked task, so parked workers
        // drain the rest and exit, and the scope re-raises the panic — a
        // hang here (test timeout) is the deadlock regression.
        let exec = Executor::new(4);
        let _ = exec.map((0..64).collect(), |i, t: usize| {
            if i == 13 {
                panic!("task 13 exploded");
            }
            t
        });
    }

    #[test]
    #[should_panic(expected = "worker count must be nonzero")]
    fn zero_workers_panics() {
        let _ = Executor::new(0);
    }

    #[test]
    fn map_consume_is_in_order_and_complete() {
        for workers in [1, 2, 4, 16] {
            for window in [1, 2, 7, 1000] {
                let exec = Executor::new(workers);
                let mut seen = Vec::new();
                exec.map_consume((0..100).collect(), window, |i, t: usize| {
                    assert_eq!(i, t);
                    t * 3
                }, |i, r| {
                    assert_eq!(r, i * 3);
                    seen.push(i);
                });
                assert_eq!(seen, (0..100).collect::<Vec<_>>(), "w{workers} win{window}");
            }
        }
    }

    #[test]
    fn map_consume_bounds_outstanding_results() {
        // With window W, a worker may never be computing (or have
        // completed) a task more than W past the consumer's cursor. We
        // observe the high-water mark of (claimed index − consumed count).
        let exec = Executor::new(4);
        let window = 3;
        let claimed_max = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        exec.map_consume(
            (0..200).collect(),
            window,
            |i, _t: usize| {
                let ahead = i - consumed.load(Ordering::Relaxed).min(i);
                claimed_max.fetch_max(ahead, Ordering::Relaxed);
            },
            |_, _| {
                consumed.fetch_add(1, Ordering::Relaxed);
            },
        );
        // The consumer may lag its counter update by the in-flight
        // notification, so allow exactly that slack.
        assert!(
            claimed_max.load(Ordering::Relaxed) <= window + 1,
            "look-ahead {} exceeds window {window}",
            claimed_max.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn map_consume_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(4);
        let mut count = 0;
        exec.map_consume(Vec::<usize>::new(), 4, |_, t| t, |_, _| count += 1);
        assert_eq!(count, 0);
        let mut out = Vec::new();
        exec.map_consume(vec![7], 1, |_, t| t + 1, |_, r| out.push(r));
        assert_eq!(out, vec![8]);
    }

    // (The scope rewraps worker panics as "a scoped thread panicked"; the
    // consumer panic below unwinds on the calling thread and keeps its
    // message.)
    #[test]
    #[should_panic(expected = "panicked")]
    fn map_consume_worker_panic_propagates() {
        let exec = Executor::new(4);
        exec.map_consume(
            (0..64).collect(),
            2,
            |i, t: usize| {
                if i == 13 {
                    panic!("task 13 exploded");
                }
                t
            },
            |_, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "consumer exploded")]
    fn map_consume_consumer_panic_propagates() {
        let exec = Executor::new(4);
        exec.map_consume(
            (0..64).collect(),
            2,
            |_, t: usize| t,
            |i, _| {
                if i == 5 {
                    panic!("consumer exploded");
                }
            },
        );
    }
}
