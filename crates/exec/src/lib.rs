//! A deterministic work-stealing task executor.
//!
//! Every campaign runner in the workspace has the same shape: a statically
//! known list of independent tasks (compile-and-run cells, seed expansions,
//! analyzer invocations) whose results must be *merged in task order* so the
//! output is bit-identical to the sequential loop. [`Executor::map`] provides
//! exactly that contract:
//!
//! * tasks are indexed `0..n` and the result vector is returned in index
//!   order, so thread scheduling can never reorder observable output;
//! * workers start with contiguous chunks of the index space (good locality
//!   for per-seed task runs) and **steal from the back** of other workers'
//!   deques when they run dry, which smooths imbalance at any granularity —
//!   the motivation for moving the campaign from per-seed shards to
//!   per-compile units.
//!
//! The implementation is plain `std`: mutex-guarded deques, scoped threads.
//! Task sets are in the thousands at most and each task is a full
//! compile+run pipeline, so queue overhead is noise.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A work-stealing executor with a fixed worker count.
///
/// Construction is cheap; the threads live only for the duration of each
/// [`Executor::map`] call.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor over `workers` threads (must be nonzero).
    pub fn new(workers: usize) -> Executor {
        assert!(workers > 0, "worker count must be nonzero");
        Executor { workers }
    }

    /// An executor with one worker per available core.
    pub fn auto() -> Executor {
        Executor::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every task and returns the results **in task order**.
    ///
    /// `f` receives `(task index, task)` and must be pure with respect to
    /// shared state for the output to be deterministic (interior-mutability
    /// telemetry like cache counters is fine; anything order-dependent is
    /// not).
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return tasks.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.workers.min(n);
        // Each task is claimed exactly once by taking it out of its slot;
        // results land in the slot of the same index.
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Initial distribution: contiguous chunks, earlier workers take the
        // remainder (mirrors the old per-seed shard split).
        let queues: Vec<Mutex<VecDeque<usize>>> = chunk_ranges(n, workers)
            .into_iter()
            .map(|r| Mutex::new(r.collect()))
            .collect();
        let progress = Progress { done: Mutex::new(0), cv: Condvar::new() };
        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let results = &results;
                let queues = &queues;
                let progress = &progress;
                let f = &f;
                scope.spawn(move || loop {
                    let Some(i) = next_task(queues, w) else {
                        // Every queue looked empty — but a thief may hold a
                        // just-stolen batch outside any queue, so "empty
                        // everywhere" is not proof of completion. Park until
                        // all tasks are done (exit) or another completion
                        // lands (rescan: any in-flight batch is queued by
                        // then or soon after).
                        if progress.wait_or_done(n) {
                            return;
                        }
                        continue;
                    };
                    let task = slots[i]
                        .lock()
                        .expect("task slot lock")
                        .take()
                        .expect("task claimed twice");
                    // Count the completion even if `f` unwinds, so parked
                    // peers exit and the scope re-raises the panic instead
                    // of deadlocking on a count that can never be reached.
                    let _completed = progress.complete_on_drop();
                    let r = f(i, task);
                    *results[i].lock().expect("result slot lock") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("result lock").expect("task completed"))
            .collect()
    }
}

/// Completion tracking: how many tasks have finished (successfully or by
/// panic), with a condvar so idle workers park instead of busy-spinning
/// through queue scans while the tail of the task set executes.
struct Progress {
    done: Mutex<usize>,
    cv: Condvar,
}

impl Progress {
    /// Returns `true` once all `n` tasks have completed. Otherwise blocks
    /// until the next completion (or a spurious wakeup) and returns whether
    /// everything finished by then — on `false` the caller rescans the
    /// queues for newly landed stolen work.
    fn wait_or_done(&self, n: usize) -> bool {
        let mut done = self.done.lock().expect("progress lock");
        if *done < n {
            done = self.cv.wait(done).expect("progress wait");
        }
        *done == n
    }

    /// A guard that records one completion when dropped — including during
    /// unwinding, which is what keeps a panicking task from stranding the
    /// other workers in [`Progress::wait_or_done`].
    fn complete_on_drop(&self) -> CompleteGuard<'_> {
        CompleteGuard(self)
    }
}

struct CompleteGuard<'a>(&'a Progress);

impl Drop for CompleteGuard<'_> {
    fn drop(&mut self) {
        *self.0.done.lock().expect("progress lock") += 1;
        self.0.cv.notify_all();
    }
}

/// Pops the next task index for worker `w`: front of its own deque, else
/// steal the back half of the first non-empty victim. Returns `None` when
/// every deque looked empty during the scan; the caller decides whether that
/// means "done" (all tasks completed) or "retry" (a stolen batch was in
/// flight between two locks).
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
            return Some(i);
        }
        let mut stolen: VecDeque<usize> = VecDeque::new();
        for off in 1..queues.len() {
            let v = (w + off) % queues.len();
            let mut victim = queues[v].lock().expect("victim queue lock");
            if victim.is_empty() {
                continue;
            }
            // Victim keeps the front half, thief takes the back half (all of
            // it when only one task remains).
            let keep = victim.len() / 2;
            stolen = victim.split_off(keep);
            break;
        }
        if stolen.is_empty() {
            return None;
        }
        let first = stolen.pop_front();
        queues[w].lock().expect("queue lock").extend(stolen);
        if let Some(i) = first {
            return Some(i);
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal, non-empty
/// ranges (earlier ranges take the remainder).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(n.max(1)).max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_are_contiguous_and_balanced() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(4, 8), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(chunk_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
        let ranges = chunk_ranges(17, 4);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 17);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn map_preserves_task_order() {
        for workers in [1, 2, 3, 8, 16] {
            let exec = Executor::new(workers);
            let tasks: Vec<usize> = (0..100).collect();
            let out = exec.map(tasks, |i, t| {
                assert_eq!(i, t);
                t * 3
            });
            assert_eq!(out, (0..100).map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(Vec::<usize>::new(), |_, t| t), Vec::<usize>::new());
        assert_eq!(exec.map(vec![7], |_, t| t + 1), vec![8]);
        assert_eq!(exec.map(vec![1, 2], |_, t| t), vec![1, 2]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let exec = Executor::new(8);
        let counter = AtomicUsize::new(0);
        let out = exec.map((0..500).collect(), |_, t: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn imbalanced_tasks_are_stolen() {
        // One pathological chunk (all the work at the front) still completes
        // and preserves order; with more workers than the slow chunk's share
        // the steal path must engage for the run to finish at all quickly —
        // we only assert correctness here, the balancing is observable in
        // the campaign benches.
        let exec = Executor::new(4);
        let out = exec.map((0..64).collect(), |i, t: usize| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t * t
        });
        assert_eq!(out, (0..64).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panicking_task_propagates_instead_of_hanging() {
        // The completion guard must count a panicked task, so parked workers
        // drain the rest and exit, and the scope re-raises the panic — a
        // hang here (test timeout) is the deadlock regression.
        let exec = Executor::new(4);
        let _ = exec.map((0..64).collect(), |i, t: usize| {
            if i == 13 {
                panic!("task 13 exploded");
            }
            t
        });
    }

    #[test]
    #[should_panic(expected = "worker count must be nonzero")]
    fn zero_workers_panics() {
        let _ = Executor::new(0);
    }
}
