//! AST round-trip properties over generator-produced programs.
//!
//! A freshly generated program carries construction metadata the C grammar
//! cannot express — e.g. `seedgen` types a `char` global's initializer
//! literal as `char`, while a parsed `78` is an `int` literal, and negative
//! constants are built as negative `IntLit`s but reparse as unary minus.
//! One print→parse pass erases exactly that metadata, after which printing
//! and parsing are mutually inverse *including* node ids and locations:
//! `parse(pretty(q)) == q` for every `q` in parse's image.

use ubfuzz_interp::run_program;
use ubfuzz_minic::{parse, pretty};
use ubfuzz_seedgen::{generate_seed, SeedOptions};

#[test]
fn parse_pretty_identity_on_canonical_programs() {
    for seed in 0..40u64 {
        let p = generate_seed(seed, &SeedOptions::default());
        // One pass to canonical form...
        let canonical = parse(&pretty::print(&p))
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
        // ...after which parse ∘ pretty is the identity, structurally.
        let text = pretty::print(&canonical);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: second reparse failed: {e}"));
        let again = parse(&pretty::print(&reparsed)).unwrap();
        assert_eq!(
            reparsed, again,
            "seed {seed}: parse(pretty(q)) != q on canonical program\n{text}"
        );
        assert_eq!(
            pretty::print(&reparsed),
            pretty::print(&again),
            "seed {seed}: printing is not a fixed point"
        );
    }
}

#[test]
fn canonicalization_preserves_semantics() {
    // The metadata erased by the canonicalizing round-trip must never be
    // observable: interpreter outcomes are identical at every stage.
    for seed in 0..40u64 {
        let p = generate_seed(seed, &SeedOptions::default());
        let original = run_program(&p);
        let canonical = parse(&pretty::print(&p)).unwrap();
        assert_eq!(original, run_program(&canonical), "seed {seed}: first round-trip");
        let twice = parse(&pretty::print(&canonical)).unwrap();
        assert_eq!(original, run_program(&twice), "seed {seed}: second round-trip");
    }
}

#[test]
fn hand_written_canonical_program_roundtrips_directly() {
    let src = "int g[3];\n\
               int main(void) {\n\
               \x20   int s = 0;\n\
               \x20   for (int i = 0; i < 3; i = i + 1) {\n\
               \x20       s = s + g[i];\n\
               \x20   }\n\
               \x20   print_value(s);\n\
               \x20   return 0;\n\
               }\n";
    let p = parse(src).unwrap();
    assert_eq!(parse(&pretty::print(&p)).unwrap(), p);
}
