//! The type system of the C subset.
//!
//! Layout is packed (no padding): this keeps the byte-level memory model of
//! the interpreter and VM simple without affecting any UB kind in the paper's
//! Table 1 — overflow distances are computed from these sizes consistently by
//! the generator, the sanitizers and the ground-truth interpreter.

use std::fmt;

/// Width of an integer type, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntWidth {
    /// 8 bits (`char`).
    W8,
    /// 16 bits (`short`).
    W16,
    /// 32 bits (`int`).
    W32,
    /// 64 bits (`long`).
    W64,
}

impl IntWidth {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            IntWidth::W8 => 8,
            IntWidth::W16 => 16,
            IntWidth::W32 => 32,
            IntWidth::W64 => 64,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }
}

/// An integer type: width plus signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntType {
    /// Bit width.
    pub width: IntWidth,
    /// True for signed types.
    pub signed: bool,
}

impl IntType {
    /// `char` (signed 8-bit in this dialect).
    pub const CHAR: IntType = IntType { width: IntWidth::W8, signed: true };
    /// `unsigned char`.
    pub const UCHAR: IntType = IntType { width: IntWidth::W8, signed: false };
    /// `short`.
    pub const SHORT: IntType = IntType { width: IntWidth::W16, signed: true };
    /// `unsigned short`.
    pub const USHORT: IntType = IntType { width: IntWidth::W16, signed: false };
    /// `int`.
    pub const INT: IntType = IntType { width: IntWidth::W32, signed: true };
    /// `unsigned int`.
    pub const UINT: IntType = IntType { width: IntWidth::W32, signed: false };
    /// `long`.
    pub const LONG: IntType = IntType { width: IntWidth::W64, signed: true };
    /// `unsigned long`.
    pub const ULONG: IntType = IntType { width: IntWidth::W64, signed: false };

    /// Smallest representable value.
    pub fn min_value(self) -> i128 {
        if self.signed {
            -(1i128 << (self.width.bits() - 1))
        } else {
            0
        }
    }

    /// Largest representable value.
    pub fn max_value(self) -> i128 {
        if self.signed {
            (1i128 << (self.width.bits() - 1)) - 1
        } else {
            (1i128 << self.width.bits()) - 1
        }
    }

    /// True if `v` is representable in this type.
    pub fn contains(self, v: i128) -> bool {
        v >= self.min_value() && v <= self.max_value()
    }

    /// Wraps `v` into this type's range (two's complement truncation), the
    /// behaviour of a store or an unsanitized machine operation.
    pub fn wrap(self, v: i128) -> i128 {
        let bits = self.width.bits();
        let masked = (v as u128) & (u128::MAX >> (128 - bits));
        if self.signed {
            let sign = 1u128 << (bits - 1);
            if masked & sign != 0 {
                (masked as i128) - (1i128 << bits)
            } else {
                masked as i128
            }
        } else {
            masked as i128
        }
    }

    /// The integer-promoted type: anything narrower than `int` becomes `int`
    /// (all subset types narrower than `int` fit in `int`).
    pub fn promoted(self) -> IntType {
        if self.width.bits() < 32 {
            IntType::INT
        } else {
            self
        }
    }

    /// Usual arithmetic conversions between two promoted operand types.
    pub fn unify(self, other: IntType) -> IntType {
        let a = self.promoted();
        let b = other.promoted();
        if a == b {
            return a;
        }
        if a.width == b.width {
            // Same width, different signedness: unsigned wins.
            return IntType { width: a.width, signed: false };
        }
        let (wide, narrow) = if a.width > b.width { (a, b) } else { (b, a) };
        if wide.signed && !narrow.signed {
            // The wider signed type can represent all values of the narrower
            // unsigned type in this subset (64 vs 32), so it wins.
            wide
        } else {
            wide
        }
    }
}

impl fmt::Display for IntType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.width {
            IntWidth::W8 => "char",
            IntWidth::W16 => "short",
            IntWidth::W32 => "int",
            IntWidth::W64 => "long",
        };
        if self.signed {
            write!(f, "{base}")
        } else {
            write!(f, "unsigned {base}")
        }
    }
}

/// A type in the C subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only usable behind a pointer or as a return type.
    Void,
    /// Integer types.
    Int(IntType),
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// Struct, referring to [`crate::Program::structs`] by index.
    Struct(usize),
}

impl Type {
    /// Convenience constructor for `int`.
    pub fn int() -> Type {
        Type::Int(IntType::INT)
    }

    /// Convenience constructor for a pointer to `ty`.
    pub fn ptr(ty: Type) -> Type {
        Type::Ptr(Box::new(ty))
    }

    /// Convenience constructor for an array of `n` elements of `ty`.
    pub fn array(ty: Type, n: usize) -> Type {
        Type::Array(Box::new(ty), n)
    }

    /// Size in bytes under the packed layout. Structs need the definition
    /// table. `void` has size 1 for pointer-arithmetic purposes (GNU style).
    pub fn size_of(&self, structs: &[StructDef]) -> usize {
        match self {
            Type::Void => 1,
            Type::Int(it) => it.width.bytes(),
            Type::Ptr(_) => 8,
            Type::Array(elem, n) => elem.size_of(structs) * n,
            Type::Struct(idx) => structs[*idx]
                .fields
                .iter()
                .map(|(_, t)| t.size_of(structs))
                .sum(),
        }
    }

    /// True for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The integer type, if this is an integer.
    pub fn as_int(&self) -> Option<IntType> {
        match self {
            Type::Int(it) => Some(*it),
            _ => None,
        }
    }

    /// The pointee type, if this is a pointer; arrays decay to their element.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The type after array-to-pointer decay.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

/// A struct definition: a name and its ordered fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag, e.g. `"S0"` for `struct S0`.
    pub name: String,
    /// Ordered `(field name, field type)` pairs.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Byte offset of `field` under the packed layout, plus its type.
    pub fn field_offset(&self, field: &str, structs: &[StructDef]) -> Option<(usize, &Type)> {
        let mut off = 0;
        for (name, ty) in &self.fields {
            if name == field {
                return Some((off, ty));
            }
            off += ty.size_of(structs);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges() {
        assert_eq!(IntType::CHAR.min_value(), -128);
        assert_eq!(IntType::CHAR.max_value(), 127);
        assert_eq!(IntType::UINT.max_value(), u32::MAX as i128);
        assert_eq!(IntType::INT.min_value(), i32::MIN as i128);
        assert_eq!(IntType::LONG.max_value(), i64::MAX as i128);
    }

    #[test]
    fn wrap_truncates_twos_complement() {
        assert_eq!(IntType::CHAR.wrap(128), -128);
        assert_eq!(IntType::UCHAR.wrap(-1), 255);
        assert_eq!(IntType::INT.wrap(i32::MAX as i128 + 1), i32::MIN as i128);
        assert_eq!(IntType::UINT.wrap(-1), u32::MAX as i128);
        assert_eq!(IntType::INT.wrap(42), 42);
    }

    #[test]
    fn promotion_and_unify() {
        assert_eq!(IntType::CHAR.promoted(), IntType::INT);
        assert_eq!(IntType::SHORT.promoted(), IntType::INT);
        assert_eq!(IntType::LONG.promoted(), IntType::LONG);
        assert_eq!(IntType::INT.unify(IntType::UINT), IntType::UINT);
        assert_eq!(IntType::CHAR.unify(IntType::SHORT), IntType::INT);
        assert_eq!(IntType::INT.unify(IntType::LONG), IntType::LONG);
        assert_eq!(IntType::UINT.unify(IntType::LONG), IntType::LONG);
    }

    #[test]
    fn sizes_are_packed() {
        let structs = vec![StructDef {
            name: "S".into(),
            fields: vec![
                ("a".into(), Type::Int(IntType::CHAR)),
                ("b".into(), Type::int()),
                ("c".into(), Type::array(Type::Int(IntType::SHORT), 3)),
            ],
        }];
        assert_eq!(Type::Struct(0).size_of(&structs), 1 + 4 + 6);
        assert_eq!(Type::ptr(Type::int()).size_of(&structs), 8);
        assert_eq!(Type::array(Type::int(), 5).size_of(&structs), 20);
    }

    #[test]
    fn field_offsets() {
        let structs = vec![StructDef {
            name: "S".into(),
            fields: vec![
                ("a".into(), Type::Int(IntType::CHAR)),
                ("b".into(), Type::int()),
            ],
        }];
        let (off, ty) = structs[0].field_offset("b", &structs).unwrap();
        assert_eq!(off, 1);
        assert_eq!(*ty, Type::int());
        assert!(structs[0].field_offset("zzz", &structs).is_none());
    }

    #[test]
    fn decay() {
        let arr = Type::array(Type::int(), 4);
        assert_eq!(arr.decayed(), Type::ptr(Type::int()));
        assert_eq!(arr.pointee(), Some(&Type::int()));
    }
}
